/**
 * @file
 * Capacity planner: given a workload scenario and a planning horizon,
 * recommend the provisioning strategy with the lowest total cost that
 * still meets a performance floor.
 *
 * This is the decision a platform team actually faces: "we expect this
 * load shape for N weeks — what should we buy?" The planner runs all
 * five strategies through the simulator, prices them with committed
 * reservations (Figure 13 semantics), filters by a QoS floor, and prints
 * the recommendation with the full evidence table.
 *
 * Usage: capacity_planner [static|low|high] [weeks] [minPerf]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cloud/pricing.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace {

struct Candidate
{
    std::string name;
    double cost = 0.0;
    double perf = 0.0;
    double tailPerf = 0.0;
    bool meetsFloor = false;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace hcloud;

    workload::ScenarioKind kind = workload::ScenarioKind::LowVariability;
    double weeks = 26.0;
    double min_perf = 0.75;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "static"))
            kind = workload::ScenarioKind::Static;
        else if (!std::strcmp(argv[1], "high"))
            kind = workload::ScenarioKind::HighVariability;
    }
    if (argc > 2)
        weeks = std::atof(argv[2]);
    if (argc > 3)
        min_perf = std::atof(argv[3]);

    std::printf("capacity plan: %s scenario, %.0f-week horizon, "
                "perf floor %.0f%%\n\n",
                toString(kind), weeks, 100.0 * min_perf);

    exp::Runner runner;
    const cloud::AwsStylePricing pricing;
    std::vector<Candidate> candidates;
    for (core::StrategyKind s : core::kAllStrategies) {
        const core::RunResult& r = runner.run(kind, s);
        Candidate c;
        c.name = r.strategy;
        c.cost =
            r.costOverHorizon(pricing, sim::weeks(weeks)).total();
        c.perf = r.meanPerfNorm();
        sim::SampleSet all;
        all.merge(r.batchPerfNorm);
        all.merge(r.lcPerfNorm);
        c.tailPerf = all.empty() ? 0.0 : all.quantile(0.05);
        c.meetsFloor = c.perf >= min_perf;
        candidates.push_back(c);
    }

    std::vector<std::vector<std::string>> rows;
    const Candidate* best = nullptr;
    for (const Candidate& c : candidates) {
        if (c.meetsFloor && (!best || c.cost < best->cost))
            best = &c;
        rows.push_back({c.name, exp::fmt(c.cost / 1000.0, 1),
                        exp::fmt(100.0 * c.perf, 1),
                        exp::fmt(100.0 * c.tailPerf, 1),
                        c.meetsFloor ? "yes" : "no"});
    }
    exp::printTable({"strategy", "cost (k$)", "mean perf %",
                     "p95-tail perf %", "meets floor"},
                    rows);

    if (best) {
        std::printf("\nrecommendation: %s ($%.0fk over %.0f weeks)\n",
                    best->name.c_str(), best->cost / 1000.0, weeks);
    } else {
        std::printf("\nno strategy meets the %.0f%% performance floor; "
                    "consider relaxing it or reserving for peak (SR)\n",
                    100.0 * min_perf);
    }

    // Show where the crossovers are so the reader can sanity-check.
    std::printf("\ncost vs horizon (k$):\n");
    std::vector<std::vector<std::string>> sweep;
    for (core::StrategyKind s : core::kAllStrategies) {
        const core::RunResult& r = runner.run(kind, s);
        std::vector<std::string> row = {r.strategy};
        for (double w : {4.0, 13.0, 26.0, 52.0}) {
            row.push_back(exp::fmt(
                r.costOverHorizon(pricing, sim::weeks(w)).total() /
                    1000.0,
                1));
        }
        sweep.push_back(row);
    }
    exp::printTable({"strategy", "4wk", "13wk", "26wk", "52wk"}, sweep);
    return 0;
}
