/**
 * @file
 * Quickstart: generate a workload scenario, run HCloud's hybrid strategy
 * against the simulated cloud, and print the headline metrics.
 *
 * This is the smallest end-to-end use of the public API:
 *   1. describe a scenario (or bring your own ArrivalTrace),
 *   2. configure the engine,
 *   3. run a provisioning strategy,
 *   4. inspect performance, cost and utilization.
 */

#include <cstdio>

#include "cloud/pricing.hpp"
#include "core/engine.hpp"
#include "workload/scenario.hpp"

int
main()
{
    using namespace hcloud;

    // 1. A high-variability scenario at half scale (fast to simulate).
    workload::ScenarioConfig scenario;
    scenario.kind = workload::ScenarioKind::HighVariability;
    scenario.loadScale = 0.5;
    scenario.seed = 42;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario);

    const workload::TraceStats stats = trace.stats();
    std::printf("scenario: %s\n", toString(scenario.kind));
    std::printf("  jobs: %zu (batch %zu, LC %zu)\n", stats.jobCount,
                stats.batchJobs, stats.lcJobs);
    std::printf("  cores: min %.0f max %.0f (ratio %.1fx)\n",
                stats.minCores, stats.maxCores, stats.maxMinCoreRatio);

    // 2. Engine configuration: defaults reproduce the paper's setup.
    core::EngineConfig config;
    config.seed = 1;

    // 3. Run the hybrid-mixed strategy (HM).
    core::Engine engine(config);
    const core::RunResult r =
        engine.run(trace, core::StrategyKind::HM, toString(scenario.kind));

    // 4. Report.
    const cloud::AwsStylePricing pricing;
    const cloud::CostBreakdown cost = r.cost(pricing);
    std::printf("\nstrategy: %s\n", r.strategy.c_str());
    std::printf("  makespan:            %.1f min\n", r.makespan / 60.0);
    std::printf("  batch perf (norm):   mean %.2f p5 %.2f\n",
                r.batchPerfNorm.mean(), r.batchPerfNorm.quantile(0.05));
    std::printf("  LC p99 latency:      mean %.0f us, p95 %.0f us\n",
                r.lcLatencyUs.mean(),
                r.lcLatencyUs.empty() ? 0.0 : r.lcLatencyUs.quantile(0.95));
    std::printf("  reserved util (avg): %.0f%%\n",
                100.0 * r.reservedUtilizationAvg);
    std::printf("  cost: $%.2f (reserved $%.2f + on-demand $%.2f)\n",
                cost.total(), cost.reserved, cost.onDemand);
    std::printf("  on-demand acquisitions: %zu\n", r.acquisitions);
    return 0;
}
