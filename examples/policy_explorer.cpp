/**
 * @file
 * Policy explorer: compare the application-mapping policies (P1-P8) of
 * HCloud's hybrid strategies on a chosen scenario.
 *
 * Shows the trade-off space of Section 4.2: quality-threshold policies
 * protect sensitive jobs but queue the reserved pool; load-threshold
 * policies protect the pool but strand sensitive jobs on noisy
 * on-demand instances; the dynamic policy (P8) balances both with its
 * adaptive soft limit.
 *
 * Usage: policy_explorer [static|low|high] [hf|hm]
 */

#include <cstdio>
#include <cstring>

#include "cloud/pricing.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int
main(int argc, char** argv)
{
    using namespace hcloud;

    workload::ScenarioKind kind = workload::ScenarioKind::HighVariability;
    core::StrategyKind strategy = core::StrategyKind::HM;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "static"))
            kind = workload::ScenarioKind::Static;
        else if (!std::strcmp(argv[i], "low"))
            kind = workload::ScenarioKind::LowVariability;
        else if (!std::strcmp(argv[i], "high"))
            kind = workload::ScenarioKind::HighVariability;
        else if (!std::strcmp(argv[i], "hf"))
            strategy = core::StrategyKind::HF;
        else if (!std::strcmp(argv[i], "hm"))
            strategy = core::StrategyKind::HM;
    }

    std::printf("mapping-policy exploration: %s on the %s scenario\n\n",
                toString(strategy), toString(kind));

    exp::Runner runner;
    const cloud::AwsStylePricing pricing;
    const double base_cost =
        runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR)
            .cost(pricing)
            .total();

    std::vector<std::vector<std::string>> rows;
    for (core::PolicyKind policy : core::kAllPolicies) {
        core::EngineConfig cfg = runner.baseConfig();
        cfg.mappingPolicy = policy;
        const core::RunResult r = runner.runWith(kind, strategy, cfg);
        rows.push_back({
            toString(policy),
            exp::fmt(100.0 * r.perfReserved.mean(), 1),
            exp::fmt(100.0 * r.perfOnDemand.mean(), 1),
            exp::fmt(100.0 * r.reservedUtilizationAvg, 1),
            exp::fmt(r.cost(pricing).total() / base_cost, 2),
            std::to_string(r.queuedJobs),
            exp::fmt(r.lcLatencyUs.mean(), 0),
        });
    }
    exp::printTable({"policy", "reserved perf %", "on-demand perf %",
                     "reserved util %", "cost (norm)", "queued",
                     "LC p99 (us)"},
                    rows);

    std::printf("\nreading guide:\n"
                "  P1 random       : both sides suffer\n"
                "  P2-P4 Q-threshold: on-demand improves as the bar\n"
                "                     rises, reserved queues up\n"
                "  P5-P7 load-limit : reserved protected, sensitive jobs\n"
                "                     stranded on-demand\n"
                "  P8 dynamic      : adaptive soft limit + Q90 test\n");
    return 0;
}
