/**
 * @file
 * Inspect a trace JSONL file produced by the benches (--trace flag or
 * the HCLOUD_TRACE environment knob): per-run event counts, per-job and
 * per-instance timelines, and a decision-reason summary.
 *
 * The file is streamed line by line: per-run state is bounded aggregates
 * (kind/reason histograms, distinct-id sets, and complete timelines for
 * only the N smallest job/instance ids), never the full event vector, so
 * sink-backed traces far larger than memory inspect fine.
 *
 * Usage: trace_inspect <trace.jsonl> [--jobs N] [--instances N]
 *   --jobs / --instances bound how many per-entity timelines are printed
 *   (default 5 each; 0 suppresses the section).
 *
 * Cross-run diff mode: trace_inspect --diff <a.jsonl> <b.jsonl>
 *   Streams both files in lockstep and reports the first divergent event
 *   (index, time, kind, ids, reason on each side) plus per-reason
 *   histogram deltas over the complete files. Exit status: 0 when the
 *   event streams are identical, 1 when they diverge, 2 on usage or I/O
 *   errors. Intended for pinpointing where two supposedly-deterministic
 *   runs (different thread counts, before/after a kernel change) first
 *   disagree.
 *
 * Timeline mode (for files written by --timeline / HCLOUD_TIMELINE):
 *   trace_inspect --timeline <timeline.jsonl> [--timeline-csv <out.csv>]
 *     Renders each run's cluster-state series — utilization, median
 *     quality, queue length, external load, spot price, accumulated
 *     cost — as fixed-width ASCII sparklines with their observed
 *     [min, max] ranges, and optionally exports every sample of every
 *     run as one flat CSV for plotting.
 *
 * Request-span modes (for files written by --span-trace / HCLOUD_SPANS):
 *   trace_inspect --spans <spans.jsonl> [--traces N]
 *     Renders per-request span timelines: one indented tree per trace id
 *     (the N smallest, default 5) with start offsets and durations in
 *     milliseconds, engine decision events joined in at their parent
 *     span, plus an aggregate per-span-name duration table.
 *   trace_inspect --chrome <spans.jsonl> <out.json>
 *     Converts the span JSONL into chrome://tracing / Perfetto trace
 *     event JSON (one row per request).
 *
 * Sweep-aggregate mode (for schema-v4 reports from --seeds/--ci runs):
 *   trace_inspect --agg <report.json>
 *     Renders each sweep in the report's `sweeps` array as a per-cell
 *     table of mean +/- 95% CI (cost, utilization, quality p95, QoS
 *     violations) plus the sweep's cache/reset telemetry line.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

#include "obs/json.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace hcloud;

/**
 * Complete timelines for the N smallest entity ids seen so far.
 *
 * An id is admitted at its FIRST event (when it is not yet in the seen
 * set) and only if it is among the N smallest; admitting it may evict
 * the current largest id. Eviction only ever shrinks the map's maximum,
 * so an evicted id can never re-qualify — every timeline still in the
 * map at end of stream is exact, identical to what a full in-memory
 * grouping would print for the N smallest ids.
 */
template <typename Id>
struct BoundedTimelines
{
    std::size_t capacity = 0;
    std::set<Id> seen;
    std::map<Id, std::vector<obs::TraceEvent>> timelines;

    void add(Id id, const obs::TraceEvent& event)
    {
        auto it = timelines.find(id);
        if (it != timelines.end()) {
            it->second.push_back(event);
            return;
        }
        if (!seen.insert(id).second || capacity == 0)
            return; // already evicted (partial) or timelines suppressed
        if (timelines.size() >= capacity) {
            auto largest = std::prev(timelines.end());
            if (id >= largest->first)
                return;
            timelines.erase(largest);
        }
        timelines[id].push_back(event);
    }
};

struct RunSummary
{
    std::string label;
    std::size_t events = 0;
    std::map<obs::EventKind, std::size_t> kinds;
    std::map<obs::DecisionReason, std::size_t> reasons;
    BoundedTimelines<sim::JobId> jobs;
    BoundedTimelines<sim::InstanceId> instances;

    explicit RunSummary(std::string runLabel, std::size_t maxJobs,
                        std::size_t maxInstances)
        : label(std::move(runLabel))
    {
        jobs.capacity = maxJobs;
        instances.capacity = maxInstances;
    }

    void add(const obs::TraceEvent& event)
    {
        ++events;
        ++kinds[event.kind];
        if (event.reason != obs::DecisionReason::None)
            ++reasons[event.reason];
        if (event.job != 0)
            jobs.add(event.job, event);
        if (event.instance != 0)
            instances.add(event.instance, event);
    }
};

/** "strategy/scenario[, unprofiled]" from a {"run":{...}} header line. */
std::string
runLabel(const obs::JsonValue& header)
{
    const obs::JsonValue* run = header.find("run");
    if (!run)
        return "(unlabeled run)";
    std::string label = run->find("strategy")
        ? run->find("strategy")->stringOr("?")
        : "?";
    label += " / ";
    label += run->find("scenario") ? run->find("scenario")->stringOr("?")
                                   : "?";
    if (run->find("profiling") && !run->find("profiling")->boolOr(true))
        label += " (unprofiled)";
    return label;
}

void
printTimeline(const char* kind, std::uint64_t id,
              const std::vector<obs::TraceEvent>& events)
{
    std::printf("  %s %llu:\n", kind,
                static_cast<unsigned long long>(id));
    for (const obs::TraceEvent& e : events) {
        std::printf("    t=%10.2f  %-22s", e.time, toString(e.kind));
        if (e.reason != obs::DecisionReason::None)
            std::printf("  reason=%s", toString(e.reason));
        if (e.value != 0.0)
            std::printf("  value=%g", e.value);
        if (!e.detail.empty())
            std::printf("  (%s)", e.detail.c_str());
        std::printf("\n");
    }
}

void
summarizeRun(const RunSummary& run)
{
    std::printf("\n== %s: %zu events ==\n", run.label.c_str(),
                run.events);
    if (run.events == 0)
        return;

    std::printf(" event kinds:\n");
    for (const auto& [kind, count] : run.kinds)
        std::printf("  %-22s %zu\n", toString(kind), count);

    if (!run.reasons.empty()) {
        std::printf(" decision reasons:\n");
        for (const auto& [reason, count] : run.reasons)
            std::printf("  %-26s %zu\n", toString(reason), count);
    }

    if (run.jobs.capacity > 0 && !run.jobs.seen.empty()) {
        std::printf(" job timelines (%zu of %zu):\n",
                    run.jobs.timelines.size(), run.jobs.seen.size());
        for (const auto& [id, events] : run.jobs.timelines)
            printTimeline("job", id, events);
    }

    if (run.instances.capacity > 0 && !run.instances.seen.empty()) {
        std::printf(" instance timelines (%zu of %zu):\n",
                    run.instances.timelines.size(),
                    run.instances.seen.size());
        for (const auto& [id, events] : run.instances.timelines)
            printTimeline("instance", id, events);
    }
}

// --- Cross-run diff -----------------------------------------------------

/**
 * Streams trace events from one JSONL file, skipping run headers and
 * unrecognized lines (counted, like the summary path).
 */
struct EventReader
{
    std::ifstream in;
    std::string path;
    std::size_t lineNo = 0;
    std::size_t badLines = 0;

    explicit EventReader(const std::string& file)
        : in(file, std::ios::binary), path(file)
    {
    }

    bool ok() const { return static_cast<bool>(in); }

    /** Next event, or false at end of file. */
    bool next(obs::TraceEvent* out)
    {
        std::string line;
        while (std::getline(in, line)) {
            ++lineNo;
            if (line.empty())
                continue;
            if (obs::eventFromJsonLine(line, out))
                return true;
            try {
                const obs::JsonValue header = obs::parseJson(line);
                if (header.find("run"))
                    continue; // section header, not an event
            } catch (const std::exception&) {
            }
            ++badLines;
        }
        return false;
    }
};

bool
sameEvent(const obs::TraceEvent& a, const obs::TraceEvent& b)
{
    return a.time == b.time && a.kind == b.kind &&
           a.severity == b.severity && a.reason == b.reason &&
           a.job == b.job && a.instance == b.instance &&
           a.value == b.value && a.detail == b.detail;
}

void
printDiffEvent(const char* side, const obs::TraceEvent& e)
{
    std::printf("  %s: t=%.6f  %-22s job=%llu instance=%llu", side, e.time,
                toString(e.kind), static_cast<unsigned long long>(e.job),
                static_cast<unsigned long long>(e.instance));
    if (e.reason != obs::DecisionReason::None)
        std::printf("  reason=%s", toString(e.reason));
    if (e.value != 0.0)
        std::printf("  value=%g", e.value);
    if (!e.detail.empty())
        std::printf("  (%s)", e.detail.c_str());
    std::printf("\n");
}

/** @return the diff-mode process exit status (0 / 1 / 2). */
int
diffTraces(const std::string& pathA, const std::string& pathB)
{
    EventReader a(pathA);
    EventReader b(pathB);
    if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "cannot open %s\n",
                     (!a.ok() ? pathA : pathB).c_str());
        return 2;
    }

    std::map<obs::DecisionReason, std::size_t> reasonsA;
    std::map<obs::DecisionReason, std::size_t> reasonsB;
    std::size_t index = 0;
    bool diverged = false;
    std::size_t divergedAt = 0;
    obs::TraceEvent firstA, firstB;
    bool haveA = false, haveB = false;

    for (;;) {
        obs::TraceEvent ea, eb;
        const bool gotA = a.next(&ea);
        const bool gotB = b.next(&eb);
        if (gotA && ea.reason != obs::DecisionReason::None)
            ++reasonsA[ea.reason];
        if (gotB && eb.reason != obs::DecisionReason::None)
            ++reasonsB[eb.reason];
        if (!gotA && !gotB)
            break;
        if (!diverged && (!gotA || !gotB || !sameEvent(ea, eb))) {
            diverged = true;
            divergedAt = index;
            haveA = gotA;
            haveB = gotB;
            if (gotA)
                firstA = ea;
            if (gotB)
                firstB = eb;
            // Keep draining both files so the histogram deltas below
            // cover the complete runs, not just the shared prefix.
        }
        ++index;
    }

    if (!diverged) {
        std::printf("identical: %zu events\n", index);
        return 0;
    }

    std::printf("diverged at event %zu:\n", divergedAt);
    if (haveA)
        printDiffEvent("a", firstA);
    else
        std::printf("  a: <end of %s>\n", pathA.c_str());
    if (haveB)
        printDiffEvent("b", firstB);
    else
        std::printf("  b: <end of %s>\n", pathB.c_str());

    // Per-reason histogram deltas over the full files.
    std::set<obs::DecisionReason> all_reasons;
    for (const auto& [reason, count] : reasonsA)
        all_reasons.insert(reason);
    for (const auto& [reason, count] : reasonsB)
        all_reasons.insert(reason);
    bool any_delta = false;
    for (obs::DecisionReason reason : all_reasons) {
        const std::size_t ca = reasonsA.count(reason) ? reasonsA[reason]
                                                      : 0;
        const std::size_t cb = reasonsB.count(reason) ? reasonsB[reason]
                                                      : 0;
        if (ca == cb)
            continue;
        if (!any_delta) {
            std::printf(" decision-reason deltas (a -> b):\n");
            any_delta = true;
        }
        std::printf("  %-26s %zu -> %zu (%+lld)\n", toString(reason), ca,
                    cb,
                    static_cast<long long>(cb) - static_cast<long long>(ca));
    }
    if (!any_delta)
        std::printf(" decision-reason histograms match\n");
    if (a.badLines + b.badLines > 0) {
        std::printf(" %zu unrecognized line(s) skipped\n",
                    a.badLines + b.badLines);
    }
    return 1;
}

// --- Cluster-state timelines --------------------------------------------

/** One run section of a timeline JSONL file. */
struct TimelineRun
{
    std::string label;
    std::vector<obs::TimelineSample> samples;
};

/**
 * Render @p values as a fixed-width ASCII sparkline: values are bucketed
 * to @p width columns (bucket mean) and each column maps linearly from
 * the observed [min, max] onto a 9-level character ramp. A flat series
 * renders as all-bottom, which is exactly the visual meaning wanted.
 */
std::string
sparkline(const std::vector<double>& values, std::size_t width)
{
    static constexpr char kRamp[] = " .:-=+*#@";
    constexpr std::size_t kLevels = sizeof(kRamp) - 2;
    if (values.empty())
        return "";
    double lo = values[0], hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const std::size_t cols = std::min(width, values.size());
    std::string out;
    out.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t begin = c * values.size() / cols;
        const std::size_t end =
            std::max(begin + 1, (c + 1) * values.size() / cols);
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            sum += values[i];
        const double mean = sum / static_cast<double>(end - begin);
        const double norm = hi > lo ? (mean - lo) / (hi - lo) : 0.0;
        out += kRamp[static_cast<std::size_t>(
            norm * static_cast<double>(kLevels) + 0.5)];
    }
    return out;
}

void
printSeries(const char* name, const std::vector<double>& values)
{
    if (values.empty())
        return;
    double lo = values[0], hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::printf("  %-12s [%11.4g, %11.4g]  %s\n", name, lo, hi,
                sparkline(values, 64).c_str());
}

/** Flat CSV of every sample in every run, one row per sample. */
bool
writeTimelineCsv(const std::string& path,
                 const std::vector<TimelineRun>& runs)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << "run,t,seq,reserved,on_demand,spot,util,q_mean,q5,q50,q95,"
           "queue,active,running,done,ext_load,spot_price,qos,cost\n";
    char row[512];
    for (const TimelineRun& run : runs) {
        for (const obs::TimelineSample& s : run.samples) {
            std::snprintf(
                row, sizeof(row),
                "\"%s\",%g,%llu,%u,%u,%u,%g,%g,%g,%g,%g,%u,%u,%u,%llu,"
                "%g,%g,%u,%g\n",
                run.label.c_str(), s.t,
                static_cast<unsigned long long>(s.seq),
                s.reservedInstances, s.onDemandInstances, s.spotInstances,
                s.utilization, s.qualityMean, s.qualityP5, s.qualityP50,
                s.qualityP95, s.queueLength, s.activeJobs, s.runningJobs,
                static_cast<unsigned long long>(s.finishedJobs),
                s.externalLoad, s.spotPrice, s.qosTracked, s.costTotal);
            out << row;
        }
    }
    return static_cast<bool>(out);
}

/** @return the --timeline mode process exit status (0 / 1 / 2). */
int
inspectTimeline(const std::string& path, const std::string& csvPath)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }

    std::vector<TimelineRun> runs;
    std::string line;
    std::size_t badLines = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        obs::TimelineSample sample;
        if (obs::sampleFromJsonLine(line, &sample)) {
            if (runs.empty())
                runs.push_back({"(unlabeled run)", {}});
            runs.back().samples.push_back(std::move(sample));
            continue;
        }
        try {
            const obs::JsonValue header = obs::parseJson(line);
            if (header.find("run")) {
                runs.push_back({runLabel(header), {}});
                continue;
            }
        } catch (const std::exception&) {
        }
        ++badLines;
    }

    std::printf("%s: %zu run(s)\n", path.c_str(), runs.size());
    for (const TimelineRun& run : runs) {
        std::printf("\n== %s: %zu sample(s)", run.label.c_str(),
                    run.samples.size());
        if (!run.samples.empty())
            std::printf(", t %.0f..%.0f", run.samples.front().t,
                        run.samples.back().t);
        std::printf(" ==\n");
        if (run.samples.empty())
            continue;
        auto series = [&run](auto member) {
            std::vector<double> values;
            values.reserve(run.samples.size());
            for (const obs::TimelineSample& s : run.samples)
                values.push_back(static_cast<double>(member(s)));
            return values;
        };
        printSeries("instances", series([](const obs::TimelineSample& s) {
                        return s.reservedInstances + s.onDemandInstances +
                            s.spotInstances;
                    }));
        printSeries("utilization",
                    series([](const obs::TimelineSample& s) {
                        return s.utilization;
                    }));
        printSeries("quality p50",
                    series([](const obs::TimelineSample& s) {
                        return s.qualityP50;
                    }));
        printSeries("queue", series([](const obs::TimelineSample& s) {
                        return s.queueLength;
                    }));
        printSeries("running", series([](const obs::TimelineSample& s) {
                        return s.runningJobs;
                    }));
        printSeries("ext load", series([](const obs::TimelineSample& s) {
                        return s.externalLoad;
                    }));
        printSeries("spot price",
                    series([](const obs::TimelineSample& s) {
                        return s.spotPrice;
                    }));
        printSeries("cost", series([](const obs::TimelineSample& s) {
                        return s.costTotal;
                    }));
    }
    if (badLines > 0)
        std::printf("\n%zu unrecognized line(s) skipped\n", badLines);

    if (!csvPath.empty()) {
        if (!writeTimelineCsv(csvPath, runs)) {
            std::fprintf(stderr, "cannot write %s\n", csvPath.c_str());
            return 2;
        }
        std::printf("\nwrote CSV: %s\n", csvPath.c_str());
    }
    return runs.empty() ? 1 : 0;
}

// --- Request-span timelines ---------------------------------------------

/** One span or instantaneous event from a request-span JSONL file. */
struct SpanRecord
{
    bool isEvent = false;
    std::string name;
    std::uint64_t id = 0;     ///< 0 for events
    std::uint64_t parent = 0; ///< parent span id (0 = root)
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    double simTime = 0.0; ///< events only
    std::string detail;
};

bool
spanFromJsonLine(const std::string& line, std::uint64_t* trace,
                 SpanRecord* out)
{
    obs::JsonValue v;
    try {
        v = obs::parseJson(line);
    } catch (const std::exception&) {
        return false;
    }
    const obs::JsonValue* span = v.find("span");
    const obs::JsonValue* event = v.find("event");
    const obs::JsonValue* traceField = v.find("trace");
    if ((!span && !event) || !traceField)
        return false;
    *trace = static_cast<std::uint64_t>(traceField->numberOr(0.0));
    out->isEvent = event != nullptr;
    out->name = span ? span->stringOr("?") : event->stringOr("?");
    auto u64 = [&v](const char* key) -> std::uint64_t {
        const obs::JsonValue* f = v.find(key);
        return static_cast<std::uint64_t>(f ? f->numberOr(0.0) : 0.0);
    };
    out->id = u64("id");
    out->parent = u64("parent");
    out->startNs = out->isEvent ? u64("ns") : u64("startNs");
    out->durNs = u64("durNs");
    if (const obs::JsonValue* t = v.find("t"))
        out->simTime = t->numberOr(0.0);
    if (const obs::JsonValue* detail = v.find("detail"))
        out->detail = detail->stringOr("");
    return true;
}

/** Prints @p record and its children, indented by @p depth. */
void
printSpanTree(const std::map<std::uint64_t, std::vector<SpanRecord>>&
                  children,
              const SpanRecord& record, std::uint64_t baseNs, int depth)
{
    // Signed: http.accept_wait starts before the root's first byte.
    const double offsetMs =
        static_cast<double>(static_cast<std::int64_t>(record.startNs) -
                            static_cast<std::int64_t>(baseNs)) /
        1e6;
    if (record.isEvent) {
        std::printf("  %8.3f ms %*s* %s", offsetMs, 2 * depth, "",
                    record.name.c_str());
        std::printf("  t=%.2f", record.simTime);
    } else {
        std::printf("  %8.3f ms %*s%-14s %8.3f ms", offsetMs, 2 * depth,
                    "", record.name.c_str(),
                    static_cast<double>(record.durNs) / 1e6);
    }
    if (!record.detail.empty())
        std::printf("  (%s)", record.detail.c_str());
    std::printf("\n");
    const auto it = children.find(record.id);
    if (record.isEvent || it == children.end())
        return;
    for (const SpanRecord& child : it->second)
        printSpanTree(children, child, baseNs, depth + 1);
}

/** @return the --spans mode process exit status (0 / 1 / 2). */
int
inspectSpans(const std::string& path, std::size_t maxTraces)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }

    // Admission mirrors BoundedTimelines: full record sets for the N
    // smallest trace ids only, aggregates over everything.
    std::set<std::uint64_t> seen;
    std::map<std::uint64_t, std::vector<SpanRecord>> traces;
    struct NameAgg
    {
        std::size_t count = 0;
        double totalMs = 0.0;
        double maxMs = 0.0;
    };
    std::map<std::string, NameAgg> byName;
    std::size_t spanCount = 0;
    std::size_t eventCount = 0;
    std::size_t badLines = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::uint64_t trace = 0;
        SpanRecord record;
        if (!spanFromJsonLine(line, &trace, &record)) {
            ++badLines;
            continue;
        }
        if (record.isEvent) {
            ++eventCount;
        } else {
            ++spanCount;
            NameAgg& agg = byName[record.name];
            ++agg.count;
            const double ms = static_cast<double>(record.durNs) / 1e6;
            agg.totalMs += ms;
            agg.maxMs = std::max(agg.maxMs, ms);
        }
        auto it = traces.find(trace);
        if (it != traces.end()) {
            it->second.push_back(std::move(record));
            continue;
        }
        if (!seen.insert(trace).second || maxTraces == 0)
            continue;
        if (traces.size() >= maxTraces) {
            auto largest = std::prev(traces.end());
            if (trace >= largest->first)
                continue;
            traces.erase(largest);
        }
        traces[trace].push_back(std::move(record));
    }

    std::printf("%s: %zu trace(s), %zu span(s), %zu event(s)\n",
                path.c_str(), seen.size(), spanCount, eventCount);
    if (badLines > 0)
        std::printf("%zu unrecognized line(s) skipped\n", badLines);
    if (spanCount + eventCount == 0)
        return 1;

    if (!byName.empty()) {
        std::printf("\n span durations by name:\n");
        std::printf("  %-16s %8s %12s %12s %12s\n", "span", "count",
                    "mean ms", "max ms", "total ms");
        for (const auto& [name, agg] : byName) {
            std::printf("  %-16s %8zu %12.3f %12.3f %12.3f\n",
                        name.c_str(), agg.count,
                        agg.totalMs / static_cast<double>(agg.count),
                        agg.maxMs, agg.totalMs);
        }
    }

    for (const auto& [trace, records] : traces) {
        // Index records by parent span id; roots have parent 0. Spans
        // are written at close (depth-first post-order), so re-sort
        // every sibling list by start time.
        std::map<std::uint64_t, std::vector<SpanRecord>> children;
        for (const SpanRecord& record : records)
            children[record.parent].push_back(record);
        for (auto& [parent, siblings] : children) {
            std::sort(siblings.begin(), siblings.end(),
                      [](const SpanRecord& a, const SpanRecord& b) {
                          return a.startNs < b.startNs;
                      });
        }
        const auto roots = children.find(0);
        if (roots == children.end())
            continue;
        std::printf("\n== trace %llu ==\n",
                    static_cast<unsigned long long>(trace));
        for (const SpanRecord& root : roots->second)
            printSpanTree(children, root, roots->second.front().startNs,
                          0);
    }
    if (seen.size() > traces.size())
        std::printf("\n(%zu further trace(s) not rendered; raise "
                    "--traces)\n",
                    seen.size() - traces.size());
    return 0;
}

/** @return the --chrome mode process exit status (0 / 2). */
int
convertChrome(const std::string& inPath, const std::string& outPath)
{
    std::ifstream in(inPath, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", inPath.c_str());
        return 2;
    }
    std::ofstream out(outPath, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 2;
    }
    std::string error;
    if (!obs::writeChromeTrace(in, out, &error)) {
        std::fprintf(stderr, "%s: %s\n", inPath.c_str(), error.c_str());
        return 2;
    }
    if (!error.empty())
        std::fprintf(stderr, "%s\n", error.c_str());
    std::printf("wrote %s (open chrome://tracing or ui.perfetto.dev "
                "and load it)\n",
                outPath.c_str());
    return 0;
}

/** "mean +/- ci95" cell text for one reduced metric object. */
std::string
aggCellText(const obs::JsonValue& cell, const char* metric)
{
    const obs::JsonValue* m = cell.find(metric);
    if (!m)
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g +/- %.3g",
                  m->find("mean") ? m->find("mean")->numberOr(0.0) : 0.0,
                  m->find("ci95") ? m->find("ci95")->numberOr(0.0) : 0.0);
    return buf;
}

/** @return the --agg mode process exit status (0 / 1 / 2). */
int
inspectAggregates(const std::string& reportPath)
{
    std::ifstream in(reportPath, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", reportPath.c_str());
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    obs::JsonValue doc;
    try {
        doc = obs::parseJson(buffer.str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: malformed JSON: %s\n",
                     reportPath.c_str(), e.what());
        return 2;
    }
    const obs::JsonValue* schema = doc.find("schemaVersion");
    const obs::JsonValue* sweeps = doc.find("sweeps");
    if (!sweeps || sweeps->type != obs::JsonValue::Type::Array) {
        std::fprintf(stderr,
                     "%s: no `sweeps` array (schemaVersion %.0f; "
                     "sweep aggregates need a v4+ report from a bench "
                     "run with --seeds/--ci)\n",
                     reportPath.c_str(),
                     schema ? schema->numberOr(0.0) : 0.0);
        return 1;
    }
    if (sweeps->array.empty()) {
        std::printf("%s: report has an empty `sweeps` array (bench ran "
                    "without --seeds/--ci)\n",
                    reportPath.c_str());
        return 0;
    }
    for (const obs::JsonValue& sweep : sweeps->array) {
        const obs::JsonValue* seedList = sweep.find("seed_list");
        std::printf("== sweep %s: %.0f seed(s) from base %.0f ==\n",
                    sweep.find("title")
                        ? sweep.find("title")->stringOr("?").c_str()
                        : "?",
                    sweep.find("seeds")
                        ? sweep.find("seeds")->numberOr(0.0)
                        : 0.0,
                    sweep.find("base_seed")
                        ? sweep.find("base_seed")->numberOr(0.0)
                        : 0.0);
        if (seedList &&
            seedList->type == obs::JsonValue::Type::Array) {
            std::printf("   seeds:");
            for (const obs::JsonValue& s : seedList->array)
                std::printf(" %.0f", s.numberOr(0.0));
            std::printf("\n");
        }
        const obs::JsonValue* cells = sweep.find("cells");
        if (!cells || cells->type != obs::JsonValue::Type::Array) {
            std::fprintf(stderr, "  (sweep has no cells array)\n");
            return 1;
        }
        std::printf("   %-28s %-22s %-22s %-22s %-20s\n", "cell",
                    "cost_$", "util", "quality_p95", "qos_viol");
        for (const obs::JsonValue& cell : cells->array) {
            const obs::JsonValue* label = cell.find("label");
            std::printf("   %-28s %-22s %-22s %-22s %-20s\n",
                        label ? label->stringOr("?").c_str() : "?",
                        aggCellText(cell, "cost").c_str(),
                        aggCellText(cell, "utilization").c_str(),
                        aggCellText(cell, "quality_p95").c_str(),
                        aggCellText(cell, "qos_violations").c_str());
        }
        const obs::JsonValue* tel = sweep.find("telemetry");
        if (tel) {
            const auto num = [&](const char* name) {
                const obs::JsonValue* v = tel->find(name);
                return v ? v->numberOr(0.0) : 0.0;
            };
            std::printf("   telemetry: %.0f runs, %.2fs wall, "
                        "%.2f Mev/s, trace cache %.0f/%.0f hits, "
                        "%.0f resets / %.0f engines\n",
                        num("runs"), num("wall_sec"),
                        num("events_per_sec") / 1e6,
                        num("trace_cache_hits"),
                        num("trace_cache_hits") +
                            num("trace_cache_misses"),
                        num("engine_resets"), num("engines_created"));
        }
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--agg") == 0) {
        if (argc != 3) {
            std::fprintf(stderr, "usage: %s --agg <report.json>\n",
                         argv[0]);
            return 2;
        }
        return inspectAggregates(argv[2]);
    }
    if (argc >= 2 && std::strcmp(argv[1], "--diff") == 0) {
        if (argc != 4) {
            std::fprintf(stderr, "usage: %s --diff <a.jsonl> <b.jsonl>\n",
                         argv[0]);
            return 2;
        }
        return diffTraces(argv[2], argv[3]);
    }
    if (argc >= 2 && std::strcmp(argv[1], "--timeline") == 0) {
        std::string timelinePath;
        std::string csvPath;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--timeline-csv") == 0 &&
                i + 1 < argc) {
                csvPath = argv[++i];
            } else if (timelinePath.empty()) {
                timelinePath = argv[i];
            } else {
                timelinePath.clear();
                break;
            }
        }
        if (timelinePath.empty()) {
            // Fall back to the HCLOUD_TIMELINE-named default.
            timelinePath = hcloud::obs::envTimelinePath();
        }
        if (timelinePath.empty()) {
            std::fprintf(stderr,
                         "usage: %s --timeline <timeline.jsonl> "
                         "[--timeline-csv <out.csv>]\n",
                         argv[0]);
            return 2;
        }
        return inspectTimeline(timelinePath, csvPath);
    }
    if (argc >= 2 && std::strcmp(argv[1], "--spans") == 0) {
        std::string spansPath;
        std::size_t maxTraces = 5;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--traces") == 0 && i + 1 < argc) {
                maxTraces = static_cast<std::size_t>(
                    std::strtoull(argv[++i], nullptr, 10));
            } else if (spansPath.empty()) {
                spansPath = argv[i];
            } else {
                spansPath.clear();
                break;
            }
        }
        if (spansPath.empty()) {
            std::fprintf(stderr,
                         "usage: %s --spans <spans.jsonl> [--traces N]\n",
                         argv[0]);
            return 2;
        }
        return inspectSpans(spansPath, maxTraces);
    }
    if (argc >= 2 && std::strcmp(argv[1], "--chrome") == 0) {
        if (argc != 4) {
            std::fprintf(stderr,
                         "usage: %s --chrome <spans.jsonl> <out.json>\n",
                         argv[0]);
            return 2;
        }
        return convertChrome(argv[2], argv[3]);
    }
    std::string path;
    std::size_t max_jobs = 5;
    std::size_t max_instances = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            max_jobs = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--instances") == 0 &&
                   i + 1 < argc) {
            max_instances = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (path.empty()) {
            path = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: %s <trace.jsonl> [--jobs N] "
                         "[--instances N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        // Fall back to the HCLOUD_TRACE-named default, matching benches.
        path = hcloud::obs::envTracePath();
        if (path.empty()) {
            std::fprintf(stderr,
                         "usage: %s <trace.jsonl> [--jobs N] "
                         "[--instances N]\n",
                         argv[0]);
            return 2;
        }
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }

    std::vector<RunSummary> runs;
    std::string line;
    std::size_t line_no = 0;
    std::size_t bad_lines = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        obs::TraceEvent event;
        if (obs::eventFromJsonLine(line, &event)) {
            if (runs.empty())
                runs.emplace_back("(unlabeled run)", max_jobs,
                                  max_instances);
            runs.back().add(event);
            continue;
        }
        // Not an event: a {"run":...} header starts a new section.
        try {
            const obs::JsonValue header = obs::parseJson(line);
            if (header.find("run")) {
                runs.emplace_back(runLabel(header), max_jobs,
                                  max_instances);
                continue;
            }
        } catch (const std::exception&) {
        }
        std::fprintf(stderr, "line %zu: unrecognized, skipped\n",
                     line_no);
        ++bad_lines;
    }

    std::printf("%s: %zu run(s)\n", path.c_str(), runs.size());
    for (const RunSummary& run : runs)
        summarizeRun(run);
    if (bad_lines > 0)
        std::printf("\n%zu unrecognized line(s) skipped\n", bad_lines);
    return 0;
}
