/**
 * @file
 * Inspect a trace JSONL file produced by the benches (--trace flag or
 * the HCLOUD_TRACE environment knob): per-run event counts, per-job and
 * per-instance timelines, and a decision-reason summary.
 *
 * Usage: trace_inspect <trace.jsonl> [--jobs N] [--instances N]
 *   --jobs / --instances bound how many per-entity timelines are printed
 *   (default 5 each; 0 suppresses the section).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace hcloud;

struct RunSection
{
    std::string label;
    std::vector<obs::TraceEvent> events;
};

/** "strategy/scenario[, unprofiled]" from a {"run":{...}} header line. */
std::string
runLabel(const obs::JsonValue& header)
{
    const obs::JsonValue* run = header.find("run");
    if (!run)
        return "(unlabeled run)";
    std::string label = run->find("strategy")
        ? run->find("strategy")->stringOr("?")
        : "?";
    label += " / ";
    label += run->find("scenario") ? run->find("scenario")->stringOr("?")
                                   : "?";
    if (run->find("profiling") && !run->find("profiling")->boolOr(true))
        label += " (unprofiled)";
    return label;
}

void
printTimeline(const char* kind, std::uint64_t id,
              const std::vector<const obs::TraceEvent*>& events)
{
    std::printf("  %s %llu:\n", kind,
                static_cast<unsigned long long>(id));
    for (const obs::TraceEvent* e : events) {
        std::printf("    t=%10.2f  %-22s", e->time, toString(e->kind));
        if (e->reason != obs::DecisionReason::None)
            std::printf("  reason=%s", toString(e->reason));
        if (e->value != 0.0)
            std::printf("  value=%g", e->value);
        if (!e->detail.empty())
            std::printf("  (%s)", e->detail.c_str());
        std::printf("\n");
    }
}

void
summarizeRun(const RunSection& run, std::size_t maxJobs,
             std::size_t maxInstances)
{
    std::printf("\n== %s: %zu events ==\n", run.label.c_str(),
                run.events.size());
    if (run.events.empty())
        return;

    // Decision-reason histogram.
    std::map<obs::DecisionReason, std::size_t> reasons;
    std::map<obs::EventKind, std::size_t> kinds;
    std::map<sim::JobId, std::vector<const obs::TraceEvent*>> byJob;
    std::map<sim::InstanceId, std::vector<const obs::TraceEvent*>>
        byInstance;
    for (const obs::TraceEvent& e : run.events) {
        ++kinds[e.kind];
        if (e.reason != obs::DecisionReason::None)
            ++reasons[e.reason];
        if (e.job != 0)
            byJob[e.job].push_back(&e);
        if (e.instance != 0)
            byInstance[e.instance].push_back(&e);
    }

    std::printf(" event kinds:\n");
    for (const auto& [kind, count] : kinds)
        std::printf("  %-22s %zu\n", toString(kind), count);

    if (!reasons.empty()) {
        std::printf(" decision reasons:\n");
        for (const auto& [reason, count] : reasons)
            std::printf("  %-26s %zu\n", toString(reason), count);
    }

    if (maxJobs > 0 && !byJob.empty()) {
        std::printf(" job timelines (%zu of %zu):\n",
                    std::min(maxJobs, byJob.size()), byJob.size());
        std::size_t shown = 0;
        for (const auto& [id, events] : byJob) {
            if (shown++ >= maxJobs)
                break;
            printTimeline("job", id, events);
        }
    }

    if (maxInstances > 0 && !byInstance.empty()) {
        std::printf(" instance timelines (%zu of %zu):\n",
                    std::min(maxInstances, byInstance.size()),
                    byInstance.size());
        std::size_t shown = 0;
        for (const auto& [id, events] : byInstance) {
            if (shown++ >= maxInstances)
                break;
            printTimeline("instance", id, events);
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    std::size_t max_jobs = 5;
    std::size_t max_instances = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            max_jobs = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--instances") == 0 &&
                   i + 1 < argc) {
            max_instances = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (path.empty()) {
            path = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: %s <trace.jsonl> [--jobs N] "
                         "[--instances N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        // Fall back to the HCLOUD_TRACE-named default, matching benches.
        path = hcloud::obs::envTracePath();
        if (path.empty()) {
            std::fprintf(stderr,
                         "usage: %s <trace.jsonl> [--jobs N] "
                         "[--instances N]\n",
                         argv[0]);
            return 2;
        }
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }

    std::vector<RunSection> runs;
    std::string line;
    std::size_t line_no = 0;
    std::size_t bad_lines = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        obs::TraceEvent event;
        if (obs::eventFromJsonLine(line, &event)) {
            if (runs.empty())
                runs.push_back({"(unlabeled run)", {}});
            runs.back().events.push_back(std::move(event));
            continue;
        }
        // Not an event: a {"run":...} header starts a new section.
        try {
            const obs::JsonValue header = obs::parseJson(line);
            if (header.find("run")) {
                runs.push_back({runLabel(header), {}});
                continue;
            }
        } catch (const std::exception&) {
        }
        std::fprintf(stderr, "line %zu: unrecognized, skipped\n",
                     line_no);
        ++bad_lines;
    }

    std::printf("%s: %zu run(s)\n", path.c_str(), runs.size());
    for (const RunSection& run : runs)
        summarizeRun(run, max_jobs, max_instances);
    if (bad_lines > 0)
        std::printf("\n%zu unrecognized line(s) skipped\n", bad_lines);
    return 0;
}
