/**
 * @file
 * Inspect a trace JSONL file produced by the benches (--trace flag or
 * the HCLOUD_TRACE environment knob): per-run event counts, per-job and
 * per-instance timelines, and a decision-reason summary.
 *
 * The file is streamed line by line: per-run state is bounded aggregates
 * (kind/reason histograms, distinct-id sets, and complete timelines for
 * only the N smallest job/instance ids), never the full event vector, so
 * sink-backed traces far larger than memory inspect fine.
 *
 * Usage: trace_inspect <trace.jsonl> [--jobs N] [--instances N]
 *   --jobs / --instances bound how many per-entity timelines are printed
 *   (default 5 each; 0 suppresses the section).
 *
 * Cross-run diff mode: trace_inspect --diff <a.jsonl> <b.jsonl>
 *   Streams both files in lockstep and reports the first divergent event
 *   (index, time, kind, ids, reason on each side) plus per-reason
 *   histogram deltas over the complete files. Exit status: 0 when the
 *   event streams are identical, 1 when they diverge, 2 on usage or I/O
 *   errors. Intended for pinpointing where two supposedly-deterministic
 *   runs (different thread counts, before/after a kernel change) first
 *   disagree.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace hcloud;

/**
 * Complete timelines for the N smallest entity ids seen so far.
 *
 * An id is admitted at its FIRST event (when it is not yet in the seen
 * set) and only if it is among the N smallest; admitting it may evict
 * the current largest id. Eviction only ever shrinks the map's maximum,
 * so an evicted id can never re-qualify — every timeline still in the
 * map at end of stream is exact, identical to what a full in-memory
 * grouping would print for the N smallest ids.
 */
template <typename Id>
struct BoundedTimelines
{
    std::size_t capacity = 0;
    std::set<Id> seen;
    std::map<Id, std::vector<obs::TraceEvent>> timelines;

    void add(Id id, const obs::TraceEvent& event)
    {
        auto it = timelines.find(id);
        if (it != timelines.end()) {
            it->second.push_back(event);
            return;
        }
        if (!seen.insert(id).second || capacity == 0)
            return; // already evicted (partial) or timelines suppressed
        if (timelines.size() >= capacity) {
            auto largest = std::prev(timelines.end());
            if (id >= largest->first)
                return;
            timelines.erase(largest);
        }
        timelines[id].push_back(event);
    }
};

struct RunSummary
{
    std::string label;
    std::size_t events = 0;
    std::map<obs::EventKind, std::size_t> kinds;
    std::map<obs::DecisionReason, std::size_t> reasons;
    BoundedTimelines<sim::JobId> jobs;
    BoundedTimelines<sim::InstanceId> instances;

    explicit RunSummary(std::string runLabel, std::size_t maxJobs,
                        std::size_t maxInstances)
        : label(std::move(runLabel))
    {
        jobs.capacity = maxJobs;
        instances.capacity = maxInstances;
    }

    void add(const obs::TraceEvent& event)
    {
        ++events;
        ++kinds[event.kind];
        if (event.reason != obs::DecisionReason::None)
            ++reasons[event.reason];
        if (event.job != 0)
            jobs.add(event.job, event);
        if (event.instance != 0)
            instances.add(event.instance, event);
    }
};

/** "strategy/scenario[, unprofiled]" from a {"run":{...}} header line. */
std::string
runLabel(const obs::JsonValue& header)
{
    const obs::JsonValue* run = header.find("run");
    if (!run)
        return "(unlabeled run)";
    std::string label = run->find("strategy")
        ? run->find("strategy")->stringOr("?")
        : "?";
    label += " / ";
    label += run->find("scenario") ? run->find("scenario")->stringOr("?")
                                   : "?";
    if (run->find("profiling") && !run->find("profiling")->boolOr(true))
        label += " (unprofiled)";
    return label;
}

void
printTimeline(const char* kind, std::uint64_t id,
              const std::vector<obs::TraceEvent>& events)
{
    std::printf("  %s %llu:\n", kind,
                static_cast<unsigned long long>(id));
    for (const obs::TraceEvent& e : events) {
        std::printf("    t=%10.2f  %-22s", e.time, toString(e.kind));
        if (e.reason != obs::DecisionReason::None)
            std::printf("  reason=%s", toString(e.reason));
        if (e.value != 0.0)
            std::printf("  value=%g", e.value);
        if (!e.detail.empty())
            std::printf("  (%s)", e.detail.c_str());
        std::printf("\n");
    }
}

void
summarizeRun(const RunSummary& run)
{
    std::printf("\n== %s: %zu events ==\n", run.label.c_str(),
                run.events);
    if (run.events == 0)
        return;

    std::printf(" event kinds:\n");
    for (const auto& [kind, count] : run.kinds)
        std::printf("  %-22s %zu\n", toString(kind), count);

    if (!run.reasons.empty()) {
        std::printf(" decision reasons:\n");
        for (const auto& [reason, count] : run.reasons)
            std::printf("  %-26s %zu\n", toString(reason), count);
    }

    if (run.jobs.capacity > 0 && !run.jobs.seen.empty()) {
        std::printf(" job timelines (%zu of %zu):\n",
                    run.jobs.timelines.size(), run.jobs.seen.size());
        for (const auto& [id, events] : run.jobs.timelines)
            printTimeline("job", id, events);
    }

    if (run.instances.capacity > 0 && !run.instances.seen.empty()) {
        std::printf(" instance timelines (%zu of %zu):\n",
                    run.instances.timelines.size(),
                    run.instances.seen.size());
        for (const auto& [id, events] : run.instances.timelines)
            printTimeline("instance", id, events);
    }
}

// --- Cross-run diff -----------------------------------------------------

/**
 * Streams trace events from one JSONL file, skipping run headers and
 * unrecognized lines (counted, like the summary path).
 */
struct EventReader
{
    std::ifstream in;
    std::string path;
    std::size_t lineNo = 0;
    std::size_t badLines = 0;

    explicit EventReader(const std::string& file)
        : in(file, std::ios::binary), path(file)
    {
    }

    bool ok() const { return static_cast<bool>(in); }

    /** Next event, or false at end of file. */
    bool next(obs::TraceEvent* out)
    {
        std::string line;
        while (std::getline(in, line)) {
            ++lineNo;
            if (line.empty())
                continue;
            if (obs::eventFromJsonLine(line, out))
                return true;
            try {
                const obs::JsonValue header = obs::parseJson(line);
                if (header.find("run"))
                    continue; // section header, not an event
            } catch (const std::exception&) {
            }
            ++badLines;
        }
        return false;
    }
};

bool
sameEvent(const obs::TraceEvent& a, const obs::TraceEvent& b)
{
    return a.time == b.time && a.kind == b.kind &&
           a.severity == b.severity && a.reason == b.reason &&
           a.job == b.job && a.instance == b.instance &&
           a.value == b.value && a.detail == b.detail;
}

void
printDiffEvent(const char* side, const obs::TraceEvent& e)
{
    std::printf("  %s: t=%.6f  %-22s job=%llu instance=%llu", side, e.time,
                toString(e.kind), static_cast<unsigned long long>(e.job),
                static_cast<unsigned long long>(e.instance));
    if (e.reason != obs::DecisionReason::None)
        std::printf("  reason=%s", toString(e.reason));
    if (e.value != 0.0)
        std::printf("  value=%g", e.value);
    if (!e.detail.empty())
        std::printf("  (%s)", e.detail.c_str());
    std::printf("\n");
}

/** @return the diff-mode process exit status (0 / 1 / 2). */
int
diffTraces(const std::string& pathA, const std::string& pathB)
{
    EventReader a(pathA);
    EventReader b(pathB);
    if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "cannot open %s\n",
                     (!a.ok() ? pathA : pathB).c_str());
        return 2;
    }

    std::map<obs::DecisionReason, std::size_t> reasonsA;
    std::map<obs::DecisionReason, std::size_t> reasonsB;
    std::size_t index = 0;
    bool diverged = false;
    std::size_t divergedAt = 0;
    obs::TraceEvent firstA, firstB;
    bool haveA = false, haveB = false;

    for (;;) {
        obs::TraceEvent ea, eb;
        const bool gotA = a.next(&ea);
        const bool gotB = b.next(&eb);
        if (gotA && ea.reason != obs::DecisionReason::None)
            ++reasonsA[ea.reason];
        if (gotB && eb.reason != obs::DecisionReason::None)
            ++reasonsB[eb.reason];
        if (!gotA && !gotB)
            break;
        if (!diverged && (!gotA || !gotB || !sameEvent(ea, eb))) {
            diverged = true;
            divergedAt = index;
            haveA = gotA;
            haveB = gotB;
            if (gotA)
                firstA = ea;
            if (gotB)
                firstB = eb;
            // Keep draining both files so the histogram deltas below
            // cover the complete runs, not just the shared prefix.
        }
        ++index;
    }

    if (!diverged) {
        std::printf("identical: %zu events\n", index);
        return 0;
    }

    std::printf("diverged at event %zu:\n", divergedAt);
    if (haveA)
        printDiffEvent("a", firstA);
    else
        std::printf("  a: <end of %s>\n", pathA.c_str());
    if (haveB)
        printDiffEvent("b", firstB);
    else
        std::printf("  b: <end of %s>\n", pathB.c_str());

    // Per-reason histogram deltas over the full files.
    std::set<obs::DecisionReason> all_reasons;
    for (const auto& [reason, count] : reasonsA)
        all_reasons.insert(reason);
    for (const auto& [reason, count] : reasonsB)
        all_reasons.insert(reason);
    bool any_delta = false;
    for (obs::DecisionReason reason : all_reasons) {
        const std::size_t ca = reasonsA.count(reason) ? reasonsA[reason]
                                                      : 0;
        const std::size_t cb = reasonsB.count(reason) ? reasonsB[reason]
                                                      : 0;
        if (ca == cb)
            continue;
        if (!any_delta) {
            std::printf(" decision-reason deltas (a -> b):\n");
            any_delta = true;
        }
        std::printf("  %-26s %zu -> %zu (%+lld)\n", toString(reason), ca,
                    cb,
                    static_cast<long long>(cb) - static_cast<long long>(ca));
    }
    if (!any_delta)
        std::printf(" decision-reason histograms match\n");
    if (a.badLines + b.badLines > 0) {
        std::printf(" %zu unrecognized line(s) skipped\n",
                    a.badLines + b.badLines);
    }
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--diff") == 0) {
        if (argc != 4) {
            std::fprintf(stderr, "usage: %s --diff <a.jsonl> <b.jsonl>\n",
                         argv[0]);
            return 2;
        }
        return diffTraces(argv[2], argv[3]);
    }
    std::string path;
    std::size_t max_jobs = 5;
    std::size_t max_instances = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            max_jobs = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--instances") == 0 &&
                   i + 1 < argc) {
            max_instances = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (path.empty()) {
            path = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: %s <trace.jsonl> [--jobs N] "
                         "[--instances N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        // Fall back to the HCLOUD_TRACE-named default, matching benches.
        path = hcloud::obs::envTracePath();
        if (path.empty()) {
            std::fprintf(stderr,
                         "usage: %s <trace.jsonl> [--jobs N] "
                         "[--instances N]\n",
                         argv[0]);
            return 2;
        }
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }

    std::vector<RunSummary> runs;
    std::string line;
    std::size_t line_no = 0;
    std::size_t bad_lines = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        obs::TraceEvent event;
        if (obs::eventFromJsonLine(line, &event)) {
            if (runs.empty())
                runs.emplace_back("(unlabeled run)", max_jobs,
                                  max_instances);
            runs.back().add(event);
            continue;
        }
        // Not an event: a {"run":...} header starts a new section.
        try {
            const obs::JsonValue header = obs::parseJson(line);
            if (header.find("run")) {
                runs.emplace_back(runLabel(header), max_jobs,
                                  max_instances);
                continue;
            }
        } catch (const std::exception&) {
        }
        std::fprintf(stderr, "line %zu: unrecognized, skipped\n",
                     line_no);
        ++bad_lines;
    }

    std::printf("%s: %zu run(s)\n", path.c_str(), runs.size());
    for (const RunSummary& run : runs)
        summarizeRun(run);
    if (bad_lines > 0)
        std::printf("\n%zu unrecognized line(s) skipped\n", bad_lines);
    return 0;
}
