/**
 * @file
 * Compare all five provisioning strategies on one scenario.
 *
 * Usage: compare_strategies [static|low|high] [loadScale] [--no-profiling]
 *
 * Prints per-strategy performance (batch completion, LC tail latency),
 * normalized performance, cost under AWS-style pricing, reserved
 * utilization, and acquisition counters — the at-a-glance view behind
 * Figures 4, 5, 10 and 11 of the paper.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "cloud/pricing.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int
main(int argc, char** argv)
{
    using namespace hcloud;

    workload::ScenarioKind kind = workload::ScenarioKind::HighVariability;
    double load_scale = 1.0;
    bool profiling = true;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "static")) {
            kind = workload::ScenarioKind::Static;
        } else if (!std::strcmp(argv[i], "low")) {
            kind = workload::ScenarioKind::LowVariability;
        } else if (!std::strcmp(argv[i], "high")) {
            kind = workload::ScenarioKind::HighVariability;
        } else if (!std::strcmp(argv[i], "--no-profiling")) {
            profiling = false;
        } else {
            load_scale = std::atof(argv[i]);
        }
    }

    exp::ExperimentOptions opt;
    opt.loadScale = load_scale;
    exp::Runner runner(opt);

    const workload::TraceStats stats = runner.trace(kind).stats();
    std::printf("scenario %s  scale %.2f  jobs %zu  cores [%0.f, %0.f] "
                "(%.1fx)  profiling=%s\n",
                toString(kind), load_scale, stats.jobCount, stats.minCores,
                stats.maxCores, stats.maxMinCoreRatio,
                profiling ? "on" : "off");

    const cloud::AwsStylePricing pricing;
    std::vector<std::vector<std::string>> rows;
    for (core::StrategyKind s : core::kAllStrategies) {
        const core::RunResult& r = runner.run(kind, s, profiling);
        const cloud::CostBreakdown cost = r.cost(pricing);
        rows.push_back({
            r.strategy,
            exp::fmt(r.makespan / 60.0, 1),
            exp::fmt(r.batchTurnaroundMin.mean(), 1),
            exp::fmt(r.batchPerfNorm.mean(), 2),
            exp::fmt(r.lcLatencyUs.mean(), 0),
            exp::fmt(r.lcLatencyUs.empty()
                         ? 0.0
                         : r.lcLatencyUs.quantile(0.95), 0),
            exp::fmt(r.lcPerfNorm.mean(), 2),
            exp::fmt(cost.total(), 1),
            exp::fmt(100.0 * r.reservedUtilizationAvg, 0),
            exp::fmt(r.onDemandAllocated.average(0.0, r.makespan), 0),
            exp::fmt(r.onDemandUsed.average(0.0, r.makespan), 0),
            exp::fmt(r.billing.onDemandBilledHours(r.makespan), 0),
            std::to_string(r.acquisitions),
            std::to_string(r.immediateReleases),
            std::to_string(r.queuedJobs),
            std::to_string(r.reschedules),
            exp::fmt(r.queueWaits.empty() ? 0.0
                                          : r.queueWaits.quantile(0.95), 0),
            exp::fmt(r.spinUpWaits.empty()
                         ? 0.0
                         : r.spinUpWaits.quantile(0.95), 0),
        });
    }
    exp::printTable({"strategy", "makespan(m)", "batch(m)", "bPerf",
                     "lcP99(us)", "lcP99.95", "lcPerf", "cost($)",
                     "resUtil%", "odCap", "odUsed", "odHrs", "acq", "immRel",
                     "queued", "resched", "qW95", "suW95"},
                    rows);
    return 0;
}
