/**
 * @file
 * Trace export: generate a workload scenario and dump it as CSV for
 * external analysis or for replay against other simulators.
 *
 * Columns: id, kind, class, arrival_s, cores, mem_per_core_gb,
 * duration_s, lc_load_rps, lc_qos_us, q, sensitivity (10 columns).
 *
 * Usage: trace_export [static|low|high] [seed] > trace.csv
 */

#include <cstdio>
#include <cstring>

#include "workload/scenario.hpp"

int
main(int argc, char** argv)
{
    using namespace hcloud;

    workload::ScenarioConfig cfg;
    cfg.kind = workload::ScenarioKind::HighVariability;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "static"))
            cfg.kind = workload::ScenarioKind::Static;
        else if (!std::strcmp(argv[1], "low"))
            cfg.kind = workload::ScenarioKind::LowVariability;
    }
    if (argc > 2)
        cfg.seed = std::strtoull(argv[2], nullptr, 10);

    const workload::ArrivalTrace trace = workload::generateScenario(cfg);

    std::printf("id,kind,class,arrival_s,cores,mem_per_core_gb,"
                "duration_s,lc_load_rps,lc_qos_us,q");
    for (std::size_t r = 0; r < workload::kNumResources; ++r)
        std::printf(",c_%s", workload::resourceName(r));
    std::printf("\n");

    for (const workload::JobSpec& j : trace.jobs()) {
        const bool batch =
            j.jobClass() == workload::JobClass::Batch;
        std::printf("%llu,%s,%s,%.3f,%.0f,%.2f,%.1f,%.0f,%.0f,%.4f",
                    static_cast<unsigned long long>(j.id),
                    toString(j.kind), toString(j.jobClass()), j.arrival,
                    j.coresIdeal, j.memoryPerCore,
                    batch ? j.idealDuration : j.lcLifetime, j.lcLoadRps,
                    j.lcQosUs, j.trueQuality());
        for (std::size_t r = 0; r < workload::kNumResources; ++r)
            std::printf(",%.4f", j.sensitivity[r]);
        std::printf("\n");
    }

    const workload::TraceStats s = trace.stats();
    std::fprintf(stderr,
                 "# %s: %zu jobs, cores [%.0f, %.0f], "
                 "batch:LC %.1f in jobs\n",
                 toString(cfg.kind), s.jobCount, s.minCores, s.maxCores,
                 s.batchLcJobRatio);
    return 0;
}
