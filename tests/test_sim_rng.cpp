/**
 * @file
 * Unit and property tests for the deterministic RNG and its child
 * streams.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace hcloud::sim {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.uniform() == b.uniform();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ChildStreamsAreStableByLabel)
{
    Rng root(42);
    Rng a = root.child("spin_up");
    Rng b = root.child("spin_up");
    EXPECT_EQ(a.seed(), b.seed());
    EXPECT_NE(root.child("spin_up").seed(), root.child("quality").seed());
}

TEST(Rng, ChildDerivationDoesNotConsumeParentState)
{
    Rng a(7);
    Rng b(7);
    (void)a.child("x");
    (void)a.child("y");
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, IntegerChildKeysProduceDistinctStreams)
{
    Rng root(42);
    EXPECT_NE(root.child(std::uint64_t{1}).seed(),
              root.child(std::uint64_t{2}).seed());
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMatchesMoments)
{
    Rng rng(9);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalQuantileCalibration)
{
    // lognormalFromQuantiles(median, p95) must reproduce those quantiles.
    Rng rng(11);
    SampleSet samples;
    for (int i = 0; i < 40000; ++i)
        samples.add(rng.lognormalFromQuantiles(15.0, 120.0));
    EXPECT_NEAR(samples.quantile(0.5), 15.0, 1.0);
    EXPECT_NEAR(samples.quantile(0.95), 120.0, 12.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    OnlineStats stats;
    for (int i = 0; i < 30000; ++i)
        stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(Rng, BernoulliFrequencyAndEdgeCases)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BetaBoundedWithCorrectMean)
{
    Rng rng(19);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.beta(8.0, 2.0);
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
        stats.add(x);
    }
    EXPECT_NEAR(stats.mean(), 0.8, 0.02);
}

TEST(Rng, ParetoRespectsScale)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(29);
    const std::vector<double> weights = {1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 30000; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
    EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

/** Determinism must hold across every seed, not just one. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, ChildStreamsDeterministicAndDecorrelated)
{
    const std::uint64_t seed = GetParam();
    Rng a = Rng(seed).child("alpha");
    Rng b = Rng(seed).child("alpha");
    Rng c = Rng(seed).child("beta");
    double max_abs_diff = 0.0;
    int identical_to_c = 0;
    for (int i = 0; i < 200; ++i) {
        const double va = a.uniform();
        const double vb = b.uniform();
        const double vc = c.uniform();
        max_abs_diff = std::max(max_abs_diff, std::abs(va - vb));
        identical_to_c += va == vc;
    }
    EXPECT_EQ(max_abs_diff, 0.0);
    EXPECT_LT(identical_to_c, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 1337ull,
                                           0xffffffffffffffffull));

} // namespace
} // namespace hcloud::sim
