/**
 * @file
 * Unit tests for the instance-type catalog and the pricing models.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cloud/instance_type.hpp"
#include "cloud/pricing.hpp"

namespace hcloud::cloud {
namespace {

TEST(InstanceTypeCatalog, DefaultCatalogSortedBySize)
{
    const auto& types = InstanceTypeCatalog::defaultCatalog().types();
    ASSERT_FALSE(types.empty());
    for (std::size_t i = 1; i < types.size(); ++i)
        EXPECT_LE(types[i - 1].vcpus, types[i].vcpus);
}

TEST(InstanceTypeCatalog, ByNameAndUnknownThrows)
{
    const auto& catalog = InstanceTypeCatalog::defaultCatalog();
    EXPECT_EQ(catalog.byName("st8").vcpus, 8);
    EXPECT_EQ(catalog.byName("m16").family, Family::HighMem);
    EXPECT_THROW(catalog.byName("nope"), std::out_of_range);
}

TEST(InstanceTypeCatalog, SmallestFittingHonorsCoresAndMemory)
{
    const auto& catalog = InstanceTypeCatalog::defaultCatalog();
    const InstanceType* t = catalog.smallestFitting(3.0, 4.0);
    ASSERT_NE(t, nullptr);
    EXPECT_GE(t->vcpus, 3);
    EXPECT_GE(t->memoryGb, 4.0);
    // Memory-hungry demand must land in the highmem family.
    const InstanceType* hm = catalog.smallestFitting(4.0, 24.0);
    ASSERT_NE(hm, nullptr);
    EXPECT_EQ(hm->family, Family::HighMem);
    // Nothing fits absurd demand.
    EXPECT_EQ(catalog.smallestFitting(64.0, 1.0), nullptr);
}

TEST(InstanceTypeCatalog, SmallestFittingIsCheapest)
{
    const auto& catalog = InstanceTypeCatalog::defaultCatalog();
    // 2 cores with modest memory: highcpu (cheapest) qualifies.
    const InstanceType* t = catalog.smallestFitting(2.0, 1.5);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->family, Family::HighCpu);
}

TEST(InstanceTypeCatalog, FamilyFilterAndLargest)
{
    const auto& catalog = InstanceTypeCatalog::defaultCatalog();
    const InstanceType* t =
        catalog.smallestFitting(2.0, 1.0, Family::Standard);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->family, Family::Standard);
    EXPECT_EQ(catalog.largest(Family::Standard).name, "st16");
    EXPECT_TRUE(catalog.largest(Family::Standard).fullServer());
}

TEST(AwsStylePricing, RatioMathAndUpfront)
{
    const auto& st16 =
        InstanceTypeCatalog::defaultCatalog().byName("st16");
    AwsStylePricing pricing(2.74);
    EXPECT_DOUBLE_EQ(pricing.onDemandHourly(st16), 0.8);
    EXPECT_NEAR(pricing.reservedEffectiveHourly(st16), 0.8 / 2.74, 1e-12);
    // Upfront = effective hourly x one 1-year term.
    EXPECT_NEAR(pricing.reservedUpfront(st16),
                (0.8 / 2.74) * 365.0 * 24.0, 1e-6);
    EXPECT_TRUE(pricing.offersReserved());
}

TEST(AwsStylePricing, RatioSweepMonotone)
{
    const auto& st16 =
        InstanceTypeCatalog::defaultCatalog().byName("st16");
    double prev = 1e18;
    for (double ratio : {0.5, 1.0, 2.0, 4.0}) {
        AwsStylePricing pricing(ratio);
        const double hourly = pricing.reservedEffectiveHourly(st16);
        EXPECT_LT(hourly, prev);
        prev = hourly;
    }
}

TEST(GcePricing, DiscountTiers)
{
    // Full-month usage averages the 1.0/0.8/0.6/0.4 quartile schedule.
    EXPECT_DOUBLE_EQ(GceSustainedUsePricing::discountMultiplier(0.0), 1.0);
    EXPECT_DOUBLE_EQ(GceSustainedUsePricing::discountMultiplier(0.25),
                     1.0);
    EXPECT_NEAR(GceSustainedUsePricing::discountMultiplier(0.5), 0.9,
                1e-12);
    EXPECT_NEAR(GceSustainedUsePricing::discountMultiplier(1.0), 0.7,
                1e-12);
    // Monotone non-increasing.
    double prev = 1.0;
    for (double f = 0.05; f <= 1.0; f += 0.05) {
        const double m = GceSustainedUsePricing::discountMultiplier(f);
        EXPECT_LE(m, prev + 1e-12);
        prev = m;
    }
}

TEST(GcePricing, ChargeAppliesDiscountOverWindow)
{
    const auto& st1 = InstanceTypeCatalog::defaultCatalog().byName("st1");
    GceSustainedUsePricing pricing;
    // Full window usage: 30% discount.
    EXPECT_NEAR(pricing.onDemandCharge(st1, 100.0, 100.0),
                0.05 * 100.0 * 0.7, 1e-9);
    // Quarter usage: list price.
    EXPECT_NEAR(pricing.onDemandCharge(st1, 25.0, 100.0), 0.05 * 25.0,
                1e-9);
    EXPECT_FALSE(pricing.offersReserved());
}

TEST(AzurePricing, PlainOnDemand)
{
    const auto& st2 = InstanceTypeCatalog::defaultCatalog().byName("st2");
    AzureOnDemandPricing pricing;
    EXPECT_FALSE(pricing.offersReserved());
    EXPECT_DOUBLE_EQ(pricing.onDemandCharge(st2, 10.0, 100.0),
                     0.1 * 10.0);
    // Without reservations, "reserved" usage is priced at list.
    EXPECT_DOUBLE_EQ(pricing.reservedEffectiveHourly(st2), 0.1);
}

} // namespace
} // namespace hcloud::cloud
