/**
 * @file
 * Live metrics stack: ProcessMetrics registry semantics (labels, kinds,
 * sanitization, concurrent publishing), the Prometheus text renderer's
 * escaping and histogram encoding, and the HTTP endpoint end to end over
 * a real loopback socket (routes, bounded reads, clean shutdown).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics_http.hpp"
#include "obs/process_metrics.hpp"
#include "obs/prom_text.hpp"

namespace hcloud {
namespace {

// ---------------------------------------------------------------------------
// Registry

TEST(ProcessMetrics, CountersAndGaugesAreStableAcrossLookups)
{
    obs::ProcessMetrics pm;
    obs::ProcessCounter& c = pm.counter("requests_total", "help");
    c.inc();
    c.inc(2.5);
    EXPECT_EQ(&pm.counter("requests_total"), &c);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);

    obs::ProcessGauge& g = pm.gauge("depth");
    g.set(4.0);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    EXPECT_EQ(&pm.gauge("depth"), &g);
}

TEST(ProcessMetrics, LabelSetsSeparateSeriesAndOrderDoesNotMatter)
{
    obs::ProcessMetrics pm;
    obs::ProcessCounter& ab =
        pm.counter("rpc_total", "", {{"a", "1"}, {"b", "2"}});
    obs::ProcessCounter& ba =
        pm.counter("rpc_total", "", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&ab, &ba) << "label order must not split a series";
    obs::ProcessCounter& other =
        pm.counter("rpc_total", "", {{"a", "1"}, {"b", "3"}});
    EXPECT_NE(&ab, &other);
    EXPECT_EQ(pm.seriesCount(), 2u);
}

TEST(ProcessMetrics, NamesAreSanitizedOnLookup)
{
    obs::ProcessMetrics pm;
    obs::ProcessCounter& dotted = pm.counter("queue.wait-sec");
    EXPECT_EQ(&pm.counter("queue_wait_sec"), &dotted);
    pm.gauge("9lives").set(1.0);
    pm.gauge("").set(2.0);

    const auto families = pm.snapshot();
    for (const auto& f : families)
        EXPECT_TRUE(obs::isValidMetricName(f.name)) << f.name;
}

TEST(ProcessMetrics, KindConflictRenamesDeterministically)
{
    obs::ProcessMetrics pm;
    pm.counter("x").inc();
    // Same name, different kind: renamed instead of corrupting the page
    // with two TYPE lines for one family.
    pm.gauge("x").set(7.0);
    const std::string page = obs::renderPromText(pm);
    EXPECT_NE(page.find("# TYPE x counter"), std::string::npos) << page;
    EXPECT_NE(page.find("# TYPE x_gauge gauge"), std::string::npos)
        << page;
}

TEST(ProcessMetrics, HistogramShardsMergeToExactTotals)
{
    obs::ProcessMetrics pm;
    obs::ProcessHistogram& h =
        pm.histogram("lat_seconds", "", {}, {0.1, 1.0, 10.0});
    constexpr int kThreads = 8;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i)
                h.observe(0.5);
        });
    }
    for (std::thread& t : threads)
        t.join();
    const obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) *
                              kPerThread);
    EXPECT_DOUBLE_EQ(snap.sum, 0.5 * kThreads * kPerThread);
    ASSERT_EQ(snap.bucketCounts.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(snap.bucketCounts[1], snap.count); // all land in le=1.0
}

TEST(ProcessMetrics, ConcurrentCounterIncrementsAreLossless)
{
    obs::ProcessMetrics pm;
    obs::ProcessCounter& c = pm.counter("n_total");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(c.value(),
                     static_cast<double>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Text exposition

TEST(PromText, EscapesLabelValues)
{
    EXPECT_EQ(obs::promEscapeLabelValue("plain"), "plain");
    EXPECT_EQ(obs::promEscapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::promEscapeLabelValue("say \"hi\""),
              "say \\\"hi\\\"");
    EXPECT_EQ(obs::promEscapeLabelValue("two\nlines"), "two\\nlines");
    // All three at once, in order.
    EXPECT_EQ(obs::promEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PromText, EscapesHelpText)
{
    EXPECT_EQ(obs::promEscapeHelp("plain help"), "plain help");
    EXPECT_EQ(obs::promEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
    // Quotes are legal in HELP and must pass through untouched.
    EXPECT_EQ(obs::promEscapeHelp("say \"hi\""), "say \"hi\"");
}

TEST(PromText, NonFiniteValuesUseExpositionLiterals)
{
    EXPECT_EQ(obs::promFormatValue(std::nan("")), "NaN");
    EXPECT_EQ(obs::promFormatValue(
                  std::numeric_limits<double>::infinity()),
              "+Inf");
    EXPECT_EQ(obs::promFormatValue(
                  -std::numeric_limits<double>::infinity()),
              "-Inf");
    EXPECT_EQ(obs::promFormatValue(2.5), "2.5");
}

TEST(PromText, RendersEscapedSeriesAndNonFiniteGauges)
{
    obs::ProcessMetrics pm;
    pm.gauge("weird", "line1\nline2",
             {{"path", "C:\\tmp"}, {"quote", "a\"b"}, {"nl", "x\ny"}})
        .set(std::nan(""));
    pm.gauge("inf_gauge").set(std::numeric_limits<double>::infinity());
    pm.gauge("ninf_gauge").set(
        -std::numeric_limits<double>::infinity());
    const std::string page = obs::renderPromText(pm);
    EXPECT_NE(page.find("# HELP weird line1\\nline2"), std::string::npos)
        << page;
    EXPECT_NE(page.find("weird{nl=\"x\\ny\",path=\"C:\\\\tmp\","
                        "quote=\"a\\\"b\"} NaN"),
              std::string::npos)
        << page;
    EXPECT_NE(page.find("inf_gauge +Inf\n"), std::string::npos) << page;
    EXPECT_NE(page.find("ninf_gauge -Inf\n"), std::string::npos) << page;
    // Every line is a comment or a `name{...} value` sample line.
    EXPECT_EQ(page.back(), '\n');
}

TEST(PromText, EmptyRegistryRendersEmptyValidPage)
{
    obs::ProcessMetrics pm;
    EXPECT_EQ(obs::renderPromText(pm), "");
}

TEST(PromText, HistogramRendersCumulativeBuckets)
{
    obs::ProcessMetrics pm;
    obs::ProcessHistogram& h =
        pm.histogram("lat_seconds", "latency", {}, {0.1, 1.0});
    h.observe(0.05); // le=0.1
    h.observe(0.5);  // le=1.0
    h.observe(5.0);  // overflow
    const std::string page = obs::renderPromText(pm);
    EXPECT_NE(page.find("# TYPE lat_seconds histogram"),
              std::string::npos)
        << page;
    EXPECT_NE(page.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
              std::string::npos)
        << page;
    EXPECT_NE(page.find("lat_seconds_bucket{le=\"1\"} 2\n"),
              std::string::npos)
        << page;
    EXPECT_NE(page.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos)
        << page;
    EXPECT_NE(page.find("lat_seconds_count 3\n"), std::string::npos)
        << page;
    EXPECT_NE(page.find("lat_seconds_sum 5.55\n"), std::string::npos)
        << page;
}

// ---------------------------------------------------------------------------
// HTTP endpoint

/** Blocking one-shot HTTP client against 127.0.0.1:@p port. */
std::string
httpRequest(std::uint16_t port, const std::string& request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char* data = request.data();
    std::size_t remaining = request.size();
    while (remaining > 0) {
        const ssize_t n = ::send(fd, data, remaining, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ADD_FAILURE() << "send failed: " << errno;
            break;
        }
        data += n;
        remaining -= static_cast<std::size_t>(n);
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(MetricsHttp, ServesMetricsAndHealthOnEphemeralPort)
{
    obs::ProcessMetrics pm;
    pm.counter("scraped_total", "a counter").inc(3.0);
    obs::MetricsHttpServer server(pm);
    std::string error;
    ASSERT_TRUE(server.start(0, &error)) << error;
    ASSERT_TRUE(server.running());
    ASSERT_NE(server.boundPort(), 0);

    const std::string metrics = httpRequest(
        server.boundPort(), "GET /metrics HTTP/1.1\r\n"
                            "Host: localhost\r\nConnection: close\r\n"
                            "\r\n");
    EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find(
                  "text/plain; version=0.0.4; charset=utf-8"),
              std::string::npos);
    EXPECT_NE(metrics.find("scraped_total 3\n"), std::string::npos)
        << metrics;
    // The scrape itself is counted, into this server's registry.
    EXPECT_EQ(server.scrapeCount(), 1u);
    EXPECT_NE(obs::renderPromText(pm).find(
                  "hcloud_exposition_scrapes_total 1"),
              std::string::npos);

    const std::string health = httpRequest(
        server.boundPort(), "GET /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok\n"), std::string::npos);

    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.boundPort(), 0);
}

TEST(MetricsHttp, QueryStringsRouteLikeBarePaths)
{
    obs::ProcessMetrics pm;
    obs::MetricsHttpServer server(pm);
    ASSERT_TRUE(server.start(0));
    const std::string response = httpRequest(
        server.boundPort(), "GET /metrics?format=text HTTP/1.1\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(MetricsHttp, UnknownPathsAndMethodsAreRejected)
{
    obs::ProcessMetrics pm;
    obs::MetricsHttpServer server(pm);
    ASSERT_TRUE(server.start(0));
    const std::string missing = httpRequest(
        server.boundPort(), "GET /nope HTTP/1.1\r\n\r\n");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
    const std::string post = httpRequest(
        server.boundPort(), "POST /metrics HTTP/1.1\r\n"
                            "Content-Length: 0\r\n\r\n");
    EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
    EXPECT_EQ(server.scrapeCount(), 0u);
}

TEST(MetricsHttp, SurvivesMalformedRequests)
{
    obs::ProcessMetrics pm;
    obs::MetricsHttpServer server(pm);
    ASSERT_TRUE(server.start(0));
    httpRequest(server.boundPort(), "garbage\r\n\r\n");
    httpRequest(server.boundPort(), "\r\n\r\n");
    // The loop must still serve after junk connections.
    const std::string ok = httpRequest(
        server.boundPort(), "GET /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(ok.find("200 OK"), std::string::npos);
}

TEST(MetricsHttp, StartStopCyclesAreCleanAndIdempotent)
{
    obs::ProcessMetrics pm;
    obs::MetricsHttpServer server(pm);
    ASSERT_TRUE(server.start(0));
    const std::uint16_t first = server.boundPort();
    server.stop();
    server.stop(); // idempotent
    ASSERT_TRUE(server.start(0));
    EXPECT_NE(server.boundPort(), 0);
    const std::string ok = httpRequest(
        server.boundPort(), "GET /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(ok.find("200 OK"), std::string::npos);
    server.stop();
    (void)first;
}

TEST(MetricsHttp, ScrapesObserveConcurrentPublishing)
{
    obs::ProcessMetrics pm;
    obs::ProcessCounter& c = pm.counter("work_total");
    obs::MetricsHttpServer server(pm);
    ASSERT_TRUE(server.start(0));
    std::thread publisher([&c] {
        for (int i = 0; i < 5000; ++i)
            c.inc();
    });
    // Scrape while the publisher is running: must parse and must never
    // crash or tear (TSan validates the absence of data races).
    for (int i = 0; i < 3; ++i) {
        const std::string page = httpRequest(
            server.boundPort(), "GET /metrics HTTP/1.1\r\n\r\n");
        EXPECT_NE(page.find("work_total"), std::string::npos);
    }
    publisher.join();
    const std::string page = httpRequest(
        server.boundPort(), "GET /metrics HTTP/1.1\r\n\r\n");
    EXPECT_NE(page.find("work_total 5000\n"), std::string::npos) << page;
}

} // namespace
} // namespace hcloud
