/**
 * @file
 * Engine tests: end-to-end runs of each strategy on a reduced-scale
 * scenario, lifecycle invariants, determinism, and configuration knobs.
 */

#include <gtest/gtest.h>

#include "cloud/pricing.hpp"
#include "core/engine.hpp"
#include "workload/scenario.hpp"

namespace hcloud::core {
namespace {

workload::ArrivalTrace
smallTrace(workload::ScenarioKind kind =
               workload::ScenarioKind::HighVariability,
           double scale = 0.15, std::uint64_t seed = 42)
{
    workload::ScenarioConfig cfg;
    cfg.kind = kind;
    cfg.seed = seed;
    cfg.loadScale = scale;
    return workload::generateScenario(cfg);
}

/** End-to-end lifecycle invariants must hold for every strategy. */
class EngineStrategySweep : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(EngineStrategySweep, RunsToCompletion)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    config.seed = 7;
    Engine engine(config);
    const RunResult r = engine.run(trace, GetParam(), "test");

    EXPECT_EQ(r.jobCount, trace.jobs().size());
    EXPECT_EQ(r.failedJobs, 0u);
    // The scenario's ideal length is ~2h; anything sane finishes < 4h.
    EXPECT_GT(r.makespan, sim::hours(1.5));
    EXPECT_LT(r.makespan, sim::hours(4.0));
    EXPECT_GT(r.batchPerfNorm.count(), 0u);
    EXPECT_GT(r.lcPerfNorm.count(), 0u);
    // Normalized performance is a fraction.
    EXPECT_LE(r.batchPerfNorm.max(), 1.0);
    EXPECT_GT(r.meanPerfNorm(), 0.2);
    // Cost is positive under any model.
    const cloud::AwsStylePricing pricing;
    EXPECT_GT(r.cost(pricing).total(), 0.0);
}

TEST_P(EngineStrategySweep, DeterministicGivenSeed)
{
    const workload::ArrivalTrace trace = smallTrace(
        workload::ScenarioKind::Static, 0.1);
    EngineConfig config;
    config.seed = 11;
    const RunResult a = Engine(config).run(trace, GetParam(), "a");
    const RunResult b = Engine(config).run(trace, GetParam(), "b");
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.meanPerfNorm(), b.meanPerfNorm());
    EXPECT_EQ(a.acquisitions, b.acquisitions);
    const cloud::AwsStylePricing pricing;
    EXPECT_DOUBLE_EQ(a.cost(pricing).total(), b.cost(pricing).total());
}

INSTANTIATE_TEST_SUITE_P(Strategies, EngineStrategySweep,
                         ::testing::Values(StrategyKind::SR,
                                           StrategyKind::OdF,
                                           StrategyKind::OdM,
                                           StrategyKind::HF,
                                           StrategyKind::HM));

TEST(Engine, SrSizesForPeakAndNeverBuysOnDemand)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    Engine engine(config);
    const RunResult r = engine.run(trace, StrategyKind::SR, "sr");
    EXPECT_EQ(r.acquisitions, 0u);
    EXPECT_GT(r.billing.reservedCount(), 0);
    // Pool covers the peak plus overprovisioning.
    const double pool_cores = r.billing.reservedCount() * 16.0;
    EXPECT_GE(pool_cores, trace.stats().maxCores);
    EXPECT_DOUBLE_EQ(r.cost(cloud::AwsStylePricing()).onDemand, 0.0);
}

TEST(Engine, OnDemandStrategiesHaveNoReservedPool)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    for (StrategyKind kind : {StrategyKind::OdF, StrategyKind::OdM}) {
        const RunResult r = Engine(config).run(trace, kind, "od");
        EXPECT_EQ(r.billing.reservedCount(), 0);
        EXPECT_GT(r.acquisitions, 0u);
    }
}

TEST(Engine, HybridPoolSizedForMinimumLoad)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    const RunResult r = Engine(config).run(trace, StrategyKind::HF, "hf");
    const double pool_cores = r.billing.reservedCount() * 16.0;
    EXPECT_GE(pool_cores, trace.stats().minCores - 16.0);
    EXPECT_LT(pool_cores, trace.stats().maxCores);
    EXPECT_GT(r.acquisitions, 0u);
    EXPECT_FALSE(r.softLimitHistory.empty());
    EXPECT_GT(r.reservedUtilizationAvg, 0.3);
}

TEST(Engine, OdFUsesOnlyFullServers)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    const RunResult r = Engine(config).run(trace, StrategyKind::OdF, "f");
    for (const auto& [id, tl] : r.instanceTimelines)
        EXPECT_EQ(tl.type, "st16");
}

TEST(Engine, OdMUsesMixedSizes)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    const RunResult r = Engine(config).run(trace, StrategyKind::OdM, "m");
    bool saw_small = false;
    for (const auto& [id, tl] : r.instanceTimelines)
        saw_small |= tl.type != "st16" && tl.type != "m16";
    EXPECT_TRUE(saw_small);
}

TEST(Engine, ZeroSpinUpRemovesWaits)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    config.spinUpFixed = 0.0;
    const RunResult r = Engine(config).run(trace, StrategyKind::OdF, "z");
    EXPECT_DOUBLE_EQ(r.spinUpWaits.max(), 0.0);
}

TEST(Engine, ProfilingOffStillCompletesButSlower)
{
    const workload::ArrivalTrace trace =
        smallTrace(workload::ScenarioKind::Static, 0.1);
    EngineConfig with;
    EngineConfig without;
    without.useProfiling = false;
    const RunResult a = Engine(with).run(trace, StrategyKind::SR, "p");
    const RunResult b = Engine(without).run(trace, StrategyKind::SR, "n");
    EXPECT_EQ(b.failedJobs, 0u);
    EXPECT_GT(a.meanPerfNorm(), b.meanPerfNorm())
        << "profiling information must improve performance";
}

TEST(Engine, BillingMatchesAcquisitionCount)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    const RunResult r = Engine(config).run(trace, StrategyKind::HM, "b");
    EXPECT_EQ(r.billing.onDemandAcquisitions(), r.acquisitions);
}

TEST(Engine, AllocationSeriesRecorded)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    const RunResult r = Engine(config).run(trace, StrategyKind::HF, "s");
    EXPECT_FALSE(r.reservedAllocated.empty());
    EXPECT_FALSE(r.onDemandAllocated.empty());
    EXPECT_FALSE(r.reservedUtilization.empty());
    EXPECT_FALSE(r.instanceTimelines.empty());
    EXPECT_FALSE(r.breakdown.empty());
    // Reserved capacity is flat at the pool size.
    const double cap0 = r.reservedAllocated.at(100.0);
    const double cap1 = r.reservedAllocated.at(r.makespan / 2.0);
    EXPECT_DOUBLE_EQ(cap0, cap1);
}

TEST(Engine, OutcomesCoverEveryJob)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    const RunResult r = Engine(config).run(trace, StrategyKind::HM, "o");
    EXPECT_EQ(r.outcomes.size(), trace.jobs().size());
}

/**
 * The exact event count of a fixed-seed run is part of the determinism
 * contract: a kernel or caching change that schedules one extra event
 * (or drops one) changes simulated behaviour even if the aggregates
 * happen to match. Update the pinned value only alongside a deliberate
 * behaviour change, and say so in the commit.
 */
TEST(Engine, EventsProcessedPinnedForFixedSeed)
{
    const workload::ArrivalTrace trace =
        smallTrace(workload::ScenarioKind::Static, 0.1);
    EngineConfig config;
    config.seed = 11;
    const RunResult r = Engine(config).run(trace, StrategyKind::HM, "pin");
    EXPECT_EQ(r.telemetry.eventsProcessed, 8172u);
}

/**
 * No scheduled callback may spill to the heap: the event-queue inline
 * buffer is sized for the engine's largest capture, and this pin makes
 * capture growth fail loudly instead of silently reintroducing
 * per-event allocations.
 */
TEST(Engine, EventCallbacksStayInline)
{
    const workload::ArrivalTrace trace = smallTrace();
    EngineConfig config;
    config.seed = 7;
    for (StrategyKind kind :
         {StrategyKind::SR, StrategyKind::OdF, StrategyKind::OdM,
          StrategyKind::HF, StrategyKind::HM}) {
        const RunResult r = Engine(config).run(trace, kind, "inline");
        EXPECT_EQ(r.telemetry.callbackHeapAllocs, 0u)
            << "a scheduling capture outgrew kEventCallbackCapacity for "
            << toString(kind);
    }
}

} // namespace
} // namespace hcloud::core
