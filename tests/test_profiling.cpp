/**
 * @file
 * Tests for the Quasar substrate: matrix factorization, classification
 * accuracy, signature caching and profiling delays.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "profiling/matrix_factorization.hpp"
#include "profiling/quasar.hpp"
#include "sim/rng.hpp"
#include "workload/archetypes.hpp"

namespace hcloud::profiling {
namespace {

TEST(MatrixFactorization, RecoversLowRankStructure)
{
    // Build a rank-2 matrix and check the factorization reconstructs
    // held-out entries from sparse observations.
    const std::size_t cols = 8;
    sim::Rng rng(3);
    std::vector<std::vector<double>> rows;
    std::vector<double> u1(cols);
    std::vector<double> u2(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        u1[c] = rng.uniform(0.0, 1.0);
        u2[c] = rng.uniform(0.0, 1.0);
    }
    MfConfig cfg;
    cfg.rank = 4;
    MatrixFactorization mf(cols, cfg, 7);
    for (int r = 0; r < 120; ++r) {
        const double a = rng.uniform(0.0, 1.0);
        std::vector<double> row(cols);
        std::vector<std::pair<std::size_t, double>> entries;
        for (std::size_t c = 0; c < cols; ++c) {
            row[c] = a * u1[c] + (1.0 - a) * u2[c];
            entries.emplace_back(c, row[c]);
        }
        mf.addRow(entries);
        rows.push_back(std::move(row));
    }
    mf.train();
    EXPECT_LT(mf.trainRmse(), 0.05);

    // New rows: observe 3 entries, predict the rest.
    double err = 0.0;
    int count = 0;
    for (int trial = 0; trial < 30; ++trial) {
        const double a = rng.uniform(0.0, 1.0);
        std::vector<double> truth(cols);
        for (std::size_t c = 0; c < cols; ++c)
            truth[c] = a * u1[c] + (1.0 - a) * u2[c];
        const std::vector<std::pair<std::size_t, double>> observed = {
            {0, truth[0]}, {3, truth[3]}, {5, truth[5]}};
        const std::vector<double> predicted = mf.completeRow(observed);
        for (std::size_t c = 0; c < cols; ++c) {
            if (c == 0 || c == 3 || c == 5)
                continue;
            err += std::abs(predicted[c] - truth[c]);
            ++count;
        }
    }
    EXPECT_LT(err / count, 0.12);
}

TEST(MatrixFactorization, ObservedEntriesOverridePredictions)
{
    MfConfig cfg;
    MatrixFactorization mf(4, cfg, 1);
    mf.addRow({{0, 0.5}, {1, 0.5}, {2, 0.5}, {3, 0.5}});
    mf.train();
    const auto row = mf.completeRow({{1, 0.93}});
    EXPECT_DOUBLE_EQ(row[1], 0.93);
}

TEST(Classifier, BootstrapBuildsLibrary)
{
    ClassifierConfig cfg;
    cfg.referenceJobs = 60;
    WorkloadClassifier classifier(cfg);
    classifier.bootstrap();
    EXPECT_EQ(classifier.libraryRows(), 60u);
    EXPECT_LT(classifier.trainRmse(), 0.12);
    // Idempotent.
    classifier.bootstrap();
    EXPECT_EQ(classifier.libraryRows(), 60u);
}

TEST(Quasar, EstimateCloseToTruth)
{
    QuasarConfig cfg;
    Quasar quasar(cfg);
    sim::Rng rng(5);
    double sens_err = 0.0;
    int entries = 0;
    for (int i = 0; i < 40; ++i) {
        workload::JobSpec spec;
        spec.kind = workload::kAllAppKinds[i % 6];
        spec.sensitivity = workload::generateSensitivity(spec.kind, rng);
        spec.coresIdeal = 4.0;
        spec.memoryPerCore = 2.0 + 0.05 * i;
        const Estimate& e = quasar.estimate(spec);
        for (std::size_t r = 0; r < workload::kNumResources; ++r) {
            sens_err += std::abs(e.sensitivity[r] - spec.sensitivity[r]);
            ++entries;
        }
        // Estimates are cached per application signature, so a later
        // job inherits the estimate of the first job with its signature;
        // tolerances cover archetype jitter plus observation noise.
        EXPECT_NEAR(e.quality, spec.trueQuality(), 0.32);
        // Cores: conservative, never catastrophically under.
        EXPECT_GE(e.cores, spec.coresIdeal - 2.0);
        EXPECT_LE(e.cores, spec.coresIdeal + 2.0);
    }
    EXPECT_LT(sens_err / entries, 0.17);
}

TEST(Quasar, SignatureCacheSkipsRepeatProfiling)
{
    QuasarConfig cfg;
    Quasar quasar(cfg);
    sim::Rng rng(9);
    workload::JobSpec spec;
    spec.kind = workload::AppKind::Memcached;
    spec.sensitivity = workload::generateSensitivity(spec.kind, rng);
    spec.coresIdeal = 8.0;
    spec.memoryPerCore = 3.5;

    EXPECT_FALSE(quasar.isCached(spec));
    const sim::Duration first = quasar.profilingDelay(spec);
    EXPECT_GE(first, cfg.profileMin);
    EXPECT_LE(first, cfg.profileMax);
    (void)quasar.estimate(spec);
    EXPECT_TRUE(quasar.isCached(spec));
    EXPECT_DOUBLE_EQ(quasar.profilingDelay(spec), 0.0);
    EXPECT_EQ(quasar.classifications(), 1u);
    // Same signature: no reclassification.
    (void)quasar.estimate(spec);
    EXPECT_EQ(quasar.classifications(), 1u);
    // Different size bucket: new signature.
    spec.coresIdeal = 16.0;
    (void)quasar.estimate(spec);
    EXPECT_EQ(quasar.classifications(), 2u);
}

/** Property: estimation accuracy degrades monotonically with noise. */
class NoiseSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(NoiseSweep, QualityEstimateWithinNoiseBand)
{
    QuasarConfig cfg;
    cfg.observationNoise = GetParam();
    Quasar quasar(cfg);
    sim::Rng rng(13);
    double err = 0.0;
    for (int i = 0; i < 30; ++i) {
        workload::JobSpec spec;
        spec.kind = workload::kAllAppKinds[i % 6];
        spec.sensitivity = workload::generateSensitivity(spec.kind, rng);
        spec.coresIdeal = 2.0 + i % 8;
        spec.memoryPerCore = 1.0 + 0.1 * i;
        err += std::abs(quasar.estimate(spec).quality -
                        spec.trueQuality());
    }
    // Tolerance scales with the injected noise.
    EXPECT_LT(err / 30.0, 0.10 + 2.0 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Noise, NoiseSweep,
                         ::testing::Values(0.01, 0.05, 0.11, 0.2));

} // namespace
} // namespace hcloud::profiling
