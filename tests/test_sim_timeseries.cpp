/**
 * @file
 * Unit tests for time-weighted statistics and step series.
 */

#include <gtest/gtest.h>

#include "sim/timeseries.hpp"

namespace hcloud::sim {
namespace {

TEST(TimeWeightedStat, AverageOfPiecewiseConstantSignal)
{
    TimeWeightedStat s(0.0, 2.0);
    s.record(10.0, 4.0); // 2.0 for 10s
    s.record(20.0, 0.0); // 4.0 for 10s
    // signal 0 afterwards
    EXPECT_DOUBLE_EQ(s.average(20.0), 3.0);
    EXPECT_DOUBLE_EQ(s.average(40.0), 1.5);
    EXPECT_DOUBLE_EQ(s.integral(40.0), 60.0);
    EXPECT_DOUBLE_EQ(s.peak(), 4.0);
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(TimeWeightedStat, NonZeroStartTime)
{
    TimeWeightedStat s(100.0, 10.0);
    s.record(110.0, 0.0);
    EXPECT_DOUBLE_EQ(s.average(120.0), 5.0);
}

TEST(StepSeries, AtReturnsLatestBreakpoint)
{
    StepSeries s;
    s.record(0.0, 1.0);
    s.record(10.0, 2.0);
    s.record(20.0, 3.0);
    EXPECT_DOUBLE_EQ(s.at(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(s.at(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.at(9.999), 1.0);
    EXPECT_DOUBLE_EQ(s.at(10.0), 2.0);
    EXPECT_DOUBLE_EQ(s.at(100.0), 3.0);
}

TEST(StepSeries, SameTimeUpdateCollapses)
{
    StepSeries s;
    s.record(5.0, 1.0);
    s.record(5.0, 7.0);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s.at(5.0), 7.0);
}

TEST(StepSeries, ResampleCoversGridInclusive)
{
    StepSeries s;
    s.record(0.0, 1.0);
    s.record(50.0, 2.0);
    const auto grid = s.resample(0.0, 100.0, 5);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_DOUBLE_EQ(grid.front().t, 0.0);
    EXPECT_DOUBLE_EQ(grid.back().t, 100.0);
    EXPECT_DOUBLE_EQ(grid[1].v, 1.0); // t=25
    EXPECT_DOUBLE_EQ(grid[2].v, 2.0); // t=50
    EXPECT_DOUBLE_EQ(grid[4].v, 2.0);
}

TEST(StepSeries, AverageIntegratesSegments)
{
    StepSeries s;
    s.record(0.0, 2.0);
    s.record(10.0, 4.0);
    EXPECT_DOUBLE_EQ(s.average(0.0, 20.0), 3.0);
    EXPECT_DOUBLE_EQ(s.average(5.0, 15.0), 3.0);
    EXPECT_DOUBLE_EQ(s.average(10.0, 20.0), 4.0);
}

TEST(StepSeries, MaxOverWindow)
{
    StepSeries s;
    s.record(0.0, 1.0);
    s.record(10.0, 9.0);
    s.record(20.0, 3.0);
    EXPECT_DOUBLE_EQ(s.maxOver(0.0, 30.0), 9.0);
    // The signal is still 9.0 at t=15 (breakpoint at t=10 rules).
    EXPECT_DOUBLE_EQ(s.maxOver(15.0, 30.0), 9.0);
    EXPECT_DOUBLE_EQ(s.maxOver(20.0, 30.0), 3.0);
}

TEST(StepSeries, EmptySeriesIsZero)
{
    StepSeries s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.at(5.0), 0.0);
}

} // namespace
} // namespace hcloud::sim
