/**
 * @file
 * Unit tests for sensitivity vectors, the Q encoding, archetypes, and the
 * batch/latency performance models.
 */

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "workload/archetypes.hpp"
#include "workload/batch_model.hpp"
#include "workload/latency_model.hpp"
#include "workload/sensitivity.hpp"

namespace hcloud::workload {
namespace {

TEST(QualityScore, BoundsAndExtremes)
{
    ResourceVector zeros{};
    EXPECT_DOUBLE_EQ(qualityScore(zeros), 0.0);
    ResourceVector ones;
    ones.fill(1.0);
    EXPECT_NEAR(qualityScore(ones), 1.0, 1e-12);
}

TEST(QualityScore, DominatedByLargestEntry)
{
    // The order-preserving encoding weighs the largest c_i by 10^18 of
    // ~1.01e18 total: Q tracks max(c) closely.
    ResourceVector v{};
    v[3] = 0.9;
    EXPECT_NEAR(qualityScore(v), 0.9 * (1e18 / 1.0101010101010102e18),
                1e-3);
}

TEST(QualityScore, OrderPreserving)
{
    // Permuting the vector must not change Q (it sorts internally).
    ResourceVector a{0.1, 0.9, 0.3, 0.5, 0.2, 0.4, 0.6, 0.7, 0.8, 0.05};
    ResourceVector b = a;
    std::reverse(b.begin(), b.end());
    EXPECT_DOUBLE_EQ(qualityScore(a), qualityScore(b));
}

TEST(QualityScore, MonotoneInEachEntry)
{
    ResourceVector v;
    v.fill(0.3);
    const double base = qualityScore(v);
    for (std::size_t i = 0; i < kNumResources; ++i) {
        ResourceVector w = v;
        w[i] = 0.8;
        EXPECT_GT(qualityScore(w), base);
    }
}

TEST(SensitivityScalars, Bounds)
{
    ResourceVector v{0.2, 0.8, 0.4, 0.6, 0.1, 0.9, 0.3, 0.5, 0.7, 0.0};
    const double s = interferenceSensitivity(v);
    const double p = pressureScalar(v);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_NEAR(p, 0.45, 1e-12);
}

TEST(Archetypes, MemcachedMoreSensitiveThanHadoop)
{
    const double mc =
        interferenceSensitivity(archetype(AppKind::Memcached));
    const double hadoop =
        interferenceSensitivity(archetype(AppKind::HadoopRecommender));
    EXPECT_GT(mc, hadoop + 0.15);
    EXPECT_GT(qualityScore(archetype(AppKind::Memcached)),
              qualityScore(archetype(AppKind::HadoopRecommender)));
}

TEST(Archetypes, GeneratedVectorsJitterAroundArchetype)
{
    sim::Rng rng(17);
    const ResourceVector& mean = archetype(AppKind::SparkRealtime);
    for (int i = 0; i < 50; ++i) {
        const ResourceVector v =
            generateSensitivity(AppKind::SparkRealtime, rng);
        for (std::size_t r = 0; r < kNumResources; ++r) {
            EXPECT_GE(v[r], 0.02);
            EXPECT_LE(v[r], 0.98);
            EXPECT_NEAR(v[r], mean[r], 0.5);
        }
    }
}

TEST(ResourceNames, AllDefined)
{
    for (std::size_t i = 0; i < kNumResources; ++i)
        EXPECT_STRNE(resourceName(i), "?");
    EXPECT_STREQ(resourceName(kNumResources), "?");
}

TEST(BatchModel, ParallelEfficiency)
{
    EXPECT_DOUBLE_EQ(batch_model::parallelEfficiency(4.0, 8.0), 1.0);
    EXPECT_DOUBLE_EQ(batch_model::parallelEfficiency(8.0, 8.0), 1.0);
    // Extra cores contribute at a reduced rate.
    const double eff = batch_model::parallelEfficiency(16.0, 8.0);
    EXPECT_LT(eff, 1.0);
    EXPECT_GT(eff * 16.0, 8.0);
}

TEST(BatchModel, WorkAndRemaining)
{
    EXPECT_DOUBLE_EQ(batch_model::workDone(4.0, 0.5, 10.0), 20.0);
    EXPECT_DOUBLE_EQ(
        batch_model::estimateRemaining(100.0, 4.0, 0.5, 8.0), 50.0);
    EXPECT_EQ(batch_model::estimateRemaining(100.0, 0.0, 1.0, 8.0),
              sim::kTimeNever);
}

TEST(LatencyModel, MonotoneInLoad)
{
    double prev = 0.0;
    for (double load = 1000.0; load <= 50000.0; load += 1000.0) {
        const double p99 = latency_model::p99Us(load, 4.0, 1.0, 0.0);
        EXPECT_GE(p99, prev);
        prev = p99;
    }
}

TEST(LatencyModel, QualityLossRaisesLatency)
{
    const double good = latency_model::p99Us(25000.0, 4.0, 1.0, 0.0);
    const double bad = latency_model::p99Us(25000.0, 4.0, 0.5, 0.0);
    EXPECT_GT(bad, good);
}

TEST(LatencyModel, PressureFattensTail)
{
    const double calm = latency_model::p99Us(25000.0, 4.0, 1.0, 0.0);
    const double noisy = latency_model::p99Us(25000.0, 4.0, 1.0, 0.5);
    EXPECT_GT(noisy, 2.0 * calm);
}

TEST(LatencyModel, SaturationCappedByTimeout)
{
    const double p99 = latency_model::p99Us(100000.0, 1.0, 0.1, 1.0);
    EXPECT_LE(p99, latency_model::kTimeoutP99Us);
    EXPECT_GT(p99, 10000.0);
}

TEST(LatencyModel, QosTargetHasMargin)
{
    const double iso = latency_model::isolationP99Us(25000.0, 4.0);
    EXPECT_DOUBLE_EQ(latency_model::qosTargetUs(25000.0, 4.0), 2.0 * iso);
}

TEST(LatencyModel, ZeroCapacityIsUnavailable)
{
    EXPECT_GT(latency_model::p99Us(1000.0, 0.0, 1.0, 0.0), 100000.0);
}

} // namespace
} // namespace hcloud::workload
