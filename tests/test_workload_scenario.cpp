/**
 * @file
 * Tests for scenario generation: Table 2 statistics, Figure 3 curves,
 * determinism, and the Figure 16 sensitivity override.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/latency_model.hpp"
#include "workload/scenario.hpp"

namespace hcloud::workload {
namespace {

ArrivalTrace
makeTrace(ScenarioKind kind, std::uint64_t seed = 42,
          double sensitiveFraction = -1.0)
{
    ScenarioConfig cfg;
    cfg.kind = kind;
    cfg.seed = seed;
    cfg.sensitiveFraction = sensitiveFraction;
    return generateScenario(cfg);
}

TEST(TargetCurves, StaticRippleWithinTenPercent)
{
    double lo = 1e18;
    double hi = 0.0;
    for (double t = 0.0; t <= 7200.0; t += 30.0) {
        const double v = targetLoad(ScenarioKind::Static, t);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_NEAR(hi / lo, 1.1, 0.02);
    EXPECT_NEAR(targetLoad(ScenarioKind::Static, 0.0), 854.0, 1.0);
}

TEST(TargetCurves, LowVariabilityPeaksNear900)
{
    double hi = 0.0;
    for (double t = 0.0; t <= 7200.0; t += 30.0)
        hi = std::max(hi, targetLoad(ScenarioKind::LowVariability, t));
    EXPECT_NEAR(hi, 900.0, 10.0);
    EXPECT_NEAR(targetLoad(ScenarioKind::LowVariability, 0.0), 605.0,
                10.0);
}

TEST(TargetCurves, HighVariabilityPeaksNear1226)
{
    double hi = 0.0;
    double lo = 1e18;
    for (double t = 0.0; t <= 7200.0; t += 10.0) {
        const double v = targetLoad(ScenarioKind::HighVariability, t);
        hi = std::max(hi, v);
        lo = std::min(lo, v);
    }
    EXPECT_NEAR(hi, 1226.0, 30.0);
    EXPECT_NEAR(lo, 200.0, 25.0);
}

TEST(TargetCurves, ClassSplitsSumToTotal)
{
    for (ScenarioKind kind : kAllScenarios) {
        for (double t = 0.0; t <= 7200.0; t += 600.0) {
            EXPECT_NEAR(targetBatchLoad(kind, t) + targetLcLoad(kind, t),
                        targetLoad(kind, t), 1e-9);
        }
    }
}

TEST(TargetCurves, LowVarSurgeIsMostlyLatencyCritical)
{
    const double lc_rise =
        targetLcLoad(ScenarioKind::LowVariability, 3600.0) -
        targetLcLoad(ScenarioKind::LowVariability, 0.0);
    const double batch_rise =
        targetBatchLoad(ScenarioKind::LowVariability, 3600.0) -
        targetBatchLoad(ScenarioKind::LowVariability, 0.0);
    EXPECT_GT(lc_rise, 2.0 * batch_rise);
}

TEST(Scenario, DeterministicGivenSeed)
{
    const ArrivalTrace a = makeTrace(ScenarioKind::HighVariability, 7);
    const ArrivalTrace b = makeTrace(ScenarioKind::HighVariability, 7);
    ASSERT_EQ(a.jobs().size(), b.jobs().size());
    for (std::size_t i = 0; i < a.jobs().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.jobs()[i].arrival, b.jobs()[i].arrival);
        EXPECT_DOUBLE_EQ(a.jobs()[i].coresIdeal, b.jobs()[i].coresIdeal);
        EXPECT_EQ(a.jobs()[i].kind, b.jobs()[i].kind);
    }
    const ArrivalTrace c = makeTrace(ScenarioKind::HighVariability, 8);
    EXPECT_NE(a.jobs().size(), c.jobs().size());
}

TEST(Scenario, ArrivalsSortedAndWithinHorizon)
{
    const ArrivalTrace trace = makeTrace(ScenarioKind::Static);
    double prev = 0.0;
    for (const JobSpec& j : trace.jobs()) {
        EXPECT_GE(j.arrival, prev);
        prev = j.arrival;
        EXPECT_LE(j.arrival, 7200.0);
    }
    EXPECT_LE(trace.horizon(), 7200.0 + 1.0);
}

/** Table 2 fidelity, parameterized over the three scenarios. */
struct Table2Row
{
    ScenarioKind kind;
    double maxMinRatio;
    double ratioTolerance;
    double jobRatio;
    double jobRatioTolerance;
};

class Table2Fidelity : public ::testing::TestWithParam<Table2Row>
{
};

TEST_P(Table2Fidelity, MatchesPaperBands)
{
    const Table2Row row = GetParam();
    const TraceStats s = makeTrace(row.kind).stats();
    EXPECT_NEAR(s.maxMinCoreRatio, row.maxMinRatio, row.ratioTolerance);
    EXPECT_NEAR(s.batchLcJobRatio, row.jobRatio, row.jobRatioTolerance);
    // Inter-arrival close to the paper's 1 second.
    EXPECT_GT(s.meanInterArrival, 0.7);
    EXPECT_LT(s.meanInterArrival, 1.8);
    // Ideal completion ~2 hours.
    EXPECT_NEAR(s.idealCompletion, 7200.0, 600.0);
    // Batch delivers more aggregate core demand than LC but same order.
    EXPECT_GT(s.batchLcCoreRatio, 0.6);
    EXPECT_LT(s.batchLcCoreRatio, 2.5);
    EXPECT_GT(s.jobCount, 2000u);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, Table2Fidelity,
    ::testing::Values(
        Table2Row{ScenarioKind::Static, 1.1, 0.15, 4.2, 1.2},
        Table2Row{ScenarioKind::LowVariability, 1.5, 0.25, 3.6, 1.2},
        Table2Row{ScenarioKind::HighVariability, 6.2, 1.5, 4.1, 2.5}));

TEST(Scenario, HighVarJobsShorterThanStatic)
{
    const TraceStats high =
        makeTrace(ScenarioKind::HighVariability).stats();
    EXPECT_LT(high.meanJobDuration, 12.0 * 60.0);
    EXPECT_GT(high.meanJobDuration, 3.0 * 60.0);
}

TEST(Scenario, SensitiveFractionOverride)
{
    auto sensitive_share = [](const ArrivalTrace& trace) {
        std::size_t sensitive = 0;
        for (const JobSpec& j : trace.jobs()) {
            sensitive += j.kind == AppKind::Memcached ||
                j.kind == AppKind::SparkRealtime;
        }
        return static_cast<double>(sensitive) /
            static_cast<double>(trace.jobs().size());
    };
    const double none =
        sensitive_share(makeTrace(ScenarioKind::HighVariability, 42, 0.0));
    const double all =
        sensitive_share(makeTrace(ScenarioKind::HighVariability, 42, 1.0));
    EXPECT_LT(none, 0.05);
    EXPECT_GT(all, 0.60); // trickle filler keeps a small tolerant share
}

TEST(Scenario, LcSpecsWellFormed)
{
    const ArrivalTrace trace = makeTrace(ScenarioKind::LowVariability);
    for (const JobSpec& j : trace.jobs()) {
        if (j.jobClass() != JobClass::LatencyCritical)
            continue;
        EXPECT_GE(j.coresIdeal, 4.0);
        EXPECT_GT(j.lcLoadRps, 0.0);
        EXPECT_GT(j.lcQosUs, 0.0);
        EXPECT_GT(j.lcLifetime, 0.0);
        // Load sized for ~50% utilization at the ideal allocation.
        EXPECT_NEAR(j.lcLoadRps /
                        (j.coresIdeal * latency_model::kRpsPerCore),
                    0.5, 1e-9);
    }
}

TEST(Scenario, LoadScaleShrinksDemand)
{
    ScenarioConfig cfg;
    cfg.kind = ScenarioKind::Static;
    cfg.loadScale = 0.5;
    const TraceStats half = generateScenario(cfg).stats();
    const TraceStats full = makeTrace(ScenarioKind::Static).stats();
    EXPECT_NEAR(half.maxCores / full.maxCores, 0.5, 0.1);
}

} // namespace
} // namespace hcloud::workload
