/**
 * @file
 * Unit tests for the simulation kernel: clock, scheduling, periodic
 * events, run control.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace hcloud::sim {
namespace {

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator s;
    double seen = -1.0;
    s.at(5.0, [&] { seen = s.now(); });
    s.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
    EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, AfterSchedulesRelativeToNow)
{
    Simulator s;
    double seen = -1.0;
    s.at(10.0, [&] { s.after(2.5, [&] { seen = s.now(); }); });
    s.run();
    EXPECT_DOUBLE_EQ(seen, 12.5);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock)
{
    Simulator s;
    std::vector<double> fired;
    for (double t : {1.0, 2.0, 3.0, 4.0})
        s.at(t, [&fired, t] { fired.push_back(t); });
    s.runUntil(2.5);
    EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
    EXPECT_DOUBLE_EQ(s.now(), 2.5);
    s.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilExecutesEventsAtExactBoundary)
{
    Simulator s;
    bool fired = false;
    s.at(2.0, [&] { fired = true; });
    s.runUntil(2.0);
    EXPECT_TRUE(fired);
}

TEST(Simulator, EventsAtSameTimeRunInScheduleOrder)
{
    Simulator s;
    std::vector<int> order;
    s.at(1.0, [&] { order.push_back(1); });
    s.at(1.0, [&] { order.push_back(2); });
    s.at(1.0, [&] { order.push_back(3); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EveryRepeatsUntilCallbackReturnsFalse)
{
    Simulator s;
    int ticks = 0;
    s.every(10.0, [&] { return ++ticks < 5; });
    s.run();
    EXPECT_EQ(ticks, 5);
    EXPECT_DOUBLE_EQ(s.now(), 50.0);
}

TEST(Simulator, EventsCanCancelOtherEvents)
{
    Simulator s;
    bool fired = false;
    EventHandle victim = s.at(2.0, [&] { fired = true; });
    s.at(1.0, [&] { victim.cancel(); });
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CountsEventsRun)
{
    Simulator s;
    for (int i = 0; i < 7; ++i)
        s.at(static_cast<Time>(i), [] {});
    s.run();
    EXPECT_EQ(s.eventsRun(), 7u);
}

TEST(Simulator, ResetClearsClockAndQueue)
{
    Simulator s;
    s.at(3.0, [] {});
    s.runUntil(1.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.now(), 0.0);
    EXPECT_TRUE(s.idle());
    EXPECT_EQ(s.eventsRun(), 0u);
}

TEST(Simulator, StepReturnsFalseWhenIdle)
{
    Simulator s;
    EXPECT_FALSE(s.step());
    s.at(1.0, [] {});
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
}

} // namespace
} // namespace hcloud::sim
