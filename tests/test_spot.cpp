/**
 * @file
 * Tests for the spot-market extension (Section 5.5): price process,
 * bid/interruption mechanics, spot billing, and the HS strategy.
 */

#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "cloud/spot_market.hpp"
#include "core/engine.hpp"
#include "core/hybrid_spot.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "workload/scenario.hpp"

namespace hcloud {
namespace {

const cloud::InstanceType&
typeNamed(const char* name)
{
    return cloud::InstanceTypeCatalog::defaultCatalog().byName(name);
}

TEST(SpotMarket, PricesHoverAroundTheDiscount)
{
    cloud::SpotMarketConfig cfg;
    cfg.spikeInterval = 0.0; // isolate the base process
    cloud::SpotMarket market(cfg, sim::Rng(3));
    sim::OnlineStats fractions;
    for (int i = 1; i <= 2000; ++i)
        fractions.add(market.priceFraction(typeNamed("st16"), i * 30.0));
    EXPECT_NEAR(fractions.mean(), cfg.meanDiscount, 0.04);
    EXPECT_GE(fractions.min(), cfg.minFraction);
    EXPECT_LE(fractions.max(), cfg.maxFraction);
}

TEST(SpotMarket, SpikesPushPriceAboveOnDemand)
{
    cloud::SpotMarketConfig cfg;
    cfg.spikeInterval = 600.0;
    cfg.spikeMagnitude = 0.9;
    cloud::SpotMarket market(cfg, sim::Rng(5));
    double max_fraction = 0.0;
    for (int i = 1; i <= 2000; ++i) {
        max_fraction = std::max(
            max_fraction, market.priceFraction(typeNamed("st16"),
                                               i * 10.0));
    }
    EXPECT_GT(max_fraction, 1.0) << "spikes must cross the on-demand rate";
}

TEST(SpotMarket, ClassesMoveIndependently)
{
    cloud::SpotMarket market(cloud::SpotMarketConfig{}, sim::Rng(7));
    int identical = 0;
    for (int i = 1; i <= 100; ++i) {
        identical += market.priceFraction(typeNamed("st4"), i * 60.0) ==
            market.priceFraction(typeNamed("st16"), i * 60.0);
    }
    EXPECT_LT(identical, 5);
}

TEST(SpotMarket, InterruptionTriggersAboveBid)
{
    cloud::SpotMarket market(cloud::SpotMarketConfig{}, sim::Rng(9));
    const auto& st16 = typeNamed("st16");
    const double price = market.price(st16, 100.0);
    EXPECT_TRUE(market.wouldInterrupt(st16, price - 0.01, 100.0));
    EXPECT_FALSE(market.wouldInterrupt(st16, price + 0.01, 100.0));
}

TEST(Provider, SpotLifecycleAndBilling)
{
    sim::Simulator simulator;
    cloud::CloudProvider provider(simulator,
                                  cloud::ProviderProfile::gce(), {},
                                  sim::Rng(42));
    const auto& st16 = typeNamed("st16");
    // A bid above the price ceiling is never interrupted.
    cloud::Instance* inst = provider.acquireSpot(
        st16, /*bidHourly=*/10.0, nullptr, nullptr);
    EXPECT_TRUE(inst->spot());
    EXPECT_DOUBLE_EQ(inst->spotBid(), 10.0);
    simulator.runUntil(3600.0);
    EXPECT_EQ(inst->state(), cloud::InstanceState::Running);
    provider.release(inst);
    // Spot usage is billed at the locked market fraction (< list).
    const cloud::AwsStylePricing pricing;
    const double cost =
        provider.billing().amortized(pricing, 3600.0).onDemand;
    EXPECT_GT(cost, 0.0);
    EXPECT_LT(cost, st16.onDemandHourly * 1.0)
        << "spot must be cheaper than on-demand for the same hour";
    simulator.run(); // drain the cancelled check chain
}

TEST(Provider, UnderwaterBidInterruptsQuickly)
{
    sim::Simulator simulator;
    cloud::CloudProvider provider(simulator,
                                  cloud::ProviderProfile::gce(), {},
                                  sim::Rng(42));
    cloud::Instance* interrupted = nullptr;
    cloud::Instance* inst = provider.acquireSpot(
        typeNamed("st16"), /*bidHourly=*/0.0001, nullptr,
        [&](cloud::Instance* victim) { interrupted = victim; });
    simulator.runUntil(600.0);
    EXPECT_EQ(interrupted, inst);
    EXPECT_EQ(inst->state(), cloud::InstanceState::Released);
    simulator.run();
}

TEST(HybridSpot, EndToEndCheaperThanHmSimilarPerf)
{
    workload::ScenarioConfig scenario;
    scenario.kind = workload::ScenarioKind::HighVariability;
    scenario.seed = 42;
    scenario.loadScale = 0.3;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario);

    core::EngineConfig config;
    config.seed = 7;
    core::Engine engine(config);
    const core::RunResult hm =
        engine.run(trace, core::StrategyKind::HM, "hm");
    const core::RunResult hs = engine.run(
        trace,
        [](core::EngineContext& ctx) {
            return std::make_unique<core::HybridSpotStrategy>(ctx);
        },
        "hs");

    EXPECT_EQ(hs.strategy, "HS");
    EXPECT_EQ(hs.jobCount, trace.jobs().size());
    EXPECT_EQ(hs.failedJobs, 0u);
    const cloud::AwsStylePricing pricing;
    EXPECT_LT(hs.cost(pricing).total(), hm.cost(pricing).total())
        << "spot capacity must reduce cost";
    EXPECT_GT(hs.meanPerfNorm(), 0.85 * hm.meanPerfNorm())
        << "tolerant batch jobs absorb the interruptions";
}

TEST(HybridSpot, InterruptedJobsStillComplete)
{
    workload::ScenarioConfig scenario;
    scenario.kind = workload::ScenarioKind::Static;
    scenario.seed = 11;
    scenario.loadScale = 0.2;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario);

    core::EngineConfig config;
    config.seed = 11;
    core::Engine engine(config);
    // A hostile market: low bid, frequent spikes.
    core::SpotPolicyConfig spot;
    spot.bidFraction = 0.40;
    const core::RunResult r = engine.run(
        trace,
        [spot](core::EngineContext& ctx) {
            return std::make_unique<core::HybridSpotStrategy>(ctx, spot);
        },
        "hs-hostile");
    EXPECT_EQ(r.failedJobs, 0u)
        << "eviction must resubmit, not lose, jobs";
    EXPECT_EQ(r.jobCount, trace.jobs().size());
}

} // namespace
} // namespace hcloud
