/**
 * @file
 * Unit tests for the billing meter.
 */

#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "cloud/instance_type.hpp"
#include "cloud/pricing.hpp"

namespace hcloud::cloud {
namespace {

const InstanceType&
st16()
{
    return InstanceTypeCatalog::defaultCatalog().byName("st16");
}

const InstanceType&
st4()
{
    return InstanceTypeCatalog::defaultCatalog().byName("st4");
}

TEST(BillingMeter, ReservedPoolAmortizedCharge)
{
    BillingMeter meter;
    meter.setReservedPool(st16(), 10);
    AwsStylePricing pricing(2.0);
    const CostBreakdown cost = meter.amortized(pricing, 3600.0);
    // 10 instances x (0.8/2) $/h x 1 h.
    EXPECT_NEAR(cost.reserved, 10 * 0.4, 1e-9);
    EXPECT_DOUBLE_EQ(cost.onDemand, 0.0);
}

TEST(BillingMeter, OnDemandMinimumAndRounding)
{
    BillingMeter meter;
    meter.onDemandAcquired(1, st4(), 0.0);
    meter.onDemandReleased(1, 10.0); // 10 s -> minimum 60 s billed
    EXPECT_NEAR(meter.onDemandBilledHours(3600.0), 60.0 / 3600.0, 1e-9);

    BillingMeter meter2;
    meter2.onDemandAcquired(1, st4(), 0.0);
    meter2.onDemandReleased(1, 61.0); // rounds up to 120 s
    EXPECT_NEAR(meter2.onDemandBilledHours(3600.0), 120.0 / 3600.0, 1e-9);
}

TEST(BillingMeter, OpenRecordsBilledToEnd)
{
    BillingMeter meter;
    meter.onDemandAcquired(7, st4(), 0.0);
    // Never released: billed until the query time.
    EXPECT_NEAR(meter.onDemandBilledHours(7200.0), 2.0, 1e-9);
}

TEST(BillingMeter, AmortizedOnDemandUsesPerTypeAggregation)
{
    BillingMeter meter;
    meter.onDemandAcquired(1, st4(), 0.0);
    meter.onDemandReleased(1, 3600.0);
    meter.onDemandAcquired(2, st16(), 0.0);
    meter.onDemandReleased(2, 3600.0);
    AwsStylePricing pricing;
    const CostBreakdown cost = meter.amortized(pricing, 3600.0);
    EXPECT_NEAR(cost.onDemand, 0.2 + 0.8, 1e-9);
}

TEST(BillingMeter, CommittedChargesWholeTerms)
{
    BillingMeter meter;
    meter.setReservedPool(st16(), 2);
    AwsStylePricing pricing;
    const sim::Duration year = pricing.reservedTerm();
    // 10 weeks of operation: one full term charged.
    const CostBreakdown ten_weeks =
        meter.committed(pricing, 7200.0, sim::weeks(10.0));
    EXPECT_NEAR(ten_weeks.reserved, 2 * pricing.reservedUpfront(st16()),
                1e-6);
    // Beyond one year: the charge doubles.
    const CostBreakdown beyond =
        meter.committed(pricing, 7200.0, year + 1.0);
    EXPECT_NEAR(beyond.reserved, 4 * pricing.reservedUpfront(st16()),
                1e-6);
}

TEST(BillingMeter, CommittedExtrapolatesOnDemandLinearly)
{
    BillingMeter meter;
    meter.onDemandAcquired(1, st16(), 0.0);
    meter.onDemandReleased(1, 7200.0);
    AwsStylePricing pricing;
    const double run_cost = meter.amortized(pricing, 7200.0).onDemand;
    const CostBreakdown week =
        meter.committed(pricing, 7200.0, sim::weeks(1.0));
    EXPECT_NEAR(week.onDemand, run_cost * sim::weeks(1.0) / 7200.0, 1e-6);
}

TEST(BillingMeter, AcquisitionCountTracked)
{
    BillingMeter meter;
    meter.onDemandAcquired(1, st4(), 0.0);
    meter.onDemandAcquired(2, st4(), 5.0);
    EXPECT_EQ(meter.onDemandAcquisitions(), 2u);
}

} // namespace
} // namespace hcloud::cloud
