/**
 * @file
 * Tests for the experiment harness: reporter formatting, the memoized
 * run matrix, the shared bench CLI (strict positional validation and the
 * trace-sink/env wiring), figure-table semantics, and the JSON report
 * schema (version stamp + golden key-path file).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exp/cli.hpp"
#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "exp/report_json.hpp"
#include "exp/runner.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"
#include "workload/scenario.hpp"

namespace hcloud::exp {
namespace {

TEST(Report, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
    EXPECT_EQ(fmt(0.0, 3), "0.000");
}

TEST(Report, BoxplotRowLayout)
{
    sim::BoxplotSummary b;
    b.p5 = 1.0;
    b.p25 = 2.0;
    b.mean = 3.0;
    b.p75 = 4.0;
    b.p95 = 5.0;
    const auto row = boxplotRow("label", b, 1);
    ASSERT_EQ(row.size(), 6u);
    EXPECT_EQ(row[0], "label");
    EXPECT_EQ(row[1], "1.0");
    EXPECT_EQ(row[5], "5.0");
}

TEST(Runner, TraceCachedPerScenario)
{
    Runner runner{ExperimentOptions{0.1, 42}};
    const workload::ArrivalTrace& a =
        runner.trace(workload::ScenarioKind::Static);
    const workload::ArrivalTrace& b =
        runner.trace(workload::ScenarioKind::Static);
    EXPECT_EQ(&a, &b) << "same scenario must return the cached trace";
    const workload::ArrivalTrace& c =
        runner.trace(workload::ScenarioKind::HighVariability);
    EXPECT_NE(&a, &c);
}

TEST(Runner, RunsMemoizedByCell)
{
    Runner runner{ExperimentOptions{0.1, 42}};
    const core::RunResult& a =
        runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR);
    const core::RunResult& b =
        runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR);
    EXPECT_EQ(&a, &b) << "identical cells must not re-run";
    const core::RunResult& c = runner.run(workload::ScenarioKind::Static,
                                          core::StrategyKind::SR, false);
    EXPECT_NE(&a, &c) << "profiling flag is part of the cell key";
    EXPECT_EQ(a.strategy, "SR");
    EXPECT_FALSE(c.profiling);
}

TEST(Runner, OptionsFlowIntoRuns)
{
    Runner runner{ExperimentOptions{0.1, 7}};
    EXPECT_EQ(runner.options().seed, 7u);
    EXPECT_EQ(runner.baseConfig().seed, 7u);
    const core::RunResult& r = runner.run(
        workload::ScenarioKind::Static, core::StrategyKind::HF);
    // A 10%-scale static scenario needs a pool of ~6 servers, not ~60.
    EXPECT_LT(r.billing.reservedCount(), 15);
    EXPECT_GT(r.billing.reservedCount(), 0);
}

TEST(Runner, RunWithCustomConfigIsIndependent)
{
    Runner runner{ExperimentOptions{0.1, 42}};
    core::EngineConfig cfg = runner.baseConfig();
    cfg.seed = 42;
    cfg.mappingPolicy = core::PolicyKind::P1Random;
    const core::RunResult a = runner.runWith(
        workload::ScenarioKind::Static, core::StrategyKind::HM, cfg);
    const core::RunResult b = runner.runWith(
        workload::ScenarioKind::Static, core::StrategyKind::HM, cfg);
    EXPECT_DOUBLE_EQ(a.meanPerfNorm(), b.meanPerfNorm())
        << "custom runs stay deterministic";
}

// ---------------------------------------------------------------------------
// Shared bench CLI

/** Run parseBenchCli over {"bench", args...}. */
BenchCli
parseArgs(std::vector<std::string> args)
{
    std::vector<char*> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (std::string& a : args)
        argv.push_back(a.data());
    return parseBenchCli(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCliParse, ValidPositionalsAndFlags)
{
    const BenchCli cli =
        parseArgs({"0.25", "42", "4", "--json", "r.json", "--trace",
                   "t.jsonl"});
    EXPECT_FALSE(cli.parseError);
    EXPECT_EQ(cli.errorMessage, "");
    EXPECT_DOUBLE_EQ(cli.options.loadScale, 0.25);
    EXPECT_EQ(cli.options.seed, 42u);
    EXPECT_EQ(cli.options.threads, 4u);
    EXPECT_EQ(cli.jsonPath, "r.json");
    EXPECT_EQ(cli.tracePath, "t.jsonl");
    EXPECT_TRUE(cli.traceRequested);
}

TEST(BenchCliParse, MalformedPositionalsAreErrorsNotZeros)
{
    // Regression: these went through bare atof/strtoull, so "abc" ran
    // the whole bench with loadScale 0.0 instead of failing.
    for (const char* bad : {"abc", "", "0", "-0.1", "nan", "inf", "1e999",
                            "0.5x"}) {
        const BenchCli cli = parseArgs({bad});
        EXPECT_TRUE(cli.parseError) << "loadScale '" << bad << "'";
        EXPECT_FALSE(cli.errorMessage.empty()) << "loadScale '" << bad
                                               << "'";
    }
    for (const char* bad :
         {"-1", "+1", "abc", "42x", "", "99999999999999999999"}) {
        const BenchCli cli = parseArgs({"0.25", bad});
        EXPECT_TRUE(cli.parseError) << "seed '" << bad << "'";
    }
    const BenchCli threads = parseArgs({"0.25", "42", "two"});
    EXPECT_TRUE(threads.parseError);
    const BenchCli missing = parseArgs({"--trace"});
    EXPECT_TRUE(missing.parseError);
    EXPECT_EQ(missing.errorMessage, "--trace requires a path");
    const BenchCli extra = parseArgs({"0.25", "42", "4", "5"});
    EXPECT_TRUE(extra.parseError);
    EXPECT_EQ(extra.errorMessage, "too many arguments");
}

TEST(BenchCliParse, EngineConfigWiresSinkStemAndRingOverride)
{
    const char* saved = std::getenv("HCLOUD_TRACE_RING");
    const std::string saved_value = saved ? saved : "";

    ::unsetenv("HCLOUD_TRACE_RING");
    const BenchCli cli = parseArgs({"--trace", "/tmp/t.jsonl"});
    core::EngineConfig cfg = cli.engineConfig();
    EXPECT_EQ(cfg.trace.mode, obs::TraceConfig::Mode::On);
    EXPECT_EQ(cfg.trace.sinkStem, "/tmp/t.jsonl")
        << "tracing to a path must stream through per-run sinks";
    EXPECT_EQ(cfg.trace.ringCapacity, std::size_t{1} << 16);

    ::setenv("HCLOUD_TRACE_RING", "1024", 1);
    cfg = cli.engineConfig();
    EXPECT_EQ(cfg.trace.ringCapacity, 1024u);

    // Malformed or zero overrides are ignored, not applied as 0.
    ::setenv("HCLOUD_TRACE_RING", "abc", 1);
    EXPECT_EQ(cli.engineConfig().trace.ringCapacity,
              std::size_t{1} << 16);
    ::setenv("HCLOUD_TRACE_RING", "0", 1);
    EXPECT_EQ(cli.engineConfig().trace.ringCapacity,
              std::size_t{1} << 16);

    // Without tracing there is no sink stem to derive.
    ::unsetenv("HCLOUD_TRACE_RING");
    const char* saved_trace = std::getenv("HCLOUD_TRACE");
    const std::string saved_trace_value = saved_trace ? saved_trace : "";
    ::unsetenv("HCLOUD_TRACE");
    const BenchCli plain = parseArgs({"0.25"});
    EXPECT_EQ(plain.engineConfig().trace.sinkStem, "");
    if (saved_trace)
        ::setenv("HCLOUD_TRACE", saved_trace_value.c_str(), 1);

    if (saved)
        ::setenv("HCLOUD_TRACE_RING", saved_value.c_str(), 1);
}

// ---------------------------------------------------------------------------
// Figure-table semantics

TEST(Figures, Fig02HeaderNamesTheInnerP99Statistic)
{
    // Regression: the header used to read plain "p95", implying a p95 of
    // raw latencies; each cell is an across-instance quantile of the
    // per-instance p99 tail.
    const std::vector<std::string> header = fig02BoxplotHeader();
    ASSERT_EQ(header.size(), 6u);
    EXPECT_EQ(header[0], "provider/type");
    for (std::size_t i = 1; i < header.size(); ++i)
        EXPECT_NE(header[i].find("(p99us)"), std::string::npos)
            << header[i];
    EXPECT_EQ(header[5], "p95(p99us)");
}

// ---------------------------------------------------------------------------
// JSON report schema

/** Collect every key path in @p v ("runs[].counters.jobs") into @p out. */
void
collectKeyPaths(const obs::JsonValue& v, const std::string& prefix,
                std::set<std::string>& out)
{
    if (v.type == obs::JsonValue::Type::Object) {
        for (const auto& [key, child] : v.object) {
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            out.insert(path);
            collectKeyPaths(child, path, out);
        }
    } else if (v.type == obs::JsonValue::Type::Array) {
        for (const obs::JsonValue& child : v.array)
            collectKeyPaths(child, prefix + "[]", out);
    }
}

TEST(ReportSchema, VersionStampedFirstAndKeyPathsMatchGolden)
{
    // Pinned config: every optional report section below is deterministic
    // for this cell, so the key-path set is stable.
    ExperimentOptions opt;
    opt.loadScale = 0.05;
    opt.seed = 42;
    core::EngineConfig base;
    base.trace.mode = obs::TraceConfig::Mode::On;
    // Timeline on so the runs[].timeline sample keys are part of the
    // golden key-path set (v3).
    base.timeline.mode = obs::TimelineConfig::Mode::On;
    base.timeline.cadence = 60.0;
    Runner runner{opt, base};
    runner.run(workload::ScenarioKind::Static, core::StrategyKind::HM);

    // A one-cell sweep pins the sweeps[] element keys (v4): cell
    // aggregates with mean/stddev/ci95 plus the telemetry section.
    SweepCell sweepCell;
    sweepCell.scenario = workload::ScenarioKind::Static;
    sweepCell.strategy = core::StrategyKind::HM;
    workload::ScenarioConfig sweepScenario;
    sweepScenario.duration = sim::hours(0.1);
    sweepCell.scenarioOverride = sweepScenario;
    SweepOptions sweepOpt;
    sweepOpt.title = "schema-sweep";
    sweepOpt.seeds = 2;
    sweepOpt.threads = 1;
    const SweepResult sweep = runSweep({sweepCell}, sweepOpt);

    const std::string path = ::testing::TempDir() + "schema_report.json";
    ASSERT_TRUE(writeJsonReport(path, "schema-test", runner, {sweep}));
    std::ifstream in(path, std::ios::binary);
    std::stringstream text;
    text << in.rdbuf();
    const obs::JsonValue report = obs::parseJson(text.str());

    // The stamp leads the document so consumers can dispatch on it
    // before reading anything else.
    ASSERT_EQ(report.type, obs::JsonValue::Type::Object);
    ASSERT_FALSE(report.object.empty());
    EXPECT_EQ(report.object.front().first, "schemaVersion");
    EXPECT_EQ(report.find("schemaVersion")->numberOr(0),
              static_cast<double>(kReportSchemaVersion));

    std::set<std::string> paths;
    collectKeyPaths(report, "", paths);
    const std::string golden_path = std::string(HCLOUD_GOLDEN_DIR) +
        "/report_schema_v" + std::to_string(kReportSchemaVersion) +
        ".txt";
    if (std::getenv("HCLOUD_UPDATE_GOLDEN")) {
        std::ofstream golden_out(golden_path, std::ios::trunc);
        for (const std::string& p : paths)
            golden_out << p << '\n';
        ASSERT_TRUE(golden_out) << "cannot update " << golden_path;
        GTEST_SKIP() << "golden file regenerated: " << golden_path;
    }
    std::ifstream golden_in(golden_path);
    ASSERT_TRUE(golden_in)
        << golden_path
        << " missing; regenerate with HCLOUD_UPDATE_GOLDEN=1";
    std::set<std::string> golden;
    std::string line;
    while (std::getline(golden_in, line))
        if (!line.empty())
            golden.insert(line);
    EXPECT_EQ(paths, golden)
        << "report shape changed: bump kReportSchemaVersion, regenerate "
           "the golden file (HCLOUD_UPDATE_GOLDEN=1), and note the bump "
           "in EXPERIMENTS.md";
}

/**
 * Byte-exact golden trace for a small fixed-seed run: the determinism
 * contract says simulated behaviour is a pure function of (trace, config,
 * seed), so any kernel or caching change that alters a single event —
 * its time, ordering, or payload — fails here before it can silently
 * shift the paper figures. Regenerate with HCLOUD_UPDATE_GOLDEN=1 only
 * when a change is *supposed* to alter simulated behaviour, and say so
 * in the commit.
 */
TEST(GoldenTrace, SmallFixedSeedRunIsByteStable)
{
    workload::ScenarioConfig cfg;
    cfg.kind = workload::ScenarioKind::Static;
    cfg.seed = 42;
    cfg.loadScale = 0.05;
    const workload::ArrivalTrace trace = workload::generateScenario(cfg);

    core::EngineConfig config;
    config.seed = 42;
    config.trace.mode = obs::TraceConfig::Mode::On;
    core::Engine engine(config);
    const core::RunResult r =
        engine.run(trace, core::StrategyKind::HM, "golden");
    ASSERT_EQ(r.trace.dropped, 0u)
        << "golden scenario must fit the trace ring";

    std::ostringstream out;
    obs::writeJsonl(out, r.trace);
    const std::string text = out.str();

    const std::string golden_path =
        std::string(HCLOUD_GOLDEN_DIR) + "/trace_small.jsonl";
    if (std::getenv("HCLOUD_UPDATE_GOLDEN")) {
        std::ofstream golden_out(golden_path,
                                 std::ios::binary | std::ios::trunc);
        golden_out << text;
        ASSERT_TRUE(golden_out) << "cannot update " << golden_path;
        GTEST_SKIP() << "golden file regenerated: " << golden_path;
    }
    std::ifstream golden_in(golden_path, std::ios::binary);
    ASSERT_TRUE(golden_in)
        << golden_path
        << " missing; regenerate with HCLOUD_UPDATE_GOLDEN=1";
    std::stringstream golden_text;
    golden_text << golden_in.rdbuf();
    // EXPECT_EQ on multi-MB strings prints both operands on failure;
    // compare a digest-style summary first for a readable message.
    ASSERT_EQ(text.size(), golden_text.str().size())
        << "trace length changed — simulated behaviour diverged; use "
           "trace_inspect --diff to find the first divergent event";
    EXPECT_TRUE(text == golden_text.str())
        << "trace bytes changed — simulated behaviour diverged; use "
           "trace_inspect --diff to find the first divergent event";
}

} // namespace
} // namespace hcloud::exp
