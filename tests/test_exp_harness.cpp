/**
 * @file
 * Tests for the experiment harness: reporter formatting and the
 * memoized run matrix.
 */

#include <gtest/gtest.h>

#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace hcloud::exp {
namespace {

TEST(Report, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
    EXPECT_EQ(fmt(0.0, 3), "0.000");
}

TEST(Report, BoxplotRowLayout)
{
    sim::BoxplotSummary b;
    b.p5 = 1.0;
    b.p25 = 2.0;
    b.mean = 3.0;
    b.p75 = 4.0;
    b.p95 = 5.0;
    const auto row = boxplotRow("label", b, 1);
    ASSERT_EQ(row.size(), 6u);
    EXPECT_EQ(row[0], "label");
    EXPECT_EQ(row[1], "1.0");
    EXPECT_EQ(row[5], "5.0");
}

TEST(Runner, TraceCachedPerScenario)
{
    Runner runner{ExperimentOptions{0.1, 42}};
    const workload::ArrivalTrace& a =
        runner.trace(workload::ScenarioKind::Static);
    const workload::ArrivalTrace& b =
        runner.trace(workload::ScenarioKind::Static);
    EXPECT_EQ(&a, &b) << "same scenario must return the cached trace";
    const workload::ArrivalTrace& c =
        runner.trace(workload::ScenarioKind::HighVariability);
    EXPECT_NE(&a, &c);
}

TEST(Runner, RunsMemoizedByCell)
{
    Runner runner{ExperimentOptions{0.1, 42}};
    const core::RunResult& a =
        runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR);
    const core::RunResult& b =
        runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR);
    EXPECT_EQ(&a, &b) << "identical cells must not re-run";
    const core::RunResult& c = runner.run(workload::ScenarioKind::Static,
                                          core::StrategyKind::SR, false);
    EXPECT_NE(&a, &c) << "profiling flag is part of the cell key";
    EXPECT_EQ(a.strategy, "SR");
    EXPECT_FALSE(c.profiling);
}

TEST(Runner, OptionsFlowIntoRuns)
{
    Runner runner{ExperimentOptions{0.1, 7}};
    EXPECT_EQ(runner.options().seed, 7u);
    EXPECT_EQ(runner.baseConfig().seed, 7u);
    const core::RunResult& r = runner.run(
        workload::ScenarioKind::Static, core::StrategyKind::HF);
    // A 10%-scale static scenario needs a pool of ~6 servers, not ~60.
    EXPECT_LT(r.billing.reservedCount(), 15);
    EXPECT_GT(r.billing.reservedCount(), 0);
}

TEST(Runner, RunWithCustomConfigIsIndependent)
{
    Runner runner{ExperimentOptions{0.1, 42}};
    core::EngineConfig cfg = runner.baseConfig();
    cfg.seed = 42;
    cfg.mappingPolicy = core::PolicyKind::P1Random;
    const core::RunResult a = runner.runWith(
        workload::ScenarioKind::Static, core::StrategyKind::HM, cfg);
    const core::RunResult b = runner.runWith(
        workload::ScenarioKind::Static, core::StrategyKind::HM, cfg);
    EXPECT_DOUBLE_EQ(a.meanPerfNorm(), b.meanPerfNorm())
        << "custom runs stay deterministic";
}

} // namespace
} // namespace hcloud::exp
