/**
 * @file
 * Determinism of the parallel execution runtime: for the same root seed,
 * runtime::ParallelRunner must produce bit-identical RunResults to the
 * serial exp::Runner — across the full (scenario x strategy x profiling)
 * matrix and across runBatch() sweeps — regardless of thread count.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cloud/pricing.hpp"
#include "exp/runner.hpp"
#include "runtime/parallel_runner.hpp"

namespace hcloud {
namespace {

/**
 * Flatten the numeric spine of a RunResult. Comparing two digests with
 * EXPECT_EQ on doubles is an exact (bitwise-equality for non-NaN values)
 * check, which is the contract under test.
 */
std::vector<double>
digest(const core::RunResult& r)
{
    const cloud::AwsStylePricing pricing;
    const cloud::CostBreakdown cost = r.cost(pricing);
    std::vector<double> d = {
        r.makespan,
        r.meanPerfNorm(),
        r.reservedUtilizationAvg,
        static_cast<double>(r.jobCount),
        static_cast<double>(r.failedJobs),
        static_cast<double>(r.acquisitions),
        static_cast<double>(r.immediateReleases),
        static_cast<double>(r.reschedules),
        static_cast<double>(r.queuedJobs),
        static_cast<double>(r.outcomes.size()),
        static_cast<double>(r.instanceTimelines.size()),
        cost.reserved,
        cost.onDemand,
    };
    for (const sim::SampleSet* ss :
         {&r.batchTurnaroundMin, &r.batchPerfNorm, &r.lcLatencyUs,
          &r.lcPerfNorm, &r.perfReserved, &r.perfOnDemand,
          &r.spinUpWaits, &r.queueWaits}) {
        d.push_back(static_cast<double>(ss->count()));
        if (!ss->empty()) {
            d.push_back(ss->mean());
            d.push_back(ss->quantile(0.05));
            d.push_back(ss->quantile(0.5));
            d.push_back(ss->quantile(0.95));
        }
    }
    return d;
}

void
expectIdentical(const core::RunResult& serial,
                const core::RunResult& parallel, const char* what)
{
    EXPECT_EQ(serial.strategy, parallel.strategy) << what;
    EXPECT_EQ(serial.scenario, parallel.scenario) << what;
    EXPECT_EQ(serial.profiling, parallel.profiling) << what;
    const std::vector<double> a = digest(serial);
    const std::vector<double> b = digest(parallel);
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << what << " digest[" << i << "]";
    // Bit-exact per-job outcomes, not just aggregates.
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size()) << what;
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
        const core::JobOutcome& x = serial.outcomes[i];
        const core::JobOutcome& y = parallel.outcomes[i];
        EXPECT_EQ(x.id, y.id) << what;
        EXPECT_EQ(x.perfNorm, y.perfNorm) << what << " job " << i;
        EXPECT_EQ(x.turnaroundMin, y.turnaroundMin) << what;
        EXPECT_EQ(x.latencyP99Us, y.latencyP99Us) << what;
        EXPECT_EQ(x.waitSec, y.waitSec) << what;
    }
}

exp::ExperimentOptions
smallOptions(std::size_t threads)
{
    exp::ExperimentOptions opt;
    opt.loadScale = 0.1;
    opt.seed = 42;
    opt.threads = threads;
    return opt;
}

TEST(ParallelRunnerDeterminism, FullMatrixBitIdenticalToSerialRunner)
{
    exp::Runner serial{smallOptions(0)};
    runtime::ParallelRunner parallel{smallOptions(4)};
    parallel.prewarm(/*includeUnprofiled=*/true);
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        for (core::StrategyKind strategy : core::kAllStrategies) {
            for (bool profiling : {true, false}) {
                const std::string what =
                    std::string(workload::toString(scenario)) + "/" +
                    core::toString(strategy) +
                    (profiling ? "/profiled" : "/default");
                expectIdentical(
                    serial.run(scenario, strategy, profiling),
                    parallel.run(scenario, strategy, profiling),
                    what.c_str());
            }
        }
    }
}

TEST(ParallelRunnerDeterminism, RunBatchMatchesSerialOrderAndBits)
{
    exp::Runner serial{smallOptions(0)};
    runtime::ParallelRunner parallel{smallOptions(3)};
    std::vector<exp::RunSpec> specs;
    for (core::StrategyKind s :
         {core::StrategyKind::SR, core::StrategyKind::HM}) {
        for (double retention : {0.0, 10.0, 100.0}) {
            exp::RunSpec spec;
            spec.scenario = workload::ScenarioKind::HighVariability;
            spec.strategy = s;
            spec.config = serial.baseConfig();
            spec.config.retentionMultiple = retention;
            specs.push_back(spec);
        }
    }
    // A scenario-override spec (the Figure 16 shape) rides along.
    exp::RunSpec withOverride;
    withOverride.strategy = core::StrategyKind::HF;
    withOverride.config = serial.baseConfig();
    workload::ScenarioConfig scenario = serial.scenarioConfig(
        workload::ScenarioKind::HighVariability);
    scenario.sensitiveFraction = 0.4;
    withOverride.scenarioOverride = scenario;
    withOverride.label = "override";
    specs.push_back(withOverride);

    const auto a = serial.runBatch(specs);
    const auto b = parallel.runBatch(specs);
    ASSERT_EQ(a.size(), specs.size());
    ASSERT_EQ(b.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectIdentical(a[i], b[i],
                        ("spec " + std::to_string(i)).c_str());
    EXPECT_EQ(b.back().scenario, "override");
}

TEST(ParallelRunnerDeterminism, SingleThreadDelegatesToSerialPath)
{
    exp::Runner serial{smallOptions(0)};
    runtime::ParallelRunner one{smallOptions(1)};
    EXPECT_EQ(one.threadCount(), 1u);
    expectIdentical(serial.run(workload::ScenarioKind::Static,
                               core::StrategyKind::HM),
                    one.run(workload::ScenarioKind::Static,
                            core::StrategyKind::HM),
                    "static/HM");
}

TEST(ParallelRunnerDeterminism, RunWithHonoursRootSeed)
{
    // The seed-plumbing fix: runWith() must use options().seed even when
    // the caller's config carries a stale seed, matching the cached run()
    // path (which always ran with the root seed).
    exp::Runner runner{smallOptions(0)};
    core::EngineConfig stale = runner.baseConfig();
    stale.seed = 987654321; // forgotten by a hypothetical call site
    const core::RunResult a = runner.runWith(
        workload::ScenarioKind::Static, core::StrategyKind::SR, stale);
    core::EngineConfig fresh = runner.baseConfig();
    const core::RunResult b = runner.runWith(
        workload::ScenarioKind::Static, core::StrategyKind::SR, fresh);
    EXPECT_EQ(a.meanPerfNorm(), b.meanPerfNorm());
    EXPECT_EQ(a.makespan, b.makespan);
    // And it matches the memoized cell modulo the profiling default.
    const core::RunResult& cached = runner.run(
        workload::ScenarioKind::Static, core::StrategyKind::SR, true);
    EXPECT_EQ(a.makespan, cached.makespan);
    EXPECT_EQ(a.meanPerfNorm(), cached.meanPerfNorm());
}

TEST(ParallelRunnerDeterminism, ConcurrentCallersShareTheMemoCache)
{
    runtime::ParallelRunner runner{smallOptions(4)};
    runtime::ThreadPool pool(4);
    std::vector<const core::RunResult*> seen(8, nullptr);
    runtime::parallelFor(pool, 0, seen.size(), [&](std::size_t i) {
        seen[i] = &runner.run(workload::ScenarioKind::Static,
                              core::StrategyKind::SR);
    });
    for (const core::RunResult* p : seen)
        EXPECT_EQ(p, seen[0]) << "all callers must see one cached cell";
}

} // namespace
} // namespace hcloud
