/**
 * @file
 * Unit tests for the DES pending-event set.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace hcloud::sim {
namespace {

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.push(3.0, [&] { fired.push_back(3); });
    q.push(1.0, [&] { fired.push_back(1); });
    q.push(2.0, [&] { fired.push_back(2); });
    while (!q.empty()) {
        auto [t, cb] = q.pop();
        cb();
    }
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.push(5.0, [&fired, i] { fired.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent)
{
    EventQueue q;
    EventHandle early = q.push(1.0, [] {});
    q.push(2.0, [] {});
    EXPECT_DOUBLE_EQ(q.nextTime(), 1.0);
    early.cancel();
    EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent)
{
    EventQueue q;
    bool fired = false;
    EventHandle h = q.push(1.0, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    EXPECT_TRUE(h.cancel());
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel()) << "double cancel must be a no-op";
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    EventHandle a = q.push(1.0, [] {});
    q.push(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    a.cancel();
    EXPECT_EQ(q.size(), 1u);
    q.pop();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleNotPendingAfterPop)
{
    EventQueue q;
    EventHandle h = q.push(1.0, [] {});
    q.pop();
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, DefaultHandleNeverPending)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue q;
    EventHandle h = q.push(1.0, [] {});
    q.push(2.0, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelledEventsSkippedDeepInHeap)
{
    EventQueue q;
    std::vector<EventHandle> handles;
    std::vector<int> fired;
    for (int i = 0; i < 20; ++i)
        handles.push_back(
            q.push(static_cast<Time>(i), [&fired, i] { fired.push_back(i); }));
    for (int i = 0; i < 20; i += 2)
        handles[i].cancel();
    while (!q.empty())
        q.pop().second();
    ASSERT_EQ(fired.size(), 10u);
    for (int v : fired)
        EXPECT_EQ(v % 2, 1);
}

// --- Allocation-free kernel: inline storage and slab behaviour ----------

/** The engine's largest scheduling capture is 64 bytes (see
 *  kEventCallbackCapacity); pin that it stays inline. */
struct Capture64
{
    std::array<void*, 8> refs;
    void operator()() const {}
};
static_assert(sizeof(Capture64) == 64);
static_assert(EventCallback::fitsInline<Capture64>,
              "a 64-byte capture must not allocate");

struct Capture72
{
    std::array<void*, 9> refs;
    void operator()() const {}
};
static_assert(!EventCallback::fitsInline<Capture72>,
              "oversized captures must take the counted heap fallback");

TEST(EventQueue, OversizedCaptureSpillsToHeapAndStillFires)
{
    EventQueue q;
    EXPECT_EQ(q.heapCallbacks(), 0u);
    std::array<double, 16> big{};
    big[7] = 42.0;
    double seen = 0.0;
    q.push(1.0, [big, &seen] { seen = big[7]; });
    EXPECT_EQ(q.heapCallbacks(), 1u);
    q.pop().second();
    EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(EventQueue, InlineCaptureDoesNotCountAsHeap)
{
    EventQueue q;
    int fired = 0;
    q.push(1.0, [&fired] { ++fired; });
    q.push(2.0, Capture64{});
    EXPECT_EQ(q.heapCallbacks(), 0u);
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoOp)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.push(1.0, [&fired] { ++fired; });
    q.pop().second();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SlabReuseDoesNotResurrectOldHandles)
{
    EventQueue q;
    EventHandle old = q.push(1.0, [] {});
    q.pop(); // frees the slot; `old` is now stale
    ASSERT_EQ(q.slabSize(), 1u);

    bool fired = false;
    EventHandle fresh = q.push(2.0, [&fired] { fired = true; });
    ASSERT_EQ(q.slabSize(), 1u) << "second push must reuse the slot";

    // The stale handle points at the recycled slot but carries the old
    // generation: it must neither read as pending nor cancel the new
    // event.
    EXPECT_FALSE(old.pending());
    EXPECT_FALSE(old.cancel());
    EXPECT_TRUE(fresh.pending());
    EXPECT_EQ(q.size(), 1u);
    q.pop().second();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, SlabHighWaterTracksConcurrencyNotThroughput)
{
    EventQueue q;
    for (int i = 0; i < 1000; ++i) {
        q.push(static_cast<Time>(i), [] {});
        q.pop();
    }
    EXPECT_EQ(q.slabSize(), 1u)
        << "sequential push/pop must recycle one record, not grow";
}

// --- Randomized stress against a reference model ------------------------

TEST(EventQueue, StressMatchesReferenceModel)
{
    struct ModelEvent
    {
        Time when = 0.0;
        std::size_t seq = 0; // push order; the tie-break key
        bool cancelled = false;
        bool fired = false;
        EventHandle handle;
    };

    EventQueue q;
    std::vector<ModelEvent> model;
    std::vector<std::size_t> fired_order;
    std::mt19937 rng(42);
    // Coarse times force plenty of exact ties.
    std::uniform_int_distribution<int> time_dist(0, 9);
    std::uniform_int_distribution<int> op_dist(0, 9);

    auto pending_in_model = [&] {
        std::vector<std::size_t> out;
        for (std::size_t i = 0; i < model.size(); ++i)
            if (!model[i].cancelled && !model[i].fired)
                out.push_back(i);
        return out;
    };
    // A pop must fire the live event that is minimal by (when, seq)
    // *among those pushed so far* — computed fresh at every pop, since
    // later pushes can carry earlier times.
    auto expect_pop = [&] {
        const std::vector<std::size_t> live = pending_in_model();
        ASSERT_FALSE(live.empty());
        std::size_t best = live[0];
        for (std::size_t id : live) {
            if (model[id].when < model[best].when ||
                (model[id].when == model[best].when &&
                 model[id].seq < model[best].seq)) {
                best = id;
            }
        }
        q.pop().second();
        ASSERT_FALSE(fired_order.empty());
        ASSERT_EQ(fired_order.back(), best);
        model[best].fired = true;
    };

    for (int step = 0; step < 5000; ++step) {
        const int op = op_dist(rng);
        if (op < 6) { // push
            ModelEvent e;
            e.when = static_cast<Time>(time_dist(rng));
            e.seq = model.size();
            const std::size_t id = e.seq;
            e.handle =
                q.push(e.when, [&fired_order, id] {
                    fired_order.push_back(id);
                });
            model.push_back(e);
        } else if (op < 8) { // cancel a random live event
            std::vector<std::size_t> live = pending_in_model();
            if (live.empty())
                continue;
            std::uniform_int_distribution<std::size_t> pick(
                0, live.size() - 1);
            ModelEvent& e = model[live[pick(rng)]];
            EXPECT_TRUE(e.handle.cancel());
            e.cancelled = true;
        } else { // pop
            if (q.empty())
                continue;
            expect_pop();
        }
    }
    while (!q.empty())
        expect_pop();
    EXPECT_TRUE(pending_in_model().empty());

    // Every handle is settled by now.
    for (ModelEvent& e : model) {
        EXPECT_FALSE(e.handle.pending());
        EXPECT_FALSE(e.handle.cancel());
    }
    EXPECT_EQ(q.heapCallbacks(), 0u);
}

} // namespace
} // namespace hcloud::sim
