/**
 * @file
 * Unit tests for the DES pending-event set.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace hcloud::sim {
namespace {

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.push(3.0, [&] { fired.push_back(3); });
    q.push(1.0, [&] { fired.push_back(1); });
    q.push(2.0, [&] { fired.push_back(2); });
    while (!q.empty()) {
        auto [t, cb] = q.pop();
        cb();
    }
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.push(5.0, [&fired, i] { fired.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent)
{
    EventQueue q;
    EventHandle early = q.push(1.0, [] {});
    q.push(2.0, [] {});
    EXPECT_DOUBLE_EQ(q.nextTime(), 1.0);
    early.cancel();
    EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent)
{
    EventQueue q;
    bool fired = false;
    EventHandle h = q.push(1.0, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    EXPECT_TRUE(h.cancel());
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel()) << "double cancel must be a no-op";
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    EventHandle a = q.push(1.0, [] {});
    q.push(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    a.cancel();
    EXPECT_EQ(q.size(), 1u);
    q.pop();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleNotPendingAfterPop)
{
    EventQueue q;
    EventHandle h = q.push(1.0, [] {});
    q.pop();
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, DefaultHandleNeverPending)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue q;
    EventHandle h = q.push(1.0, [] {});
    q.push(2.0, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelledEventsSkippedDeepInHeap)
{
    EventQueue q;
    std::vector<EventHandle> handles;
    std::vector<int> fired;
    for (int i = 0; i < 20; ++i)
        handles.push_back(
            q.push(static_cast<Time>(i), [&fired, i] { fired.push_back(i); }));
    for (int i = 0; i < 20; i += 2)
        handles[i].cancel();
    while (!q.empty())
        q.pop().second();
    ASSERT_EQ(fired.size(), 10u);
    for (int v : fired)
        EXPECT_EQ(v % 2, 1);
}

} // namespace
} // namespace hcloud::sim
