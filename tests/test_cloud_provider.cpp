/**
 * @file
 * Unit tests for the CloudProvider control-plane facade.
 */

#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "sim/simulator.hpp"

namespace hcloud::cloud {
namespace {

class ProviderTest : public ::testing::Test
{
  protected:
    const InstanceType&
    typeNamed(const char* name)
    {
        return InstanceTypeCatalog::defaultCatalog().byName(name);
    }

    sim::Simulator simulator;
    CloudProvider provider{simulator, ProviderProfile::gce(), {},
                           sim::Rng(42)};
};

TEST_F(ProviderTest, ReservedPoolReadyImmediately)
{
    auto pool = provider.reserveDedicated(typeNamed("st16"), 3);
    ASSERT_EQ(pool.size(), 3u);
    for (Instance* inst : pool) {
        EXPECT_EQ(inst->state(), InstanceState::Running);
        EXPECT_TRUE(inst->reserved());
        EXPECT_DOUBLE_EQ(inst->availableAt(), 0.0);
        EXPECT_FALSE(inst->host()->shared());
    }
    EXPECT_EQ(provider.billing().reservedCount(), 3);
}

TEST_F(ProviderTest, AcquireSpinsUpThenCallsBack)
{
    Instance* ready_instance = nullptr;
    Instance* inst = provider.acquire(
        typeNamed("st16"),
        [&](Instance* i) { ready_instance = i; });
    EXPECT_EQ(inst->state(), InstanceState::SpinningUp);
    EXPECT_GT(inst->availableAt(), 0.0);
    simulator.run();
    EXPECT_EQ(ready_instance, inst);
    EXPECT_EQ(inst->state(), InstanceState::Running);
    EXPECT_DOUBLE_EQ(simulator.now(), inst->availableAt());
}

TEST_F(ProviderTest, ReleaseBeforeReadySuppressesCallback)
{
    bool called = false;
    Instance* inst =
        provider.acquire(typeNamed("st16"), [&](Instance*) {
            called = true;
        });
    provider.release(inst);
    simulator.run();
    EXPECT_FALSE(called);
    EXPECT_EQ(inst->state(), InstanceState::Released);
}

TEST_F(ProviderTest, FullServerGetsDedicatedMachine)
{
    Instance* inst = provider.acquire(typeNamed("st16"), nullptr);
    EXPECT_FALSE(inst->host()->shared());
    EXPECT_EQ(inst->host()->freeVcpus(), 0);
}

TEST_F(ProviderTest, SlicesPackOntoSharedMachines)
{
    Instance* a = provider.acquire(typeNamed("st4"), nullptr);
    Instance* b = provider.acquire(typeNamed("st8"), nullptr);
    Instance* c = provider.acquire(typeNamed("st4"), nullptr);
    // 4 + 8 + 4 = 16 vCPUs: first-fit packs them on one shared machine.
    EXPECT_TRUE(a->host()->shared());
    EXPECT_EQ(a->host(), b->host());
    EXPECT_EQ(a->host(), c->host());
    EXPECT_EQ(a->host()->freeVcpus(), 0);
    // The next slice must open a second machine.
    Instance* d = provider.acquire(typeNamed("st1"), nullptr);
    EXPECT_NE(d->host(), a->host());
}

TEST_F(ProviderTest, ReleaseFreesTheSlice)
{
    Instance* a = provider.acquire(typeNamed("st8"), nullptr);
    Machine* host = a->host();
    const int free_before = host->freeVcpus();
    provider.release(a);
    EXPECT_EQ(host->freeVcpus(), free_before + 8);
}

TEST_F(ProviderTest, BillingRecordsAcquireAndRelease)
{
    Instance* a = provider.acquire(typeNamed("st4"), nullptr);
    simulator.runUntil(1000.0);
    provider.release(a);
    EXPECT_EQ(provider.billing().onDemandAcquisitions(), 1u);
    EXPECT_GT(provider.billing().onDemandBilledHours(2000.0), 0.0);
}

TEST_F(ProviderTest, InstanceIdsUnique)
{
    Instance* a = provider.acquire(typeNamed("st4"), nullptr);
    Instance* b = provider.acquire(typeNamed("st4"), nullptr);
    EXPECT_NE(a->id(), b->id());
}

TEST_F(ProviderTest, DeterministicAcrossIdenticalRuns)
{
    sim::Simulator sim2;
    CloudProvider provider2(sim2, ProviderProfile::gce(), {},
                            sim::Rng(42));
    Instance* a = provider.acquire(typeNamed("st8"), nullptr);
    Instance* b = provider2.acquire(typeNamed("st8"), nullptr);
    EXPECT_DOUBLE_EQ(a->availableAt(), b->availableAt());
    EXPECT_DOUBLE_EQ(a->spatialQuality(), b->spatialQuality());
}

} // namespace
} // namespace hcloud::cloud
