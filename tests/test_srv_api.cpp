/**
 * @file
 * The daemon's JSON API end to end over loopback HTTP: tenant and job
 * flows, the malformed-input suite (truncated bodies, wrong types,
 * unknown enum values — every one a 4xx with a structured error body,
 * never a crash), and per-tenant Prometheus series on /metrics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/json.hpp"
#include "obs/process_metrics.hpp"
#include "obs/span.hpp"
#include "srv/http_client.hpp"
#include "srv/serve_app.hpp"

namespace hcloud {
namespace {

/** Fresh app on an ephemeral port with a private metrics registry. */
class SrvApi : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        srv::ServeConfig config;
        config.shards = 2;
        config.threads = 2;
        config.httpWorkers = 2;
        app_ = std::make_unique<srv::ServeApp>(config, metrics_);
        ASSERT_TRUE(app_->start(0));
        client_ =
            std::make_unique<srv::HttpClient>(app_->boundPort());
    }

    /** POST returning (status, parsed body). */
    std::pair<int, obs::JsonValue> post(const std::string& target,
                                        const std::string& body)
    {
        const srv::ClientResponse r = client_->post(target, body);
        EXPECT_TRUE(r.ok) << target;
        return {r.status, obs::parseJson(r.body)};
    }

    std::pair<int, obs::JsonValue> get(const std::string& target)
    {
        const srv::ClientResponse r = client_->get(target);
        EXPECT_TRUE(r.ok) << target;
        return {r.status, obs::parseJson(r.body)};
    }

    /** The error.code string of a structured error body. */
    static std::string errorCode(const obs::JsonValue& v)
    {
        const obs::JsonValue* error = v.find("error");
        if (!error)
            return "<no error object>";
        const obs::JsonValue* code = error->find("code");
        return code ? code->string : "<no code>";
    }

    /** Create a small, fast tenant; returns its id. */
    std::string createTenant(const std::string& id = "")
    {
        std::string body =
            "{\"strategy\":\"HM\",";
        if (!id.empty())
            body += "\"id\":\"" + id + "\",";
        body += "\"scenario\":{\"kind\":\"static\",\"duration\":600,"
                "\"loadScale\":0.05},"
                "\"engine\":{\"seed\":42,\"useProfiling\":false}}";
        auto [status, json] = post("/v1/tenants", body);
        EXPECT_EQ(status, 201);
        const obs::JsonValue* tenant = json.find("tenant");
        return tenant ? tenant->string : "";
    }

    obs::ProcessMetrics metrics_;
    std::unique_ptr<srv::ServeApp> app_;
    std::unique_ptr<srv::HttpClient> client_;
};

TEST_F(SrvApi, TenantJobAdvanceReportRoundTrip)
{
    const std::string tenant = createTenant("acme");
    EXPECT_EQ(tenant, "acme");

    auto [jobStatus, jobJson] = post(
        "/v1/tenants/acme/jobs",
        "{\"kind\":\"hadoop-recommender\",\"arrival\":1.5,"
        "\"coresIdeal\":4,\"idealDuration\":30}");
    EXPECT_EQ(jobStatus, 200);
    ASSERT_NE(jobJson.find("job"), nullptr);
    EXPECT_EQ(jobJson.find("job")->number, 1.0);
    // Profiling off: the mapping decision lands synchronously.
    const obs::JsonValue* decisions = jobJson.find("decisions");
    ASSERT_NE(decisions, nullptr);
    ASSERT_EQ(decisions->array.size(), 1u);
    EXPECT_EQ(decisions->array[0].find("reason")->string,
              "below_soft_limit");
    EXPECT_EQ(jobJson.find("state")->string, "running");

    auto [advStatus, advJson] =
        post("/v1/tenants/acme/advance", "{\"to\":120}");
    EXPECT_EQ(advStatus, 200);
    EXPECT_DOUBLE_EQ(advJson.find("now")->number, 120.0);

    auto [repStatus, repJson] = get("/v1/tenants/acme/report");
    EXPECT_EQ(repStatus, 200);
    EXPECT_EQ(repJson.find("tenant")->string, "acme");
    EXPECT_GE(repJson.find("schemaVersion")->number, 2.0);
    EXPECT_EQ(repJson.find("jobs")->number, 1.0);
    EXPECT_EQ(repJson.find("finished")->number, 1.0);
    const obs::JsonValue* run = repJson.find("run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->find("strategy")->string, "HM");
    ASSERT_NE(repJson.find("decisions"), nullptr);
    EXPECT_EQ(repJson.find("decisions")->array.size(), 1u);

    auto [listStatus, listJson] = get("/v1/tenants");
    EXPECT_EQ(listStatus, 200);
    ASSERT_EQ(listJson.find("tenants")->array.size(), 1u);
    EXPECT_EQ(listJson.find("tenants")->array[0].string, "acme");
}

TEST_F(SrvApi, AutoAssignedTenantAndJobIds)
{
    const std::string t1 = createTenant();
    const std::string t2 = createTenant();
    EXPECT_EQ(t1, "t-1");
    EXPECT_EQ(t2, "t-2");
    auto [s1, j1] = post("/v1/tenants/t-2/jobs",
                         "{\"kind\":\"memcached\",\"arrival\":1,"
                         "\"coresIdeal\":2,\"lcLoadRps\":20000,"
                         "\"lcLifetime\":120,\"lcQosUs\":500}");
    EXPECT_EQ(s1, 200);
    EXPECT_EQ(j1.find("job")->number, 1.0);
    auto [s2, j2] = post("/v1/tenants/t-2/jobs",
                         "{\"kind\":\"memcached\",\"arrival\":2,"
                         "\"coresIdeal\":2,\"lcLoadRps\":20000,"
                         "\"lcLifetime\":120,\"lcQosUs\":500}");
    EXPECT_EQ(s2, 200);
    EXPECT_EQ(j2.find("job")->number, 2.0);
}

// ---------------------------------------------------------------------------
// Malformed input: always a structured 4xx, never a crash.

TEST_F(SrvApi, TruncatedBodyIs400BadJson)
{
    auto [status, json] =
        post("/v1/tenants", "{\"strategy\":\"HM\",\"scenario\":{");
    EXPECT_EQ(status, 400);
    EXPECT_EQ(errorCode(json), "bad_json");
}

TEST_F(SrvApi, EmptyBodyIs400)
{
    auto [status, json] = post("/v1/tenants", "");
    EXPECT_EQ(status, 400);
    EXPECT_EQ(errorCode(json), "empty_body");
}

TEST_F(SrvApi, NonObjectBodyIs422)
{
    auto [status, json] = post("/v1/tenants", "[1,2,3]");
    EXPECT_EQ(status, 422);
    EXPECT_EQ(errorCode(json), "invalid_body");
}

TEST_F(SrvApi, UnknownStrategyNameIs422)
{
    auto [status, json] =
        post("/v1/tenants", "{\"strategy\":\"YOLO\"}");
    EXPECT_EQ(status, 422);
    EXPECT_EQ(errorCode(json), "unknown_strategy");
    // The message names the valid alternatives.
    EXPECT_NE(json.find("error")->find("message")->string.find("HM"),
              std::string::npos);
}

TEST_F(SrvApi, UnknownScenarioKindIs422)
{
    auto [status, json] = post(
        "/v1/tenants",
        "{\"strategy\":\"HM\",\"scenario\":{\"kind\":\"chaotic\"}}");
    EXPECT_EQ(status, 422);
    EXPECT_EQ(errorCode(json), "unknown_scenario");
}

TEST_F(SrvApi, WrongFieldTypesAre422)
{
    // strategy as number
    auto [s1, j1] = post("/v1/tenants", "{\"strategy\":17}");
    EXPECT_EQ(s1, 422);
    EXPECT_EQ(errorCode(j1), "invalid_field");
    // duration as string
    auto [s2, j2] = post("/v1/tenants",
                         "{\"scenario\":{\"duration\":\"long\"}}");
    EXPECT_EQ(s2, 422);
    EXPECT_EQ(errorCode(j2), "invalid_field");
    // negative loadScale
    auto [s3, j3] = post("/v1/tenants",
                         "{\"scenario\":{\"loadScale\":-1}}");
    EXPECT_EQ(s3, 422);
    EXPECT_EQ(errorCode(j3), "invalid_field");
}

TEST_F(SrvApi, JobSpecValidation)
{
    createTenant("v");
    // Unknown app kind.
    auto [s1, j1] = post("/v1/tenants/v/jobs",
                         "{\"kind\":\"fortran-monolith\","
                         "\"arrival\":1}");
    EXPECT_EQ(s1, 422);
    EXPECT_EQ(errorCode(j1), "unknown_app");
    // Missing kind.
    auto [s2, j2] = post("/v1/tenants/v/jobs", "{\"arrival\":1}");
    EXPECT_EQ(s2, 422);
    EXPECT_EQ(errorCode(j2), "invalid_field");
    // Missing arrival.
    auto [s3, j3] = post("/v1/tenants/v/jobs",
                         "{\"kind\":\"memcached\"}");
    EXPECT_EQ(s3, 422);
    // Wrong sensitivity arity.
    auto [s4, j4] = post("/v1/tenants/v/jobs",
                         "{\"kind\":\"memcached\",\"arrival\":1,"
                         "\"sensitivity\":[0.5,0.5]}");
    EXPECT_EQ(s4, 422);
    // A valid job still works after all the garbage.
    auto [s5, j5] = post("/v1/tenants/v/jobs",
                         "{\"kind\":\"hadoop-svm\",\"arrival\":1,"
                         "\"coresIdeal\":2,\"idealDuration\":10}");
    EXPECT_EQ(s5, 200);
}

TEST_F(SrvApi, MonotonicViolationsAndDuplicatesAre409)
{
    createTenant("m");
    post("/v1/tenants/m/jobs",
         "{\"kind\":\"hadoop-svm\",\"arrival\":50,"
         "\"coresIdeal\":2,\"idealDuration\":10}");
    // Clock is now at 50: an earlier arrival must be rejected.
    auto [s1, j1] = post("/v1/tenants/m/jobs",
                         "{\"kind\":\"hadoop-svm\",\"arrival\":10,"
                         "\"coresIdeal\":2,\"idealDuration\":10}");
    EXPECT_EQ(s1, 409);
    EXPECT_EQ(errorCode(j1), "arrival_in_past");
    // Duplicate explicit id.
    auto [s2, j2] = post("/v1/tenants/m/jobs",
                         "{\"id\":1,\"kind\":\"hadoop-svm\","
                         "\"arrival\":60,\"coresIdeal\":2,"
                         "\"idealDuration\":10}");
    EXPECT_EQ(s2, 409);
    EXPECT_EQ(errorCode(j2), "duplicate_job");
}

TEST_F(SrvApi, AdvanceRejectsNonFiniteNegativeAndBackwards)
{
    createTenant("adv");
    // 1e309 overflows double to +inf; unguarded it would spin the
    // simulator forever and pin the tenant's strand.
    auto [s1, j1] = post("/v1/tenants/adv/advance", "{\"to\":1e309}");
    EXPECT_EQ(s1, 422);
    EXPECT_EQ(errorCode(j1), "invalid_field");
    auto [s2, j2] = post("/v1/tenants/adv/advance", "{\"to\":-5}");
    EXPECT_EQ(s2, 422);
    EXPECT_EQ(errorCode(j2), "invalid_field");

    auto [s3, j3] = post("/v1/tenants/adv/advance", "{\"to\":100}");
    ASSERT_EQ(s3, 200);
    EXPECT_DOUBLE_EQ(j3.find("now")->number, 100.0);
    // Backwards advance used to answer 200 with an unchanged clock;
    // virtual time is monotonic, so it is a structured 422 now.
    auto [s4, j4] = post("/v1/tenants/adv/advance", "{\"to\":50}");
    EXPECT_EQ(s4, 422);
    EXPECT_EQ(errorCode(j4), "clock_regression");
    // The clock did not move.
    auto [s5, j5] = post("/v1/tenants/adv/advance", "{\"to\":100}");
    EXPECT_EQ(s5, 200);
    EXPECT_DOUBLE_EQ(j5.find("now")->number, 100.0);
}

TEST(SrvApiLimits, AdvanceBeyondMaxHorizonIs422)
{
    obs::ProcessMetrics metrics;
    srv::ServeConfig config;
    config.shards = 2;
    config.threads = 2;
    config.httpWorkers = 2;
    config.maxAdvance = 1000.0;
    srv::ServeApp app(config, metrics);
    ASSERT_TRUE(app.start(0));
    srv::HttpClient client(app.boundPort());
    srv::ClientResponse r = client.post(
        "/v1/tenants",
        "{\"id\":\"h\",\"strategy\":\"HM\",\"scenario\":{"
        "\"kind\":\"static\",\"duration\":600,\"loadScale\":0.05},"
        "\"engine\":{\"seed\":42,\"useProfiling\":false}}");
    ASSERT_EQ(r.status, 201) << r.body;

    r = client.post("/v1/tenants/h/advance", "{\"to\":500}");
    EXPECT_EQ(r.status, 200) << r.body;
    // Delta 4500 > --max-advance 1000: shed before touching the
    // engine, so the strand stays responsive.
    r = client.post("/v1/tenants/h/advance", "{\"to\":5000}");
    EXPECT_EQ(r.status, 422);
    const obs::JsonValue v = obs::parseJson(r.body);
    EXPECT_EQ(v.find("error")->find("code")->string, "invalid_field");
    EXPECT_NE(v.find("error")->find("message")->string.find(
                  "--max-advance"),
              std::string::npos);
    // Within the horizon still works.
    r = client.post("/v1/tenants/h/advance", "{\"to\":1200}");
    EXPECT_EQ(r.status, 200) << r.body;
}

TEST_F(SrvApi, DeleteTenantFreesGaugeAndSeriesWithoutJournal)
{
    createTenant("keep");
    createTenant("drop");
    post("/v1/tenants/drop/jobs",
         "{\"kind\":\"hadoop-svm\",\"arrival\":1,\"coresIdeal\":2,"
         "\"idealDuration\":10}");
    srv::ClientResponse m = client_->get("/metrics");
    EXPECT_NE(m.body.find("hcloud_serve_sessions 2"),
              std::string::npos);
    EXPECT_NE(m.body.find("tenant=\"drop\""), std::string::npos);

    const srv::ClientResponse del = client_->del("/v1/tenants/drop");
    ASSERT_TRUE(del.ok);
    ASSERT_EQ(del.status, 200) << del.body;

    auto [s, j] = get("/v1/tenants/drop/report");
    EXPECT_EQ(s, 404);
    EXPECT_EQ(errorCode(j), "unknown_tenant");
    // Regression: the gauge steps down and the deleted tenant's
    // labeled series disappear from the scrape (no label leak).
    m = client_->get("/metrics");
    EXPECT_NE(m.body.find("hcloud_serve_sessions 1"),
              std::string::npos)
        << m.body;
    EXPECT_EQ(m.body.find("tenant=\"drop\""), std::string::npos)
        << m.body;
    EXPECT_NE(m.body.find("tenant=\"keep\""), std::string::npos);

    auto [listStatus, listJson] = get("/v1/tenants");
    EXPECT_EQ(listStatus, 200);
    ASSERT_EQ(listJson.find("tenants")->array.size(), 1u);
    EXPECT_EQ(listJson.find("tenants")->array[0].string, "keep");
}

TEST_F(SrvApi, UnknownTenantIs404DuplicateTenantIs409)
{
    auto [s1, j1] = post("/v1/tenants/ghost/jobs",
                         "{\"kind\":\"memcached\",\"arrival\":1}");
    EXPECT_EQ(s1, 404);
    EXPECT_EQ(errorCode(j1), "unknown_tenant");
    auto [s2, j2] = get("/v1/tenants/ghost/report");
    EXPECT_EQ(s2, 404);

    createTenant("dup");
    auto [s3, j3] = post("/v1/tenants",
                         "{\"id\":\"dup\",\"strategy\":\"HM\","
                         "\"scenario\":{\"kind\":\"static\","
                         "\"duration\":600,\"loadScale\":0.05}}");
    EXPECT_EQ(s3, 409);
    EXPECT_EQ(errorCode(j3), "duplicate_tenant");
}

TEST_F(SrvApi, TransportErrorsSpeakStructuredJsonToo)
{
    auto [s1, j1] = get("/v1/nope");
    EXPECT_EQ(s1, 404);
    EXPECT_EQ(errorCode(j1), "not_found");
    // Known path, wrong method.
    auto [s2, j2] = get("/v1/tenants/x/jobs");
    EXPECT_EQ(s2, 405);
    EXPECT_EQ(errorCode(j2), "method_not_allowed");
}

TEST_F(SrvApi, MetricsExposePerTenantSeries)
{
    createTenant("alpha");
    createTenant("beta");
    post("/v1/tenants/alpha/jobs",
         "{\"kind\":\"hadoop-svm\",\"arrival\":1,\"coresIdeal\":2,"
         "\"idealDuration\":10}");

    const srv::ClientResponse r = client_->get("/metrics");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("hcloud_serve_sessions 2"),
              std::string::npos)
        << r.body;
    EXPECT_NE(
        r.body.find(
            "hcloud_serve_jobs_submitted_total{tenant=\"alpha\"} 1"),
        std::string::npos)
        << r.body;
    EXPECT_NE(
        r.body.find(
            "hcloud_serve_jobs_submitted_total{tenant=\"beta\"} 0"),
        std::string::npos)
        << r.body;
    EXPECT_NE(
        r.body.find(
            "hcloud_serve_decisions_total{tenant=\"alpha\"} 1"),
        std::string::npos)
        << r.body;
}

TEST_F(SrvApi, GracefulStopIsIdempotentAndDrains)
{
    createTenant("z");
    app_->stop();
    app_->stop();
    EXPECT_FALSE(app_->running());
    EXPECT_EQ(app_->boundPort(), 0);
}

TEST_F(SrvApi, HealthzReportsBuildInfo)
{
    auto [status, json] = get("/healthz");
    EXPECT_EQ(status, 200);
    EXPECT_EQ(json.find("status")->stringOr(""), "ok");
    EXPECT_EQ(json.find("service")->stringOr(""), "hcloud_serve");
    EXPECT_GT(json.find("pid")->numberOr(0), 0.0);
    EXPECT_GE(json.find("uptimeSeconds")->numberOr(-1), 0.0);
    EXPECT_EQ(json.find("sessions")->numberOr(-1), 0.0);
    EXPECT_FALSE(json.find("spans")->boolOr(true));
    // Operational knobs an operator needs at a glance: durability state
    // and the default sampling cadence.
    EXPECT_FALSE(json.find("journal")->boolOr(true));
    EXPECT_EQ(json.find("dataDir")->stringOr("x"), "");
    EXPECT_EQ(json.find("fsync")->stringOr(""), "interval");
    EXPECT_EQ(json.find("maxSessions")->numberOr(-1), 0.0);
    EXPECT_DOUBLE_EQ(json.find("timelineCadence")->numberOr(0), 30.0);
}

// ---------------------------------------------------------------------------
// Timeline endpoint

TEST_F(SrvApi, TimelineServesSamplesAndPagesWithCursor)
{
    createTenant("tl");
    post("/v1/tenants/tl/jobs",
         "{\"kind\":\"hadoop-svm\",\"arrival\":1,\"coresIdeal\":2,"
         "\"idealDuration\":10}");
    post("/v1/tenants/tl/advance", "{\"to\":600}");

    auto [status, json] = get("/v1/tenants/tl/timeline");
    EXPECT_EQ(status, 200);
    EXPECT_EQ(json.find("tenant")->stringOr(""), "tl");
    // The fixture's default cadence (30 s) was normalized into the
    // session at create time, so sampling is on without the client
    // asking for it.
    EXPECT_TRUE(json.find("enabled")->boolOr(false));
    EXPECT_DOUBLE_EQ(json.find("cadence")->numberOr(0), 30.0);
    const double recorded = json.find("recorded")->numberOr(0);
    EXPECT_GE(recorded, 10.0);
    EXPECT_EQ(json.find("dropped")->numberOr(-1), 0.0);
    const obs::JsonValue* samples = json.find("samples");
    ASSERT_NE(samples, nullptr);
    ASSERT_EQ(static_cast<double>(samples->array.size()), recorded);
    for (std::size_t i = 0; i < samples->array.size(); ++i) {
        EXPECT_EQ(samples->array[i].find("seq")->numberOr(-1),
                  static_cast<double>(i));
        EXPECT_GT(samples->array[i].find("t")->numberOr(0), 0.0);
    }
    const double nextSince = json.find("nextSince")->numberOr(0);
    EXPECT_EQ(nextSince, recorded);

    // Paging from the returned cursor: nothing new yet.
    auto [s2, j2] = get("/v1/tenants/tl/timeline?since=" +
                        std::to_string(
                            static_cast<std::uint64_t>(nextSince)));
    EXPECT_EQ(s2, 200);
    EXPECT_TRUE(j2.find("samples")->array.empty());
    EXPECT_EQ(j2.find("nextSince")->numberOr(-1), nextSince);

    // Advancing makes the same cursor return only the new tail.
    post("/v1/tenants/tl/advance", "{\"to\":900}");
    auto [s3, j3] = get("/v1/tenants/tl/timeline?since=" +
                        std::to_string(
                            static_cast<std::uint64_t>(nextSince)));
    EXPECT_EQ(s3, 200);
    ASSERT_FALSE(j3.find("samples")->array.empty());
    EXPECT_EQ(j3.find("samples")->array[0].find("seq")->numberOr(-1),
              nextSince);

    // stride downsamples by seq (every stride-th absolute sample), so
    // it selects the same samples regardless of the cursor.
    auto [s4, j4] = get("/v1/tenants/tl/timeline?stride=4");
    EXPECT_EQ(s4, 200);
    ASSERT_FALSE(j4.find("samples")->array.empty());
    for (const obs::JsonValue& s : j4.find("samples")->array) {
        const auto seq =
            static_cast<std::uint64_t>(s.find("seq")->numberOr(1));
        EXPECT_EQ(seq % 4, 0u);
    }
}

TEST_F(SrvApi, TimelineUnknownTenantIs404AndBadQueryIs422)
{
    auto [s1, j1] = get("/v1/tenants/ghost/timeline");
    EXPECT_EQ(s1, 404);
    EXPECT_EQ(errorCode(j1), "unknown_tenant");

    createTenant("q");
    for (const char* bad :
         {"since=abc", "since=-1", "since=", "stride=0", "stride=-2",
          "stride=1x", "since=99999999999999999999"}) {
        auto [s, j] = get(std::string("/v1/tenants/q/timeline?") + bad);
        EXPECT_EQ(s, 422) << bad;
        EXPECT_EQ(errorCode(j), "invalid_query") << bad;
    }
}

TEST_F(SrvApi, TimelineExplicitPerSessionConfigOverridesDefault)
{
    // Explicit Off beats the daemon default.
    auto [cs, cj] = post(
        "/v1/tenants",
        "{\"id\":\"off\",\"strategy\":\"HM\",\"scenario\":{"
        "\"kind\":\"static\",\"duration\":600,\"loadScale\":0.05},"
        "\"engine\":{\"seed\":42,\"useProfiling\":false,"
        "\"timeline\":{\"enabled\":false}}}");
    EXPECT_EQ(cs, 201);
    post("/v1/tenants/off/advance", "{\"to\":300}");
    auto [s1, j1] = get("/v1/tenants/off/timeline");
    EXPECT_EQ(s1, 200);
    EXPECT_FALSE(j1.find("enabled")->boolOr(true));
    EXPECT_EQ(j1.find("recorded")->numberOr(-1), 0.0);
    EXPECT_TRUE(j1.find("samples")->array.empty());

    // Explicit cadence beats the daemon default too.
    auto [cs2, cj2] = post(
        "/v1/tenants",
        "{\"id\":\"fast\",\"strategy\":\"HM\",\"scenario\":{"
        "\"kind\":\"static\",\"duration\":600,\"loadScale\":0.05},"
        "\"engine\":{\"seed\":42,\"useProfiling\":false,"
        "\"timeline\":{\"enabled\":true,\"cadence\":10}}}");
    EXPECT_EQ(cs2, 201);
    post("/v1/tenants/fast/advance", "{\"to\":300}");
    auto [s2, j2] = get("/v1/tenants/fast/timeline");
    EXPECT_DOUBLE_EQ(j2.find("cadence")->numberOr(0), 10.0);
    EXPECT_GE(j2.find("recorded")->numberOr(0), 25.0);

    // Non-positive cadence is a structured 422 at create.
    auto [cs3, cj3] = post(
        "/v1/tenants",
        "{\"strategy\":\"HM\",\"engine\":{\"timeline\":{"
        "\"enabled\":true,\"cadence\":0}}}");
    EXPECT_EQ(cs3, 422);
    EXPECT_EQ(errorCode(cj3), "invalid_field");
}

TEST_F(SrvApi, MetricsExposeSimGaugesAndDeleteReclaimsThem)
{
    createTenant("sim");
    post("/v1/tenants/sim/jobs",
         "{\"kind\":\"hadoop-svm\",\"arrival\":1,\"coresIdeal\":2,"
         "\"idealDuration\":30}");
    post("/v1/tenants/sim/advance", "{\"to\":300}");

    srv::ClientResponse m = client_->get("/metrics");
    ASSERT_TRUE(m.ok);
    for (const char* gauge :
         {"hcloud_sim_now{tenant=\"sim\"}",
          "hcloud_sim_instances{tenant=\"sim\"}",
          "hcloud_sim_utilization{tenant=\"sim\"}",
          "hcloud_sim_quality_p50{tenant=\"sim\"}",
          "hcloud_sim_queue_length{tenant=\"sim\"}",
          "hcloud_sim_running_jobs{tenant=\"sim\"}",
          "hcloud_sim_spot_price{tenant=\"sim\"}",
          "hcloud_sim_qos_violations{tenant=\"sim\"}",
          "hcloud_sim_cost_total{tenant=\"sim\"}"}) {
        EXPECT_NE(m.body.find(gauge), std::string::npos) << gauge;
    }
    // The gauges reflect the advanced clock, not the create-time zero.
    const std::string needle = "hcloud_sim_now{tenant=\"sim\"} ";
    const std::size_t at = m.body.find(needle);
    ASSERT_NE(at, std::string::npos);
    EXPECT_GT(std::strtod(m.body.c_str() + at + needle.size(), nullptr),
              0.0)
        << "sim gauges were not refreshed by advance";

    const srv::ClientResponse del = client_->del("/v1/tenants/sim");
    ASSERT_EQ(del.status, 200) << del.body;
    m = client_->get("/metrics");
    // Family HELP/TYPE headers may legitimately remain; the labeled
    // series must not (label leak = unbounded scrape growth).
    EXPECT_EQ(m.body.find("tenant=\"sim\""), std::string::npos)
        << "deleted tenant leaked simulation gauge series";
}

TEST_F(SrvApi, StatuszRendersSessionsQueuesAndSlowest)
{
    createTenant("alpha");
    post("/v1/tenants/alpha/jobs",
         "{\"kind\":\"hadoop-svm\",\"arrival\":1,\"coresIdeal\":2,"
         "\"idealDuration\":10}");
    post("/v1/tenants/alpha/advance", "{\"to\":50}");

    const srv::ClientResponse r = client_->get("/statusz");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("hcloud serve status"), std::string::npos)
        << r.body;
    EXPECT_NE(r.body.find("strand queue depths:"), std::string::npos);
    EXPECT_NE(r.body.find("alpha"), std::string::npos);
    EXPECT_NE(r.body.find("slowest recent requests"),
              std::string::npos);
    // The submit request's route pattern shows in the slow table.
    EXPECT_NE(r.body.find("/v1/tenants/*/jobs"), std::string::npos)
        << r.body;
}

TEST_F(SrvApi, PerRouteHistogramsOnMetrics)
{
    createTenant("alpha");
    post("/v1/tenants/alpha/jobs",
         "{\"kind\":\"hadoop-svm\",\"arrival\":1,\"coresIdeal\":2,"
         "\"idealDuration\":10}");
    get("/healthz");

    const srv::ClientResponse r = client_->get("/metrics");
    ASSERT_TRUE(r.ok);
    // renderPromText orders labels alphabetically.
    EXPECT_NE(r.body.find("hcloud_http_request_seconds_bucket{"
                          "method=\"POST\","
                          "route=\"/v1/tenants/*/jobs\""),
              std::string::npos)
        << r.body;
    EXPECT_NE(r.body.find("hcloud_http_stage_seconds_bucket{"
                          "stage=\"handle\""),
              std::string::npos);
    EXPECT_NE(r.body.find("hcloud_http_responses_total{"
                          "route=\"/healthz\",status=\"200\"} 1"),
              std::string::npos)
        << r.body;
}

/** Full span-tracing path: its own app with a sink configured. */
class SrvSpans : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        spanPath_ = "/tmp/hcloud_test_srv_spans_" +
                    std::to_string(::getpid()) + ".jsonl";
        srv::ServeConfig config;
        config.shards = 2;
        config.threads = 2;
        config.httpWorkers = 2;
        config.spanPath = spanPath_;
        app_ = std::make_unique<srv::ServeApp>(config, metrics_);
        ASSERT_TRUE(app_->spans().enabled());
        ASSERT_TRUE(app_->start(0));
        client_ = std::make_unique<srv::HttpClient>(app_->boundPort());
    }

    void TearDown() override { std::remove(spanPath_.c_str()); }

    /** All span/event records, grouped by trace id. Stops the app:
     *  span emission trails the response the client saw, so only a
     *  full worker drain makes the sink complete. */
    std::map<std::uint64_t, std::vector<obs::JsonValue>> spansByTrace()
    {
        app_->stop();
        std::map<std::uint64_t, std::vector<obs::JsonValue>> byTrace;
        std::ifstream in(spanPath_);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            obs::JsonValue v = obs::parseJson(line);
            const obs::JsonValue* trace = v.find("trace");
            if (!trace) {
                ADD_FAILURE() << "record without trace id: " << line;
                continue;
            }
            byTrace[static_cast<std::uint64_t>(trace->numberOr(0))]
                .push_back(std::move(v));
        }
        return byTrace;
    }

    static const obs::JsonValue*
    findSpan(const std::vector<obs::JsonValue>& records,
             const std::string& name)
    {
        for (const obs::JsonValue& v : records) {
            const obs::JsonValue* span = v.find("span");
            if (span && span->stringOr("") == name)
                return &v;
        }
        return nullptr;
    }

    std::string spanPath_;
    obs::ProcessMetrics metrics_;
    std::unique_ptr<srv::ServeApp> app_;
    std::unique_ptr<srv::HttpClient> client_;
};

TEST_F(SrvSpans, RequestsJoinEngineDecisionsByTraceId)
{
    client_->post("/v1/tenants",
                  "{\"id\":\"alpha\",\"strategy\":\"HM\","
                  "\"scenario\":{\"kind\":\"static\",\"duration\":600,"
                  "\"loadScale\":0.05},"
                  "\"engine\":{\"seed\":42,\"useProfiling\":false}}");
    client_->post("/v1/tenants/alpha/jobs",
                  "{\"kind\":\"hadoop-svm\",\"arrival\":1,"
                  "\"coresIdeal\":2,\"idealDuration\":10}");
    client_->post("/v1/tenants/alpha/advance", "{\"to\":50}");

    auto byTrace = spansByTrace();
    ASSERT_EQ(byTrace.size(), 3u);

    bool sawSubmitJoin = false;
    for (const auto& [trace, records] : byTrace) {
        const obs::JsonValue* root = findSpan(records, "http.request");
        ASSERT_NE(root, nullptr);

        // The four stage spans sum exactly to the root's wall time
        // (ISSUE acceptance: within 5%; construction makes it exact).
        double stageSum = 0.0;
        for (const char* stage :
             {"http.read", "http.route", "http.handle", "http.write"}) {
            const obs::JsonValue* span = findSpan(records, stage);
            ASSERT_NE(span, nullptr) << stage;
            stageSum += span->find("durNs")->numberOr(0);
        }
        const double rootDur = root->find("durNs")->numberOr(0);
        EXPECT_NEAR(stageSum, rootDur, 0.05 * rootDur);

        // The submit request's trace joins: strand spans under the
        // handler, engine.submit inside the strand, and decision
        // events stamped with this trace id.
        if (root->find("detail")->stringOr("").find("/jobs") !=
            std::string::npos) {
            sawSubmitJoin = true;
            EXPECT_NE(findSpan(records, "strand.wait"), nullptr);
            EXPECT_NE(findSpan(records, "strand.exec"), nullptr);
            EXPECT_NE(findSpan(records, "engine.submit"), nullptr);
            bool sawDecision = false;
            for (const obs::JsonValue& v : records) {
                const obs::JsonValue* event = v.find("event");
                if (event && event->stringOr("") == "decision")
                    sawDecision = true;
            }
            EXPECT_TRUE(sawDecision);
        }
    }
    EXPECT_TRUE(sawSubmitJoin);
}

TEST_F(SrvSpans, HealthzReportsSpansEnabledAndStatuszCountsRecords)
{
    const srv::ClientResponse health = client_->get("/healthz");
    EXPECT_NE(health.body.find("\"spans\":true"), std::string::npos);

    client_->get("/healthz"); // at least one fully recorded request
    app_->spans().flush();
    const srv::ClientResponse status = client_->get("/statusz");
    EXPECT_NE(status.body.find(spanPath_), std::string::npos)
        << status.body;
}

TEST_F(SrvSpans, DecisionTraceStampsClearAfterRequest)
{
    client_->post("/v1/tenants",
                  "{\"id\":\"alpha\",\"strategy\":\"HM\","
                  "\"scenario\":{\"kind\":\"static\",\"duration\":600,"
                  "\"loadScale\":0.05},"
                  "\"engine\":{\"seed\":42,\"useProfiling\":false}}");
    client_->post("/v1/tenants/alpha/jobs",
                  "{\"kind\":\"hadoop-svm\",\"arrival\":1,"
                  "\"coresIdeal\":2,\"idealDuration\":10}");
    // Session-internal work outside any request must not inherit a
    // stale trace id: the stamp is scoped to each API call.
    const obs::JsonValue report = obs::parseJson(
        client_->get("/v1/tenants/alpha/report").body);
    EXPECT_NE(report.find("schemaVersion"), nullptr);
}

} // namespace
} // namespace hcloud
