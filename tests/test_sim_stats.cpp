/**
 * @file
 * Unit tests for the statistics containers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace hcloud::sim {
namespace {

TEST(OnlineStats, BasicMoments)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeEquivalentToCombinedStream)
{
    Rng rng(3);
    OnlineStats all;
    OnlineStats left;
    OnlineStats right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(5.0, 3.0);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SampleSet, QuantilesInterpolateLikeNumpy)
{
    SampleSet s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.5);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 1.75);
    EXPECT_DOUBLE_EQ(s.percentile(75.0), 3.25);
}

TEST(SampleSet, EmptyQuantileReturnsZeroLikeMinMax)
{
    // Regression: this used to be an assert-only guard, so NDEBUG builds
    // indexed past the end of an empty sorted vector (fig01-style cells
    // where every job was killed hit it via boxplot()).
    const SampleSet s;
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(95.0), 0.0);
    const BoxplotSummary b = s.boxplot();
    EXPECT_EQ(b.count, 0u);
    EXPECT_DOUBLE_EQ(b.p95, 0.0);
}

TEST(SampleSet, SingleSampleQuantiles)
{
    SampleSet s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(SampleSet, QuantileAfterLateInsertInvalidatesCache)
{
    SampleSet s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SampleSet, BoxplotSummary)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    const BoxplotSummary b = s.boxplot();
    EXPECT_EQ(b.count, 100u);
    EXPECT_NEAR(b.p5, 5.95, 1e-9);
    EXPECT_NEAR(b.p25, 25.75, 1e-9);
    EXPECT_DOUBLE_EQ(b.mean, 50.5);
    EXPECT_NEAR(b.p75, 75.25, 1e-9);
    EXPECT_NEAR(b.p95, 95.05, 1e-9);
}

TEST(SampleSet, EmpiricalCdf)
{
    SampleSet s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.cdf(2.0), 0.5);
    EXPECT_DOUBLE_EQ(s.cdf(2.5), 0.5);
    EXPECT_DOUBLE_EQ(s.cdf(10.0), 1.0);
}

TEST(SampleSet, MergeAndClear)
{
    SampleSet a;
    SampleSet b;
    a.add(1.0);
    b.add(2.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    a.clear();
    EXPECT_TRUE(a.empty());
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_DOUBLE_EQ(h.binWidth(), 2.0);
    h.add(1.0);   // bin 0
    h.add(3.0);   // bin 1
    h.add(-5.0);  // clamps to bin 0
    h.add(99.0);  // clamps to bin 4
    EXPECT_DOUBLE_EQ(h.count(0), 2.0);
    EXPECT_DOUBLE_EQ(h.count(1), 1.0);
    EXPECT_DOUBLE_EQ(h.count(4), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, WeightedMass)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25, 3.0);
    h.add(0.75, 1.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

/** Quantiles must be order statistics: bounded and monotone in q. */
class QuantileMonotonicity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QuantileMonotonicity, Holds)
{
    Rng rng(GetParam());
    SampleSet s;
    for (int i = 0; i < 500; ++i)
        s.add(rng.lognormal(0.0, 1.5));
    double prev = s.quantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double v = s.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_DOUBLE_EQ(s.quantile(0.0), s.min());
    EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotonicity,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

} // namespace
} // namespace hcloud::sim
