/**
 * @file
 * Tests for the core support components: cluster state, placement,
 * retention, queue estimator, quality tracker, soft limit, QoS monitor.
 */

#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "core/cluster.hpp"
#include "core/placement.hpp"
#include "core/qos_monitor.hpp"
#include "core/quality_tracker.hpp"
#include "core/queue_estimator.hpp"
#include "core/retention.hpp"
#include "core/soft_limit.hpp"
#include "sim/simulator.hpp"

namespace hcloud::core {
namespace {

const cloud::InstanceType&
typeNamed(const char* name)
{
    return cloud::InstanceTypeCatalog::defaultCatalog().byName(name);
}

class CoreComponents : public ::testing::Test
{
  protected:
    sim::Simulator simulator;
    cloud::CloudProvider provider{simulator,
                                  cloud::ProviderProfile::gce(), {},
                                  sim::Rng(42)};
};

TEST_F(CoreComponents, ClusterStateAccounting)
{
    ClusterState cluster;
    auto pool = provider.reserveDedicated(typeNamed("st16"), 2);
    cluster.setReservedPool(pool);
    EXPECT_DOUBLE_EQ(cluster.reservedCapacity(), 32.0);
    EXPECT_DOUBLE_EQ(cluster.reservedUtilization(), 0.0);
    pool[0]->addResident(1, {8.0, 0.4}, 0.0);
    EXPECT_DOUBLE_EQ(cluster.reservedUsed(), 8.0);
    EXPECT_DOUBLE_EQ(cluster.reservedUtilization(), 0.25);

    cloud::Instance* od = provider.acquire(typeNamed("st4"), nullptr);
    cluster.addOnDemand(od);
    EXPECT_DOUBLE_EQ(cluster.onDemandCapacity(), 4.0);
    od->addResident(2, {2.0, 0.3}, 0.0);
    EXPECT_DOUBLE_EQ(cluster.onDemandUsed(), 2.0);
    cluster.removeOnDemand(od);
    EXPECT_DOUBLE_EQ(cluster.onDemandCapacity(), 0.0);
}

TEST_F(CoreComponents, LeastLoadedPicksEmptiest)
{
    auto pool = provider.reserveDedicated(typeNamed("st16"), 3);
    pool[0]->addResident(1, {10.0, 0.3}, 0.0);
    pool[1]->addResident(2, {4.0, 0.3}, 0.0);
    EXPECT_EQ(leastLoaded(pool, 4.0), pool[2]);
    // Demand larger than any free slot: nullptr.
    pool[2]->addResident(3, {14.0, 0.3}, 0.0);
    EXPECT_EQ(leastLoaded(pool, 13.0), nullptr);
}

TEST_F(CoreComponents, QualityAwareFitPrefersTightQualifying)
{
    auto pool = provider.reserveDedicated(typeNamed("st16"), 3);
    pool[0]->addResident(1, {10.0, 0.2}, 0.0); // tight: 6 free
    pool[1]->addResident(2, {2.0, 0.2}, 0.0);  // loose: 14 free
    cloud::Instance* pick =
        qualityAwareFit(pool, 4.0, 0.5, 0.5, simulator.now());
    EXPECT_EQ(pick, pool[0]) << "tightest qualifying instance wins";
    // Impossible quality: falls back to best-quality with room.
    cloud::Instance* fallback =
        qualityAwareFit(pool, 4.0, 0.5, 0.999, simulator.now());
    EXPECT_NE(fallback, nullptr);
}

TEST(RequiredQuality, InterpolatesWithJobQuality)
{
    EXPECT_DOUBLE_EQ(requiredQuality(0.0), 0.55);
    EXPECT_DOUBLE_EQ(requiredQuality(1.0), 0.95);
    EXPECT_LT(requiredQuality(0.3), requiredQuality(0.8));
}

TEST_F(CoreComponents, RetentionTimeoutAndQualityGate)
{
    RetentionPolicy policy(10.0, 0.7);
    const sim::Duration retention =
        policy.retention(typeNamed("st16"), provider.spinUp());
    EXPECT_NEAR(retention, 10.0 * provider.spinUp().median(
                                      typeNamed("st16")), 1e-9);

    cloud::Instance* inst = provider.acquire(typeNamed("st16"), nullptr);
    simulator.run(); // finish spin-up
    inst->addResident(1, {4.0, 0.3}, simulator.now());
    EXPECT_FALSE(policy.shouldRelease(*inst, provider.spinUp(),
                                      simulator.now()))
        << "occupied instances are never released";
    inst->removeResident(1, simulator.now());
    const bool worthy = policy.retainWorthy(*inst, simulator.now());
    if (worthy) {
        EXPECT_FALSE(policy.shouldRelease(*inst, provider.spinUp(),
                                          simulator.now()));
        EXPECT_TRUE(policy.shouldRelease(
            *inst, provider.spinUp(),
            simulator.now() + retention + 1.0));
    } else {
        EXPECT_TRUE(policy.shouldRelease(*inst, provider.spinUp(),
                                         simulator.now()));
    }
}

TEST_F(CoreComponents, RetentionNeverReleasesSpinningUp)
{
    RetentionPolicy policy(0.0, 0.99); // maximally eager
    cloud::Instance* inst = provider.acquire(typeNamed("st16"), nullptr);
    EXPECT_FALSE(policy.shouldRelease(*inst, provider.spinUp(), 1.0));
}

TEST(QueueEstimator, PoissonRateAndQuantiles)
{
    QueueEstimator estimator;
    const auto& st8 = typeNamed("st8");
    for (int i = 1; i <= 100; ++i)
        estimator.recordRelease(st8, i * 2.0); // 0.5 releases/sec
    const sim::Time now = 200.0;
    EXPECT_NEAR(estimator.releaseRate(st8, now), 0.5, 0.1);
    // Quantiles are monotone in p.
    EXPECT_LT(estimator.waitQuantile(st8, 0.5, now),
              estimator.waitQuantile(st8, 0.99, now));
    // Availability CDF is monotone and sane.
    EXPECT_LT(estimator.probAvailableWithin(st8, 0.5, now),
              estimator.probAvailableWithin(st8, 5.0, now));
    EXPECT_NEAR(estimator.probAvailableWithin(st8, 1.4, now), 0.5, 0.15);
}

TEST(QueueEstimator, NoDataMeansUnknown)
{
    QueueEstimator estimator;
    EXPECT_EQ(estimator.waitQuantile(typeNamed("st4"), 0.99, 10.0),
              sim::kTimeNever);
    EXPECT_DOUBLE_EQ(
        estimator.probAvailableWithin(typeNamed("st4"), 10.0, 10.0), 0.0);
}

TEST(QueueEstimator, OldReleasesAgeOut)
{
    QueueEstimator estimator;
    const auto& st4 = typeNamed("st4");
    for (int i = 1; i <= 20; ++i)
        estimator.recordRelease(st4, i * 1.0);
    EXPECT_GT(estimator.releaseRate(st4, 30.0), 0.0);
    // Far beyond the window, the rate decays to zero.
    EXPECT_DOUBLE_EQ(estimator.releaseRate(st4, 5000.0), 0.0);
}

TEST(QueueEstimator, MeasuredWaitsRecorded)
{
    QueueEstimator estimator;
    estimator.recordMeasuredWait(typeNamed("st16"), 3.0);
    estimator.recordMeasuredWait(typeNamed("st16"), 5.0);
    EXPECT_EQ(estimator.measuredWaits(typeNamed("st16")).count(), 2u);
    EXPECT_TRUE(estimator.measuredWaits(typeNamed("st4")).empty());
}

TEST(QualityTracker, PriorsThenObservations)
{
    QualityTracker tracker(cloud::ProviderProfile::gce(), sim::Rng(3));
    // Priors alone give a sensible per-size ordering.
    const double small = tracker.qualityAtConfidence(typeNamed("st1"));
    const double large = tracker.qualityAtConfidence(typeNamed("st16"));
    EXPECT_LT(small, large);
    EXPECT_EQ(tracker.samples(typeNamed("st1")),
              QualityTracker::kPriorSamples);
    // Feeding terrible observations drags the estimate down.
    for (int i = 0; i < 400; ++i)
        tracker.record(typeNamed("st16"), 0.2);
    EXPECT_LT(tracker.qualityAtConfidence(typeNamed("st16")), 0.25);
}

TEST(QualityTracker, TighterConfidenceReportsLowerQuality)
{
    QualityTracker tracker(cloud::ProviderProfile::gce(), sim::Rng(3));
    const auto& st4 = typeNamed("st4");
    EXPECT_LE(tracker.qualityAtConfidence(st4, 0.99),
              tracker.qualityAtConfidence(st4, 0.90));
    EXPECT_LE(tracker.qualityAtConfidence(st4, 0.90),
              tracker.qualityAtConfidence(st4, 0.50));
}

TEST(SoftLimit, DropsUnderQueueingRecoversWhenCalm)
{
    SoftLimitController controller;
    const double initial = controller.softLimit();
    for (int i = 0; i < 20; ++i)
        controller.update(50, i * 2.0);
    EXPECT_LT(controller.softLimit(), initial);
    EXPECT_GE(controller.softLimit(), SoftLimitController::kMin);
    const double low = controller.softLimit();
    for (int i = 20; i < 600; ++i)
        controller.update(0, i * 2.0);
    EXPECT_GT(controller.softLimit(), low);
    EXPECT_LE(controller.softLimit(), SoftLimitController::kMax);
    EXPECT_FALSE(controller.history().empty());
}

TEST(QosMonitorTest, EscalatesAfterSustainedViolations)
{
    QosMonitor monitor(3, 1);
    // Two violations: still watching.
    EXPECT_EQ(monitor.check(1, true, true, 0), QosAction::None);
    EXPECT_EQ(monitor.check(1, true, true, 0), QosAction::None);
    // Third: boost (capacity available).
    EXPECT_EQ(monitor.check(1, true, true, 0), QosAction::Boost);
    // A healthy check resets the streak.
    EXPECT_EQ(monitor.check(1, false, true, 0), QosAction::None);
    EXPECT_EQ(monitor.check(1, true, true, 0), QosAction::None);
}

TEST(QosMonitorTest, ReschedulesWhenBoostImpossible)
{
    QosMonitor monitor(2, 1);
    EXPECT_EQ(monitor.check(5, true, false, 0), QosAction::None);
    EXPECT_EQ(monitor.check(5, true, false, 0), QosAction::Reschedule);
    // Budget exhausted: no further reschedules.
    EXPECT_EQ(monitor.check(5, true, false, 1), QosAction::None);
    EXPECT_EQ(monitor.check(5, true, false, 1), QosAction::None);
}

TEST(QosMonitorTest, ForgetDropsState)
{
    QosMonitor monitor(2, 1);
    monitor.check(9, true, true, 0);
    EXPECT_EQ(monitor.tracked(), 1u);
    monitor.forget(9);
    EXPECT_EQ(monitor.tracked(), 0u);
}

} // namespace
} // namespace hcloud::core
