/**
 * @file
 * Unit tests for machines, instances, spin-up and external load.
 */

#include <gtest/gtest.h>

#include "cloud/external_load.hpp"
#include "cloud/instance.hpp"
#include "cloud/machine.hpp"
#include "cloud/provider_profile.hpp"
#include "cloud/spin_up.hpp"
#include "sim/stats.hpp"

namespace hcloud::cloud {
namespace {

const InstanceType&
typeNamed(const char* name)
{
    return InstanceTypeCatalog::defaultCatalog().byName(name);
}

TEST(SizeCurve, InterpolatesAndClamps)
{
    SizeCurve curve{{1, 10.0}, {2, 20.0}, {4, 40.0}};
    EXPECT_DOUBLE_EQ(curve.at(0.5), 10.0); // clamp low
    EXPECT_DOUBLE_EQ(curve.at(1.0), 10.0);
    EXPECT_DOUBLE_EQ(curve.at(1.5), 15.0);
    EXPECT_DOUBLE_EQ(curve.at(3.0), 30.0);
    EXPECT_DOUBLE_EQ(curve.at(16.0), 40.0); // clamp high
}

TEST(ExternalLoad, BoundedAndAroundMean)
{
    ExternalLoadConfig cfg;
    cfg.meanUtilization = 0.25;
    cfg.band = 0.10;
    ExternalLoadModel model(cfg, sim::Rng(3));
    sim::OnlineStats stats;
    for (int i = 1; i <= 5000; ++i) {
        const double u = model.utilization(i * 10.0);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
        stats.add(u);
    }
    EXPECT_NEAR(stats.mean(), 0.25, 0.02);
    // Fluctuation should roughly stay within the +/-10% band (2 sigma).
    EXPECT_NEAR(stats.stddev(), 0.05, 0.02);
}

TEST(ExternalLoad, BurstsRaiseUtilization)
{
    ExternalLoadConfig calm;
    calm.burstInterval = 0.0;
    ExternalLoadConfig bursty = calm;
    bursty.burstInterval = 120.0;
    bursty.burstMagnitude = 0.4;
    bursty.burstDuration = 30.0;
    ExternalLoadModel a(calm, sim::Rng(5));
    ExternalLoadModel b(bursty, sim::Rng(5));
    double sum_a = 0.0;
    double sum_b = 0.0;
    for (int i = 1; i <= 2000; ++i) {
        sum_a += a.utilization(i * 5.0);
        sum_b += b.utilization(i * 5.0);
    }
    EXPECT_GT(sum_b, sum_a);
}

TEST(Machine, AllocationInvariants)
{
    Machine m(1, /*shared=*/true, {}, sim::Rng(1));
    EXPECT_EQ(m.freeVcpus(), kMachineVcpus);
    EXPECT_TRUE(m.allocate(10));
    EXPECT_EQ(m.freeVcpus(), 6);
    EXPECT_FALSE(m.allocate(7));
    EXPECT_TRUE(m.allocate(6));
    EXPECT_EQ(m.freeVcpus(), 0);
    m.free(16);
    EXPECT_EQ(m.freeVcpus(), 16);
}

TEST(Machine, DedicatedSeesLessExternalLoad)
{
    ExternalLoadConfig cfg;
    cfg.meanUtilization = 0.4;
    Machine shared(1, true, cfg, sim::Rng(2));
    Machine dedicated(2, false, cfg, sim::Rng(2));
    double shared_sum = 0.0;
    double dedicated_sum = 0.0;
    for (int i = 1; i <= 500; ++i) {
        shared_sum += shared.externalUtilization(i * 10.0);
        dedicated_sum += dedicated.externalUtilization(i * 10.0);
    }
    EXPECT_LT(dedicated_sum, shared_sum);
}

TEST(SpinUp, MedianInPaperRangeAndSizeOrdered)
{
    const ProviderProfile gce = ProviderProfile::gce();
    SpinUpModel model(gce, sim::Rng(7));
    const double m16 = model.median(typeNamed("st16"));
    const double m1 = model.median(typeNamed("st1"));
    EXPECT_GE(m16, 12.0);
    EXPECT_LE(m16, 19.0);
    EXPECT_GT(m1, m16) << "smaller instances spin up slower";
}

TEST(SpinUp, SampleDistributionHasPaperTail)
{
    const ProviderProfile gce = ProviderProfile::gce();
    SpinUpModel model(gce, sim::Rng(7));
    sim::SampleSet samples;
    for (int i = 0; i < 20000; ++i)
        samples.add(model.sample(typeNamed("st16")));
    // Typical draws near the median; p95 out at ~2 minutes.
    EXPECT_NEAR(samples.quantile(0.5), 12.5, 2.0);
    EXPECT_GT(samples.quantile(0.95), 60.0);
    EXPECT_LT(samples.quantile(0.95), 220.0);
}

TEST(SpinUp, ScaleAndFixedOverride)
{
    SpinUpModel model(ProviderProfile::gce(), sim::Rng(7));
    const double base = model.median(typeNamed("st16"));
    model.setScale(2.0);
    EXPECT_DOUBLE_EQ(model.median(typeNamed("st16")), 2.0 * base);
    model.setFixedOverride(0.0);
    EXPECT_DOUBLE_EQ(model.sample(typeNamed("st16")), 0.0);
    model.setFixedOverride(30.0);
    EXPECT_DOUBLE_EQ(model.sample(typeNamed("st1")), 30.0);
}

TEST(Instance, QualityBoundedAndSpatialFixed)
{
    const ProviderProfile gce = ProviderProfile::gce();
    Machine host(1, true, {}, sim::Rng(1));
    host.allocate(4);
    Instance inst(1, typeNamed("st4"), gce, &host, false, sim::Rng(11),
                  0.0);
    const double spatial = inst.spatialQuality();
    EXPECT_GT(spatial, 0.0);
    EXPECT_LE(spatial, 1.0);
    for (int i = 1; i <= 100; ++i) {
        const double q = inst.baseQuality(i * 10.0);
        EXPECT_GE(q, 0.02);
        EXPECT_LE(q, 1.0);
    }
    EXPECT_DOUBLE_EQ(inst.spatialQuality(), spatial);
}

TEST(Instance, SmallInstancesDeliverLowerQuality)
{
    const ProviderProfile gce = ProviderProfile::gce();
    sim::OnlineStats small;
    sim::OnlineStats large;
    for (int i = 0; i < 200; ++i) {
        Machine shared(1, true, {}, sim::Rng(100 + i));
        Machine dedicated(2, false, {}, sim::Rng(300 + i));
        Instance s(1, typeNamed("st1"), gce, &shared, false,
                   sim::Rng(1000 + i), 0.0);
        Instance l(2, typeNamed("st16"), gce, &dedicated, false,
                   sim::Rng(2000 + i), 0.0);
        small.add(s.effectiveQuality(100.0, 0.5, std::nullopt));
        large.add(l.effectiveQuality(100.0, 0.5, std::nullopt));
    }
    EXPECT_LT(small.mean() + 0.15, large.mean());
}

TEST(Instance, ResidentAccounting)
{
    const ProviderProfile gce = ProviderProfile::gce();
    Machine host(1, false, {}, sim::Rng(1));
    host.allocate(16);
    Instance inst(1, typeNamed("st16"), gce, &host, true, sim::Rng(5),
                  0.0);
    EXPECT_TRUE(inst.idle());
    EXPECT_DOUBLE_EQ(inst.coresFree(), 16.0);

    EXPECT_TRUE(inst.addResident(1, {6.0, 0.5}, 1.0));
    EXPECT_TRUE(inst.addResident(2, {8.0, 0.3}, 2.0));
    EXPECT_FALSE(inst.addResident(3, {4.0, 0.2}, 3.0)) << "must not fit";
    EXPECT_DOUBLE_EQ(inst.coresUsed(), 14.0);
    EXPECT_EQ(inst.idleSince(), sim::kTimeNever);

    inst.resizeResident(1, 7.0);
    EXPECT_DOUBLE_EQ(inst.coresUsed(), 15.0);

    inst.removeResident(1, 4.0);
    inst.removeResident(2, 5.0);
    EXPECT_TRUE(inst.idle());
    EXPECT_DOUBLE_EQ(inst.coresUsed(), 0.0);
    EXPECT_DOUBLE_EQ(inst.idleSince(), 5.0);
}

TEST(Instance, CoResidentsRaisePressure)
{
    const ProviderProfile gce = ProviderProfile::gce();
    Machine host(1, false, {}, sim::Rng(1));
    host.allocate(16);
    Instance inst(1, typeNamed("st16"), gce, &host, true, sim::Rng(5),
                  0.0);
    const double alone = inst.interferencePressure(10.0, 7);
    inst.addResident(8, {8.0, 0.8}, 10.0);
    const double crowded = inst.interferencePressure(10.0, 7);
    EXPECT_GT(crowded, alone);
    // A job never presses on itself.
    const double self_view = inst.interferencePressure(10.0, 8);
    EXPECT_NEAR(self_view, alone, 1e-9);
}

TEST(Instance, EffectiveQualityDecreasesWithSensitivity)
{
    const ProviderProfile gce = ProviderProfile::gce();
    Machine host(1, true, {}, sim::Rng(1));
    host.allocate(2);
    Instance inst(1, typeNamed("st2"), gce, &host, false, sim::Rng(5),
                  0.0);
    const double tolerant =
        inst.effectiveQuality(50.0, 0.1, std::nullopt);
    const double sensitive =
        inst.effectiveQuality(50.0, 0.9, std::nullopt);
    EXPECT_LT(sensitive, tolerant);
}

TEST(Instance, Ec2MicroSometimesFaulty)
{
    const ProviderProfile ec2 = ProviderProfile::ec2();
    int faulty = 0;
    for (int i = 0; i < 300; ++i) {
        Machine host(1, true, {}, sim::Rng(i));
        host.allocate(1);
        Instance inst(1, typeNamed("micro"), ec2, &host, false,
                      sim::Rng(5000 + i), 0.0);
        faulty += inst.faulty();
    }
    // 10% kill probability: expect a meaningful but minority share.
    EXPECT_GT(faulty, 8);
    EXPECT_LT(faulty, 90);
}

} // namespace
} // namespace hcloud::cloud
