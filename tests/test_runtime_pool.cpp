/**
 * @file
 * Tests for the runtime thread pool: task completion, ordered parallel
 * maps, exception propagation, graceful shutdown under load, the
 * HCLOUD_THREADS=1 serial fallback, strict HCLOUD_THREADS validation
 * (parseThreadCount) and the process-metrics instrumentation
 * (hcloud_pool_* gauges returning to their pre-pool values).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/process_metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace hcloud::runtime {
namespace {

/** Scoped setenv/unsetenv for HCLOUD_THREADS. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 50 * (batch + 1));
    }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, 1, 257, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(hits[0].load(), 0);
    for (std::size_t i = 1; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelMapPreservesSubmissionOrder)
{
    ThreadPool pool(4);
    const auto out = parallelMap(pool, 100, [](std::size_t i) {
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, ParallelMapOnEmptyRange)
{
    ThreadPool pool(2);
    const auto out =
        parallelMap(pool, 0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, SubmitExceptionSurfacesOnWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelMapRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            parallelMap(pool, 64, [](std::size_t i) {
                if (i == 11 || i == 12 || i == 63)
                    throw std::runtime_error(std::to_string(i));
                return i;
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            // Deterministic selection regardless of scheduling.
            EXPECT_STREQ(e.what(), "11");
        }
    }
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(pool, 0, 100,
                             [](std::size_t i) {
                                 if (i == 40)
                                     throw std::logic_error("x");
                             }),
                 std::logic_error);
}

TEST(ThreadPool, GracefulShutdownDrainsQueueUnderLoad)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 300; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                ++count;
            });
        }
        // Destructor must finish all queued work before joining.
    }
    EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_TRUE(pool.serial());
    EXPECT_EQ(pool.size(), 0u);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(ran_on, caller);
    // Inline exceptions still surface through wait().
    pool.submit([] { throw std::runtime_error("serial"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // And parallelMap degenerates to an ordered serial loop.
    const auto out =
        parallelMap(pool, 10, [](std::size_t i) { return i + 1; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i + 1);
}

TEST(ThreadPool, EnvKnobForcesSerialFallback)
{
    ScopedEnv env("HCLOUD_THREADS", "1");
    EXPECT_EQ(defaultThreadCount(), 1u);
    ThreadPool pool; // 0 = auto -> env knob -> serial
    EXPECT_TRUE(pool.serial());
}

TEST(ThreadPool, EnvKnobParsesWorkerCount)
{
    ScopedEnv env("HCLOUD_THREADS", "6");
    EXPECT_EQ(defaultThreadCount(), 6u);
    ThreadPool pool;
    EXPECT_EQ(pool.size(), 6u);
}

TEST(ThreadPool, ParseThreadCountAcceptsPositiveIntegers)
{
    ThreadCountError error;
    EXPECT_EQ(parseThreadCount("1", &error), 1u);
    EXPECT_EQ(parseThreadCount("16", &error), 16u);
    EXPECT_EQ(parseThreadCount("0008", &error), 8u);
}

TEST(ThreadPool, ParseThreadCountRejectsMalformedWithReason)
{
    ThreadCountError error;
    EXPECT_FALSE(parseThreadCount("", &error));
    EXPECT_EQ(error.value, "");
    EXPECT_EQ(error.reason, "empty value");

    EXPECT_FALSE(parseThreadCount("not-a-number", &error));
    EXPECT_EQ(error.value, "not-a-number");
    EXPECT_EQ(error.reason, "not a positive integer");

    EXPECT_FALSE(parseThreadCount("4x", &error));
    EXPECT_EQ(error.reason, "not a positive integer");
    EXPECT_FALSE(parseThreadCount("-2", &error));
    EXPECT_EQ(error.reason, "not a positive integer");
    EXPECT_FALSE(parseThreadCount(" 4", &error));
    EXPECT_EQ(error.reason, "not a positive integer");

    EXPECT_FALSE(parseThreadCount("0", &error));
    EXPECT_EQ(error.value, "0");
    EXPECT_EQ(error.reason, "must be at least 1");

    EXPECT_FALSE(parseThreadCount("99999999999999999999999", &error));
    EXPECT_EQ(error.reason, "out of range");

    // Null error sink is allowed.
    EXPECT_FALSE(parseThreadCount("zero", nullptr));
}

TEST(ThreadPool, EnvKnobRejectsGarbageLoudly)
{
    // The historical behavior silently fell back to hardware
    // concurrency; a malformed knob now surfaces as a structured error
    // (figure CLIs turn it into a parse error up front).
    ScopedEnv env("HCLOUD_THREADS", "not-a-number");
    EXPECT_THROW(defaultThreadCount(), std::invalid_argument);
    try {
        (void)defaultThreadCount();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("not-a-number"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("not a positive integer"),
                  std::string::npos);
    }
    ScopedEnv zero("HCLOUD_THREADS", "0");
    EXPECT_THROW(defaultThreadCount(), std::invalid_argument);
}

TEST(ThreadPool, EnvKnobUnsetUsesHardwareThreads)
{
    ScopedEnv env("HCLOUD_THREADS", nullptr);
    EXPECT_EQ(defaultThreadCount(), hardwareThreads());
}

TEST(ThreadPool, WorkersGaugeTracksLiveWorkerCount)
{
    obs::ProcessGauge& gauge = obs::ProcessMetrics::instance().gauge(
        "hcloud_pool_workers");
    const double before = gauge.value();
    {
        ThreadPool pool(3);
        EXPECT_EQ(gauge.value(), before + 3.0);
        {
            ThreadPool serial(1); // serial pools contribute 0 workers
            EXPECT_EQ(gauge.value(), before + 3.0);
        }
        ThreadPool second(2);
        EXPECT_EQ(gauge.value(), before + 5.0);
    }
    // Destruction reclaims the gauge contribution, not the series.
    EXPECT_EQ(gauge.value(), before);
}

TEST(ThreadPool, TaskMetricsDrainToZeroAfterWait)
{
    obs::ProcessMetrics& pm = obs::ProcessMetrics::instance();
    obs::ProcessGauge& depth = pm.gauge("hcloud_pool_queue_depth");
    obs::ProcessGauge& inflight = pm.gauge("hcloud_pool_inflight_tasks");
    obs::ProcessCounter& completed =
        pm.counter("hcloud_pool_tasks_completed_total");
    const double depthBefore = depth.value();
    const double inflightBefore = inflight.value();
    const double completedBefore = completed.value();
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([] {});
        pool.wait();
        // Every completion is counted before wait() can observe
        // pending == 0, so the counter is exact here, not eventual.
        EXPECT_EQ(completed.value(), completedBefore + 50.0);
    }
    EXPECT_EQ(depth.value(), depthBefore);
    EXPECT_EQ(inflight.value(), inflightBefore);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(hardwareThreads(), 1u);
}

} // namespace
} // namespace hcloud::runtime
