/**
 * @file
 * Tests for the runtime thread pool: task completion, ordered parallel
 * maps, exception propagation, graceful shutdown under load and the
 * HCLOUD_THREADS=1 serial fallback.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace hcloud::runtime {
namespace {

/** Scoped setenv/unsetenv for HCLOUD_THREADS. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 50 * (batch + 1));
    }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, 1, 257, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(hits[0].load(), 0);
    for (std::size_t i = 1; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelMapPreservesSubmissionOrder)
{
    ThreadPool pool(4);
    const auto out = parallelMap(pool, 100, [](std::size_t i) {
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, ParallelMapOnEmptyRange)
{
    ThreadPool pool(2);
    const auto out =
        parallelMap(pool, 0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, SubmitExceptionSurfacesOnWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelMapRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            parallelMap(pool, 64, [](std::size_t i) {
                if (i == 11 || i == 12 || i == 63)
                    throw std::runtime_error(std::to_string(i));
                return i;
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            // Deterministic selection regardless of scheduling.
            EXPECT_STREQ(e.what(), "11");
        }
    }
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(pool, 0, 100,
                             [](std::size_t i) {
                                 if (i == 40)
                                     throw std::logic_error("x");
                             }),
                 std::logic_error);
}

TEST(ThreadPool, GracefulShutdownDrainsQueueUnderLoad)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 300; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                ++count;
            });
        }
        // Destructor must finish all queued work before joining.
    }
    EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_TRUE(pool.serial());
    EXPECT_EQ(pool.size(), 0u);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(ran_on, caller);
    // Inline exceptions still surface through wait().
    pool.submit([] { throw std::runtime_error("serial"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // And parallelMap degenerates to an ordered serial loop.
    const auto out =
        parallelMap(pool, 10, [](std::size_t i) { return i + 1; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i + 1);
}

TEST(ThreadPool, EnvKnobForcesSerialFallback)
{
    ScopedEnv env("HCLOUD_THREADS", "1");
    EXPECT_EQ(defaultThreadCount(), 1u);
    ThreadPool pool; // 0 = auto -> env knob -> serial
    EXPECT_TRUE(pool.serial());
}

TEST(ThreadPool, EnvKnobParsesWorkerCount)
{
    ScopedEnv env("HCLOUD_THREADS", "6");
    EXPECT_EQ(defaultThreadCount(), 6u);
    ThreadPool pool;
    EXPECT_EQ(pool.size(), 6u);
}

TEST(ThreadPool, EnvKnobIgnoresGarbage)
{
    ScopedEnv env("HCLOUD_THREADS", "not-a-number");
    EXPECT_EQ(defaultThreadCount(), hardwareThreads());
    ScopedEnv zero("HCLOUD_THREADS", "0");
    EXPECT_EQ(defaultThreadCount(), hardwareThreads());
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(hardwareThreads(), 1u);
}

} // namespace
} // namespace hcloud::runtime
