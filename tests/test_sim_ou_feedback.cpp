/**
 * @file
 * Unit tests for the Ornstein-Uhlenbeck process and the linear feedback
 * controller.
 */

#include <gtest/gtest.h>

#include "sim/feedback.hpp"
#include "sim/ou_process.hpp"
#include "sim/stats.hpp"

namespace hcloud::sim {
namespace {

TEST(OuProcess, StartsAtInitialValue)
{
    OuProcess p(0.5, 60.0, 0.1, Rng(1), 0.9);
    EXPECT_DOUBLE_EQ(p.value(), 0.9);
    OuProcess q(0.5, 60.0, 0.1, Rng(1));
    EXPECT_DOUBLE_EQ(q.value(), 0.5);
}

TEST(OuProcess, ZeroDtIsNoOp)
{
    OuProcess p(0.5, 60.0, 0.1, Rng(1));
    const double before = p.advanceTo(10.0);
    EXPECT_DOUBLE_EQ(p.advanceTo(10.0), before);
}

TEST(OuProcess, StationaryMomentsMatchConfiguration)
{
    OuProcess p(0.25, 30.0, 0.05, Rng(7));
    OnlineStats stats;
    // Sample every 2 relaxation times: nearly independent draws.
    for (int i = 1; i <= 4000; ++i)
        stats.add(p.advanceTo(i * 60.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.01);
    EXPECT_NEAR(stats.stddev(), 0.05, 0.01);
}

TEST(OuProcess, MeanRevertsFromDisplacedStart)
{
    OuProcess p(0.0, 10.0, 0.001, Rng(3), 1.0);
    // After many relaxation times the displaced start must decay.
    EXPECT_NEAR(p.advanceTo(100.0), 0.0, 0.02);
}

TEST(OuProcess, DeterministicGivenSeed)
{
    OuProcess a(0.5, 60.0, 0.1, Rng(5));
    OuProcess b(0.5, 60.0, 0.1, Rng(5));
    for (int i = 1; i <= 50; ++i)
        EXPECT_DOUBLE_EQ(a.advanceTo(i * 10.0), b.advanceTo(i * 10.0));
}

TEST(FeedbackController, MovesTowardSetpoint)
{
    FeedbackConfig cfg;
    cfg.gain = 0.1;
    cfg.outputMin = 0.0;
    cfg.outputMax = 1.0;
    LinearFeedbackController c(cfg, 0.5);
    // Measurement below setpoint: output rises.
    const double up = c.update(1.0, 0.0);
    EXPECT_GT(up, 0.5);
    // Measurement above setpoint: output falls.
    const double down = c.update(0.0, 1.0);
    EXPECT_LT(down, up);
}

TEST(FeedbackController, OutputClamped)
{
    FeedbackConfig cfg;
    cfg.gain = 10.0;
    cfg.outputMin = 0.2;
    cfg.outputMax = 0.8;
    LinearFeedbackController c(cfg, 0.5);
    c.update(100.0, 0.0);
    EXPECT_DOUBLE_EQ(c.output(), 0.8);
    c.update(0.0, 100.0);
    EXPECT_DOUBLE_EQ(c.output(), 0.2);
}

TEST(FeedbackController, SlewRateLimited)
{
    FeedbackConfig cfg;
    cfg.gain = 10.0;
    cfg.maxStep = 0.05;
    LinearFeedbackController c(cfg, 0.5);
    c.update(100.0, 0.0);
    EXPECT_DOUBLE_EQ(c.output(), 0.55);
}

TEST(FeedbackController, InitialOutputClampedAndResettable)
{
    FeedbackConfig cfg;
    cfg.outputMin = 0.3;
    cfg.outputMax = 0.7;
    LinearFeedbackController c(cfg, 0.9);
    EXPECT_DOUBLE_EQ(c.output(), 0.7);
    c.reset(0.1);
    EXPECT_DOUBLE_EQ(c.output(), 0.3);
}

TEST(FeedbackController, ConvergesUnderProportionalControl)
{
    FeedbackConfig cfg;
    cfg.gain = 0.2;
    LinearFeedbackController c(cfg, 0.0);
    // Plant: measurement equals the controller output; setpoint 0.6.
    for (int i = 0; i < 200; ++i)
        c.update(0.6, c.output());
    EXPECT_NEAR(c.output(), 0.6, 1e-6);
}

} // namespace
} // namespace hcloud::sim
