/**
 * @file
 * Integration tests: comparative invariants across strategies that mirror
 * the paper's qualitative findings, run at reduced scale.
 *
 * These are the "does the system reproduce the paper's shape" checks:
 * SR beats OdM on performance, small instances hurt OdM's tail latency,
 * hybrids track SR's performance, utilization orderings, and sensitivity
 * directions (spin-up, external load).
 */

#include <gtest/gtest.h>

#include <map>

#include "cloud/pricing.hpp"
#include "core/engine.hpp"
#include "exp/runner.hpp"
#include "workload/scenario.hpp"

namespace hcloud {
namespace {

/** Shared reduced-scale run matrix (computed once for the whole suite). */
class IntegrationTest : public ::testing::Test
{
  protected:
    static exp::Runner&
    runner()
    {
        static exp::Runner instance{
            exp::ExperimentOptions{/*loadScale=*/0.30, /*seed=*/42}};
        return instance;
    }

    static const core::RunResult&
    get(workload::ScenarioKind scenario, core::StrategyKind strategy,
        bool profiling = true)
    {
        return runner().run(scenario, strategy, profiling);
    }
};

TEST_F(IntegrationTest, SrDeliversBestPerformanceEverywhere)
{
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        const double sr = get(scenario, core::StrategyKind::SR)
                              .meanPerfNorm();
        for (core::StrategyKind s :
             {core::StrategyKind::OdF, core::StrategyKind::OdM}) {
            EXPECT_GE(sr + 0.03, get(scenario, s).meanPerfNorm())
                << toString(scenario) << " vs " << toString(s);
        }
    }
}

TEST_F(IntegrationTest, OdMIsTheWorstPerformer)
{
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        const double odm =
            get(scenario, core::StrategyKind::OdM).meanPerfNorm();
        for (core::StrategyKind s :
             {core::StrategyKind::SR, core::StrategyKind::OdF,
              core::StrategyKind::HF, core::StrategyKind::HM}) {
            EXPECT_LT(odm, get(scenario, s).meanPerfNorm() + 0.02)
                << toString(scenario) << " vs " << toString(s);
        }
    }
}

TEST_F(IntegrationTest, OdMTailLatencyFarWorseThanSr)
{
    // The paper's memcached suffers an order of magnitude on OdM under
    // load variability.
    for (workload::ScenarioKind scenario :
         {workload::ScenarioKind::LowVariability,
          workload::ScenarioKind::HighVariability}) {
        const double sr =
            get(scenario, core::StrategyKind::SR).lcLatencyUs.mean();
        const double odm =
            get(scenario, core::StrategyKind::OdM).lcLatencyUs.mean();
        EXPECT_GT(odm, 2.0 * sr) << toString(scenario);
    }
}

TEST_F(IntegrationTest, HybridsTrackSrPerformance)
{
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        const double sr =
            get(scenario, core::StrategyKind::SR).meanPerfNorm();
        for (core::StrategyKind s :
             {core::StrategyKind::HF, core::StrategyKind::HM}) {
            const double hybrid = get(scenario, s).meanPerfNorm();
            EXPECT_GT(hybrid, 0.85 * sr)
                << toString(scenario) << " " << toString(s);
        }
    }
}

TEST_F(IntegrationTest, ProfilingImprovesPerformance)
{
    // Per-strategy gains vary at reduced scale (user defaults happen to
    // overprovision small jobs), but the aggregate must clearly favor
    // profiling, with SR showing the paper's large gain.
    double with_sum = 0.0;
    double without_sum = 0.0;
    for (core::StrategyKind s : core::kAllStrategies) {
        with_sum +=
            get(workload::ScenarioKind::Static, s, true).meanPerfNorm();
        without_sum +=
            get(workload::ScenarioKind::Static, s, false).meanPerfNorm();
    }
    EXPECT_GT(with_sum, 1.05 * without_sum);
    const double sr_with =
        get(workload::ScenarioKind::Static, core::StrategyKind::SR, true)
            .meanPerfNorm();
    const double sr_without =
        get(workload::ScenarioKind::Static, core::StrategyKind::SR, false)
            .meanPerfNorm();
    EXPECT_GT(sr_with, 1.3 * sr_without);
}

TEST_F(IntegrationTest, OnDemandCostsMoreThanAmortizedReserved)
{
    const cloud::AwsStylePricing pricing;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        const double sr = get(scenario, core::StrategyKind::SR)
                              .cost(pricing)
                              .total();
        const double odf = get(scenario, core::StrategyKind::OdF)
                               .cost(pricing)
                               .total();
        EXPECT_GT(odf, 1.2 * sr) << toString(scenario);
    }
}

TEST_F(IntegrationTest, HybridsCheaperThanFullyOnDemand)
{
    const cloud::AwsStylePricing pricing;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        const double odf = get(scenario, core::StrategyKind::OdF)
                               .cost(pricing)
                               .total();
        const double hf = get(scenario, core::StrategyKind::HF)
                              .cost(pricing)
                              .total();
        EXPECT_LT(hf, odf) << toString(scenario);
    }
}

TEST_F(IntegrationTest, SrUtilizationCollapsesUnderVariability)
{
    const double static_util =
        get(workload::ScenarioKind::Static, core::StrategyKind::SR)
            .reservedUtilizationAvg;
    const double high_util =
        get(workload::ScenarioKind::HighVariability,
            core::StrategyKind::SR)
            .reservedUtilizationAvg;
    EXPECT_GT(static_util, 0.6);
    EXPECT_LT(high_util, static_util - 0.25)
        << "peak-sized pools waste capacity under variability";
}

TEST_F(IntegrationTest, HybridReservedUtilizationHigh)
{
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        for (core::StrategyKind s :
             {core::StrategyKind::HF, core::StrategyKind::HM}) {
            EXPECT_GT(get(scenario, s).reservedUtilizationAvg, 0.55)
                << toString(scenario) << " " << toString(s);
        }
    }
}

TEST_F(IntegrationTest, CommittedCostCrossover)
{
    // Figure 13's structure: on-demand wins short horizons, reservations
    // win long horizons (static scenario).
    const cloud::AwsStylePricing pricing;
    const auto& sr = get(workload::ScenarioKind::Static,
                         core::StrategyKind::SR);
    const auto& odm = get(workload::ScenarioKind::Static,
                          core::StrategyKind::OdM);
    const double sr_1wk =
        sr.costOverHorizon(pricing, sim::weeks(1.0)).total();
    const double odm_1wk =
        odm.costOverHorizon(pricing, sim::weeks(1.0)).total();
    EXPECT_LT(odm_1wk, sr_1wk) << "on-demand cheaper at 1 week";
    const double sr_52wk =
        sr.costOverHorizon(pricing, sim::weeks(52.0)).total();
    const double odm_52wk =
        odm.costOverHorizon(pricing, sim::weeks(52.0)).total();
    EXPECT_LT(sr_52wk, odm_52wk) << "reserved cheaper at 1 year";
}

TEST_F(IntegrationTest, SpinUpSensitivityDirection)
{
    // Figure 14a: slower spin-up hurts on-demand strategies, not SR.
    core::EngineConfig fast = runner().baseConfig();
    fast.spinUpFixed = 0.0;
    core::EngineConfig slow = runner().baseConfig();
    slow.spinUpFixed = 120.0;
    const auto scenario = workload::ScenarioKind::HighVariability;
    const double odf_fast =
        runner().runWith(scenario, core::StrategyKind::OdF, fast)
            .meanPerfNorm();
    const double odf_slow =
        runner().runWith(scenario, core::StrategyKind::OdF, slow)
            .meanPerfNorm();
    EXPECT_GT(odf_fast, odf_slow + 0.01);
    const double sr_fast =
        runner().runWith(scenario, core::StrategyKind::SR, fast)
            .meanPerfNorm();
    const double sr_slow =
        runner().runWith(scenario, core::StrategyKind::SR, slow)
            .meanPerfNorm();
    EXPECT_NEAR(sr_fast, sr_slow, 0.03) << "SR has no spin-ups";
}

TEST_F(IntegrationTest, ExternalLoadSensitivityDirection)
{
    // Figure 14b: external load destroys OdM, barely touches SR.
    core::EngineConfig calm = runner().baseConfig();
    calm.externalLoad.meanUtilization = 0.0;
    calm.externalLoad.band = 0.0;
    core::EngineConfig stormy = runner().baseConfig();
    stormy.externalLoad.meanUtilization = 0.75;
    const auto scenario = workload::ScenarioKind::HighVariability;
    const double odm_calm =
        runner().runWith(scenario, core::StrategyKind::OdM, calm)
            .meanPerfNorm();
    const double odm_stormy =
        runner().runWith(scenario, core::StrategyKind::OdM, stormy)
            .meanPerfNorm();
    EXPECT_GT(odm_calm, odm_stormy + 0.10);
    const double sr_calm =
        runner().runWith(scenario, core::StrategyKind::SR, calm)
            .meanPerfNorm();
    const double sr_stormy =
        runner().runWith(scenario, core::StrategyKind::SR, stormy)
            .meanPerfNorm();
    EXPECT_NEAR(sr_calm, sr_stormy, 0.05) << "SR is fully isolated";
}

TEST_F(IntegrationTest, MappingPolicyEndToEnd)
{
    // Figure 6's headline: the dynamic policy beats the random one on
    // on-demand-side performance.
    core::EngineConfig random = runner().baseConfig();
    random.mappingPolicy = core::PolicyKind::P1Random;
    const auto scenario = workload::ScenarioKind::HighVariability;
    const core::RunResult p1 =
        runner().runWith(scenario, core::StrategyKind::HM, random);
    const core::RunResult& p8 = get(scenario, core::StrategyKind::HM);
    EXPECT_GT(p8.meanPerfNorm() + 0.03, p1.meanPerfNorm());
    // The random policy queues far more work on the reserved side.
    EXPECT_GE(p1.queuedJobs + 5, p8.queuedJobs);
}

} // namespace
} // namespace hcloud
