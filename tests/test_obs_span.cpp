/**
 * @file
 * obs::Span machinery: disabled scopes are inert, nesting parents
 * correctly, JSONL round-trips, cross-thread binding handoff, the
 * chrome://tracing converter, TraceSink::appendLine, TraceEvent trace-id
 * stamping, and obs::Log leveling + rate limiting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"
#include "obs/trace_sink.hpp"
#include "obs/tracer.hpp"

namespace hcloud {
namespace {

/** A unique temp path (removed by the fixture dtor). */
class TempFile
{
  public:
    explicit TempFile(const char* tag)
        : path_(std::string("/tmp/hcloud_test_span_") + tag + "_" +
                std::to_string(::getpid()) + ".jsonl")
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

std::vector<obs::JsonValue>
readJsonl(const std::string& path)
{
    std::vector<obs::JsonValue> records;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            records.push_back(obs::parseJson(line));
    }
    return records;
}

TEST(SpanTracer, DisabledWithoutSinkPath)
{
    obs::SpanTracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.span(1, 2, 0, "noop", 10, 20);
    tracer.event(1, 2, "noop", 0.0);
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(SpanTracer, DisabledWhenSinkPathUnwritable)
{
    obs::SpanTracerConfig config;
    config.sinkPath = "/nonexistent-dir/spans.jsonl";
    obs::SpanTracer tracer(config);
    EXPECT_FALSE(tracer.enabled());
}

TEST(SpanScope, InertWithoutBinding)
{
    // No SpanBinding on this thread: the scope must be a no-op.
    obs::SpanScope scope("orphan");
    EXPECT_FALSE(scope.active());
    EXPECT_FALSE(obs::currentSpanContext().valid());
    EXPECT_EQ(obs::currentSpanTracer(), nullptr);
}

TEST(SpanScope, InertWhenTracerDisabled)
{
    obs::SpanTracer tracer; // no sink -> disabled
    obs::SpanBinding bind(&tracer, obs::SpanContext{1, 2});
    obs::SpanScope scope("noop");
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(SpanScope, NestedScopesParentUnderEachOther)
{
    TempFile file("nested");
    obs::SpanTracerConfig config;
    config.sinkPath = file.path();
    obs::SpanTracer tracer(config);
    ASSERT_TRUE(tracer.enabled());

    const std::uint64_t trace = tracer.newTraceId();
    const std::uint64_t root = tracer.newSpanId();
    {
        obs::SpanBinding bind(&tracer, obs::SpanContext{trace, root});
        obs::SpanScope outer("outer");
        ASSERT_TRUE(outer.active());
        EXPECT_EQ(obs::currentSpanContext().trace, trace);
        EXPECT_NE(obs::currentSpanContext().span, root);
        {
            obs::SpanScope inner("inner", "detail \"quoted\"");
            ASSERT_TRUE(inner.active());
        }
    }
    EXPECT_FALSE(obs::currentSpanContext().valid());
    tracer.flush();
    EXPECT_EQ(tracer.recorded(), 2u);

    // Inner closes first, so it is the first record; its parent must be
    // the outer span's id, whose parent in turn is the bound root.
    const std::vector<obs::JsonValue> records = readJsonl(file.path());
    ASSERT_EQ(records.size(), 2u);
    const obs::JsonValue& inner = records[0];
    const obs::JsonValue& outer = records[1];
    EXPECT_EQ(inner.find("span")->stringOr(""), "inner");
    EXPECT_EQ(outer.find("span")->stringOr(""), "outer");
    EXPECT_EQ(inner.find("trace")->numberOr(0), outer.find("trace")->numberOr(0));
    EXPECT_EQ(inner.find("parent")->numberOr(0),
              outer.find("id")->numberOr(-1));
    EXPECT_EQ(outer.find("parent")->numberOr(0),
              static_cast<double>(root));
    EXPECT_EQ(inner.find("detail")->stringOr(""), "detail \"quoted\"");
    EXPECT_GE(inner.find("durNs")->numberOr(-1), 0.0);
}

TEST(SpanBinding, RestoresPreviousBindingAndCrossesThreads)
{
    TempFile file("binding");
    obs::SpanTracerConfig config;
    config.sinkPath = file.path();
    obs::SpanTracer tracer(config);

    const obs::SpanContext outerCtx{tracer.newTraceId(),
                                    tracer.newSpanId()};
    obs::SpanBinding outer(&tracer, outerCtx);
    {
        const obs::SpanContext innerCtx{tracer.newTraceId(),
                                        tracer.newSpanId()};
        obs::SpanBinding inner(&tracer, innerCtx);
        EXPECT_EQ(obs::currentSpanContext().trace, innerCtx.trace);
    }
    EXPECT_EQ(obs::currentSpanContext().trace, outerCtx.trace);

    // A fresh thread has no binding until it installs the handoff, and
    // its scopes then join the originating trace.
    std::thread worker([&tracer, outerCtx] {
        EXPECT_EQ(obs::currentSpanTracer(), nullptr);
        obs::SpanBinding bind(&tracer, outerCtx);
        obs::SpanScope scope("cross.thread");
        EXPECT_TRUE(scope.active());
    });
    worker.join();
    tracer.flush();

    const std::vector<obs::JsonValue> records = readJsonl(file.path());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].find("span")->stringOr(""), "cross.thread");
    EXPECT_EQ(records[0].find("trace")->numberOr(0),
              static_cast<double>(outerCtx.trace));
}

TEST(SpanTracer, EventCarriesSimTimeAndJoinsTrace)
{
    TempFile file("event");
    obs::SpanTracerConfig config;
    config.sinkPath = file.path();
    obs::SpanTracer tracer(config);
    tracer.event(7, 3, "decision", 123.5, "job 9 BelowSoftLimit");
    tracer.flush();

    const std::vector<obs::JsonValue> records = readJsonl(file.path());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].find("event")->stringOr(""), "decision");
    EXPECT_EQ(records[0].find("trace")->numberOr(0), 7.0);
    EXPECT_EQ(records[0].find("parent")->numberOr(0), 3.0);
    EXPECT_EQ(records[0].find("t")->numberOr(0), 123.5);
    EXPECT_GT(records[0].find("ns")->numberOr(0), 0.0);
}

TEST(WriteChromeTrace, ConvertsSpansAndEvents)
{
    std::istringstream in(
        "{\"span\":\"http.request\",\"trace\":1,\"id\":2,\"parent\":0,"
        "\"startNs\":1000,\"durNs\":5000,\"detail\":\"POST /x 200\"}\n"
        "{\"event\":\"decision\",\"trace\":1,\"parent\":2,\"ns\":2000,"
        "\"t\":42.0}\n"
        "not json at all\n");
    std::ostringstream out;
    std::string error;
    ASSERT_TRUE(obs::writeChromeTrace(in, out, &error));
    EXPECT_NE(error.find("1 unrecognized"), std::string::npos);

    const obs::JsonValue doc = obs::parseJson(out.str());
    const obs::JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 2u);
    const obs::JsonValue& span = events->array[0];
    EXPECT_EQ(span.find("ph")->stringOr(""), "X");
    EXPECT_EQ(span.find("tid")->numberOr(0), 1.0);
    EXPECT_EQ(span.find("ts")->numberOr(0), 1.0);  // 1000 ns -> 1 us
    EXPECT_EQ(span.find("dur")->numberOr(0), 5.0); // 5000 ns -> 5 us
    const obs::JsonValue& instant = events->array[1];
    EXPECT_EQ(instant.find("ph")->stringOr(""), "i");
    EXPECT_EQ(instant.find("args")->find("simTime")->numberOr(0), 42.0);
}

TEST(WriteChromeTrace, FailsOnEmptyInput)
{
    std::istringstream in("\n\n");
    std::ostringstream out;
    std::string error;
    EXPECT_FALSE(obs::writeChromeTrace(in, out, &error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceSink, AppendLineWritesVerbatimLines)
{
    TempFile file("sink");
    {
        obs::TraceSink sink(file.path());
        ASSERT_TRUE(sink.ok());
        EXPECT_TRUE(sink.appendLine("{\"a\":1}"));
        EXPECT_TRUE(sink.appendLine("{\"b\":2}"));
        EXPECT_EQ(sink.written(), 2u);
    }
    std::ifstream in(file.path());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "{\"a\":1}");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "{\"b\":2}");
}

TEST(TraceEventTraceId, StampedByActiveTraceAndRoundTrips)
{
    obs::TraceConfig config;
    config.mode = obs::TraceConfig::Mode::On;
    obs::Tracer tracer(config);

    tracer.setActiveTrace(99);
    tracer.decision(1.0, obs::DecisionReason::BelowSoftLimit, 5, 0, 0.5,
                    "st16");
    tracer.setActiveTrace(0);
    tracer.decision(2.0, obs::DecisionReason::BelowSoftLimit, 6, 0, 0.5,
                    "st16");

    ASSERT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.events()[0].trace, 99u);
    EXPECT_EQ(tracer.events()[1].trace, 0u);

    // JSONL: trace emitted only when nonzero, and parsed back.
    const std::string withTrace = obs::toJson(tracer.events()[0]);
    const std::string without = obs::toJson(tracer.events()[1]);
    EXPECT_NE(withTrace.find("\"trace\":99"), std::string::npos);
    EXPECT_EQ(without.find("\"trace\""), std::string::npos);
    obs::TraceEvent parsed;
    ASSERT_TRUE(obs::eventFromJsonLine(withTrace, &parsed));
    EXPECT_EQ(parsed.trace, 99u);
    ASSERT_TRUE(obs::eventFromJsonLine(without, &parsed));
    EXPECT_EQ(parsed.trace, 0u);
}

TEST(Log, LevelsFilterAndFieldsAppend)
{
    obs::Log log;
    std::FILE* tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    log.setStream(tmp);

    EXPECT_FALSE(log.debug("below_min"));
    EXPECT_TRUE(log.info("hello", [](obs::JsonWriter& w) {
        w.field("answer", 42);
    }));
    EXPECT_EQ(log.written(), 1u);

    std::rewind(tmp);
    char buffer[512] = {};
    ASSERT_NE(std::fgets(buffer, sizeof(buffer), tmp), nullptr);
    const obs::JsonValue record = obs::parseJson(buffer);
    EXPECT_EQ(record.find("level")->stringOr(""), "info");
    EXPECT_EQ(record.find("event")->stringOr(""), "hello");
    EXPECT_EQ(record.find("answer")->numberOr(0), 42.0);
    EXPECT_GT(record.find("ts")->numberOr(0), 0.0);
    std::fclose(tmp);
}

TEST(Log, RateLimitSuppressesButErrorPasses)
{
    obs::LogConfig config;
    config.maxPerSec = 1.0;
    config.burst = 3.0;
    obs::Log log(config);
    std::FILE* tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    log.setStream(tmp);

    std::uint64_t admitted = 0;
    for (int i = 0; i < 100; ++i) {
        if (log.info("spam"))
            ++admitted;
    }
    // The burst ceiling bounds admissions; the refill over the loop's
    // microseconds is far below one extra token.
    EXPECT_LE(admitted, 4u);
    EXPECT_GT(log.suppressed(), 0u);

    // Error bypasses the bucket even when it is empty.
    EXPECT_TRUE(log.error("always"));

    // The next admitted record is preceded by a log_suppressed line.
    std::rewind(tmp);
    std::string contents;
    char buffer[512];
    while (std::fgets(buffer, sizeof(buffer), tmp))
        contents += buffer;
    EXPECT_NE(contents.find("log_suppressed"), std::string::npos);
    std::fclose(tmp);
}

} // namespace
} // namespace hcloud
