/**
 * @file
 * Durability + lifecycle of the serve layer: journal record round-trips,
 * restart recovery (graceful AND SIGKILL of the real daemon binary, both
 * asserted byte-identical against the pre-crash reports), truncated-tail
 * tolerance, idle eviction + lazy revival, tenant deletion (journal file
 * and per-tenant metric series must not leak), and the admission caps
 * (session count + per-tenant journal quota as structured 429s).
 *
 * Every test runs in its own mkdtemp data dir; the SIGKILL test fork/
 * execs the hcloud_serve binary (HCLOUD_SERVE_BIN, wired by CMake).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "obs/process_metrics.hpp"
#include "srv/http_client.hpp"
#include "srv/serve_app.hpp"
#include "srv/session_journal.hpp"

namespace hcloud {
namespace {

/** rm -rf for the flat test data dirs this suite creates. */
void
removeTree(const std::string& dir)
{
    if (DIR* d = ::opendir(dir.c_str())) {
        while (dirent* e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name == "." || name == "..")
                continue;
            const std::string path = dir + "/" + name;
            struct stat st{};
            if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
                removeTree(path);
            else
                ::unlink(path.c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

bool
fileExists(const std::string& path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

/** Per-test temp data dir + helpers to build journaled apps. */
class SrvJournal : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        char tmpl[] = "/tmp/hcloud_journal_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dataDir_ = tmpl;
    }

    void TearDown() override { removeTree(dataDir_); }

    /** Fresh app over @p dataDir with its own metrics registry. */
    std::unique_ptr<srv::ServeApp>
    makeApp(const std::string& dataDir, srv::ServeConfig config = {})
    {
        config.shards = 2;
        config.threads = 2;
        config.httpWorkers = 2;
        config.journal.dataDir = dataDir;
        registries_.push_back(std::make_unique<obs::ProcessMetrics>());
        auto app = std::make_unique<srv::ServeApp>(std::move(config),
                                                   *registries_.back());
        EXPECT_TRUE(app->start(0));
        return app;
    }

    static std::string tenantBody(const std::string& id)
    {
        std::string body = "{\"strategy\":\"HM\",";
        if (!id.empty())
            body += "\"id\":\"" + id + "\",";
        body += "\"scenario\":{\"kind\":\"static\",\"duration\":600,"
                "\"loadScale\":0.05},"
                "\"engine\":{\"seed\":42,\"useProfiling\":false}}";
        return body;
    }

    static std::string jobBody(double arrival)
    {
        return "{\"kind\":\"hadoop-recommender\",\"arrival\":" +
               std::to_string(arrival) +
               ",\"coresIdeal\":4,\"idealDuration\":30}";
    }

    /** The error.code string of a structured error body. */
    static std::string errorCode(const std::string& body)
    {
        const obs::JsonValue v = obs::parseJson(body);
        const obs::JsonValue* error = v.find("error");
        if (!error)
            return "<no error object>";
        const obs::JsonValue* code = error->find("code");
        return code ? code->string : "<no code>";
    }

    /** Create tenant + 2 jobs + one advance; the canonical workload. */
    static void driveTenant(srv::HttpClient& client,
                            const std::string& id)
    {
        srv::ClientResponse r =
            client.post("/v1/tenants", tenantBody(id));
        ASSERT_TRUE(r.ok);
        ASSERT_EQ(r.status, 201) << r.body;
        r = client.post("/v1/tenants/" + id + "/jobs", jobBody(1.5));
        ASSERT_EQ(r.status, 200) << r.body;
        r = client.post("/v1/tenants/" + id + "/jobs", jobBody(3.0));
        ASSERT_EQ(r.status, 200) << r.body;
        r = client.post("/v1/tenants/" + id + "/advance",
                        "{\"to\":120}");
        ASSERT_EQ(r.status, 200) << r.body;
    }

    static std::string report(srv::HttpClient& client,
                              const std::string& id)
    {
        const srv::ClientResponse r =
            client.get("/v1/tenants/" + id + "/report");
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(r.status, 200) << r.body;
        return r.body;
    }

    std::string dataDir_;
    /** One registry per app so restarted apps never share counters. */
    std::vector<std::unique_ptr<obs::ProcessMetrics>> registries_;
};

TEST_F(SrvJournal, FsyncPolicyParsesAndPrints)
{
    srv::FsyncPolicy policy;
    ASSERT_TRUE(srv::parseFsyncPolicy("always", &policy));
    EXPECT_EQ(policy, srv::FsyncPolicy::Always);
    ASSERT_TRUE(srv::parseFsyncPolicy("interval", &policy));
    EXPECT_EQ(policy, srv::FsyncPolicy::Interval);
    ASSERT_TRUE(srv::parseFsyncPolicy("never", &policy));
    EXPECT_EQ(policy, srv::FsyncPolicy::Never);
    EXPECT_FALSE(srv::parseFsyncPolicy("sometimes", &policy));
    EXPECT_STREQ(srv::toString(srv::FsyncPolicy::Interval), "interval");
}

TEST_F(SrvJournal, TenantIdValidation)
{
    EXPECT_TRUE(srv::validTenantId("acme"));
    EXPECT_TRUE(srv::validTenantId("t-12"));
    EXPECT_TRUE(srv::validTenantId("A.b_c-9"));
    EXPECT_TRUE(srv::validTenantId(std::string(64, 'x')));
    EXPECT_FALSE(srv::validTenantId(""));
    EXPECT_FALSE(srv::validTenantId(std::string(65, 'x')));
    EXPECT_FALSE(srv::validTenantId(".hidden"));
    EXPECT_FALSE(srv::validTenantId("-flag"));
    EXPECT_FALSE(srv::validTenantId("a/b"));
    EXPECT_FALSE(srv::validTenantId("a b"));
    EXPECT_FALSE(srv::validTenantId("caf\xc3\xa9"));
}

TEST_F(SrvJournal, RecordsRoundTripThroughLoad)
{
    srv::JournalConfig config;
    config.dataDir = dataDir_;
    config.fsync = srv::FsyncPolicy::Never;

    srv::SessionConfig session;
    session.id = "acme";
    session.scenario.duration = 600;
    session.scenario.loadScale = 0.05;
    session.engine.seed = 42;
    session.engine.useProfiling = false;

    workload::JobSpec spec;
    spec.id = 7;
    spec.arrival = 1.25;
    spec.coresIdeal = 4.0;
    spec.idealDuration = 30.0;

    obs::ProcessMetrics metrics;
    const std::string path = srv::SessionJournal::pathFor(dataDir_,
                                                          "acme");
    {
        srv::SessionJournal journal(config, "acme", /*truncate=*/true,
                                    metrics);
        ASSERT_TRUE(journal.ok()) << journal.error();
        EXPECT_EQ(journal.path(), path);
        journal.appendCreate(session);
        journal.appendSubmit(spec);
        journal.appendAdvance(120.5);
        EXPECT_EQ(journal.appends(), 3u);
        EXPECT_GT(journal.bytes(), 0u);
    }

    const srv::JournalLoad load = srv::loadJournal(path);
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.droppedLines, 0u);
    ASSERT_EQ(load.records.size(), 3u);

    EXPECT_EQ(load.records[0].op, srv::JournalRecord::Op::Create);
    EXPECT_EQ(load.records[0].config.id, "acme");
    EXPECT_EQ(load.records[0].config.engine.seed, 42u);
    EXPECT_DOUBLE_EQ(load.records[0].config.scenario.loadScale, 0.05);

    EXPECT_EQ(load.records[1].op, srv::JournalRecord::Op::Submit);
    EXPECT_EQ(load.records[1].job.id, 7u);
    EXPECT_DOUBLE_EQ(load.records[1].job.arrival, 1.25);
    EXPECT_DOUBLE_EQ(load.records[1].job.coresIdeal, 4.0);

    EXPECT_EQ(load.records[2].op, srv::JournalRecord::Op::Advance);
    EXPECT_DOUBLE_EQ(load.records[2].to, 120.5);

    // validBytes covers the whole (uncorrupted) file.
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    EXPECT_EQ(load.validBytes,
              static_cast<std::uint64_t>(st.st_size));
}

TEST_F(SrvJournal, TruncatedTailIsDroppedNotFatal)
{
    srv::JournalConfig config;
    config.dataDir = dataDir_;
    config.fsync = srv::FsyncPolicy::Never;
    obs::ProcessMetrics metrics;
    const std::string path = srv::SessionJournal::pathFor(dataDir_,
                                                          "acme");
    {
        srv::SessionJournal journal(config, "acme", /*truncate=*/true,
                                    metrics);
        ASSERT_TRUE(journal.ok());
        srv::SessionConfig session;
        session.id = "acme";
        journal.appendCreate(session);
        journal.appendAdvance(10.0);
    }
    const srv::JournalLoad clean = srv::loadJournal(path);
    ASSERT_TRUE(clean.ok);
    ASSERT_EQ(clean.records.size(), 2u);

    // Simulate a SIGKILL mid-write: a partial record with no newline.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"v\":1,\"op\":\"adva";
    }
    const srv::JournalLoad load = srv::loadJournal(path);
    ASSERT_TRUE(load.ok) << load.error;
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.droppedLines, 1u);
    EXPECT_EQ(load.validBytes, clean.validBytes);
}

TEST_F(SrvJournal, GracefulRestartRestoresByteIdenticalReports)
{
    std::string autoTenant;
    std::string acmeReport, autoReport;
    {
        auto app = makeApp(dataDir_);
        srv::HttpClient client(app->boundPort());
        driveTenant(client, "acme");
        srv::ClientResponse r =
            client.post("/v1/tenants", tenantBody(""));
        ASSERT_EQ(r.status, 201) << r.body;
        autoTenant = obs::parseJson(r.body).find("tenant")->string;
        EXPECT_EQ(autoTenant, "t-2");
        r = client.post("/v1/tenants/" + autoTenant + "/jobs",
                        jobBody(2.0));
        ASSERT_EQ(r.status, 200) << r.body;
        acmeReport = report(client, "acme");
        autoReport = report(client, autoTenant);
        app->stop();
    }

    auto app = makeApp(dataDir_);
    EXPECT_EQ(app->sessions().lifecycleStats().restored, 2u);
    srv::HttpClient client(app->boundPort());

    const srv::ClientResponse list = client.get("/v1/tenants");
    ASSERT_EQ(list.status, 200);
    EXPECT_NE(list.body.find("\"acme\""), std::string::npos);
    EXPECT_NE(list.body.find("\"" + autoTenant + "\""),
              std::string::npos);

    // Deterministic replay: the restored reports are byte-identical.
    EXPECT_EQ(report(client, "acme"), acmeReport);
    EXPECT_EQ(report(client, autoTenant), autoReport);

    // Server-assigned ids do not collide with restored ones.
    const srv::ClientResponse r =
        client.post("/v1/tenants", tenantBody(""));
    ASSERT_EQ(r.status, 201) << r.body;
    EXPECT_EQ(obs::parseJson(r.body).find("tenant")->string, "t-3");

    // And the revived sessions keep accepting (journal reopened).
    const srv::ClientResponse job =
        client.post("/v1/tenants/acme/jobs", jobBody(130.0));
    EXPECT_EQ(job.status, 200) << job.body;
}

/**
 * Journal replay reproduces the sampling stream, not just the report:
 * the create record journals the *resolved* timeline mode and cadence
 * (never Auto), so a restart — even one whose daemon default cadence
 * differs — rebuilds a byte-identical timeline.
 */
TEST_F(SrvJournal, RestartReplaysByteIdenticalTimeline)
{
    std::string before;
    {
        auto app = makeApp(dataDir_); // default cadence: 30 s
        srv::HttpClient client(app->boundPort());
        driveTenant(client, "acme");
        const srv::ClientResponse r =
            client.get("/v1/tenants/acme/timeline");
        ASSERT_EQ(r.status, 200) << r.body;
        before = r.body;
        const obs::JsonValue v = obs::parseJson(before);
        ASSERT_TRUE(v.find("enabled")->boolOr(false));
        ASSERT_GT(v.find("recorded")->numberOr(0), 0.0);
        app->stop();
    }

    // Restart with a different default: the journaled session must keep
    // its own frozen cadence, not adopt the new daemon flag.
    srv::ServeConfig config;
    config.timelineCadence = 5.0;
    auto app = makeApp(dataDir_, config);
    ASSERT_EQ(app->sessions().lifecycleStats().restored, 1u);
    srv::HttpClient client(app->boundPort());
    const srv::ClientResponse after =
        client.get("/v1/tenants/acme/timeline");
    ASSERT_EQ(after.status, 200) << after.body;
    EXPECT_EQ(after.body, before)
        << "journal replay altered the timeline stream";
}

TEST_F(SrvJournal, RestartTruncatesCorruptTailAndKeepsPrefix)
{
    std::string cleanReport;
    {
        auto app = makeApp(dataDir_);
        srv::HttpClient client(app->boundPort());
        driveTenant(client, "acme");
        cleanReport = report(client, "acme");
    }
    const std::string path = srv::SessionJournal::pathFor(dataDir_,
                                                          "acme");
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"v\":1,\"op\":\"submit\",\"job\":{bro";
    }

    auto app = makeApp(dataDir_);
    EXPECT_EQ(app->sessions().lifecycleStats().restored, 1u);
    EXPECT_EQ(app->sessions().lifecycleStats().truncatedLines, 1u);
    srv::HttpClient client(app->boundPort());
    // The valid prefix was restored; the corrupt tail was truncated
    // away so new appends extend a clean log.
    EXPECT_EQ(report(client, "acme"), cleanReport);
    const srv::ClientResponse job =
        client.post("/v1/tenants/acme/jobs", jobBody(130.0));
    EXPECT_EQ(job.status, 200) << job.body;
}

TEST_F(SrvJournal, IdleEvictionAndLazyRevivalPreserveReports)
{
    srv::ServeConfig config;
    // Generous threshold: under TSan a scheduler hiccup inside
    // driveTenant can exceed a tens-of-ms threshold and trigger a
    // spurious request-path eviction, skewing the counters below.
    config.limits.idleEvictSeconds = 0.3;
    auto app = makeApp(dataDir_, config);
    srv::HttpClient client(app->boundPort());
    driveTenant(client, "acme");
    const std::string before = report(client, "acme");
    EXPECT_EQ(app->sessions().liveCount(), 1u);

    // The simulation gauges exist while the session is live...
    srv::ClientResponse metrics = client.get("/metrics");
    EXPECT_NE(metrics.body.find("hcloud_sim_now{tenant=\"acme\"}"),
              std::string::npos);

    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    EXPECT_EQ(app->sessions().sweepIdle(), 1u);
    EXPECT_EQ(app->sessions().liveCount(), 0u);
    EXPECT_EQ(app->sessions().sessionCount(), 1u);
    EXPECT_EQ(app->sessions().lifecycleStats().evictions, 1u);
    // The journal survives the eviction; the engine memory is gone.
    EXPECT_TRUE(
        fileExists(srv::SessionJournal::pathFor(dataDir_, "acme")));
    // ...and are retired with the engine: an evicted session has no
    // live cluster state, so stale gauge values must not linger on the
    // scrape masquerading as one.
    metrics = client.get("/metrics");
    EXPECT_EQ(metrics.body.find("hcloud_sim_now{tenant=\"acme\"}"),
              std::string::npos)
        << "evicted tenant leaked simulation gauges";

    // Next touch revives from the journal — same bytes, back to live.
    EXPECT_EQ(report(client, "acme"), before);
    EXPECT_EQ(app->sessions().liveCount(), 1u);
    EXPECT_EQ(app->sessions().lifecycleStats().revivals, 1u);
    // A revived session keeps journaling: one more job, then force a
    // second eviction and check the new job survived it.
    srv::ClientResponse r =
        client.post("/v1/tenants/acme/jobs", jobBody(130.0));
    ASSERT_EQ(r.status, 200) << r.body;
    // The gauges reappear on the next sampled mutation (the submit
    // above), not on the read-only revival itself.
    metrics = client.get("/metrics");
    EXPECT_NE(metrics.body.find("hcloud_sim_now{tenant=\"acme\"}"),
              std::string::npos);
    const std::string extended = report(client, "acme");
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    EXPECT_EQ(app->sessions().sweepIdle(), 1u);
    EXPECT_EQ(report(client, "acme"), extended);
}

TEST_F(SrvJournal, DeleteRemovesSessionJournalAndMetricSeries)
{
    auto app = makeApp(dataDir_);
    srv::HttpClient client(app->boundPort());
    driveTenant(client, "acme");
    const std::string path = srv::SessionJournal::pathFor(dataDir_,
                                                          "acme");
    EXPECT_TRUE(fileExists(path));
    srv::ClientResponse metrics = client.get("/metrics");
    EXPECT_NE(metrics.body.find("tenant=\"acme\""), std::string::npos);
    EXPECT_NE(metrics.body.find("hcloud_serve_sessions 1"),
              std::string::npos);
    // driveTenant advanced past the sampling cadence, so the live
    // simulation gauges exist — making their absence after DELETE a
    // real reclaim check, not a vacuous one.
    EXPECT_NE(metrics.body.find("hcloud_sim_now{tenant=\"acme\"}"),
              std::string::npos)
        << metrics.body;
    EXPECT_NE(
        metrics.body.find("hcloud_sim_cost_total{tenant=\"acme\"}"),
        std::string::npos);

    const srv::ClientResponse del = client.del("/v1/tenants/acme");
    ASSERT_EQ(del.status, 200) << del.body;
    const obs::JsonValue v = obs::parseJson(del.body);
    EXPECT_EQ(v.find("tenant")->string, "acme");

    // Gone: session (404), journal file, per-tenant metric series.
    const srv::ClientResponse rep =
        client.get("/v1/tenants/acme/report");
    EXPECT_EQ(rep.status, 404);
    EXPECT_EQ(errorCode(rep.body), "unknown_tenant");
    EXPECT_FALSE(fileExists(path));
    metrics = client.get("/metrics");
    EXPECT_EQ(metrics.body.find("tenant=\"acme\""), std::string::npos);
    EXPECT_NE(metrics.body.find("hcloud_serve_sessions 0"),
              std::string::npos);
    EXPECT_EQ(app->sessions().lifecycleStats().deletes, 1u);

    // Deleting again is 404; re-creating the same id starts fresh.
    EXPECT_EQ(client.del("/v1/tenants/acme").status, 404);
    const srv::ClientResponse again =
        client.post("/v1/tenants", tenantBody("acme"));
    EXPECT_EQ(again.status, 201) << again.body;

    // A restart must NOT resurrect the deleted generation's jobs.
    app.reset();
    auto app2 = makeApp(dataDir_);
    srv::HttpClient client2(app2->boundPort());
    const srv::ClientResponse fresh =
        client2.get("/v1/tenants/acme/report");
    ASSERT_EQ(fresh.status, 200);
    EXPECT_EQ(obs::parseJson(fresh.body).find("jobs")->number, 0.0);
}

TEST_F(SrvJournal, DeleteOfEvictedTenantCleansUpToo)
{
    srv::ServeConfig config;
    // Generous threshold: under TSan a scheduler hiccup inside
    // driveTenant can exceed a tens-of-ms threshold and trigger a
    // spurious request-path eviction, skewing the counters below.
    config.limits.idleEvictSeconds = 0.3;
    auto app = makeApp(dataDir_, config);
    srv::HttpClient client(app->boundPort());
    driveTenant(client, "acme");
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    ASSERT_EQ(app->sessions().sweepIdle(), 1u);

    const srv::ClientResponse del = client.del("/v1/tenants/acme");
    ASSERT_EQ(del.status, 200) << del.body;
    EXPECT_EQ(app->sessions().sessionCount(), 0u);
    EXPECT_EQ(app->sessions().liveCount(), 0u);
    EXPECT_FALSE(
        fileExists(srv::SessionJournal::pathFor(dataDir_, "acme")));
}

TEST_F(SrvJournal, SessionCapShedsWithStructured429)
{
    srv::ServeConfig config;
    config.limits.maxSessions = 1;
    auto app = makeApp(dataDir_, config);
    srv::HttpClient client(app->boundPort());
    ASSERT_EQ(client.post("/v1/tenants", tenantBody("one")).status,
              201);
    const srv::ClientResponse r =
        client.post("/v1/tenants", tenantBody("two"));
    EXPECT_EQ(r.status, 429);
    EXPECT_EQ(errorCode(r.body), "too_many_sessions");
    EXPECT_EQ(app->sessions().sessionCount(), 1u);
    EXPECT_GE(app->sessions().lifecycleStats().admissionRejects, 1u);

    // Deleting frees the slot.
    ASSERT_EQ(client.del("/v1/tenants/one").status, 200);
    EXPECT_EQ(client.post("/v1/tenants", tenantBody("two")).status,
              201);
}

TEST_F(SrvJournal, JournalQuotaShedsWritesWithStructured429)
{
    srv::ServeConfig config;
    config.journal.maxBytesPerTenant = 600;
    auto app = makeApp(dataDir_, config);
    srv::HttpClient client(app->boundPort());
    ASSERT_EQ(client.post("/v1/tenants", tenantBody("acme")).status,
              201);

    bool shed = false;
    for (int i = 1; i <= 50 && !shed; ++i) {
        const srv::ClientResponse r = client.post(
            "/v1/tenants/acme/jobs", jobBody(static_cast<double>(i)));
        if (r.status == 429) {
            EXPECT_EQ(errorCode(r.body), "journal_quota_exceeded");
            shed = true;
        } else {
            ASSERT_EQ(r.status, 200) << r.body;
        }
    }
    EXPECT_TRUE(shed) << "journal quota never tripped";
    // Reads keep working past the quota; only writes shed.
    EXPECT_EQ(client.get("/v1/tenants/acme/report").status, 200);
}

TEST_F(SrvJournal, InvalidTenantIdsAre422)
{
    auto app = makeApp(dataDir_);
    srv::HttpClient client(app->boundPort());
    for (const char* bad : {"../escape", ".hidden", "-flag", "a b"}) {
        const srv::ClientResponse r =
            client.post("/v1/tenants", tenantBody(bad));
        EXPECT_EQ(r.status, 422) << bad;
        EXPECT_EQ(errorCode(r.body), "invalid_tenant_id") << bad;
    }
    // Nothing leaked into the data dir or the registry.
    EXPECT_EQ(app->sessions().sessionCount(), 0u);
    EXPECT_TRUE(srv::listJournals(dataDir_).empty());
}

// ---- SIGKILL crash recovery against the real daemon binary -------------

/** One fork/exec'd hcloud_serve with stdout piped for port discovery. */
struct Daemon
{
    pid_t pid = -1;
    int out = -1; ///< read end of the child's stdout
    std::uint16_t port = 0;

    ~Daemon()
    {
        if (out >= 0)
            ::close(out);
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
        }
    }

    void sigkill()
    {
        ASSERT_GT(pid, 0);
        ASSERT_EQ(::kill(pid, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFSIGNALED(status));
        pid = -1;
        ::close(out);
        out = -1;
    }
};

/** Start the daemon on an ephemeral port; blocks until it listens. */
void
spawnDaemon(const std::string& dataDir, Daemon* daemon)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        ::execl(HCLOUD_SERVE_BIN, HCLOUD_SERVE_BIN, "--port", "0",
                "--shards", "2", "--threads", "2", "--http-workers",
                "2", "--data-dir", dataDir.c_str(), "--fsync",
                "always", static_cast<char*>(nullptr));
        _exit(127); // exec failed
    }
    ::close(fds[1]);
    daemon->pid = pid;
    daemon->out = fds[0];

    // Read stdout until the "listening http://127.0.0.1:PORT/" line.
    std::string buffer;
    char chunk[256];
    for (;;) {
        const ssize_t n = ::read(daemon->out, chunk, sizeof(chunk));
        ASSERT_GT(n, 0) << "daemon exited before listening: " << buffer;
        buffer.append(chunk, static_cast<std::size_t>(n));
        const std::size_t at = buffer.find("http://127.0.0.1:");
        if (at == std::string::npos)
            continue;
        const std::size_t end = buffer.find('/', at + 17);
        if (end == std::string::npos)
            continue;
        daemon->port = static_cast<std::uint16_t>(std::atoi(
            buffer.substr(at + 17, end - at - 17).c_str()));
        break;
    }
    ASSERT_NE(daemon->port, 0);
}

TEST_F(SrvJournal, SigkillRecoveryIsByteIdentical)
{
    Daemon first;
    ASSERT_NO_FATAL_FAILURE(spawnDaemon(dataDir_, &first));
    std::string acmeReport, bravoReport;
    {
        srv::HttpClient client(first.port);
        ASSERT_NO_FATAL_FAILURE(driveTenant(client, "acme"));
        ASSERT_NO_FATAL_FAILURE(driveTenant(client, "bravo"));
        acmeReport = report(client, "acme");
        bravoReport = report(client, "bravo");
    }
    ASSERT_FALSE(acmeReport.empty());

    // No graceful shutdown: every acked command must already be
    // durable (fsync=always), so recovery owes us the exact reports.
    ASSERT_NO_FATAL_FAILURE(first.sigkill());

    Daemon second;
    ASSERT_NO_FATAL_FAILURE(spawnDaemon(dataDir_, &second));
    srv::HttpClient client(second.port);

    const srv::ClientResponse list = client.get("/v1/tenants");
    ASSERT_EQ(list.status, 200);
    EXPECT_NE(list.body.find("\"acme\""), std::string::npos);
    EXPECT_NE(list.body.find("\"bravo\""), std::string::npos);

    EXPECT_EQ(report(client, "acme"), acmeReport);
    EXPECT_EQ(report(client, "bravo"), bravoReport);

    // The recovered daemon accepts new work on the old sessions.
    const srv::ClientResponse job =
        client.post("/v1/tenants/acme/jobs", jobBody(130.0));
    EXPECT_EQ(job.status, 200) << job.body;
}

} // namespace
} // namespace hcloud
