/**
 * @file
 * The serving layer's determinism contract, proven over real HTTP:
 * a tenant session fed the jobs of a generated scenario trace one
 * request at a time emits a decision stream bit-identical to the same
 * configuration executed through exp::Runner's batch path — same
 * times, jobs, reason codes, values and details. Also the concurrency
 * hammer: four tenants driven from four client threads (run under
 * TSan in CI) must never crash, race, or drop a submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/types.hpp"
#include "exp/runner.hpp"
#include "obs/json.hpp"
#include "obs/process_metrics.hpp"
#include "obs/trace_event.hpp"
#include "srv/http_client.hpp"
#include "srv/json_api.hpp"
#include "srv/serve_app.hpp"
#include "workload/scenario.hpp"
#include "workload/trace.hpp"

namespace hcloud {
namespace {

/** One Decision trace event with a subject job, as the batch run saw it. */
struct BatchDecision
{
    double time;
    sim::JobId job;
    std::string reason;
    double value;
    std::string detail;
};

std::vector<BatchDecision>
batchDecisions(const core::RunResult& result)
{
    std::vector<BatchDecision> out;
    for (const obs::TraceEvent& e : result.trace.events) {
        if (e.kind == obs::EventKind::Decision && e.job != 0)
            out.push_back({e.time, e.job, obs::toString(e.reason),
                           e.value, e.detail});
    }
    return out;
}

std::string
tenantBody(const std::string& id, core::StrategyKind strategy,
           const workload::ScenarioConfig& scenario,
           const core::EngineConfig& engine)
{
    obs::JsonWriter w;
    w.beginObject();
    if (!id.empty())
        w.field("id", id);
    w.field("strategy", core::toString(strategy));
    w.key("scenario");
    w.beginObject();
    w.field("kind", workload::toString(scenario.kind));
    w.field("duration", scenario.duration);
    w.field("seed", static_cast<std::uint64_t>(scenario.seed));
    w.field("loadScale", scenario.loadScale);
    w.endObject();
    w.key("engine");
    w.beginObject();
    w.field("seed", static_cast<std::uint64_t>(engine.seed));
    w.field("useProfiling", engine.useProfiling);
    w.field("maxRuntime", engine.maxRuntime);
    if (engine.timeline.mode != obs::TimelineConfig::Mode::Auto) {
        w.key("timeline");
        w.beginObject();
        w.field("enabled",
                engine.timeline.mode == obs::TimelineConfig::Mode::On);
        w.field("cadence", engine.timeline.cadence);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.take();
}

std::string
advanceBody(double to)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("to", to);
    w.endObject();
    return w.take();
}

/**
 * Run one (scenario, HM, profiling) cell through exp::Runner, then
 * replay the identical configuration as an HTTP tenant — same scenario
 * config, same engine seed, jobs POSTed in arrival order through the
 * bit-exact JobSpec JSON round trip — and require the two decision
 * streams to match element for element, bitwise on the doubles.
 */
void
expectHttpMatchesBatch(bool useProfiling, double duration)
{
    exp::ExperimentOptions options;
    options.seed = 42;
    options.loadScale = 0.05;
    options.threads = 1;
    exp::Runner runner(options);

    workload::ScenarioConfig scenario =
        runner.scenarioConfig(workload::ScenarioKind::Static);
    scenario.duration = duration;

    exp::RunSpec spec;
    spec.scenario = workload::ScenarioKind::Static;
    spec.strategy = core::StrategyKind::HM;
    spec.config.useProfiling = useProfiling;
    // Bound the post-scenario tick tail (the default horizon is 12 h of
    // idle housekeeping) so the test runs in seconds, identically on
    // both sides of the comparison.
    spec.config.maxRuntime = duration + 2.0 * 3600.0;
    spec.config.trace.mode = obs::TraceConfig::Mode::On;
    spec.config.trace.ringCapacity = 1u << 18; // never ring-truncate
    spec.scenarioOverride = scenario;
    const std::vector<core::RunResult> results = runner.runBatch({spec});
    ASSERT_EQ(results.size(), 1u);
    const std::vector<BatchDecision> expected =
        batchDecisions(results[0]);
    ASSERT_FALSE(expected.empty())
        << "batch run produced no job decisions; scenario too small";

    // What runBatch actually ran: the spec's config with its seed
    // replaced by options().seed (the Runner seed contract).
    core::EngineConfig engine = spec.config;
    engine.seed = options.seed;

    obs::ProcessMetrics metrics;
    srv::ServeConfig config;
    config.shards = 2;
    config.threads = 2;
    config.httpWorkers = 2;
    srv::ServeApp app(config, metrics);
    ASSERT_TRUE(app.start(0));
    srv::HttpClient client(app.boundPort());

    const auto created = client.post(
        "/v1/tenants",
        tenantBody("det", core::StrategyKind::HM, scenario, engine));
    ASSERT_TRUE(created.ok);
    ASSERT_EQ(created.status, 201) << created.body;

    // The same trace the batch run executed, submitted one HTTP request
    // per job, each spec crossing the wire as JSON.
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario);
    ASSERT_FALSE(trace.jobs().empty());
    for (const workload::JobSpec& job : trace.jobs()) {
        obs::JsonWriter w;
        srv::jobSpecJson(w, job);
        const auto r = client.post("/v1/tenants/det/jobs", w.take());
        ASSERT_TRUE(r.ok);
        ASSERT_EQ(r.status, 200) << r.body;
    }

    // Drain the session past the engine's safety horizon so every late
    // decision (retention, QoS rescheduling, the maxRuntime sweep) has
    // fired, exactly as the batch run-to-completion did.
    const auto advanced = client.post("/v1/tenants/det/advance",
                                      advanceBody(engine.maxRuntime + 1.0));
    ASSERT_EQ(advanced.status, 200) << advanced.body;

    const auto report = client.get("/v1/tenants/det/report");
    ASSERT_EQ(report.status, 200);
    const obs::JsonValue parsed = obs::parseJson(report.body);
    const obs::JsonValue* decisions = parsed.find("decisions");
    ASSERT_NE(decisions, nullptr);
    ASSERT_EQ(decisions->type, obs::JsonValue::Type::Array);

    ASSERT_EQ(decisions->array.size(), expected.size())
        << "HTTP session and batch run disagree on decision count";
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const obs::JsonValue& d = decisions->array[i];
        const BatchDecision& e = expected[i];
        SCOPED_TRACE("decision " + std::to_string(i) + " (job " +
                     std::to_string(e.job) + ", " + e.reason + ")");
        ASSERT_EQ(d.type, obs::JsonValue::Type::Object);
        const obs::JsonValue* time = d.find("time");
        const obs::JsonValue* job = d.find("job");
        const obs::JsonValue* reason = d.find("reason");
        const obs::JsonValue* value = d.find("value");
        ASSERT_NE(time, nullptr);
        ASSERT_NE(job, nullptr);
        ASSERT_NE(reason, nullptr);
        ASSERT_NE(value, nullptr);
        EXPECT_EQ(time->number, e.time); // exact: JSON round-trips bits
        EXPECT_EQ(static_cast<sim::JobId>(job->number), e.job);
        EXPECT_EQ(reason->string, e.reason);
        EXPECT_EQ(value->number, e.value);
        const obs::JsonValue* detail = d.find("detail");
        EXPECT_EQ(detail != nullptr ? detail->string : std::string(),
                  e.detail);
    }

    app.stop();
}

TEST(ServeDeterminism, HttpDecisionStreamMatchesBatchRunner)
{
    expectHttpMatchesBatch(/*useProfiling=*/false, /*duration=*/1800.0);
}

TEST(ServeDeterminism, HttpDecisionStreamMatchesBatchRunnerProfiled)
{
    expectHttpMatchesBatch(/*useProfiling=*/true, /*duration=*/900.0);
}

/**
 * The timeline acceptance check: a daemon session driven over HTTP and
 * the equivalent exp::Runner batch run must produce *byte-identical*
 * timeline JSONL for the same scenario and seed. Samples land on the
 * first engine tick at or after each cadence boundary, and the tick
 * times are a pure function of (trace, config, seed) — whether the run
 * was driven in one engine.run() or job by job over the wire. The batch
 * run stops ticking once its work is exhausted while the session is
 * advanced explicitly past that point, so the batch stream must be a
 * byte-exact *prefix* of the session stream (the session's extra
 * samples just continue the cadence over explicitly-driven idle time).
 */
TEST(ServeDeterminism, HttpTimelineJsonlMatchesBatchRunner)
{
    exp::ExperimentOptions options;
    options.seed = 42;
    options.loadScale = 0.05;
    options.threads = 1;
    exp::Runner runner(options);

    workload::ScenarioConfig scenario =
        runner.scenarioConfig(workload::ScenarioKind::Static);
    scenario.duration = 1800.0;

    exp::RunSpec spec;
    spec.scenario = workload::ScenarioKind::Static;
    spec.strategy = core::StrategyKind::HM;
    spec.config.useProfiling = false;
    spec.config.maxRuntime = scenario.duration + 2.0 * 3600.0;
    spec.config.timeline.mode = obs::TimelineConfig::Mode::On;
    spec.config.timeline.cadence = 30.0;
    spec.scenarioOverride = scenario;
    const std::vector<core::RunResult> results = runner.runBatch({spec});
    ASSERT_EQ(results.size(), 1u);
    const obs::TimelineBuffer& batch = results[0].timeline;
    ASSERT_GT(batch.recorded, 0u);
    ASSERT_EQ(batch.dropped, 0u)
        << "batch run must fit the timeline ring for a full comparison";
    std::vector<std::string> batchLines;
    batchLines.reserve(batch.samples.size());
    for (const obs::TimelineSample& s : batch.samples)
        batchLines.push_back(obs::toJson(s));

    core::EngineConfig engine = spec.config;
    engine.seed = options.seed;

    obs::ProcessMetrics metrics;
    srv::ServeConfig config;
    config.shards = 2;
    config.threads = 2;
    config.httpWorkers = 2;
    // A deliberately different daemon default: the explicit per-session
    // config must win, or replay-equivalence is broken.
    config.timelineCadence = 7.0;
    srv::ServeApp app(config, metrics);
    ASSERT_TRUE(app.start(0));
    srv::HttpClient client(app.boundPort());

    const auto created = client.post(
        "/v1/tenants",
        tenantBody("tl", core::StrategyKind::HM, scenario, engine));
    ASSERT_EQ(created.status, 201) << created.body;

    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario);
    for (const workload::JobSpec& job : trace.jobs()) {
        obs::JsonWriter w;
        srv::jobSpecJson(w, job);
        const auto r = client.post("/v1/tenants/tl/jobs", w.take());
        ASSERT_EQ(r.status, 200) << r.body;
    }
    const auto advanced = client.post(
        "/v1/tenants/tl/advance", advanceBody(engine.maxRuntime + 1.0));
    ASSERT_EQ(advanced.status, 200) << advanced.body;

    // Page the whole stream through the since-cursor, re-serializing
    // each sample with the shared writer: the bytes must match the
    // batch stream sample for sample.
    std::vector<std::string> httpLines;
    std::uint64_t cursor = 0;
    for (;;) {
        const auto page = client.get(
            "/v1/tenants/tl/timeline?since=" + std::to_string(cursor));
        ASSERT_EQ(page.status, 200) << page.body;
        const obs::JsonValue v = obs::parseJson(page.body);
        ASSERT_TRUE(v.find("enabled")->boolOr(false));
        EXPECT_DOUBLE_EQ(v.find("cadence")->numberOr(0), 30.0);
        EXPECT_EQ(v.find("dropped")->numberOr(-1), 0.0);
        const obs::JsonValue* samples = v.find("samples");
        ASSERT_NE(samples, nullptr);
        if (samples->array.empty())
            break;
        for (const obs::JsonValue& sj : samples->array) {
            obs::TimelineSample s;
            ASSERT_TRUE(obs::sampleFromJson(sj, &s));
            httpLines.push_back(obs::toJson(s));
        }
        cursor =
            static_cast<std::uint64_t>(v.find("nextSince")->numberOr(0));
    }

    ASSERT_GE(httpLines.size(), batchLines.size())
        << "HTTP session sampled less than the batch run";
    for (std::size_t i = 0; i < batchLines.size(); ++i) {
        SCOPED_TRACE("sample " + std::to_string(i));
        EXPECT_EQ(httpLines[i], batchLines[i]);
    }
    // The session's extra samples continue the same cadence grid.
    for (std::size_t i = batchLines.size(); i < httpLines.size(); ++i) {
        obs::TimelineSample s;
        ASSERT_TRUE(obs::sampleFromJsonLine(httpLines[i], &s));
        EXPECT_EQ(s.seq, i);
    }

    app.stop();
}

/**
 * Four tenants hammered from four client threads. Submissions must all
 * land (no lost updates, no 5xx, no crash); concurrent cross-tenant
 * report and /metrics reads race against the writers through the shard
 * strands. This is the test CI runs under ThreadSanitizer.
 */
TEST(ServeConcurrency, FourTenantsFourClientThreads)
{
    obs::ProcessMetrics metrics;
    srv::ServeConfig config;
    config.shards = 4;
    config.threads = 4;
    config.httpWorkers = 4;
    srv::ServeApp app(config, metrics);
    ASSERT_TRUE(app.start(0));

    constexpr int kThreads = 4;
    constexpr int kJobs = 40;
    std::atomic<int> failures{0};

    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&app, &failures, t] {
            srv::HttpClient client(app.boundPort());
            const std::string id = "load-" + std::to_string(t);

            workload::ScenarioConfig scenario;
            scenario.kind = workload::ScenarioKind::Static;
            scenario.duration = 600.0;
            scenario.seed = 7 + static_cast<std::uint64_t>(t);
            scenario.loadScale = 0.02;
            core::EngineConfig engine;
            engine.seed = 7 + static_cast<std::uint64_t>(t);
            engine.useProfiling = false;
            const auto created = client.post(
                "/v1/tenants",
                tenantBody(id, core::StrategyKind::HM, scenario, engine));
            if (created.status != 201) {
                failures.fetch_add(1);
                return;
            }

            for (int i = 0; i < kJobs; ++i) {
                obs::JsonWriter w;
                w.beginObject();
                w.field("kind", "hadoop-recommender");
                w.field("arrival", i * 5.0);
                w.field("coresIdeal", 4);
                w.field("idealDuration", 30.0);
                w.endObject();
                const auto r =
                    client.post("/v1/tenants/" + id + "/jobs", w.take());
                if (r.status != 200)
                    failures.fetch_add(1);
                // Interleave reads that cross shard strands and the
                // shared metrics registry while other tenants write.
                if (i % 8 == 0) {
                    const auto m = client.get("/metrics");
                    if (m.status != 200)
                        failures.fetch_add(1);
                }
            }

            // Cross-tenant reads: another thread's tenant may not exist
            // yet (404 is fine); anything else must succeed cleanly.
            for (int o = 0; o < kThreads; ++o) {
                const auto r = client.get(
                    "/v1/tenants/load-" + std::to_string(o) + "/report");
                if (r.status != 200 && r.status != 404)
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread& thread : clients)
        thread.join();
    EXPECT_EQ(failures.load(), 0);

    // Every submission must have landed in its tenant's engine.
    srv::HttpClient client(app.boundPort());
    for (int t = 0; t < kThreads; ++t) {
        const auto r = client.get("/v1/tenants/load-" + std::to_string(t) +
                                  "/report");
        ASSERT_EQ(r.status, 200);
        const obs::JsonValue parsed = obs::parseJson(r.body);
        const obs::JsonValue* jobs = parsed.find("jobs");
        ASSERT_NE(jobs, nullptr);
        EXPECT_EQ(static_cast<int>(jobs->number), kJobs)
            << "tenant load-" << t << " lost submissions";
    }

    app.stop();
}

} // namespace
} // namespace hcloud
