/**
 * @file
 * Tests for the application-mapping policies (P1-P8) and the dynamic
 * policy's decision structure (Figure 8).
 */

#include <gtest/gtest.h>

#include "core/mapping_policy.hpp"

namespace hcloud::core {
namespace {

MappingInputs
baseInputs()
{
    MappingInputs in;
    in.reservedUtilization = 0.5;
    in.jobQuality = 0.5;
    in.onDemandQ90 = 0.9;
    in.softLimit = 0.65;
    in.hardLimit = 0.85;
    in.estimatedQueueWait = 1.0;
    in.largeSpinUpMedian = 15.0;
    return in;
}

TEST(MappingPolicy, RandomIsRoughlyFair)
{
    sim::Rng rng(3);
    MappingInputs in = baseInputs();
    in.rng = &rng;
    int reserved = 0;
    for (int i = 0; i < 2000; ++i) {
        reserved += decideMapping(PolicyKind::P1Random, in) ==
            MapTarget::Reserved;
    }
    EXPECT_NEAR(reserved / 2000.0, 0.5, 0.05);
}

TEST(MappingPolicy, QualityThresholds)
{
    MappingInputs in = baseInputs();
    in.jobQuality = 0.85;
    EXPECT_EQ(decideMapping(PolicyKind::P2Q80, in), MapTarget::Reserved);
    EXPECT_EQ(decideMapping(PolicyKind::P3Q50, in), MapTarget::Reserved);
    EXPECT_EQ(decideMapping(PolicyKind::P4Q20, in), MapTarget::Reserved);
    in.jobQuality = 0.60;
    EXPECT_EQ(decideMapping(PolicyKind::P2Q80, in), MapTarget::OnDemand);
    EXPECT_EQ(decideMapping(PolicyKind::P3Q50, in), MapTarget::Reserved);
    in.jobQuality = 0.10;
    EXPECT_EQ(decideMapping(PolicyKind::P4Q20, in), MapTarget::OnDemand);
}

TEST(MappingPolicy, StaticLoadLimits)
{
    MappingInputs in = baseInputs();
    in.reservedUtilization = 0.60;
    EXPECT_EQ(decideMapping(PolicyKind::P5Load50, in),
              MapTarget::OnDemand);
    EXPECT_EQ(decideMapping(PolicyKind::P6Load70, in),
              MapTarget::Reserved);
    EXPECT_EQ(decideMapping(PolicyKind::P7Load90, in),
              MapTarget::Reserved);
    in.reservedUtilization = 0.95;
    EXPECT_EQ(decideMapping(PolicyKind::P7Load90, in),
              MapTarget::OnDemand);
}

TEST(DynamicPolicy, BelowSoftEverythingReserved)
{
    MappingInputs in = baseInputs();
    in.reservedUtilization = 0.30;
    in.jobQuality = 0.1; // even ultra-tolerant jobs
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::Reserved);
}

TEST(DynamicPolicy, BetweenLimitsSplitsBySensitivity)
{
    MappingInputs in = baseInputs();
    in.reservedUtilization = 0.75;
    // Tolerant job: the on-demand type meets its quality at 90% conf.
    in.jobQuality = 0.5;
    in.onDemandQ90 = 0.9;
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::OnDemand);
    // Sensitive job: stays on reserved.
    in.jobQuality = 0.95;
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::Reserved);
}

TEST(DynamicPolicy, AboveHardQueuesSensitiveJobs)
{
    MappingInputs in = baseInputs();
    in.reservedUtilization = 0.95;
    in.jobQuality = 0.95;
    in.estimatedQueueWait = 2.0; // shorter than spinning up a server
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::QueueReserved);
    // Tolerant jobs still overflow.
    in.jobQuality = 0.4;
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::OnDemand);
}

TEST(DynamicPolicy, QueueWaitEscapeHatch)
{
    MappingInputs in = baseInputs();
    in.reservedUtilization = 0.95;
    in.jobQuality = 0.95;
    in.estimatedQueueWait = 120.0; // queue would outlast a spin-up
    in.largeSpinUpMedian = 15.0;
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::OnDemandLarge);
}

TEST(DynamicPolicy, SoftLimitAdaptationChangesDecision)
{
    MappingInputs in = baseInputs();
    in.reservedUtilization = 0.55;
    in.jobQuality = 0.3;
    in.softLimit = 0.65;
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::Reserved);
    in.softLimit = 0.40; // feedback tightened the limit
    EXPECT_EQ(decideMapping(PolicyKind::P8Dynamic, in),
              MapTarget::OnDemand);
}

TEST(MappingPolicy, NamesDefined)
{
    for (PolicyKind p : kAllPolicies)
        EXPECT_STRNE(toString(p), "?");
    EXPECT_STREQ(toString(MapTarget::Reserved), "reserved");
    EXPECT_STREQ(toString(MapTarget::OnDemandLarge), "on-demand-large");
}

/**
 * Property sweep: under P8, raising utilization never moves a job from
 * on-demand back to reserved (monotone overflow).
 */
class UtilizationMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(UtilizationMonotonicity, OverflowIsMonotone)
{
    MappingInputs in = baseInputs();
    in.jobQuality = GetParam();
    bool overflowed = false;
    for (double util = 0.0; util <= 1.0; util += 0.01) {
        in.reservedUtilization = util;
        const MapTarget t = decideMapping(PolicyKind::P8Dynamic, in);
        if (t != MapTarget::Reserved)
            overflowed = true;
        else
            EXPECT_FALSE(overflowed)
                << "job returned to reserved at util " << util;
    }
}

INSTANTIATE_TEST_SUITE_P(JobQualities, UtilizationMonotonicity,
                         ::testing::Values(0.1, 0.5, 0.8, 0.95));

} // namespace
} // namespace hcloud::core
