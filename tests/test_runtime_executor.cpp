/**
 * @file
 * runtime::ShardedExecutor strand semantics: per-shard FIFO ordering,
 * no concurrent execution within a shard, cross-shard parallelism on the
 * shared pool, blocking call() with results and exceptions, inline
 * execution on serial pools, and drain() completeness.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/span.hpp"
#include "runtime/sharded_executor.hpp"
#include "runtime/thread_pool.hpp"

namespace hcloud {
namespace {

TEST(ShardedExecutor, TasksOnOneShardRunInPostOrder)
{
    runtime::ThreadPool pool(4);
    runtime::ShardedExecutor executor(pool, 2);
    std::vector<int> order;
    for (int i = 0; i < 200; ++i)
        executor.post(0, [i, &order] { order.push_back(i); });
    executor.drain();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ShardedExecutor, OneShardNeverRunsConcurrently)
{
    runtime::ThreadPool pool(8);
    runtime::ShardedExecutor executor(pool, 1);
    std::atomic<int> inside{0};
    std::atomic<int> maxInside{0};
    std::atomic<int> runs{0};
    // Post from many threads; all tasks land on the one shard.
    std::vector<std::thread> posters;
    for (int t = 0; t < 4; ++t) {
        posters.emplace_back([&] {
            for (int i = 0; i < 100; ++i) {
                executor.post(0, [&] {
                    const int now = inside.fetch_add(1) + 1;
                    int seen = maxInside.load();
                    while (now > seen &&
                           !maxInside.compare_exchange_weak(seen, now)) {
                    }
                    inside.fetch_sub(1);
                    runs.fetch_add(1);
                });
            }
        });
    }
    for (std::thread& t : posters)
        t.join();
    executor.drain();
    EXPECT_EQ(runs.load(), 400);
    EXPECT_EQ(maxInside.load(), 1)
        << "two tasks of one shard overlapped";
}

TEST(ShardedExecutor, DifferentShardsRunConcurrently)
{
    runtime::ThreadPool pool(4);
    runtime::ShardedExecutor executor(pool, 4);
    std::atomic<int> running{0};
    std::atomic<int> peak{0};
    std::atomic<bool> go{false};
    for (std::size_t shard = 0; shard < 4; ++shard) {
        executor.post(shard, [&] {
            running.fetch_add(1);
            // Rendezvous: wait until every shard's task is in flight
            // (bounded, so a scheduling hiccup can't hang the test).
            for (int spin = 0; spin < 20'000 && !go; ++spin) {
                if (running.load() == 4)
                    go = true;
                std::this_thread::yield();
            }
            int seen = peak.load();
            const int now = running.load();
            while (now > seen &&
                   !peak.compare_exchange_weak(seen, now)) {
            }
            running.fetch_sub(1);
        });
    }
    executor.drain();
    EXPECT_GE(peak.load(), 2)
        << "shards never overlapped on a 4-thread pool";
}

TEST(ShardedExecutor, CallReturnsValuesAndPropagatesExceptions)
{
    runtime::ThreadPool pool(2);
    runtime::ShardedExecutor executor(pool, 2);
    const int v = executor.call(1, [] { return 41 + 1; });
    EXPECT_EQ(v, 42);
    const std::string s =
        executor.call(0, [] { return std::string("strand"); });
    EXPECT_EQ(s, "strand");
    EXPECT_THROW(executor.call(0,
                               []() -> int {
                                   throw std::runtime_error("bad");
                               }),
                 std::runtime_error);
    // void call
    bool ran = false;
    executor.call(1, [&ran] { ran = true; });
    EXPECT_TRUE(ran);
}

TEST(ShardedExecutor, CallInterleavesWithPostsInOrder)
{
    runtime::ThreadPool pool(4);
    runtime::ShardedExecutor executor(pool, 1);
    std::vector<int> order;
    executor.post(0, [&] { order.push_back(1); });
    executor.post(0, [&] { order.push_back(2); });
    const int result = executor.call(0, [&] {
        order.push_back(3);
        return static_cast<int>(order.size());
    });
    EXPECT_EQ(result, 3);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

TEST(ShardedExecutor, SerialPoolRunsEverythingInline)
{
    runtime::ThreadPool pool(1); // serial: tasks run on the caller
    ASSERT_TRUE(pool.serial());
    runtime::ShardedExecutor executor(pool, 8);
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id taskThread;
    executor.post(3, [&] { taskThread = std::this_thread::get_id(); });
    EXPECT_EQ(taskThread, self);
    const int v = executor.call(5, [&] {
        EXPECT_EQ(std::this_thread::get_id(), self);
        return 7;
    });
    EXPECT_EQ(v, 7);
    executor.drain(); // trivially complete
}

TEST(ShardedExecutor, SerialPoolStillExcludesConcurrentCallers)
{
    // A serial pool runs tasks inline on the caller — but when several
    // threads share the executor (HTTP workers over a 1-CPU engine
    // pool), one shard must still never run two tasks at once.
    runtime::ThreadPool pool(1);
    ASSERT_TRUE(pool.serial());
    runtime::ShardedExecutor executor(pool, 1);
    std::atomic<int> inside{0};
    std::atomic<int> maxInside{0};
    std::atomic<int> sum{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < 4; ++t) {
        callers.emplace_back([&] {
            for (int i = 0; i < 200; ++i) {
                const int got = executor.call(0, [&] {
                    const int now = inside.fetch_add(1) + 1;
                    int seen = maxInside.load();
                    while (now > seen &&
                           !maxInside.compare_exchange_weak(seen, now)) {
                    }
                    inside.fetch_sub(1);
                    return 1;
                });
                sum.fetch_add(got);
            }
        });
    }
    for (std::thread& thread : callers)
        thread.join();
    executor.drain();
    EXPECT_EQ(sum.load(), 800);
    EXPECT_EQ(maxInside.load(), 1)
        << "serial-pool call() bypassed shard exclusion";
}

TEST(ShardedExecutor, ShardIndexWrapsModuloShardCount)
{
    runtime::ThreadPool pool(2);
    runtime::ShardedExecutor executor(pool, 3);
    std::atomic<int> hits{0};
    executor.post(3 + 0, [&] { hits.fetch_add(1); });
    executor.post(3 * 7 + 2, [&] { hits.fetch_add(1); });
    executor.drain();
    EXPECT_EQ(hits.load(), 2);
}

TEST(ShardedExecutor, QueueDepthTracksQueuedAndRunningWork)
{
    runtime::ThreadPool pool(4);
    runtime::ShardedExecutor executor(pool, 2);

    // Block shard 0 so posts behind the blocker pile up visibly.
    std::mutex gateMutex;
    std::condition_variable gateCv;
    bool open = false;
    std::atomic<bool> blockerRunning{false};
    executor.post(0, [&] {
        blockerRunning.store(true);
        std::unique_lock<std::mutex> lock(gateMutex);
        gateCv.wait(lock, [&] { return open; });
    });
    while (!blockerRunning.load())
        std::this_thread::yield();

    for (int i = 0; i < 10; ++i)
        executor.post(0, [] {});
    // The blocker is running and 10 tasks are queued behind it.
    EXPECT_EQ(executor.queueDepth(0), 11u);

    {
        std::lock_guard<std::mutex> lock(gateMutex);
        open = true;
    }
    gateCv.notify_all();
    executor.drain();

    for (std::size_t depth : executor.queueDepths())
        EXPECT_EQ(depth, 0u);
    EXPECT_EQ(executor.tasksExecuted(), 11u);
}

TEST(ShardedExecutor, QueueDepthAccountingUnderContention)
{
    runtime::ThreadPool pool(4);
    runtime::ShardedExecutor executor(pool, 4);
    constexpr int kPosters = 4;
    constexpr int kPerPoster = 500;

    // Hammer all shards from several threads while sampling depths
    // concurrently: every sample must be coherent (bounded by what was
    // posted), and the books must balance exactly after drain().
    std::atomic<bool> sampling{true};
    std::thread sampler([&] {
        while (sampling.load()) {
            for (std::size_t depth : executor.queueDepths())
                EXPECT_LE(depth, static_cast<std::size_t>(
                                     kPosters * kPerPoster));
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> posters;
    std::atomic<int> executed{0};
    for (int p = 0; p < kPosters; ++p) {
        posters.emplace_back([&, p] {
            for (int i = 0; i < kPerPoster; ++i) {
                executor.post(static_cast<std::size_t>(p * kPerPoster + i),
                              [&] { executed.fetch_add(1); });
            }
        });
    }
    for (std::thread& t : posters)
        t.join();
    executor.drain();
    sampling.store(false);
    sampler.join();

    EXPECT_EQ(executed.load(), kPosters * kPerPoster);
    EXPECT_EQ(executor.tasksExecuted(),
              static_cast<std::uint64_t>(kPosters * kPerPoster));
    for (std::size_t depth : executor.queueDepths())
        EXPECT_EQ(depth, 0u);
}

TEST(ShardedExecutor, SpanBindingCrossesStrandHop)
{
    const std::string path = "/tmp/hcloud_test_executor_spans_" +
                             std::to_string(::getpid()) + ".jsonl";
    obs::SpanTracerConfig config;
    config.sinkPath = path;
    {
        obs::SpanTracer tracer(config);
        ASSERT_TRUE(tracer.enabled());
        runtime::ThreadPool pool(2);
        runtime::ShardedExecutor executor(pool, 1);

        const obs::SpanContext ctx{tracer.newTraceId(),
                                   tracer.newSpanId()};
        std::atomic<std::uint64_t> insideTrace{0};
        {
            obs::SpanBinding bind(&tracer, ctx);
            executor.post(0, [&] {
                insideTrace.store(obs::currentSpanContext().trace);
            });
        }
        executor.drain();
        tracer.flush();
        // The pool thread saw the originating request's trace.
        EXPECT_EQ(insideTrace.load(), ctx.trace);
    }

    // strand.wait + strand.exec spans landed, joined to the trace.
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("\"span\":\"strand.wait\""),
              std::string::npos);
    EXPECT_NE(contents.find("\"span\":\"strand.exec\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(ShardedExecutor, NoSpanOverheadWithoutBinding)
{
    // Without a bound tracer, post() must not wrap tasks: the executed
    // task sees no span context on the pool thread.
    runtime::ThreadPool pool(2);
    runtime::ShardedExecutor executor(pool, 1);
    std::atomic<bool> hadContext{true};
    executor.post(0, [&] {
        hadContext.store(obs::currentSpanContext().valid() ||
                         obs::currentSpanTracer() != nullptr);
    });
    executor.drain();
    EXPECT_FALSE(hadContext.load());
}

} // namespace
} // namespace hcloud
