/**
 * @file
 * srv::HttpServer transport semantics over real loopback sockets:
 * routing (wildcards, 404 vs 405), keep-alive and pipelining, bounded
 * request sizes, malformed-input robustness, the 503 back-pressure path
 * when the accepted-connection queue is full, idle-connection timeout,
 * and clean repeated start/stop without fd leaks (TSan validates the
 * shutdown races).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "srv/http_client.hpp"
#include "srv/http_server.hpp"

namespace hcloud {
namespace {

using srv::HttpRequest;
using srv::HttpResponse;
using srv::HttpServer;
using srv::HttpServerConfig;

/** Raw one-shot request helper (sends bytes, reads to EOF). */
std::string
rawRequest(std::uint16_t port, const std::string& request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(SrvHttp, RoutesWildcardsAndCapturesParams)
{
    HttpServer server;
    server.route("GET", "/v1/tenants/*/jobs/*",
                 [](const HttpRequest& r) {
                     return HttpResponse::text(
                         200, r.params[0] + "|" + r.params[1]);
                 });
    server.route("GET", "/v1/tenants", [](const HttpRequest&) {
        return HttpResponse::text(200, "list");
    });
    ASSERT_TRUE(server.start(0));

    srv::HttpClient client(server.boundPort());
    srv::ClientResponse r = client.get("/v1/tenants/t-7/jobs/42");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "t-7|42");

    r = client.get("/v1/tenants");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.body, "list");

    // One segment too few / too many: no match.
    EXPECT_EQ(client.get("/v1/tenants/t-7/jobs").status, 404);
    EXPECT_EQ(client.get("/v1/tenants/t-7/jobs/42/x").status, 404);
}

TEST(SrvHttp, KnownPathWrongMethodIs405UnknownPathIs404)
{
    HttpServer server;
    server.route("GET", "/thing", [](const HttpRequest&) {
        return HttpResponse::text(200, "ok");
    });
    ASSERT_TRUE(server.start(0));
    srv::HttpClient client(server.boundPort());
    EXPECT_EQ(client.post("/thing", "{}").status, 405);
    EXPECT_EQ(client.get("/absent").status, 404);
}

TEST(SrvHttp, QueryStringIsSplitFromPath)
{
    HttpServer server;
    server.route("GET", "/q", [](const HttpRequest& r) {
        return HttpResponse::text(200, r.query);
    });
    ASSERT_TRUE(server.start(0));
    srv::HttpClient client(server.boundPort());
    const srv::ClientResponse r = client.get("/q?a=1&b=2");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "a=1&b=2");
}

TEST(SrvHttp, KeepAliveServesManyRequestsOnOneConnection)
{
    HttpServer server;
    std::atomic<int> hits{0};
    server.route("POST", "/echo", [&hits](const HttpRequest& r) {
        hits.fetch_add(1);
        return HttpResponse::text(200, r.body);
    });
    ASSERT_TRUE(server.start(0));
    srv::HttpClient client(server.boundPort());
    for (int i = 0; i < 50; ++i) {
        const std::string body = "payload-" + std::to_string(i);
        const srv::ClientResponse r = client.post("/echo", body);
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(r.body, body);
    }
    EXPECT_EQ(hits.load(), 50);
    // All 50 on one connection: exactly one served connection implies
    // requestsServed tracked per request, not per connection.
    EXPECT_EQ(server.requestsServed(), 50u);
}

TEST(SrvHttp, PipelinedRequestsAreAnsweredInOrder)
{
    HttpServer server;
    server.route("GET", "/a", [](const HttpRequest&) {
        return HttpResponse::text(200, "AAA");
    });
    server.route("GET", "/b", [](const HttpRequest&) {
        return HttpResponse::text(200, "BBB");
    });
    ASSERT_TRUE(server.start(0));
    const std::string response = rawRequest(
        server.boundPort(), "GET /a HTTP/1.1\r\n\r\n"
                            "GET /b HTTP/1.1\r\nConnection: close\r\n"
                            "\r\n");
    const std::size_t a = response.find("AAA");
    const std::size_t b = response.find("BBB");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b);
}

TEST(SrvHttp, MalformedRequestLineGets400NotACrash)
{
    HttpServer server;
    server.route("GET", "/ok", [](const HttpRequest&) {
        return HttpResponse::text(200, "ok");
    });
    ASSERT_TRUE(server.start(0));
    EXPECT_NE(rawRequest(server.boundPort(), "garbage\r\n\r\n")
                  .find("HTTP/1.1 400"),
              std::string::npos);
    EXPECT_NE(rawRequest(server.boundPort(),
                         "GET /ok SPDY/9\r\n\r\n")
                  .find("HTTP/1.1 400"),
              std::string::npos);
    EXPECT_NE(rawRequest(server.boundPort(),
                         "POST /ok HTTP/1.1\r\n"
                         "Content-Length: banana\r\n\r\n")
                  .find("HTTP/1.1 400"),
              std::string::npos);
    // Still serving normal traffic afterwards.
    srv::HttpClient client(server.boundPort());
    EXPECT_EQ(client.get("/ok").status, 200);
}

TEST(SrvHttp, OversizedRequestsGet413)
{
    HttpServerConfig config;
    config.maxRequestBytes = 256;
    HttpServer server(config);
    server.route("POST", "/x", [](const HttpRequest& r) {
        return HttpResponse::text(200, r.body);
    });
    ASSERT_TRUE(server.start(0));
    srv::HttpClient client(server.boundPort());
    const srv::ClientResponse r =
        client.post("/x", std::string(10'000, 'z'));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 413);
}

TEST(SrvHttp, HandlerExceptionsBecome500)
{
    HttpServer server;
    server.route("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
        throw std::runtime_error("handler exploded");
    });
    ASSERT_TRUE(server.start(0));
    srv::HttpClient client(server.boundPort());
    const srv::ClientResponse r = client.get("/boom");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 500);
    EXPECT_NE(r.body.find("handler exploded"), std::string::npos);
    // The worker survived.
    EXPECT_EQ(client.get("/boom").status, 500);
}

TEST(SrvHttp, CustomErrorFormatterShapesServerErrors)
{
    HttpServerConfig config;
    config.errorResponse = [](int status, std::string_view message) {
        return HttpResponse::json(
            status, "{\"status\":" + std::to_string(status) +
                        ",\"m\":\"" + std::string(message) + "\"}");
    };
    HttpServer server(config);
    ASSERT_TRUE(server.start(0));
    srv::HttpClient client(server.boundPort());
    const srv::ClientResponse r = client.get("/none");
    EXPECT_EQ(r.status, 404);
    EXPECT_NE(r.body.find("\"status\":404"), std::string::npos);
}

TEST(SrvHttp, FullPendingQueueSheds503)
{
    HttpServerConfig config;
    config.workers = 1;
    config.maxPendingConnections = 1;
    config.idleTimeoutMs = 200; // drain silent probes quickly
    HttpServer server(config);

    std::mutex m;
    std::condition_variable cv;
    bool entered = false, release = false;
    server.route("GET", "/slow", [&](const HttpRequest&) {
        {
            std::lock_guard<std::mutex> lock(m);
            entered = true;
            cv.notify_all();
        }
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
        return HttpResponse::text(200, "slow");
    });
    ASSERT_TRUE(server.start(0));

    // Connection A occupies the single worker inside the handler.
    std::thread blocked([&] {
        srv::HttpClient a(server.boundPort());
        EXPECT_EQ(a.get("/slow").status, 200);
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return entered; });
    }
    // Connection B parks in the pending queue (capacity 1) by sending a
    // request nobody can serve yet. B may itself lose the queue slot to
    // one of the probes below, so 503 is an acceptable outcome for it —
    // the invariant under test is that *someone* gets shed.
    srv::HttpClient b(server.boundPort());
    std::thread parked([&] {
        const int status = b.get("/slow").status;
        EXPECT_TRUE(status == 200 || status == 503) << status;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Raw probe connections (never read, never block): each one either
    // takes the single queue slot or is shed with 503 by the accept
    // loop, which is the counter we're watching.
    std::vector<int> probes;
    for (int i = 0; i < 200 && server.connectionsRejected() == 0; ++i) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.boundPort());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)),
                  0);
        probes.push_back(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(server.connectionsRejected(), 1u);
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
        cv.notify_all();
    }
    blocked.join();
    parked.join();
    for (int fd : probes)
        ::close(fd);
}

TEST(SrvHttp, IdleConnectionsAreClosedAfterTimeout)
{
    HttpServerConfig config;
    config.idleTimeoutMs = 50;
    HttpServer server(config);
    server.route("GET", "/x", [](const HttpRequest&) {
        return HttpResponse::text(200, "x");
    });
    ASSERT_TRUE(server.start(0));

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.boundPort());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    // Send nothing: the server must hang up on its own.
    char buf[16];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_EQ(n, 0) << "expected EOF from idle timeout";
    ::close(fd);
}

TEST(SrvHttp, RepeatedStartStopCyclesLeakNothing)
{
    HttpServer server;
    server.route("GET", "/ping", [](const HttpRequest&) {
        return HttpResponse::text(200, "pong");
    });
    for (int cycle = 0; cycle < 5; ++cycle) {
        ASSERT_TRUE(server.start(0)) << "cycle " << cycle;
        ASSERT_TRUE(server.running());
        ASSERT_NE(server.boundPort(), 0);
        srv::HttpClient client(server.boundPort());
        const srv::ClientResponse r = client.get("/ping");
        ASSERT_TRUE(r.ok) << "cycle " << cycle;
        EXPECT_EQ(r.body, "pong");
        server.stop();
        server.stop(); // idempotent
        EXPECT_FALSE(server.running());
        EXPECT_EQ(server.boundPort(), 0);
    }
}

TEST(SrvHttp, StopWhileClientsAreInFlightIsClean)
{
    HttpServer server;
    server.route("GET", "/x", [](const HttpRequest&) {
        return HttpResponse::text(200, "x");
    });
    ASSERT_TRUE(server.start(0));
    std::atomic<bool> done{false};
    std::thread hammer([&] {
        while (!done) {
            srv::HttpClient client(server.boundPort());
            client.get("/x");
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.stop();
    done = true;
    hammer.join();
    EXPECT_FALSE(server.running());
}

} // namespace
} // namespace hcloud
