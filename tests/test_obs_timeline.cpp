/**
 * @file
 * Timeline sampling: ring/sink bounding semantics, since()-cursor
 * downsampling, JSON round-trips, the perturbation-free contract
 * (enabling the timeline must not move a single simulated decision),
 * byte-identity across runner thread counts, and a byte-exact golden
 * sample stream for a small fixed-seed run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exp/report_json.hpp"
#include "exp/runner.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "runtime/parallel_runner.hpp"
#include "workload/scenario.hpp"

namespace hcloud {
namespace {

/** A distinguishable sample: every field derived from @p seq. */
obs::TimelineSample
makeSample(std::uint64_t seq)
{
    obs::TimelineSample s;
    s.t = 30.0 * static_cast<double>(seq + 1);
    s.reservedInstances = static_cast<std::uint32_t>(10 + seq);
    s.onDemandInstances = static_cast<std::uint32_t>(seq % 3);
    s.spotInstances = static_cast<std::uint32_t>(seq % 2);
    s.typeCounts = {{"st16", static_cast<std::uint32_t>(10 + seq)},
                    {"st4", 1u}};
    s.reservedCores = 160.0;
    s.reservedUsed = 4.0 * static_cast<double>(seq % 40);
    s.utilization = s.reservedUsed / s.reservedCores;
    s.qualityMean = 0.8;
    s.qualityP5 = 0.5;
    s.qualityP50 = 0.82;
    s.qualityP95 = 0.97;
    s.queueLength = static_cast<std::uint32_t>(seq % 5);
    s.activeJobs = static_cast<std::uint32_t>(2 * seq);
    s.runningJobs = static_cast<std::uint32_t>(2 * seq);
    s.finishedJobs = 3 * seq;
    s.externalLoad = 0.4;
    s.spotPrice = 0.31;
    s.qosTracked = static_cast<std::uint32_t>(seq % 4);
    s.costTotal = 1.25 * static_cast<double>(seq);
    return s;
}

// ---------------------------------------------------------------------------
// Ring semantics

TEST(Timeline, DisabledRecordIsNoOp)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::Off;
    obs::Timeline timeline(cfg);
    EXPECT_FALSE(timeline.enabled());
    timeline.record(makeSample(0));
    EXPECT_EQ(timeline.recordedCount(), 0u);
    EXPECT_TRUE(timeline.samples().empty());
    obs::TimelineSample out;
    EXPECT_FALSE(timeline.latest(&out));
}

TEST(Timeline, SeqStampedAndRingEvictsOldest)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::On;
    cfg.ringCapacity = 4;
    obs::Timeline timeline(cfg);
    for (std::uint64_t i = 0; i < 10; ++i)
        timeline.record(makeSample(i));
    EXPECT_EQ(timeline.recordedCount(), 10u);
    EXPECT_EQ(timeline.droppedCount(), 6u);
    // since() returns the retained tail chronologically, seq re-stamped
    // by record() in arrival order.
    const auto tail = timeline.since(0, 1, 100);
    ASSERT_EQ(tail.size(), 4u);
    for (std::size_t i = 0; i < tail.size(); ++i) {
        EXPECT_EQ(tail[i].seq, 6u + i);
        if (i > 0) {
            EXPECT_GT(tail[i].t, tail[i - 1].t);
        }
    }
    obs::TimelineSample last;
    ASSERT_TRUE(timeline.latest(&last));
    EXPECT_EQ(last.seq, 9u);
}

TEST(Timeline, SinceStrideSelectsBySeqNotCursor)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::On;
    obs::Timeline timeline(cfg);
    for (std::uint64_t i = 0; i < 20; ++i)
        timeline.record(makeSample(i));

    // stride picks seq % stride == 0 regardless of the cursor, so two
    // clients paging from different cursors see the same downsampling.
    const auto from0 = timeline.since(0, 4, 100);
    ASSERT_EQ(from0.size(), 5u);
    for (std::size_t i = 0; i < from0.size(); ++i)
        EXPECT_EQ(from0[i].seq, 4 * i);
    const auto from5 = timeline.since(5, 4, 100);
    ASSERT_EQ(from5.size(), 3u);
    EXPECT_EQ(from5[0].seq, 8u);

    // maxSamples caps the page; the caller resumes from the cursor.
    const auto page = timeline.since(0, 1, 7);
    ASSERT_EQ(page.size(), 7u);
    EXPECT_EQ(page.back().seq, 6u);
    const auto next = timeline.since(page.back().seq + 1, 1, 7);
    ASSERT_FALSE(next.empty());
    EXPECT_EQ(next.front().seq, 7u);

    // stride < 1 behaves as 1.
    EXPECT_EQ(timeline.since(0, 0, 100).size(), 20u);
}

TEST(Timeline, SnapshotIsNonDestructive)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::On;
    obs::Timeline timeline(cfg);
    for (std::uint64_t i = 0; i < 5; ++i)
        timeline.record(makeSample(i));
    const obs::TimelineBuffer snap = timeline.snapshot();
    EXPECT_EQ(snap.recorded, 5u);
    ASSERT_EQ(snap.samples.size(), 5u);
    EXPECT_EQ(snap.samples.front().seq, 0u);
    // The timeline keeps recording after a snapshot.
    timeline.record(makeSample(5));
    EXPECT_EQ(timeline.recordedCount(), 6u);
    const obs::TimelineBuffer taken = timeline.take();
    EXPECT_EQ(taken.recorded, 6u);
    EXPECT_EQ(taken.samples.size(), 6u);
    EXPECT_EQ(timeline.recordedCount(), 0u);
}

// ---------------------------------------------------------------------------
// Sink semantics

TEST(TimelineSink, TinyRingStreamsCompleteFile)
{
    const std::string path =
        ::testing::TempDir() + "timeline_sink_unit.jsonl";
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::On;
    cfg.ringCapacity = 4;
    cfg.sinkPath = path;
    obs::Timeline timeline(cfg);
    for (std::uint64_t i = 0; i < 21; ++i)
        timeline.record(makeSample(i));
    const obs::TimelineBuffer buffer = timeline.take();
    EXPECT_TRUE(buffer.sinkOk);
    EXPECT_EQ(buffer.recorded, 21u);
    EXPECT_EQ(buffer.dropped, 0u) << "sink-backed timelines never evict";
    EXPECT_EQ(buffer.flushed, 21u);
    EXPECT_EQ(buffer.sinkPath, path);
    EXPECT_TRUE(buffer.samples.empty())
        << "the stream lives in the file, not the buffer";

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in);
    std::string line;
    std::uint64_t n = 0;
    while (std::getline(in, line)) {
        obs::TimelineSample s;
        ASSERT_TRUE(obs::sampleFromJsonLine(line, &s)) << line;
        EXPECT_EQ(s.seq, n);
        ++n;
    }
    EXPECT_EQ(n, 21u);
    std::remove(path.c_str());
}

TEST(TimelineSink, OpenFailureFallsBackToRing)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::On;
    cfg.ringCapacity = 4;
    cfg.sinkPath = "/nonexistent_hcloud_dir/timeline.jsonl";
    obs::Timeline timeline(cfg);
    for (std::uint64_t i = 0; i < 10; ++i)
        timeline.record(makeSample(i));
    const obs::TimelineBuffer buffer = timeline.take();
    EXPECT_FALSE(buffer.sinkOk);
    EXPECT_EQ(buffer.recorded, 10u);
    EXPECT_EQ(buffer.samples.size(), 4u)
        << "fallback keeps the ring-bounded tail";
    EXPECT_EQ(buffer.dropped, 6u);
}

// ---------------------------------------------------------------------------
// JSON round-trips

TEST(TimelineJson, ToJsonRoundTripsByteExactly)
{
    const obs::TimelineSample original = makeSample(7);
    const std::string text = toJson(original);
    obs::TimelineSample parsed;
    ASSERT_TRUE(obs::sampleFromJsonLine(text, &parsed));
    EXPECT_EQ(toJson(parsed), text)
        << "parse->serialize must be the identity on sample lines";
    EXPECT_EQ(parsed.seq, original.seq);
    EXPECT_EQ(parsed.typeCounts, original.typeCounts);
    EXPECT_DOUBLE_EQ(parsed.costTotal, original.costTotal);

    // Run headers and junk are rejected, not misparsed.
    obs::TimelineSample out;
    EXPECT_FALSE(obs::sampleFromJsonLine(
        "{\"run\":{\"strategy\":\"HM\"}}", &out));
    EXPECT_FALSE(obs::sampleFromJsonLine("not json", &out));
    EXPECT_FALSE(obs::sampleFromJsonLine("", &out));
}

TEST(TimelineJson, EmptyTypeCountsOmitsTypesKey)
{
    obs::TimelineSample s = makeSample(0);
    s.typeCounts.clear();
    const std::string text = toJson(s);
    EXPECT_EQ(text.find("\"types\""), std::string::npos);
    obs::TimelineSample parsed;
    ASSERT_TRUE(obs::sampleFromJsonLine(text, &parsed));
    EXPECT_TRUE(parsed.typeCounts.empty());
    EXPECT_EQ(toJson(parsed), text);
}

// ---------------------------------------------------------------------------
// Perturbation-free contract

TEST(TimelinePerturbation, EnablingTimelineMovesNoDecision)
{
    workload::ScenarioConfig scenario_cfg;
    scenario_cfg.kind = workload::ScenarioKind::HighVariability;
    scenario_cfg.seed = 42;
    scenario_cfg.loadScale = 0.05;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario_cfg);

    auto run = [&](obs::TimelineConfig::Mode mode) {
        core::EngineConfig cfg;
        cfg.seed = 42;
        cfg.trace.mode = obs::TraceConfig::Mode::On;
        cfg.timeline.mode = mode;
        cfg.timeline.cadence = 30.0;
        core::Engine engine(cfg);
        return engine.run(trace, core::StrategyKind::HM, "perturb");
    };
    const core::RunResult off = run(obs::TimelineConfig::Mode::Off);
    const core::RunResult on = run(obs::TimelineConfig::Mode::On);

    EXPECT_EQ(off.timeline.recorded, 0u);
    EXPECT_GT(on.timeline.recorded, 0u);

    // The decision trace is byte-identical with sampling on or off:
    // samples are built from read-only accessors, so not one RNG draw
    // may move.
    std::ostringstream off_text;
    std::ostringstream on_text;
    obs::writeJsonl(off_text, off.trace);
    obs::writeJsonl(on_text, on.trace);
    ASSERT_GT(off.trace.recorded, 0u);
    EXPECT_TRUE(off_text.str() == on_text.str())
        << "timeline sampling perturbed the decision stream";
    EXPECT_EQ(off.makespan, on.makespan);
    EXPECT_EQ(off.meanPerfNorm(), on.meanPerfNorm());
    EXPECT_EQ(off.acquisitions, on.acquisitions);
    EXPECT_EQ(off.reservedUtilizationAvg, on.reservedUtilizationAvg);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts

std::string
serializeTimeline(const obs::TimelineBuffer& buffer)
{
    std::ostringstream out;
    obs::writeJsonl(out, buffer);
    return out.str();
}

TEST(TimelineDeterminism, RingTimelineByteIdenticalAcrossThreadCounts)
{
    exp::ExperimentOptions serial_opt;
    serial_opt.loadScale = 0.1;
    serial_opt.seed = 42;
    exp::ExperimentOptions parallel_opt = serial_opt;
    parallel_opt.threads = 4;
    core::EngineConfig base;
    base.timeline.mode = obs::TimelineConfig::Mode::On;
    base.timeline.cadence = 60.0;

    exp::Runner serial{serial_opt, base};
    runtime::ParallelRunner parallel{parallel_opt, base};
    const struct
    {
        workload::ScenarioKind scenario;
        core::StrategyKind strategy;
    } cells[] = {
        {workload::ScenarioKind::Static, core::StrategyKind::SR},
        {workload::ScenarioKind::HighVariability, core::StrategyKind::HM},
    };
    for (const auto& cell : cells) {
        const core::RunResult& a = serial.run(cell.scenario, cell.strategy);
        const core::RunResult& b =
            parallel.run(cell.scenario, cell.strategy);
        ASSERT_GT(a.timeline.recorded, 0u);
        EXPECT_EQ(serializeTimeline(a.timeline),
                  serializeTimeline(b.timeline))
            << workload::toString(cell.scenario) << "/"
            << core::toString(cell.strategy);
    }
}

/**
 * Sink-backed sweep at @p threads workers: assert the drop-free sink
 * contract per cell, merge the part files, and return the merged bytes.
 */
std::string
mergedSinkTimeline(std::size_t threads, std::uint64_t* recordedSum)
{
    exp::ExperimentOptions opt;
    opt.loadScale = 0.1;
    opt.seed = 42;
    opt.threads = threads;
    core::EngineConfig base;
    base.timeline.mode = obs::TimelineConfig::Mode::On;
    base.timeline.cadence = 60.0;
    base.timeline.ringCapacity = 16;
    const std::string stem = ::testing::TempDir() + "timeline_sink_t" +
        std::to_string(threads) + ".jsonl";
    base.timeline.sinkStem = stem;

    runtime::ParallelRunner runner{opt, base};
    *recordedSum = 0;
    const struct
    {
        workload::ScenarioKind scenario;
        core::StrategyKind strategy;
    } cells[] = {
        {workload::ScenarioKind::Static, core::StrategyKind::SR},
        {workload::ScenarioKind::HighVariability, core::StrategyKind::HM},
        {workload::ScenarioKind::HighVariability, core::StrategyKind::HF},
    };
    for (const auto& cell : cells) {
        const core::RunResult& r =
            runner.run(cell.scenario, cell.strategy);
        EXPECT_TRUE(r.timeline.sinkOk);
        EXPECT_FALSE(r.timeline.sinkPath.empty());
        EXPECT_EQ(r.timeline.dropped, 0u)
            << "sink-backed runs must never evict";
        EXPECT_GT(r.timeline.recorded, base.timeline.ringCapacity)
            << "cell too small to exercise ring wraps; shrink the ring";
        *recordedSum += r.timeline.recorded;
    }
    const std::string merged = stem + ".merged";
    EXPECT_TRUE(exp::writeTimelineJsonl(merged, runner,
                                        /*removeParts=*/true));
    std::ifstream in(merged, std::ios::binary);
    std::stringstream text;
    text << in.rdbuf();
    std::remove(merged.c_str());
    return text.str();
}

TEST(TimelineDeterminism, SinkMergedTimelineByteIdenticalAcrossThreads)
{
    std::uint64_t recorded1 = 0;
    std::uint64_t recorded2 = 0;
    std::uint64_t recorded4 = 0;
    const std::string t1 = mergedSinkTimeline(1, &recorded1);
    const std::string t2 = mergedSinkTimeline(2, &recorded2);
    const std::string t4 = mergedSinkTimeline(4, &recorded4);
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(recorded1, recorded2);
    EXPECT_TRUE(t1 == t2)
        << "threads=1 vs threads=2 merged timelines differ";
    EXPECT_TRUE(t1 == t4)
        << "threads=1 vs threads=4 merged timelines differ";

    // The merged stream is complete: every recorded sample is a line,
    // plus one header per cell, and nothing else.
    std::istringstream in(t1);
    std::string line;
    std::uint64_t samples = 0;
    std::uint64_t headers = 0;
    while (std::getline(in, line)) {
        obs::TimelineSample sample;
        if (obs::sampleFromJsonLine(line, &sample)) {
            ++samples;
            continue;
        }
        const obs::JsonValue header = obs::parseJson(line);
        const obs::JsonValue* run = header.find("run");
        ASSERT_NE(run, nullptr) << line;
        EXPECT_EQ(run->find("dropped")->numberOr(-1.0), 0.0);
        ++headers;
    }
    EXPECT_EQ(headers, 3u);
    EXPECT_EQ(samples, recorded1);
}

// ---------------------------------------------------------------------------
// Environment tokens

TEST(TimelineEnv, TokensMirrorHcloudTrace)
{
    const char* saved = std::getenv("HCLOUD_TIMELINE");
    const std::string saved_value = saved ? saved : "";

    ::unsetenv("HCLOUD_TIMELINE");
    EXPECT_FALSE(obs::envTimelineEnabled());
    obs::TimelineConfig cfg;
    EXPECT_FALSE(cfg.resolveEnabled()) << "Auto follows the environment";
    cfg.mode = obs::TimelineConfig::Mode::On;
    EXPECT_TRUE(cfg.resolveEnabled()) << "explicit On ignores env";

    for (const char* off : {"0", "off", "false", ""}) {
        ::setenv("HCLOUD_TIMELINE", off, 1);
        EXPECT_FALSE(obs::envTimelineEnabled()) << "'" << off << "'";
    }
    for (const char* on : {"1", "on", "true"}) {
        ::setenv("HCLOUD_TIMELINE", on, 1);
        EXPECT_TRUE(obs::envTimelineEnabled()) << "'" << on << "'";
        EXPECT_EQ(obs::envTimelinePath(), "")
            << "boolean tokens carry no path";
    }
    ::setenv("HCLOUD_TIMELINE", "/tmp/t.jsonl", 1);
    EXPECT_TRUE(obs::envTimelineEnabled());
    EXPECT_EQ(obs::envTimelinePath(), "/tmp/t.jsonl");

    if (saved)
        ::setenv("HCLOUD_TIMELINE", saved_value.c_str(), 1);
    else
        ::unsetenv("HCLOUD_TIMELINE");
}

TEST(TimelineEnv, CadenceOverrideIsValidatedAtTheEdge)
{
    const char* saved = std::getenv("HCLOUD_TIMELINE_CADENCE");
    const std::string saved_value = saved ? saved : "";

    ::unsetenv("HCLOUD_TIMELINE_CADENCE");
    EXPECT_DOUBLE_EQ(obs::envTimelineCadence(30.0), 30.0);
    ::setenv("HCLOUD_TIMELINE_CADENCE", "120", 1);
    EXPECT_DOUBLE_EQ(obs::envTimelineCadence(30.0), 120.0);
    for (const char* bad : {"0", "-5", "abc", ""}) {
        ::setenv("HCLOUD_TIMELINE_CADENCE", bad, 1);
        EXPECT_DOUBLE_EQ(obs::envTimelineCadence(30.0), 30.0)
            << "'" << bad << "'";
    }

    if (saved)
        ::setenv("HCLOUD_TIMELINE_CADENCE", saved_value.c_str(), 1);
    else
        ::unsetenv("HCLOUD_TIMELINE_CADENCE");
}

// ---------------------------------------------------------------------------
// Golden sample stream

/**
 * Byte-exact golden timeline for a small fixed-seed run: the sample
 * stream is a pure function of (trace, config, seed), so any change to
 * sampling cadence, snapshot contents or serialization shows up here as
 * a reviewable diff. Regenerate with HCLOUD_UPDATE_GOLDEN=1 only when a
 * change is *supposed* to alter the stream, and say so in the commit.
 */
TEST(GoldenTimeline, SmallFixedSeedRunIsByteStable)
{
    workload::ScenarioConfig cfg;
    cfg.kind = workload::ScenarioKind::Static;
    cfg.seed = 42;
    cfg.loadScale = 0.05;
    const workload::ArrivalTrace trace = workload::generateScenario(cfg);

    core::EngineConfig config;
    config.seed = 42;
    config.timeline.mode = obs::TimelineConfig::Mode::On;
    config.timeline.cadence = 60.0;
    core::Engine engine(config);
    const core::RunResult r =
        engine.run(trace, core::StrategyKind::HM, "golden");
    ASSERT_GT(r.timeline.recorded, 0u);
    ASSERT_EQ(r.timeline.dropped, 0u)
        << "golden scenario must fit the timeline ring";

    std::ostringstream out;
    obs::writeJsonl(out, r.timeline);
    const std::string text = out.str();

    const std::string golden_path =
        std::string(HCLOUD_GOLDEN_DIR) + "/timeline_small.jsonl";
    if (std::getenv("HCLOUD_UPDATE_GOLDEN")) {
        std::ofstream golden_out(golden_path,
                                 std::ios::binary | std::ios::trunc);
        golden_out << text;
        ASSERT_TRUE(golden_out) << "cannot update " << golden_path;
        GTEST_SKIP() << "golden file regenerated: " << golden_path;
    }
    std::ifstream golden_in(golden_path, std::ios::binary);
    ASSERT_TRUE(golden_in)
        << golden_path
        << " missing; regenerate with HCLOUD_UPDATE_GOLDEN=1";
    std::stringstream golden_text;
    golden_text << golden_in.rdbuf();
    ASSERT_EQ(text.size(), golden_text.str().size())
        << "timeline length changed — sampling or serialization "
           "diverged";
    EXPECT_TRUE(text == golden_text.str())
        << "timeline bytes changed — sampling or serialization diverged";
}

} // namespace
} // namespace hcloud
