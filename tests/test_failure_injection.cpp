/**
 * @file
 * Failure-injection tests: platform-killed instances (the EC2 micro
 * behaviour of Figure 1) flowing through the whole engine, plus billing
 * edge cases around cancelled records.
 */

#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "cloud/provider.hpp"
#include "core/engine.hpp"
#include "sim/simulator.hpp"
#include "workload/archetypes.hpp"
#include "workload/scenario.hpp"

namespace hcloud {
namespace {

/** An EC2-like profile where every small instance kills its workload. */
cloud::ProviderProfile
hostileProfile()
{
    cloud::ProviderProfile p = cloud::ProviderProfile::ec2();
    p.microKillProbability = 1.0;
    return p;
}

/** A trace of tiny jobs whose memory demand fits the micro shape. */
workload::ArrivalTrace
microEligibleTrace(std::size_t jobs)
{
    workload::ArrivalTrace trace;
    sim::Rng rng(13);
    for (std::size_t i = 0; i < jobs; ++i) {
        workload::JobSpec spec;
        spec.id = i + 1;
        spec.kind = workload::AppKind::HadoopRecommender;
        spec.arrival = static_cast<sim::Time>(i) * 2.0;
        spec.coresIdeal = 1.0;
        spec.memoryPerCore = 0.3; // fits the 0.6 GiB micro
        spec.idealDuration = 300.0;
        spec.sensitivity =
            workload::generateSensitivity(spec.kind, rng);
        trace.add(std::move(spec));
    }
    trace.seal();
    return trace;
}

TEST(FailureInjection, FaultyInstancesFailJobsButRunCompletes)
{
    // OdM on a hostile provider: micro-eligible jobs (1 core, tiny
    // memory) land on the cheapest fitting shape — the micro — whose
    // platform terminates them.
    const workload::ArrivalTrace trace = microEligibleTrace(30);

    core::EngineConfig config;
    config.seed = 3;
    config.qosMonitoring = false; // no rescue: measure the raw kills
    core::Engine engine(config, hostileProfile());
    const core::RunResult r =
        engine.run(trace, core::StrategyKind::OdM, "hostile");

    EXPECT_EQ(r.jobCount, trace.jobs().size())
        << "every job must be accounted for";
    EXPECT_GT(r.failedJobs, 0u) << "micro placements must be killed";
    // Failed jobs score zero normalized performance.
    EXPECT_DOUBLE_EQ(r.batchPerfNorm.min(), 0.0);
}

TEST(FailureInjection, ReservedPoolImmuneToMicroKills)
{
    // SR uses only dedicated full servers; the hostile micro behaviour
    // must never reach it.
    workload::ScenarioConfig scenario;
    scenario.kind = workload::ScenarioKind::Static;
    scenario.seed = 3;
    scenario.loadScale = 0.08;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario);

    core::EngineConfig config;
    config.seed = 3;
    core::Engine engine(config, hostileProfile());
    const core::RunResult r =
        engine.run(trace, core::StrategyKind::SR, "sr-hostile");
    EXPECT_EQ(r.failedJobs, 0u);
}

TEST(FailureInjection, RetentionNeverRetainsFaultyInstances)
{
    sim::Simulator simulator;
    cloud::CloudProvider provider(simulator, hostileProfile(), {},
                                  sim::Rng(5));
    const auto& micro =
        cloud::InstanceTypeCatalog::defaultCatalog().byName("micro");
    cloud::Instance* inst = provider.acquire(micro, nullptr);
    ASSERT_TRUE(inst->faulty());
    core::RetentionPolicy policy(1000.0, 0.0);
    simulator.run();
    EXPECT_FALSE(policy.retainWorthy(*inst, simulator.now()));
}

TEST(BillingEdgeCases, DiscardOpenLeavesOtherRecordsIntact)
{
    cloud::BillingMeter meter;
    const auto& st4 =
        cloud::InstanceTypeCatalog::defaultCatalog().byName("st4");
    meter.onDemandAcquired(1, st4, 0.0);
    meter.onDemandAcquired(2, st4, 0.0);
    meter.onDemandAcquired(3, st4, 0.0);
    meter.discardOpen(2);
    // Records 1 and 3 survive and can still be closed.
    meter.onDemandReleased(1, 3600.0);
    meter.onDemandReleased(3, 3600.0);
    EXPECT_EQ(meter.onDemandAcquisitions(), 2u);
    EXPECT_NEAR(meter.onDemandBilledHours(3600.0), 2.0, 1e-9);
}

TEST(BillingEdgeCases, SpotRecordsPricedAtLockedFraction)
{
    cloud::BillingMeter meter;
    const auto& st16 =
        cloud::InstanceTypeCatalog::defaultCatalog().byName("st16");
    meter.onDemandAcquired(1, st16, 0.0, /*priceFactor=*/0.4);
    meter.onDemandReleased(1, 3600.0);
    const cloud::AwsStylePricing pricing;
    EXPECT_NEAR(meter.amortized(pricing, 3600.0).onDemand, 0.8 * 0.4,
                1e-9);
}

TEST(FailureInjection, MaxRuntimeCapForcesTermination)
{
    // A pathological configuration (every spin-up takes hours) must not
    // hang the engine: the safety cap fails the stragglers.
    workload::ScenarioConfig scenario;
    scenario.kind = workload::ScenarioKind::Static;
    scenario.seed = 9;
    scenario.loadScale = 0.05;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario);

    core::EngineConfig config;
    config.seed = 9;
    config.spinUpFixed = sim::hours(20.0);
    config.maxRuntime = sim::hours(3.0);
    core::Engine engine(config);
    const core::RunResult r =
        engine.run(trace, core::StrategyKind::OdF, "stuck");
    EXPECT_EQ(r.jobCount, trace.jobs().size());
    EXPECT_GT(r.failedJobs, 0u);
    EXPECT_LE(r.makespan, sim::hours(3.1));
}

} // namespace
} // namespace hcloud
