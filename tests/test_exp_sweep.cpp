/**
 * @file
 * SweepScheduler tests: Welford/merge math against direct computation,
 * seed-list derivation, cost-aware chunking, EngineRun::reset()
 * bit-identity with a fresh engine, thread-count and submission-order
 * independence of the streaming aggregates, trace-cache and
 * engine-reuse accounting, and process-metrics series reclaim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "cloud/pricing.hpp"
#include "cloud/provider_profile.hpp"
#include "core/engine_run.hpp"
#include "core/strategy.hpp"
#include "exp/sweep.hpp"
#include "obs/process_metrics.hpp"
#include "profiling/quasar.hpp"
#include "workload/archetypes.hpp"
#include "workload/scenario.hpp"

namespace hcloud {
namespace {

TEST(Welford, MatchesDirectMeanAndVariance)
{
    const std::vector<double> xs = {3.0, 1.5, -2.0, 8.25, 4.0, 4.0, 0.5};
    exp::Welford acc;
    for (double x : xs)
        acc.add(x);
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= double(xs.size());
    double m2 = 0.0;
    for (double x : xs)
        m2 += (x - mean) * (x - mean);
    const double variance = m2 / double(xs.size() - 1);
    EXPECT_EQ(acc.n, xs.size());
    EXPECT_NEAR(acc.mean, mean, 1e-12);
    EXPECT_NEAR(acc.variance(), variance, 1e-12);
    EXPECT_NEAR(acc.stddev(), std::sqrt(variance), 1e-12);
    EXPECT_NEAR(acc.ci95(),
                1.96 * std::sqrt(variance) / std::sqrt(double(xs.size())),
                1e-12);
}

TEST(Welford, BelowTwoSamplesHasZeroSpread)
{
    exp::Welford acc;
    EXPECT_EQ(acc.variance(), 0.0);
    EXPECT_EQ(acc.ci95(), 0.0);
    acc.add(7.5);
    EXPECT_EQ(acc.mean, 7.5);
    EXPECT_EQ(acc.variance(), 0.0);
    EXPECT_EQ(acc.ci95(), 0.0);
}

TEST(Welford, MergeEqualsSequentialFold)
{
    const std::vector<double> xs = {0.25, 9.0, -1.0, 3.5, 3.5, 12.0};
    for (std::size_t split = 0; split <= xs.size(); ++split) {
        exp::Welford left;
        exp::Welford right;
        exp::Welford sequential;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            (i < split ? left : right).add(xs[i]);
            sequential.add(xs[i]);
        }
        left.merge(right);
        EXPECT_EQ(left.n, sequential.n) << "split " << split;
        EXPECT_NEAR(left.mean, sequential.mean, 1e-12);
        EXPECT_NEAR(left.m2, sequential.m2, 1e-9);
    }
}

TEST(SweepSeeds, DerivationIsDeterministicDistinctAndPrefixStable)
{
    const std::vector<std::uint64_t> five = exp::deriveSeedList(42, 5);
    const std::vector<std::uint64_t> again = exp::deriveSeedList(42, 5);
    const std::vector<std::uint64_t> ten = exp::deriveSeedList(42, 10);
    ASSERT_EQ(five.size(), 5u);
    EXPECT_EQ(five, again);
    // Growing the seed count extends the list without moving earlier
    // seeds, so a 10-seed rerun reuses the 5-seed results.
    ASSERT_EQ(ten.size(), 10u);
    EXPECT_TRUE(std::equal(five.begin(), five.end(), ten.begin()));
    EXPECT_EQ(std::set<std::uint64_t>(ten.begin(), ten.end()).size(),
              10u);
    // Different bases give different lists.
    EXPECT_NE(exp::deriveSeedList(43, 5), five);
}

TEST(SweepChunks, CoverEveryIndexInOrderWithinBound)
{
    for (std::size_t n : {1u, 2u, 7u, 16u, 61u}) {
        for (std::size_t target : {1u, 2u, 4u, 9u, 100u}) {
            std::vector<double> weights(n, 1.0);
            for (std::size_t i = 0; i < n; ++i)
                weights[i] = 1.0 + double(i % 3);
            const auto chunks = exp::costAwareChunks(weights, target);
            ASSERT_FALSE(chunks.empty());
            EXPECT_LE(chunks.size(), target);
            std::size_t expectLo = 0;
            for (const auto& [lo, hi] : chunks) {
                EXPECT_EQ(lo, expectLo);
                EXPECT_LT(lo, hi);
                expectLo = hi;
            }
            EXPECT_EQ(expectLo, n);
        }
    }
    EXPECT_TRUE(exp::costAwareChunks({}, 4).empty());
}

TEST(SweepChunks, WeightsSteerTheSplit)
{
    // One heavy task up front: with equal weights a 2-way split of four
    // tasks is 2+2; weighting task 0 at 3x moves the boundary to 1+3.
    const auto even = exp::costAwareChunks({1.0, 1.0, 1.0, 1.0}, 2);
    ASSERT_EQ(even.size(), 2u);
    EXPECT_EQ(even[0].second, 2u);
    const auto skewed = exp::costAwareChunks({3.0, 1.0, 1.0, 1.0}, 2);
    ASSERT_EQ(skewed.size(), 2u);
    EXPECT_EQ(skewed[0].second, 1u);
}

/** Short scenario so an engine run costs milliseconds, not seconds. */
workload::ScenarioConfig
tinyScenario(workload::ScenarioKind kind, std::uint64_t seed)
{
    workload::ScenarioConfig cfg;
    cfg.kind = kind;
    cfg.duration = sim::hours(0.2);
    cfg.seed = seed;
    return cfg;
}

/** Numeric spine of a RunResult (exact comparison => bit-identity). */
std::vector<double>
digest(const core::RunResult& r)
{
    const cloud::AwsStylePricing pricing;
    const cloud::CostBreakdown cost = r.cost(pricing);
    std::vector<double> d = {
        r.makespan,
        r.meanPerfNorm(),
        r.reservedUtilizationAvg,
        static_cast<double>(r.jobCount),
        static_cast<double>(r.failedJobs),
        static_cast<double>(r.acquisitions),
        static_cast<double>(r.reschedules),
        static_cast<double>(r.queuedJobs),
        cost.reserved,
        cost.onDemand,
        static_cast<double>(r.trace.recorded),
        static_cast<double>(r.telemetry.eventsProcessed),
    };
    for (const sim::SampleSet* ss :
         {&r.batchTurnaroundMin, &r.batchPerfNorm, &r.lcLatencyUs,
          &r.lcPerfNorm}) {
        d.push_back(static_cast<double>(ss->count()));
        if (!ss->empty()) {
            d.push_back(ss->mean());
            d.push_back(ss->quantile(0.95));
        }
    }
    return d;
}

core::EngineRun::StrategyFactory
factoryFor(core::StrategyKind kind)
{
    return [kind](core::EngineContext& ctx) {
        return core::makeStrategy(kind, ctx);
    };
}

TEST(EngineRunReset, ResetRunIsBitIdenticalToFreshEngine)
{
    const cloud::ProviderProfile profile = cloud::ProviderProfile::gce();
    const workload::ArrivalTrace warmupTrace = workload::generateScenario(
        tinyScenario(workload::ScenarioKind::HighVariability, 7));
    const workload::ArrivalTrace trace = workload::generateScenario(
        tinyScenario(workload::ScenarioKind::LowVariability, 1234));

    core::EngineConfig warmupCfg;
    warmupCfg.seed = 7;
    core::EngineConfig cfg;
    cfg.seed = 1234;

    // Dirty an engine with a different scenario/strategy/seed, then
    // reset it into the target configuration...
    core::EngineRun reused(warmupCfg, profile,
                           factoryFor(core::StrategyKind::HM));
    (void)reused.runBatch(warmupTrace, "warmup");
    reused.reset(cfg, profile, factoryFor(core::StrategyKind::OdF));
    const core::RunResult viaReset = reused.runBatch(trace, "target");

    // ...and the result must match a from-scratch engine exactly.
    core::EngineRun fresh(cfg, profile,
                          factoryFor(core::StrategyKind::OdF));
    const core::RunResult direct = fresh.runBatch(trace, "target");

    const std::vector<double> a = digest(viaReset);
    const std::vector<double> b = digest(direct);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "digest[" << i << "]";
    ASSERT_EQ(viaReset.trace.events.size(), direct.trace.events.size());
}

TEST(EngineRunReset, BackToBackResetsStayIdentical)
{
    const cloud::ProviderProfile profile = cloud::ProviderProfile::gce();
    const workload::ArrivalTrace trace = workload::generateScenario(
        tinyScenario(workload::ScenarioKind::Static, 99));
    core::EngineConfig cfg;
    cfg.seed = 99;

    core::EngineRun engine(cfg, profile,
                           factoryFor(core::StrategyKind::HF));
    const std::vector<double> first =
        digest(engine.runBatch(trace, "s"));
    for (int round = 0; round < 3; ++round) {
        engine.reset(cfg, profile, factoryFor(core::StrategyKind::HF));
        const std::vector<double> again =
            digest(engine.runBatch(trace, "s"));
        ASSERT_EQ(first.size(), again.size());
        for (std::size_t i = 0; i < first.size(); ++i)
            EXPECT_EQ(first[i], again[i])
                << "round " << round << " digest[" << i << "]";
    }
}

// reset() keeps the bootstrapped classifier when the classifier config is
// unchanged; its trained state must be indistinguishable from a fresh
// bootstrap, or reused engines would classify differently than fresh ones.
TEST(QuasarReset, KeptClassifierMatchesFreshBootstrap)
{
    workload::JobSpec spec;
    spec.kind = workload::AppKind::Memcached;
    spec.coresIdeal = 4.0;
    spec.memoryPerCore = 2.0;
    sim::Rng specRng = sim::Rng(99).child("spec");
    spec.sensitivity = workload::generateSensitivity(spec.kind, specRng);

    profiling::QuasarConfig cfg;
    cfg.seed = 5;

    profiling::Quasar fresh(cfg);
    const profiling::Estimate want = fresh.estimate(spec);

    // Dirty a Quasar under a different run seed, then reset it into the
    // same config the fresh one was built with.
    profiling::QuasarConfig other = cfg;
    other.seed = 77;
    profiling::Quasar reused(other);
    (void)reused.estimate(spec);
    reused.reset(cfg);
    EXPECT_EQ(reused.cacheSize(), 0u);
    EXPECT_EQ(reused.classifications(), 0u);
    const profiling::Estimate got = reused.estimate(spec);

    EXPECT_EQ(got.quality, want.quality);
    EXPECT_EQ(got.cores, want.cores);
    EXPECT_EQ(got.memoryPerCore, want.memoryPerCore);
    EXPECT_EQ(got.sensitivityScalar, want.sensitivityScalar);
    EXPECT_EQ(got.pressure, want.pressure);
    for (std::size_t i = 0; i < workload::kNumResources; ++i)
        EXPECT_EQ(got.sensitivity[i], want.sensitivity[i]) << i;
}

/** A small cells x strategies grid over short scenarios. */
std::vector<exp::SweepCell>
tinyGrid()
{
    std::vector<exp::SweepCell> cells;
    for (core::StrategyKind strategy :
         {core::StrategyKind::SR, core::StrategyKind::HM}) {
        for (workload::ScenarioKind scenario :
             {workload::ScenarioKind::Static,
              workload::ScenarioKind::HighVariability}) {
            exp::SweepCell cell;
            cell.scenario = scenario;
            cell.strategy = strategy;
            cell.scenarioOverride = tinyScenario(scenario, 0);
            cell.costWeight =
                scenario == workload::ScenarioKind::HighVariability
                ? 1.5
                : 1.0;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

exp::SweepOptions
tinyOptions(std::size_t threads)
{
    exp::SweepOptions options;
    options.title = "tiny";
    options.seeds = 3;
    options.baseSeed = 42;
    options.threads = threads;
    return options;
}

TEST(SweepScheduler, AggregatesAreByteIdenticalAcrossThreadCounts)
{
    const std::vector<exp::SweepCell> grid = tinyGrid();
    const exp::SweepResult serial = exp::runSweep(grid, tinyOptions(1));
    const exp::SweepResult pooled = exp::runSweep(grid, tinyOptions(4));
    EXPECT_EQ(serial.telemetry.threads, 1u);
    EXPECT_EQ(pooled.telemetry.threads, 4u);
    EXPECT_EQ(exp::sweepCellsJson(serial), exp::sweepCellsJson(pooled));
}

TEST(SweepScheduler, AggregatesIndependentOfCellSubmissionOrder)
{
    std::vector<exp::SweepCell> grid = tinyGrid();
    const exp::SweepResult forward = exp::runSweep(grid, tinyOptions(2));
    std::reverse(grid.begin(), grid.end());
    const exp::SweepResult reversed =
        exp::runSweep(grid, tinyOptions(2));
    ASSERT_EQ(forward.cells.size(), reversed.cells.size());
    for (const exp::SweepCellAggregate& cell : forward.cells) {
        const auto it = std::find_if(
            reversed.cells.begin(), reversed.cells.end(),
            [&](const exp::SweepCellAggregate& other) {
                return other.label == cell.label;
            });
        ASSERT_NE(it, reversed.cells.end()) << cell.label;
        EXPECT_EQ(cell.cost.mean, it->cost.mean) << cell.label;
        EXPECT_EQ(cell.cost.m2, it->cost.m2) << cell.label;
        EXPECT_EQ(cell.utilization.mean, it->utilization.mean);
        EXPECT_EQ(cell.qualityP95.mean, it->qualityP95.mean);
        EXPECT_EQ(cell.qosViolations.mean, it->qosViolations.mean);
        EXPECT_EQ(cell.makespan.mean, it->makespan.mean);
        EXPECT_EQ(cell.eventsProcessed, it->eventsProcessed);
    }
}

TEST(SweepScheduler, AggregatesMatchDirectEngineRuns)
{
    // One cell, two seeds: the sweep's streaming aggregates must equal a
    // hand-rolled reduction of the same two engine runs.
    exp::SweepCell cell;
    cell.scenario = workload::ScenarioKind::LowVariability;
    cell.strategy = core::StrategyKind::HM;
    cell.scenarioOverride =
        tinyScenario(workload::ScenarioKind::LowVariability, 0);

    exp::SweepOptions options = tinyOptions(1);
    options.seeds = 2;
    const exp::SweepResult sweep = exp::runSweep({cell}, options);
    ASSERT_EQ(sweep.cells.size(), 1u);
    ASSERT_EQ(sweep.seedList.size(), 2u);

    const cloud::ProviderProfile profile = cloud::ProviderProfile::gce();
    const cloud::AwsStylePricing pricing;
    exp::Welford cost;
    exp::Welford utilization;
    exp::Welford qualityP95;
    for (std::uint64_t seed : sweep.seedList) {
        workload::ScenarioConfig scenario = *cell.scenarioOverride;
        scenario.loadScale = options.loadScale;
        scenario.seed = seed;
        core::EngineConfig cfg = cell.config;
        cfg.seed = seed;
        core::EngineRun engine(cfg, profile,
                               factoryFor(cell.strategy));
        const core::RunResult r = engine.runBatch(
            workload::generateScenario(scenario),
            sweep.cells[0].label);
        cost.add(r.cost(pricing).total());
        utilization.add(r.reservedUtilizationAvg);
        sim::SampleSet perf = r.batchPerfNorm;
        perf.merge(r.lcPerfNorm);
        qualityP95.add(perf.quantile(0.95));
    }
    EXPECT_EQ(sweep.cells[0].cost.n, 2u);
    EXPECT_EQ(sweep.cells[0].cost.mean, cost.mean);
    EXPECT_EQ(sweep.cells[0].cost.m2, cost.m2);
    EXPECT_EQ(sweep.cells[0].utilization.mean, utilization.mean);
    EXPECT_EQ(sweep.cells[0].qualityP95.mean, qualityP95.mean);
}

TEST(SweepScheduler, TraceCacheSharesAcrossStrategiesOfOneScenario)
{
    // 5 strategies x 1 scenario x 2 seeds: the trace depends only on
    // (scenario, seed), so exactly 2 generations and 8 cache hits.
    std::vector<exp::SweepCell> cells;
    for (core::StrategyKind strategy : core::kAllStrategies) {
        exp::SweepCell cell;
        cell.scenario = workload::ScenarioKind::Static;
        cell.strategy = strategy;
        cell.scenarioOverride =
            tinyScenario(workload::ScenarioKind::Static, 0);
        cells.push_back(std::move(cell));
    }
    exp::SweepOptions options = tinyOptions(1);
    options.seeds = 2;
    const exp::SweepResult sweep = exp::runSweep(cells, options);
    EXPECT_EQ(sweep.telemetry.runs, 10u);
    EXPECT_EQ(sweep.telemetry.traceCacheMisses, 2u);
    EXPECT_EQ(sweep.telemetry.traceCacheHits, 8u);
    // One worker => one engine constructed, every later run a reset.
    EXPECT_EQ(sweep.telemetry.enginesCreated, 1u);
    EXPECT_EQ(sweep.telemetry.engineResets, 9u);
    // Serial execution folds every record the moment it lands.
    EXPECT_LE(sweep.telemetry.maxBufferedRuns, 1u);
    EXPECT_GT(sweep.telemetry.eventsProcessed, 0u);
    EXPECT_GT(sweep.telemetry.eventsPerSec, 0.0);
}

TEST(SweepScheduler, ProgressGaugeSeriesIsReclaimed)
{
    obs::ProcessMetrics& pm = obs::ProcessMetrics::instance();
    // Warm up so the sweep's (and pool's) persistent counter families
    // exist, then assert a further sweep leaves no series behind.
    (void)exp::runSweep(tinyGrid(), tinyOptions(2));
    const std::size_t before = pm.seriesCount();
    (void)exp::runSweep(tinyGrid(), tinyOptions(2));
    EXPECT_EQ(pm.seriesCount(), before);
    // The per-title progress gauge is gone from the exposition page.
    for (const obs::ProcessMetrics::FamilySample& family : pm.snapshot()) {
        if (family.name == "hcloud_sweep_tasks_remaining")
            EXPECT_TRUE(family.series.empty());
    }
}

TEST(SweepScheduler, FigureGridsHaveExpectedShape)
{
    const core::EngineConfig base;
    EXPECT_EQ(exp::fig12SweepGrid(base).size(), 15u);
    EXPECT_EQ(exp::fig15SweepGrid(base).size(), 6u);
    EXPECT_EQ(exp::fig16SweepGrid(base).size(), 6u);
    // fig16 varies the sensitive fraction through scenario overrides.
    for (const exp::SweepCell& cell : exp::fig16SweepGrid(base))
        EXPECT_TRUE(cell.scenarioOverride.has_value());
    // Scenario digests separate seeds and sensitive fractions.
    workload::ScenarioConfig a;
    workload::ScenarioConfig b = a;
    EXPECT_EQ(workload::digest(a), workload::digest(b));
    b.seed = a.seed + 1;
    EXPECT_NE(workload::digest(a), workload::digest(b));
    b = a;
    b.sensitiveFraction = 0.5;
    EXPECT_NE(workload::digest(a), workload::digest(b));
}

} // namespace
} // namespace hcloud
