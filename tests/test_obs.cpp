/**
 * @file
 * Observability layer: tracer semantics (ring bound, filters, disabled
 * no-op), JSON/JSONL round-trips, decision-reason coverage, metrics
 * registry, and the tentpole determinism contract — the traced event
 * stream must serialize byte-identically at any runner thread count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/mapping_policy.hpp"
#include "exp/report_json.hpp"
#include "exp/runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/trace_sink.hpp"
#include "obs/tracer.hpp"
#include "runtime/parallel_runner.hpp"
#include "workload/scenario.hpp"

namespace hcloud {
namespace {

// ---------------------------------------------------------------------------
// JSON

TEST(ObsJson, FormatDoubleRoundTripsBitExactly)
{
    const double values[] = {0.0,    1.0,   -2.5,       0.1,
                             1.0 / 3.0,     6.02e23,    1e-300,
                             123456789.123, -0.0078125, 3.14159265358979};
    for (double v : values) {
        const std::string s = obs::formatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
    EXPECT_EQ(obs::formatDouble(0.0 / 0.0), "null");
}

TEST(ObsJson, WriterProducesValidNestedJson)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("name", "a\"b\\c\n");
    w.field("pi", 3.25);
    w.field("n", std::uint64_t{42});
    w.field("ok", true);
    w.key("list");
    w.beginArray();
    w.value(1);
    w.value(2);
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"a\\\"b\\\\c\\n\",\"pi\":3.25,"
                       "\"n\":42,\"ok\":true,\"list\":[1,2]}");

    const obs::JsonValue parsed = obs::parseJson(w.str());
    ASSERT_EQ(parsed.type, obs::JsonValue::Type::Object);
    EXPECT_EQ(parsed.find("name")->stringOr(""), "a\"b\\c\n");
    EXPECT_EQ(parsed.find("pi")->numberOr(0), 3.25);
    EXPECT_TRUE(parsed.find("ok")->boolOr(false));
    ASSERT_EQ(parsed.find("list")->array.size(), 2u);
    EXPECT_EQ(parsed.find("list")->array[1].numberOr(0), 2.0);
}

TEST(ObsJson, ParserRejectsMalformedInput)
{
    EXPECT_THROW(obs::parseJson("{\"a\":"), std::runtime_error);
    EXPECT_THROW(obs::parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW(obs::parseJson("{} trailing"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Event taxonomy

TEST(ObsTraceEvent, ToStringAndParseAreTotalInverses)
{
    std::set<std::string> names;
    for (obs::EventKind kind : obs::kAllEventKinds) {
        const std::string name = toString(kind);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
        obs::EventKind back{};
        ASSERT_TRUE(obs::parseEventKind(name, &back)) << name;
        EXPECT_EQ(back, kind);
    }
    names.clear();
    for (obs::DecisionReason reason : obs::kAllDecisionReasons) {
        const std::string name = toString(reason);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
        obs::DecisionReason back{};
        ASSERT_TRUE(obs::parseDecisionReason(name, &back)) << name;
        EXPECT_EQ(back, reason);
    }
    for (obs::Severity sev :
         {obs::Severity::Debug, obs::Severity::Info, obs::Severity::Warn}) {
        obs::Severity back{};
        ASSERT_TRUE(obs::parseSeverity(toString(sev), &back));
        EXPECT_EQ(back, sev);
    }
    obs::EventKind kind_out{};
    EXPECT_FALSE(obs::parseEventKind("no_such_kind", &kind_out));
}

// ---------------------------------------------------------------------------
// Tracer

TEST(ObsTracer, DisabledTracerIsANoOp)
{
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::Off;
    obs::Tracer tracer(cfg);
    EXPECT_FALSE(tracer.enabled());
    tracer.job(obs::EventKind::JobSubmit, 1.0, 7);
    tracer.decision(2.0, obs::DecisionReason::BelowSoftLimit, 7);
    obs::TraceEvent direct;
    direct.time = 3.0;
    direct.kind = obs::EventKind::JobFinish;
    tracer.record(direct);
    EXPECT_EQ(tracer.recordedCount(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(ObsTracer, RingOverflowDropsOldestKeepsChronology)
{
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::On;
    cfg.ringCapacity = 4;
    obs::Tracer tracer(cfg);
    for (int i = 0; i < 10; ++i)
        tracer.job(obs::EventKind::JobSubmit, static_cast<double>(i),
                   static_cast<sim::JobId>(i + 1));
    EXPECT_EQ(tracer.recordedCount(), 10u);
    EXPECT_EQ(tracer.droppedCount(), 6u);
    const obs::TraceBuffer buffer = tracer.take();
    ASSERT_EQ(buffer.events.size(), 4u);
    EXPECT_EQ(buffer.recorded, 10u);
    EXPECT_EQ(buffer.dropped, 6u);
    // The newest four survive, in chronological order.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(buffer.events[i].time, static_cast<double>(6 + i));
    // take() leaves the tracer empty but still enabled.
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_TRUE(tracer.enabled());
}

TEST(ObsTracer, SeverityAndCategoryFiltersApply)
{
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::On;
    cfg.minSeverity = obs::Severity::Info;
    cfg.categoryMask = obs::categoryBit(obs::Category::Job) |
                       obs::categoryBit(obs::Category::Decision);
    obs::Tracer tracer(cfg);
    tracer.job(obs::EventKind::JobSubmit, 1.0, 1); // kept
    tracer.job(obs::EventKind::JobStart, 2.0, 1, 0.0, {},
               obs::Severity::Debug); // below min severity
    tracer.instance(obs::EventKind::InstanceReady, 3.0, 9); // masked out
    tracer.controller(obs::EventKind::SoftLimitUpdate, 4.0, 0.7,
                      {}, obs::Severity::Info); // masked out
    tracer.decision(5.0, obs::DecisionReason::SoftLimitExceeded, 1); // kept
    ASSERT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.events()[0].kind, obs::EventKind::JobSubmit);
    EXPECT_EQ(tracer.events()[1].kind, obs::EventKind::Decision);
}

TEST(ObsTracer, EnvKnobMirrorsHcloudThreadsConventions)
{
    const char* saved = std::getenv("HCLOUD_TRACE");
    const std::string saved_value = saved ? saved : "";

    ::setenv("HCLOUD_TRACE", "0", 1);
    EXPECT_FALSE(obs::envTraceEnabled());
    EXPECT_EQ(obs::envTracePath(), "");
    obs::TraceConfig cfg; // Mode::Auto
    EXPECT_FALSE(cfg.resolveEnabled());

    ::setenv("HCLOUD_TRACE", "1", 1);
    EXPECT_TRUE(obs::envTraceEnabled());
    EXPECT_EQ(obs::envTracePath(), "");
    EXPECT_TRUE(cfg.resolveEnabled());

    ::setenv("HCLOUD_TRACE", "off", 1);
    EXPECT_FALSE(obs::envTraceEnabled());

    ::setenv("HCLOUD_TRACE", "/tmp/run.jsonl", 1);
    EXPECT_TRUE(obs::envTraceEnabled());
    EXPECT_EQ(obs::envTracePath(), "/tmp/run.jsonl");

    ::unsetenv("HCLOUD_TRACE");
    EXPECT_FALSE(obs::envTraceEnabled());
    // Explicit modes ignore the environment either way.
    cfg.mode = obs::TraceConfig::Mode::On;
    EXPECT_TRUE(cfg.resolveEnabled());

    if (saved)
        ::setenv("HCLOUD_TRACE", saved_value.c_str(), 1);
}

TEST(ObsTracer, JsonlRoundTripPreservesEveryField)
{
    obs::TraceEvent original;
    original.time = 1234.5625;
    original.kind = obs::EventKind::Decision;
    original.severity = obs::Severity::Warn;
    original.reason = obs::DecisionReason::QosViolationReschedule;
    original.job = 42;
    original.instance = 7;
    original.value = 3.0;
    original.detail = "st16 \"quoted\"";

    obs::TraceEvent back;
    ASSERT_TRUE(obs::eventFromJsonLine(toJson(original), &back));
    EXPECT_EQ(back.time, original.time);
    EXPECT_EQ(back.kind, original.kind);
    EXPECT_EQ(back.severity, original.severity);
    EXPECT_EQ(back.reason, original.reason);
    EXPECT_EQ(back.job, original.job);
    EXPECT_EQ(back.instance, original.instance);
    EXPECT_EQ(back.value, original.value);
    EXPECT_EQ(back.detail, original.detail);

    // Defaulted fields are omitted from the wire form yet round-trip.
    obs::TraceEvent plain;
    plain.time = 9.0;
    plain.kind = obs::EventKind::JobFinish;
    plain.job = 3;
    const std::string line = toJson(plain);
    EXPECT_EQ(line.find("sev"), std::string::npos);
    EXPECT_EQ(line.find("reason"), std::string::npos);
    EXPECT_EQ(line.find("detail"), std::string::npos);
    ASSERT_TRUE(obs::eventFromJsonLine(line, &back));
    EXPECT_EQ(back.severity, obs::Severity::Info);
    EXPECT_EQ(back.reason, obs::DecisionReason::None);
    EXPECT_EQ(back.detail, "");

    // Non-event lines (e.g. run headers) are rejected, not mis-parsed.
    EXPECT_FALSE(obs::eventFromJsonLine(
        "{\"run\":{\"strategy\":\"HM\"}}", &back));
    EXPECT_FALSE(obs::eventFromJsonLine("not json", &back));
}

TEST(ObsTracer, NonFiniteValuesSurviveTheJsonRoundTrip)
{
    obs::TraceEvent event;
    event.time = 1.0;
    event.kind = obs::EventKind::Decision;
    event.reason = obs::DecisionReason::SoftLimitExceeded;

    obs::TraceEvent back;
    event.value = std::nan("");
    ASSERT_TRUE(obs::eventFromJsonLine(toJson(event), &back));
    EXPECT_TRUE(std::isnan(back.value));
    EXPECT_NE(toJson(event).find("\"value\":\"NaN\""), std::string::npos);

    event.value = std::numeric_limits<double>::infinity();
    ASSERT_TRUE(obs::eventFromJsonLine(toJson(event), &back));
    EXPECT_EQ(back.value, std::numeric_limits<double>::infinity());

    event.value = -std::numeric_limits<double>::infinity();
    ASSERT_TRUE(obs::eventFromJsonLine(toJson(event), &back));
    EXPECT_EQ(back.value, -std::numeric_limits<double>::infinity());

    // Legacy writers emitted "value":null for any non-finite double; that
    // used to silently parse back as 0.0. It now maps to NaN.
    ASSERT_TRUE(obs::eventFromJsonLine(
        "{\"t\":1,\"kind\":\"decision\",\"reason\":\"soft_limit_exceeded\","
        "\"value\":null}",
        &back));
    EXPECT_TRUE(std::isnan(back.value));

    // Unknown string payloads are malformed, not silently zero.
    EXPECT_FALSE(obs::eventFromJsonLine(
        "{\"t\":1,\"kind\":\"decision\",\"reason\":\"soft_limit_exceeded\","
        "\"value\":\"bogus\"}",
        &back));
}

// ---------------------------------------------------------------------------
// Trace sink (the tentpole): complete on-disk streams past ringCapacity

std::vector<std::string>
fileLines(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(ObsTraceSink, SinkKeepsCompleteStreamPastRingCapacity)
{
    const std::string path = ::testing::TempDir() + "obs_sink.jsonl.part";
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::On;
    cfg.ringCapacity = 8;
    cfg.sinkPath = path;
    obs::Tracer tracer(cfg);
    ASSERT_NE(tracer.sink(), nullptr);
    for (int i = 0; i < 100; ++i)
        tracer.job(obs::EventKind::JobSubmit, static_cast<double>(i),
                   static_cast<sim::JobId>(i + 1));

    // Recording 12.5 rings' worth drops nothing: wraps drain to disk.
    EXPECT_EQ(tracer.recordedCount(), 100u);
    EXPECT_EQ(tracer.droppedCount(), 0u);

    const obs::TraceBuffer buffer = tracer.take();
    EXPECT_EQ(buffer.recorded, 100u);
    EXPECT_EQ(buffer.dropped, 0u);
    EXPECT_TRUE(buffer.sinkOk);
    EXPECT_EQ(buffer.sinkPath, path);
    EXPECT_EQ(buffer.flushed, 100u);
    EXPECT_TRUE(buffer.events.empty())
        << "a sink-backed buffer advertises the file, not ring leftovers";

    // The file holds every event, in record order, parseable.
    const std::vector<std::string> lines = fileLines(path);
    ASSERT_EQ(lines.size(), 100u);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        obs::TraceEvent event;
        ASSERT_TRUE(obs::eventFromJsonLine(lines[i], &event)) << lines[i];
        EXPECT_EQ(event.time, static_cast<double>(i));
        EXPECT_EQ(event.job, static_cast<sim::JobId>(i + 1));
    }
    std::remove(path.c_str());
}

TEST(ObsTraceSink, UnopenableSinkFallsBackToBoundedRing)
{
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::On;
    cfg.ringCapacity = 4;
    cfg.sinkPath =
        ::testing::TempDir() + "no_such_dir_xyz/obs_sink.jsonl.part";
    obs::Tracer tracer(cfg);
    EXPECT_EQ(tracer.sink(), nullptr);
    for (int i = 0; i < 10; ++i)
        tracer.job(obs::EventKind::JobSubmit, static_cast<double>(i),
                   static_cast<sim::JobId>(i + 1));
    const obs::TraceBuffer buffer = tracer.take();
    // The run still traces — ring semantics — but flags the broken sink
    // so writeTraceJsonl reports the stream incomplete instead of
    // silently writing a truncated artifact.
    EXPECT_FALSE(buffer.sinkOk);
    EXPECT_TRUE(buffer.sinkPath.empty());
    EXPECT_EQ(buffer.recorded, 10u);
    EXPECT_EQ(buffer.dropped, 6u);
    ASSERT_EQ(buffer.events.size(), 4u);
    EXPECT_EQ(buffer.events.front().time, 6.0);
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsMetricsRegistry, StableRefsAndSortedSnapshot)
{
    obs::MetricsRegistry registry;
    obs::Counter& c = registry.counter("b.count");
    c.inc();
    c.inc(3);
    EXPECT_EQ(&registry.counter("b.count"), &c);
    registry.gauge("a.gauge").set(0.5);
    obs::HistogramMetric& h = registry.histogram("c.hist");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.observe(v);

    const obs::MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 3u);
    // Dotted registry names sanitize to Prometheus-legal underscores so
    // per-run snapshots fold into the process registry unchanged.
    EXPECT_EQ(snapshot[0].name, "a_gauge");
    EXPECT_EQ(snapshot[0].value, 0.5);
    EXPECT_EQ(snapshot[1].name, "b_count");
    EXPECT_EQ(snapshot[1].value, 4.0);
    EXPECT_EQ(snapshot[2].name, "c_hist");
    EXPECT_EQ(snapshot[2].count, 4u);
    EXPECT_EQ(snapshot[2].max, 4.0);
    EXPECT_EQ(snapshot[2].kind, obs::MetricSample::Kind::Histogram);
}

TEST(ObsMetricsRegistry, SanitizesNamesAndRejectsNothingSilently)
{
    obs::MetricsRegistry registry;
    // Dotted and illegal-charactered names collapse deterministically to
    // the same sanitized series.
    obs::Counter& dotted = registry.counter("queue.wait-sec");
    EXPECT_EQ(&registry.counter("queue_wait_sec"), &dotted);
    // Empty and digit-leading names become legal instead of UB.
    registry.gauge("").set(1.0);
    registry.gauge("9lives").set(2.0);
    dotted.inc();

    const obs::MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 3u);
    EXPECT_EQ(snapshot[0].name, "_");
    EXPECT_EQ(snapshot[1].name, "_9lives");
    EXPECT_EQ(snapshot[2].name, "queue_wait_sec");
    for (const obs::MetricSample& m : snapshot)
        EXPECT_TRUE(obs::isValidMetricName(m.name)) << m.name;
}

TEST(ObsMetricsRegistry, HistogramSnapshotReportsOrderedQuantiles)
{
    obs::MetricsRegistry registry;
    obs::HistogramMetric& h = registry.histogram("lat");
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i));
    const obs::MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    const obs::MetricSample& m = snapshot[0];
    EXPECT_GT(m.p99, 0.0);
    EXPECT_LE(m.p50, m.p95);
    EXPECT_LE(m.p95, m.p99);
    EXPECT_LE(m.p99, m.max);
}

TEST(ObsPhaseProfiler, ScopesAccumulate)
{
    obs::PhaseProfiler phases;
    {
        obs::PhaseProfiler::Scope scope(phases, "sim-loop");
    }
    {
        obs::PhaseProfiler::Scope scope(phases, "sim-loop");
    }
    phases.add("finalize", 0.25);
    EXPECT_GE(phases.seconds("sim-loop"), 0.0);
    EXPECT_EQ(phases.seconds("finalize"), 0.25);
    EXPECT_EQ(phases.seconds("absent"), 0.0);
    EXPECT_EQ(phases.phases().size(), 2u);
}

// ---------------------------------------------------------------------------
// Decision-reason coverage of the dynamic mapping policy

TEST(ObsDecisions, DynamicPolicyReportsEveryBranchReason)
{
    core::MappingInputs in;
    in.softLimit = 0.6;
    in.hardLimit = 0.8;
    obs::DecisionReason reason{};

    in.reservedUtilization = 0.3;
    EXPECT_EQ(core::decideMapping(core::PolicyKind::P8Dynamic, in, &reason),
              core::MapTarget::Reserved);
    EXPECT_EQ(reason, obs::DecisionReason::BelowSoftLimit);

    in.reservedUtilization = 0.7;
    in.jobQuality = 0.5;
    in.onDemandQ90 = 0.9;
    EXPECT_EQ(core::decideMapping(core::PolicyKind::P8Dynamic, in, &reason),
              core::MapTarget::OnDemand);
    EXPECT_EQ(reason, obs::DecisionReason::SoftLimitExceeded);

    in.jobQuality = 0.95; // on-demand cannot satisfy
    EXPECT_EQ(core::decideMapping(core::PolicyKind::P8Dynamic, in, &reason),
              core::MapTarget::Reserved);
    EXPECT_EQ(reason, obs::DecisionReason::QualityBelowQ90);

    in.reservedUtilization = 0.9;
    in.jobQuality = 0.5;
    EXPECT_EQ(core::decideMapping(core::PolicyKind::P8Dynamic, in, &reason),
              core::MapTarget::OnDemand);
    EXPECT_EQ(reason, obs::DecisionReason::HardLimitExceeded);

    in.jobQuality = 0.95;
    in.estimatedQueueWait = 100.0;
    in.largeSpinUpMedian = 15.0;
    EXPECT_EQ(core::decideMapping(core::PolicyKind::P8Dynamic, in, &reason),
              core::MapTarget::OnDemandLarge);
    EXPECT_EQ(reason, obs::DecisionReason::QueueWaitExceeded);

    in.estimatedQueueWait = 1.0;
    EXPECT_EQ(core::decideMapping(core::PolicyKind::P8Dynamic, in, &reason),
              core::MapTarget::QueueReserved);
    EXPECT_EQ(reason, obs::DecisionReason::QualityBelowQ90);

    // Static policies report PolicyStatic.
    EXPECT_EQ(core::decideMapping(core::PolicyKind::P3Q50, in, &reason),
              core::MapTarget::Reserved);
    EXPECT_EQ(reason, obs::DecisionReason::PolicyStatic);
}

// ---------------------------------------------------------------------------
// Engine integration

core::RunResult
tracedRun(core::StrategyKind strategy, workload::ScenarioKind scenario,
          obs::TraceConfig::Mode mode, double loadScale = 0.1)
{
    workload::ScenarioConfig scenario_cfg;
    scenario_cfg.kind = scenario;
    scenario_cfg.seed = 42;
    scenario_cfg.loadScale = loadScale;
    core::EngineConfig cfg;
    cfg.seed = 42;
    cfg.trace.mode = mode;
    core::Engine engine(cfg);
    return engine.run(workload::generateScenario(scenario_cfg), strategy,
                      workload::toString(scenario));
}

std::size_t
countKind(const obs::TraceBuffer& trace, obs::EventKind kind)
{
    std::size_t n = 0;
    for (const obs::TraceEvent& e : trace.events)
        if (e.kind == kind)
            ++n;
    return n;
}

std::size_t
countReason(const obs::TraceBuffer& trace, obs::DecisionReason reason)
{
    std::size_t n = 0;
    for (const obs::TraceEvent& e : trace.events)
        if (e.reason == reason)
            ++n;
    return n;
}

TEST(ObsEngineTrace, EventStreamAgreesWithRunCounters)
{
    const core::RunResult r =
        tracedRun(core::StrategyKind::HM,
                  workload::ScenarioKind::HighVariability,
                  obs::TraceConfig::Mode::On);
    ASSERT_GT(r.trace.recorded, 0u);
    ASSERT_EQ(r.trace.dropped, 0u)
        << "bump ringCapacity if this scenario outgrew the default ring";

    // Every decision site's reason lands in the stream exactly as the
    // metrics counters tally it.
    EXPECT_EQ(countKind(r.trace, obs::EventKind::JobSubmit), r.jobCount);
    EXPECT_EQ(countKind(r.trace, obs::EventKind::JobFinish) +
                  countKind(r.trace, obs::EventKind::JobFail),
              r.jobCount);
    EXPECT_EQ(countKind(r.trace, obs::EventKind::JobFail), r.failedJobs);
    EXPECT_EQ(countKind(r.trace, obs::EventKind::JobQueue), r.queuedJobs);
    EXPECT_EQ(countKind(r.trace, obs::EventKind::InstanceRequest),
              r.acquisitions);
    EXPECT_EQ(countReason(r.trace,
                          obs::DecisionReason::QosViolationReschedule),
              r.reschedules);
    EXPECT_EQ(countReason(r.trace, obs::DecisionReason::LowQualityRelease),
              r.immediateReleases);
    // The hybrid strategy maps every submitted job through a decision.
    EXPECT_GE(countKind(r.trace, obs::EventKind::Decision), r.jobCount);

    // Decision events always carry a reason.
    for (const obs::TraceEvent& e : r.trace.events) {
        if (e.kind == obs::EventKind::Decision) {
            EXPECT_NE(e.reason, obs::DecisionReason::None)
                << "decision at t=" << e.time << " missing its reason";
        }
    }

    // The registry snapshot mirrors the flat counters.
    bool saw_acquisitions = false;
    for (const obs::MetricSample& m : r.metricsSnapshot) {
        if (m.name == "strategy_acquisitions") {
            saw_acquisitions = true;
            EXPECT_EQ(m.value, static_cast<double>(r.acquisitions));
        }
    }
    EXPECT_TRUE(saw_acquisitions);

    // Telemetry: the run did measurable work.
    EXPECT_GT(r.telemetry.simLoopSec, 0.0);
    EXPECT_GT(r.telemetry.eventsProcessed, 0u);
    EXPECT_GT(r.telemetry.eventsPerSec, 0.0);
}

TEST(ObsEngineTrace, TracingDoesNotPerturbTheSimulation)
{
    const core::RunResult off =
        tracedRun(core::StrategyKind::HM,
                  workload::ScenarioKind::HighVariability,
                  obs::TraceConfig::Mode::Off);
    const core::RunResult on =
        tracedRun(core::StrategyKind::HM,
                  workload::ScenarioKind::HighVariability,
                  obs::TraceConfig::Mode::On);
    EXPECT_TRUE(off.trace.events.empty());
    EXPECT_EQ(off.trace.recorded, 0u);
    EXPECT_FALSE(on.trace.events.empty());
    // Bit-identical simulation either way.
    EXPECT_EQ(off.makespan, on.makespan);
    EXPECT_EQ(off.meanPerfNorm(), on.meanPerfNorm());
    EXPECT_EQ(off.jobCount, on.jobCount);
    EXPECT_EQ(off.acquisitions, on.acquisitions);
    EXPECT_EQ(off.reservedUtilizationAvg, on.reservedUtilizationAvg);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts (the tentpole contract)

std::string
serializeTrace(const obs::TraceBuffer& buffer)
{
    std::ostringstream out;
    obs::writeJsonl(out, buffer);
    return out.str();
}

TEST(ObsDeterminism, TraceJsonlByteIdenticalAcrossThreadCounts)
{
    exp::ExperimentOptions serial_opt;
    serial_opt.loadScale = 0.1;
    serial_opt.seed = 42;
    exp::ExperimentOptions parallel_opt = serial_opt;
    parallel_opt.threads = 4;
    core::EngineConfig base;
    base.trace.mode = obs::TraceConfig::Mode::On;

    exp::Runner serial{serial_opt, base};
    runtime::ParallelRunner parallel{parallel_opt, base};

    const struct
    {
        workload::ScenarioKind scenario;
        core::StrategyKind strategy;
    } cells[] = {
        {workload::ScenarioKind::Static, core::StrategyKind::SR},
        {workload::ScenarioKind::HighVariability, core::StrategyKind::HM},
        {workload::ScenarioKind::HighVariability, core::StrategyKind::HF},
    };
    for (const auto& cell : cells) {
        const core::RunResult& a = serial.run(cell.scenario, cell.strategy);
        const core::RunResult& b =
            parallel.run(cell.scenario, cell.strategy);
        ASSERT_GT(a.trace.recorded, 0u);
        EXPECT_EQ(serializeTrace(a.trace), serializeTrace(b.trace))
            << workload::toString(cell.scenario) << "/"
            << core::toString(cell.strategy);
    }
}

/**
 * Run the three determinism cells through a sink-backed ParallelRunner
 * at @p threads workers, merge the part files, and return the merged
 * bytes. Asserts the tentpole sink contract on every cell: dropped == 0
 * and a complete on-disk stream even though the ring (256) is far below
 * the event count.
 */
std::string
mergedSinkTrace(std::size_t threads, std::uint64_t* recordedSum)
{
    exp::ExperimentOptions opt;
    opt.loadScale = 0.1;
    opt.seed = 42;
    opt.threads = threads;
    core::EngineConfig base;
    base.trace.mode = obs::TraceConfig::Mode::On;
    base.trace.ringCapacity = 256;
    const std::string stem = ::testing::TempDir() + "obs_sink_t" +
        std::to_string(threads) + ".jsonl";
    base.trace.sinkStem = stem;

    runtime::ParallelRunner runner{opt, base};
    *recordedSum = 0;
    const struct
    {
        workload::ScenarioKind scenario;
        core::StrategyKind strategy;
    } cells[] = {
        {workload::ScenarioKind::Static, core::StrategyKind::SR},
        {workload::ScenarioKind::HighVariability, core::StrategyKind::HM},
        {workload::ScenarioKind::HighVariability, core::StrategyKind::HF},
    };
    for (const auto& cell : cells) {
        const core::RunResult& r =
            runner.run(cell.scenario, cell.strategy);
        EXPECT_TRUE(r.trace.sinkOk);
        EXPECT_FALSE(r.trace.sinkPath.empty());
        EXPECT_EQ(r.trace.dropped, 0u)
            << "sink-backed runs must never evict";
        EXPECT_GT(r.trace.recorded, base.trace.ringCapacity)
            << "cell too small to exercise ring wraps; shrink the ring";
        EXPECT_EQ(r.trace.flushed, r.trace.recorded);
        *recordedSum += r.trace.recorded;
    }
    const std::string merged = stem + ".merged";
    EXPECT_TRUE(exp::writeTraceJsonl(merged, runner,
                                     /*removeParts=*/true));
    std::ifstream in(merged, std::ios::binary);
    std::stringstream text;
    text << in.rdbuf();
    std::remove(merged.c_str());
    return text.str();
}

TEST(ObsDeterminism, SinkMergedTraceByteIdenticalAcrossThreadCounts)
{
    std::uint64_t recorded1 = 0;
    std::uint64_t recorded2 = 0;
    std::uint64_t recorded4 = 0;
    const std::string t1 = mergedSinkTrace(1, &recorded1);
    const std::string t2 = mergedSinkTrace(2, &recorded2);
    const std::string t4 = mergedSinkTrace(4, &recorded4);
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(recorded1, recorded2);
    EXPECT_TRUE(t1 == t2) << "threads=1 vs threads=2 merged traces differ";
    EXPECT_TRUE(t1 == t4) << "threads=1 vs threads=4 merged traces differ";

    // The merged stream is complete: every recorded event is a line, plus
    // one header per cell, and nothing else.
    std::istringstream in(t1);
    std::string line;
    std::uint64_t events = 0;
    std::uint64_t headers = 0;
    while (std::getline(in, line)) {
        obs::TraceEvent event;
        if (obs::eventFromJsonLine(line, &event)) {
            ++events;
            continue;
        }
        const obs::JsonValue header = obs::parseJson(line);
        const obs::JsonValue* run = header.find("run");
        ASSERT_NE(run, nullptr) << line;
        EXPECT_EQ(run->find("dropped")->numberOr(-1.0), 0.0);
        ++headers;
    }
    EXPECT_EQ(headers, 3u);
    EXPECT_EQ(events, recorded1);
}

// ---------------------------------------------------------------------------
// Report artifacts

TEST(ObsReports, JsonReportAndTraceJsonlRoundTrip)
{
    exp::ExperimentOptions opt;
    opt.loadScale = 0.05;
    opt.seed = 42;
    core::EngineConfig base;
    base.trace.mode = obs::TraceConfig::Mode::On;
    exp::Runner runner{opt, base};
    runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR);
    runner.run(workload::ScenarioKind::Static, core::StrategyKind::HM);

    const std::string dir = ::testing::TempDir();
    const std::string report_path = dir + "obs_report.json";
    const std::string trace_path = dir + "obs_trace.jsonl";
    ASSERT_TRUE(exp::writeJsonReport(report_path, "obs-test", runner));
    ASSERT_TRUE(exp::writeTraceJsonl(trace_path, runner));

    // Report parses and mirrors the in-memory results.
    std::ifstream report_in(report_path, std::ios::binary);
    std::stringstream report_text;
    report_text << report_in.rdbuf();
    const obs::JsonValue report = obs::parseJson(report_text.str());
    EXPECT_EQ(report.find("title")->stringOr(""), "obs-test");
    EXPECT_EQ(report.find("seed")->numberOr(0), 42.0);
    const obs::JsonValue* runs = report.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 2u);
    for (const obs::JsonValue& run : runs->array) {
        EXPECT_EQ(run.find("scenario")->stringOr(""), "static");
        const obs::JsonValue* counters = run.find("counters");
        ASSERT_NE(counters, nullptr);
        EXPECT_GT(counters->find("jobs")->numberOr(0), 0.0);
        const obs::JsonValue* telemetry = run.find("telemetry");
        ASSERT_NE(telemetry, nullptr);
        EXPECT_EQ(telemetry->find("threads")->numberOr(0), 1.0);
        ASSERT_NE(run.find("metrics"), nullptr);
        EXPECT_FALSE(run.find("metrics")->array.empty());
    }

    // The JSONL alternates run headers and parseable events.
    std::ifstream trace_in(trace_path, std::ios::binary);
    std::string line;
    std::size_t headers = 0;
    std::size_t events = 0;
    while (std::getline(trace_in, line)) {
        obs::TraceEvent event;
        if (obs::eventFromJsonLine(line, &event)) {
            ++events;
            continue;
        }
        const obs::JsonValue header = obs::parseJson(line);
        ASSERT_NE(header.find("run"), nullptr) << line;
        ++headers;
    }
    EXPECT_EQ(headers, 2u);
    EXPECT_GT(events, 0u);
}

TEST(ObsReports, AdhocRecordingCapturesUncachedRuns)
{
    exp::ExperimentOptions opt;
    opt.loadScale = 0.05;
    opt.seed = 42;
    exp::Runner runner{opt};
    runner.setRecordAdhoc(true);
    core::EngineConfig cfg = runner.baseConfig();
    cfg.retentionMultiple = 10.0;
    runner.runWith(workload::ScenarioKind::Static, core::StrategyKind::HM,
                   cfg, "static/retention-10x");
    ASSERT_EQ(runner.adhocResults().size(), 1u);
    EXPECT_EQ(runner.adhocResults()[0].scenario, "static/retention-10x");
    EXPECT_EQ(runner.adhocResults()[0].telemetry.threads, 1u);
}

} // namespace
} // namespace hcloud
