/**
 * @file
 * Extension study (Section 5.5): spot instances in the provisioning mix.
 *
 * The paper defers spot instances to future work. This bench quantifies
 * the opportunity: HS (hybrid + spot for tolerant batch work) against
 * HM and SR across the three scenarios, reporting cost, performance and
 * interruption counts.
 *
 * Usage: bench_ext_spot [loadScale] [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cloud/pricing.hpp"
#include "core/engine.hpp"
#include "core/hybrid_spot.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int
main(int argc, char** argv)
{
    using namespace hcloud;

    exp::ExperimentOptions opt;
    if (argc > 1)
        opt.loadScale = std::atof(argv[1]);
    if (argc > 2)
        opt.seed = std::strtoull(argv[2], nullptr, 10);

    exp::printHeader("Extension: spot instances for tolerant batch work "
                     "(HS = HM + spot tier)");

    exp::Runner runner(opt);
    const cloud::AwsStylePricing pricing;
    const double base =
        runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR)
            .cost(pricing)
            .total();

    std::vector<std::vector<std::string>> rows;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        const core::RunResult& sr =
            runner.run(scenario, core::StrategyKind::SR);
        const core::RunResult& hm =
            runner.run(scenario, core::StrategyKind::HM);
        core::EngineConfig cfg = runner.baseConfig();
        cfg.seed = opt.seed;
        core::Engine engine(cfg);
        const core::RunResult hs = engine.run(
            runner.trace(scenario),
            [](core::EngineContext& ctx) {
                return std::make_unique<core::HybridSpotStrategy>(ctx);
            },
            toString(scenario));

        for (const core::RunResult* r : {&sr, &hm, &hs}) {
            rows.push_back({
                std::string(toString(scenario)),
                r->strategy,
                exp::fmt(r->cost(pricing).total() / base, 2),
                exp::fmt(100.0 * r->meanPerfNorm(), 1),
                exp::fmt(r->lcLatencyUs.mean(), 0),
                std::to_string(r->acquisitions),
                std::to_string(r->spotInterruptions),
            });
        }
    }
    exp::printTable({"scenario", "strategy", "cost (norm)",
                     "mean perf %", "LC p99 (us)", "acquisitions",
                     "spot interrupts"},
                    rows);
    exp::printClaim("spot tier reduces hybrid cost",
                    "future work (Section 5.5)",
                    "compare HS vs HM cost rows");
    exp::printClaim("interruptions do not fail jobs",
                    "eviction + resubmission",
                    "perf within a few % of HM");
    return 0;
}
