/**
 * @file
 * Figure 18: resource-allocation timelines for all five strategies.
 *
 * Usage: bench_fig18_allocation [loadScale] [seed]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42).
 */

#include <cstdlib>

#include "exp/figures.hpp"

int
main(int argc, char** argv)
{
    hcloud::exp::ExperimentOptions opt;
    if (argc > 1)
        opt.loadScale = std::atof(argv[1]);
    if (argc > 2)
        opt.seed = std::strtoull(argv[2], nullptr, 10);
    hcloud::exp::Runner runner(opt);
    hcloud::exp::fig18Allocation(runner);
    return 0;
}
