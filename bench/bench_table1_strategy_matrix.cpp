/**
 * @file
 * Table 1: qualitative comparison of provisioning configurations, with concrete prices.
 *
 * Usage: bench_table1_strategy_matrix [loadScale] [seed]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42).
 */

#include <cstdlib>

#include "exp/figures.hpp"

int
main(int argc, char** argv)
{
    hcloud::exp::ExperimentOptions opt;
    if (argc > 1)
        opt.loadScale = std::atof(argv[1]);
    if (argc > 2)
        opt.seed = std::strtoull(argv[2], nullptr, 10);
    (void)opt;
    hcloud::exp::table1StrategyMatrix();
    return 0;
}
