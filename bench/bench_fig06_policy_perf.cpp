/**
 * @file
 * Figure 6: sensitivity to the application-mapping policy (P1-P8), performance view.
 *
 * Usage: bench_fig06_policy_perf [loadScale] [seed] [threads]
 *                                [--json <path>] [--trace <path>]
 *                                [--metrics-port <port>]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42);
 *   --json writes a machine-readable report of every run;
 *   --trace forces tracing on and writes the event streams as JSONL
 *   (without it, the HCLOUD_TRACE environment knob decides).
 */

#include "exp/cli.hpp"
#include "exp/figures.hpp"

int
main(int argc, char** argv)
{
    hcloud::exp::BenchCli cli = hcloud::exp::parseBenchCli(argc, argv);
    if (cli.parseError)
        return 2;
    hcloud::exp::ScopedMetricsServer metrics(cli);
    if (metrics.failed())
        return 1;
    hcloud::exp::Runner runner(cli.options, cli.engineConfig());
    runner.setRecordAdhoc(cli.wantsArtifacts());
    hcloud::exp::fig06PolicyPerf(runner);
    return hcloud::exp::writeBenchArtifacts(cli, "fig06_policy_perf",
                                            runner)
        ? 0
        : 1;
}
