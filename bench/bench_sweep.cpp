/**
 * @file
 * Sweep-scheduler throughput benchmark: exp::runSweep (engine reuse +
 * shared trace cache + streaming aggregation) against the pre-existing
 * multi-seed path (Runner::runBatch with one scenario-override spec per
 * cell x seed, which regenerates every trace and builds a fresh engine
 * per spec).
 *
 * Both sides execute the identical fig12 grid x seed list and are
 * measured best-of-N (wall clock -> aggregate simulator events/sec).
 * The machine-readable artifact BENCH_sweep.json (CI uploads and gates
 * it) records both sides' throughput, the sweep's cache/reset telemetry,
 * the per-run setup cost before/after (the reset-reuse win), and a
 * thread-count determinism check (sweepCellsJson at 1 vs 2 threads).
 *
 * Usage: bench_sweep [--seeds <n>] [--reps <n>] [--threads <n>]
 *                    [--load <scale>] [--duration <hours>]
 *                    [--seed <base>] [--out <path>]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "obs/phase_profiler.hpp"
#include "runtime/parallel_runner.hpp"

namespace {

/** One measured execution of the baseline runBatch path. */
struct BaselineRun
{
    double wallSec = 0.0;
    double setupSecTotal = 0.0;
    double traceGenSecTotal = 0.0;
    std::uint64_t events = 0;
    double eventsPerSec = 0.0;
};

double
secondsSince(hcloud::obs::PhaseProfiler::Clock::time_point start)
{
    return std::chrono::duration<double>(
               hcloud::obs::PhaseProfiler::Clock::now() - start)
        .count();
}

/** The runBatch spec list equivalent to a sweep's cells x seeds. */
std::vector<hcloud::exp::RunSpec>
baselineSpecs(const std::vector<hcloud::exp::SweepCell>& cells,
              const hcloud::exp::SweepOptions& options)
{
    const std::vector<std::uint64_t> seeds =
        hcloud::exp::deriveSeedList(options.baseSeed, options.seeds);
    std::vector<hcloud::exp::RunSpec> specs;
    specs.reserve(cells.size() * seeds.size());
    for (const hcloud::exp::SweepCell& cell : cells) {
        for (std::uint64_t seed : seeds) {
            hcloud::exp::RunSpec spec;
            spec.scenario = cell.scenario;
            spec.strategy = cell.strategy;
            spec.config = cell.config;
            // The pre-sweep way to vary the seed: a private per-spec
            // scenario override (the shared trace is pinned to the
            // runner's own seed), regenerated inside every task.
            hcloud::workload::ScenarioConfig scenario =
                cell.scenarioOverride.value_or(
                    hcloud::workload::ScenarioConfig{});
            if (!cell.scenarioOverride) {
                scenario.kind = cell.scenario;
                if (options.duration)
                    scenario.duration = *options.duration;
            }
            scenario.loadScale = options.loadScale;
            scenario.seed = seed;
            spec.scenarioOverride = scenario;
            spec.seedOverride = seed;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

BaselineRun
runBaseline(const std::vector<hcloud::exp::SweepCell>& cells,
            const hcloud::exp::SweepOptions& options)
{
    hcloud::exp::ExperimentOptions opt;
    opt.loadScale = options.loadScale;
    opt.seed = options.baseSeed;
    opt.threads = options.threads;
    hcloud::runtime::ParallelRunner runner(opt);
    const std::vector<hcloud::exp::RunSpec> specs =
        baselineSpecs(cells, options);
    const auto start = hcloud::obs::PhaseProfiler::Clock::now();
    const std::vector<hcloud::core::RunResult> results =
        runner.runBatch(specs);
    BaselineRun run;
    run.wallSec = secondsSince(start);
    for (const hcloud::core::RunResult& r : results) {
        run.events += r.telemetry.eventsProcessed;
        run.setupSecTotal += r.telemetry.setupSec;
        run.traceGenSecTotal += r.telemetry.traceGenSec;
    }
    run.eventsPerSec =
        run.wallSec > 0.0 ? double(run.events) / run.wallSec : 0.0;
    return run;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace hcloud;

    exp::SweepOptions options;
    options.title = "bench_sweep_fig12";
    options.seeds = 3;
    // Sweep-scale defaults: many short runs, the regime where per-run
    // setup (classifier bootstrap, engine construction, per-spec trace
    // regeneration) dominates and the scheduler's reuse machinery pays.
    options.loadScale = 0.25;
    options.duration = sim::hours(0.1);
    std::size_t reps = 3;
    std::string outPath = "BENCH_sweep.json";
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (std::strcmp(argv[i], "--seeds") == 0)
            options.seeds = static_cast<std::size_t>(std::atol(next()));
        else if (std::strcmp(argv[i], "--reps") == 0)
            reps = static_cast<std::size_t>(std::atol(next()));
        else if (std::strcmp(argv[i], "--threads") == 0)
            options.threads =
                static_cast<std::size_t>(std::atol(next()));
        else if (std::strcmp(argv[i], "--load") == 0)
            options.loadScale = std::atof(next());
        else if (std::strcmp(argv[i], "--duration") == 0)
            options.duration = sim::hours(std::atof(next()));
        else if (std::strcmp(argv[i], "--seed") == 0)
            options.baseSeed =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (std::strcmp(argv[i], "--out") == 0)
            outPath = next();
        else {
            std::fprintf(stderr, "bench_sweep: unknown option %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (options.seeds == 0 || reps == 0) {
        std::fprintf(stderr,
                     "bench_sweep: --seeds and --reps must be >= 1\n");
        return 2;
    }

    const std::vector<exp::SweepCell> grid =
        exp::fig12SweepGrid(core::EngineConfig{});
    std::printf("bench_sweep: fig12 grid, %zu cells x %zu seeds, "
                "best of %zu\n",
                grid.size(), options.seeds, reps);

    BaselineRun baseline;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        const BaselineRun run = runBaseline(grid, options);
        if (rep == 0 || run.eventsPerSec > baseline.eventsPerSec)
            baseline = run;
        std::printf("  baseline rep %zu: %.2fs, %.2f Mev/s\n", rep + 1,
                    run.wallSec, run.eventsPerSec / 1e6);
    }

    exp::SweepResult sweep;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        exp::SweepResult run = exp::runSweep(grid, options);
        if (rep == 0 ||
            run.telemetry.eventsPerSec > sweep.telemetry.eventsPerSec)
            sweep = std::move(run);
        std::printf("  sweep rep %zu: %.2fs, %.2f Mev/s\n", rep + 1,
                    sweep.telemetry.wallSec,
                    sweep.telemetry.eventsPerSec / 1e6);
    }

    // Thread-count determinism: the canonical cell JSON must match
    // between forced-serial and pooled execution (one seed keeps this
    // check cheap; the full-matrix assertion lives in test_exp_sweep).
    exp::SweepOptions detOpt = options;
    detOpt.seeds = std::min<std::size_t>(options.seeds, 2);
    detOpt.threads = 1;
    const std::string serialCells =
        exp::sweepCellsJson(exp::runSweep(grid, detOpt));
    detOpt.threads = 2;
    const std::string pooledCells =
        exp::sweepCellsJson(exp::runSweep(grid, detOpt));
    const bool deterministic = serialCells == pooledCells;

    const double runs = double(sweep.telemetry.runs);
    const double sweepSetupPerRun =
        runs > 0.0 ? sweep.telemetry.setupSecTotal / runs : 0.0;
    const double baselineSetupPerRun =
        runs > 0.0 ? baseline.setupSecTotal / runs : 0.0;
    const double speedup = baseline.eventsPerSec > 0.0
        ? sweep.telemetry.eventsPerSec / baseline.eventsPerSec
        : 0.0;

    obs::JsonWriter w;
    w.beginObject();
    w.field("schemaVersion", 1);
    w.field("benchmark",
            "fig12 grid x seeds: exp::runSweep (engine reuse + trace "
            "cache) vs Runner::runBatch with per-spec overrides");
    w.field("cells", static_cast<std::uint64_t>(grid.size()));
    w.field("seeds", static_cast<std::uint64_t>(options.seeds));
    w.field("reps", static_cast<std::uint64_t>(reps));
    w.field("threads",
            static_cast<std::uint64_t>(sweep.telemetry.threads));
    w.field("load_scale", options.loadScale);
    if (options.duration)
        w.field("duration_hours", *options.duration / 3600.0);
    w.key("baseline");
    w.beginObject();
    w.field("wall_sec", baseline.wallSec);
    w.field("events_processed", baseline.events);
    w.field("events_per_sec", baseline.eventsPerSec);
    w.field("setup_sec_total", baseline.setupSecTotal);
    w.field("setup_sec_per_run", baselineSetupPerRun);
    w.field("trace_gen_sec_total", baseline.traceGenSecTotal);
    w.endObject();
    w.key("sweep");
    w.beginObject();
    w.field("wall_sec", sweep.telemetry.wallSec);
    w.field("events_processed", sweep.telemetry.eventsProcessed);
    w.field("events_per_sec", sweep.telemetry.eventsPerSec);
    w.field("setup_sec_total", sweep.telemetry.setupSecTotal);
    w.field("setup_sec_per_run", sweepSetupPerRun);
    w.field("trace_gen_sec_total", sweep.telemetry.traceGenSecTotal);
    w.field("trace_cache_hits", sweep.telemetry.traceCacheHits);
    w.field("trace_cache_misses", sweep.telemetry.traceCacheMisses);
    w.field("engine_resets", sweep.telemetry.engineResets);
    w.field("engines_created", sweep.telemetry.enginesCreated);
    w.field("max_buffered_runs",
            static_cast<std::uint64_t>(sweep.telemetry.maxBufferedRuns));
    w.endObject();
    w.field("events_per_sec_speedup", speedup);
    w.field("setup_sec_per_run_ratio",
            sweepSetupPerRun > 0.0
                ? baselineSetupPerRun / sweepSetupPerRun
                : 0.0);
    w.field("deterministic_across_threads", deterministic);
    w.endObject();

    std::ofstream out(outPath);
    out << w.take() << "\n";
    if (!out) {
        std::fprintf(stderr, "bench_sweep: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    std::printf("bench_sweep: %.2fx events/sec (%.2f vs %.2f Mev/s), "
                "setup %.1fx cheaper per run, deterministic=%s\n",
                speedup, sweep.telemetry.eventsPerSec / 1e6,
                baseline.eventsPerSec / 1e6,
                sweepSetupPerRun > 0.0
                    ? baselineSetupPerRun / sweepSetupPerRun
                    : 0.0,
                deterministic ? "true" : "false");
    std::printf("bench_sweep: wrote %s\n", outPath.c_str());
    return deterministic ? 0 : 1;
}
