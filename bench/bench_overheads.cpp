/**
 * @file
 * Section 5.2: provisioning overheads, measured as real microbenchmarks.
 *
 * The paper reports: profiling 5-10 s of job runtime (simulated time,
 * charged once per application signature), classification ~20 ms, and
 * provisioning/mapping decisions under 20 ms — three orders of magnitude
 * below instance spin-up. These benchmarks measure our implementation's
 * actual wall-clock costs for the same operations.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "cloud/provider.hpp"
#include "core/engine.hpp"
#include "core/mapping_policy.hpp"
#include "core/placement.hpp"
#include "core/queue_estimator.hpp"
#include "obs/process_metrics.hpp"
#include "obs/prom_text.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "profiling/quasar.hpp"
#include "sim/simulator.hpp"
#include "workload/archetypes.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace hcloud;

/** Classification of a fresh job (cache miss): the paper's ~20 ms. */
void
BM_QuasarClassification(benchmark::State& state)
{
    profiling::QuasarConfig config;
    profiling::Quasar quasar(config);
    quasar.warmUp();
    sim::Rng rng(7);
    std::uint64_t salt = 0;
    for (auto _ : state) {
        workload::JobSpec spec;
        spec.kind = workload::AppKind::Memcached;
        spec.sensitivity =
            workload::generateSensitivity(spec.kind, rng);
        spec.coresIdeal = 4.0 + static_cast<double>(salt % 13);
        spec.memoryPerCore = 1.0 + 0.13 * static_cast<double>(salt % 37);
        ++salt;
        benchmark::DoNotOptimize(quasar.estimate(spec));
    }
}
BENCHMARK(BM_QuasarClassification)->Unit(benchmark::kMillisecond);

/** Classifier bootstrap (library build + factorization training). */
void
BM_ClassifierBootstrap(benchmark::State& state)
{
    for (auto _ : state) {
        profiling::QuasarConfig config;
        profiling::Quasar quasar(config);
        quasar.warmUp();
        benchmark::DoNotOptimize(quasar.cacheSize());
    }
}
BENCHMARK(BM_ClassifierBootstrap)->Unit(benchmark::kMillisecond);

/** One mapping decision under the dynamic policy: must be << 20 ms. */
void
BM_DynamicMappingDecision(benchmark::State& state)
{
    sim::Rng rng(11);
    core::MappingInputs in;
    in.rng = &rng;
    double util = 0.0;
    for (auto _ : state) {
        util = util > 1.0 ? 0.0 : util + 0.001;
        in.reservedUtilization = util;
        in.jobQuality = 0.5 + 0.4 * util;
        in.onDemandQ90 = 0.9 - 0.3 * util;
        benchmark::DoNotOptimize(
            core::decideMapping(core::PolicyKind::P8Dynamic, in));
    }
}
BENCHMARK(BM_DynamicMappingDecision);

/** Greedy quality-aware placement over pools of varying size. */
void
BM_GreedyPlacement(benchmark::State& state)
{
    const auto pool_size = static_cast<std::size_t>(state.range(0));
    sim::Simulator simulator;
    cloud::CloudProvider provider(simulator,
                                  cloud::ProviderProfile::gce(), {},
                                  sim::Rng(3));
    const auto& st16 =
        cloud::InstanceTypeCatalog::defaultCatalog().byName("st16");
    auto pool = provider.reserveDedicated(
        st16, static_cast<int>(pool_size));
    // Pre-load the pool so the search has real occupancy to reason about.
    sim::Rng rng(5);
    sim::JobId job = 1;
    for (auto* inst : pool) {
        const double cores = rng.uniform(0.0, 12.0);
        inst->addResident(job++, {cores, 0.4}, 0.0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::qualityAwareFit(
            pool, 4.0, 0.6, 0.8, simulator.now()));
    }
}
BENCHMARK(BM_GreedyPlacement)->Arg(16)->Arg(64)->Arg(256);

/** Queue-estimator update + quantile query. */
void
BM_QueueEstimator(benchmark::State& state)
{
    core::QueueEstimator estimator;
    const auto& st16 =
        cloud::InstanceTypeCatalog::defaultCatalog().byName("st16");
    sim::Time t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        estimator.recordRelease(st16, t);
        benchmark::DoNotOptimize(estimator.waitQuantile(st16, 0.99, t));
    }
}
BENCHMARK(BM_QueueEstimator);

/**
 * Full engine run with the tracer off (Arg 0), ring-only (Arg 1), or
 * streaming to a TraceSink file (Arg 2).
 *
 * The disabled row is the observability tax every run pays: the tracer's
 * emit helpers early-return on a single bool, so the two off/on rows
 * should differ well under 2% when Arg(0) is compared against the
 * pre-obs baseline and by the event-construction cost when Arg(1) is.
 * Arg(2) adds the serialize+write cost of a complete on-disk trace; it
 * is the price of never truncating a long run to ringCapacity events.
 */
void
BM_EngineRunTrace(benchmark::State& state)
{
    workload::ScenarioConfig scenario_cfg;
    scenario_cfg.kind = workload::ScenarioKind::Static;
    scenario_cfg.seed = 42;
    scenario_cfg.loadScale = 0.05;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario_cfg);
    core::EngineConfig cfg;
    cfg.seed = 42;
    cfg.trace.mode = state.range(0) != 0
        ? obs::TraceConfig::Mode::On
        : obs::TraceConfig::Mode::Off;
    if (state.range(0) == 2)
        cfg.trace.sinkPath = "/tmp/hcloud_bench_overheads.trace.part";
    for (auto _ : state) {
        core::Engine engine(cfg);
        core::RunResult result =
            engine.run(trace, core::StrategyKind::HM, "static");
        benchmark::DoNotOptimize(result.trace.recorded);
    }
    if (state.range(0) == 2)
        std::remove(cfg.trace.sinkPath.c_str());
}
BENCHMARK(BM_EngineRunTrace)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/** Cost of one emit-helper call on a disabled tracer (the hot guard). */
void
BM_TracerDisabledEmit(benchmark::State& state)
{
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::Off;
    obs::Tracer tracer(cfg);
    sim::Time t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        tracer.decision(t, obs::DecisionReason::SoftLimitExceeded, 1, 2,
                        0.5, "st16");
        benchmark::DoNotOptimize(tracer.recordedCount());
    }
}
BENCHMARK(BM_TracerDisabledEmit);

/** Cost of recording one event into the ring (tracer enabled). */
void
BM_TracerRecord(benchmark::State& state)
{
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::On;
    obs::Tracer tracer(cfg);
    sim::Time t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        tracer.decision(t, obs::DecisionReason::SoftLimitExceeded, 1, 2,
                        0.5, "st16");
        benchmark::DoNotOptimize(tracer.recordedCount());
    }
}
BENCHMARK(BM_TracerRecord);

/**
 * Cost of recording with a sink attached, amortizing serialize+write.
 * The tiny ring forces a flush every 64 events, so the per-record cost
 * here is the steady-state streaming cost, not ring-buffered recording.
 */
void
BM_TracerRecordSink(benchmark::State& state)
{
    obs::TraceConfig cfg;
    cfg.mode = obs::TraceConfig::Mode::On;
    cfg.ringCapacity = 64;
    cfg.sinkPath = "/tmp/hcloud_bench_overheads.sink.part";
    obs::Tracer tracer(cfg);
    sim::Time t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        tracer.decision(t, obs::DecisionReason::SoftLimitExceeded, 1, 2,
                        0.5, "st16");
        benchmark::DoNotOptimize(tracer.recordedCount());
    }
    std::remove(cfg.sinkPath.c_str());
}
// Fixed iteration count bounds the on-disk file the loop streams out
// (adaptive timing could write GBs into /tmp before converging).
BENCHMARK(BM_TracerRecordSink)->Iterations(1 << 18);

/**
 * Cost of the disabled-timeline guard the engine tick loop pays: one
 * bool load plus a time comparison. This is the whole observability tax
 * of state sampling when it's off, and CI asserts it stays within noise
 * of free (the tick loop runs millions of times per sweep).
 */
void
BM_TimelineDisabledTick(benchmark::State& state)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::Off;
    obs::Timeline timeline(cfg);
    sim::Time t = 0.0;
    sim::Time next = 1e18;
    for (auto _ : state) {
        t += 1.0;
        if (timeline.enabled() && t >= next)
            next += 1.0;
        benchmark::DoNotOptimize(timeline.recordedCount());
    }
}
BENCHMARK(BM_TimelineDisabledTick);

namespace {

/** A cluster snapshot shaped like a mid-sweep sample (two live types). */
obs::TimelineSample
benchSample(sim::Time t, std::uint64_t seq)
{
    obs::TimelineSample s;
    s.t = t;
    s.seq = seq;
    s.reservedInstances = 12;
    s.onDemandInstances = 3;
    s.spotInstances = 2;
    s.typeCounts = {{"st16", 14u}, {"st4", 3u}};
    s.reservedCores = 192.0;
    s.reservedUsed = 140.5;
    s.onDemandCores = 48.0;
    s.onDemandUsed = 31.0;
    s.utilization = 0.73;
    s.qualityMean = 0.81;
    s.qualityP5 = 0.55;
    s.qualityP50 = 0.84;
    s.qualityP95 = 0.97;
    s.queueLength = 4;
    s.activeJobs = 57;
    s.runningJobs = 53;
    s.finishedJobs = seq * 3;
    s.externalLoad = 0.42;
    s.spotPrice = 0.31;
    return s;
}

} // namespace

/** Cost of recording one sample into the ring (timeline enabled). */
void
BM_TimelineRecord(benchmark::State& state)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::On;
    obs::Timeline timeline(cfg);
    sim::Time t = 0.0;
    std::uint64_t seq = 0;
    for (auto _ : state) {
        t += 30.0;
        timeline.record(benchSample(t, seq++));
        benchmark::DoNotOptimize(timeline.recordedCount());
    }
}
BENCHMARK(BM_TimelineRecord);

/**
 * Cost of recording with a sink attached, amortizing serialize+write.
 * The tiny ring forces a flush every 64 samples, so the per-record cost
 * here is the steady-state streaming cost of a full on-disk timeline.
 */
void
BM_TimelineRecordSink(benchmark::State& state)
{
    obs::TimelineConfig cfg;
    cfg.mode = obs::TimelineConfig::Mode::On;
    cfg.ringCapacity = 64;
    cfg.sinkPath = "/tmp/hcloud_bench_overheads.timeline.part";
    obs::Timeline timeline(cfg);
    sim::Time t = 0.0;
    std::uint64_t seq = 0;
    for (auto _ : state) {
        t += 30.0;
        timeline.record(benchSample(t, seq++));
        benchmark::DoNotOptimize(timeline.recordedCount());
    }
    std::remove(cfg.sinkPath.c_str());
}
// Same rationale as BM_TracerRecordSink: bound the streamed file.
BENCHMARK(BM_TimelineRecordSink)->Iterations(1 << 16);

/**
 * Full engine run with the timeline off (Arg 0) or sampling every 30
 * virtual seconds into the ring (Arg 1). The Arg(0) row is what every
 * existing caller pays after this feature landed — CI gates it against
 * the tracer-off row of BM_EngineRunTrace, which runs the identical
 * scenario, so any disabled-path regression is a direct diff.
 */
void
BM_EngineRunTimeline(benchmark::State& state)
{
    workload::ScenarioConfig scenario_cfg;
    scenario_cfg.kind = workload::ScenarioKind::Static;
    scenario_cfg.seed = 42;
    scenario_cfg.loadScale = 0.05;
    const workload::ArrivalTrace trace =
        workload::generateScenario(scenario_cfg);
    core::EngineConfig cfg;
    cfg.seed = 42;
    cfg.timeline.mode = state.range(0) != 0
        ? obs::TimelineConfig::Mode::On
        : obs::TimelineConfig::Mode::Off;
    cfg.timeline.cadence = 30.0;
    for (auto _ : state) {
        core::Engine engine(cfg);
        core::RunResult result =
            engine.run(trace, core::StrategyKind::HM, "static");
        benchmark::DoNotOptimize(result.timeline.recorded);
    }
}
BENCHMARK(BM_EngineRunTimeline)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Cost of an armed-but-inert SpanScope: no tracer bound on this thread,
 * so the scope must collapse to a TLS load and a branch. This is the
 * price every routed request pays when span tracing is off, and CI
 * asserts it stays within noise of free.
 */
void
BM_SpanScopeDisabled(benchmark::State& state)
{
    for (auto _ : state) {
        obs::SpanScope scope("bench.noop");
        benchmark::DoNotOptimize(scope.active());
    }
}
BENCHMARK(BM_SpanScopeDisabled);

/** Cost of one recorded span (enabled tracer, streaming JSONL sink). */
void
BM_SpanRecord(benchmark::State& state)
{
    obs::SpanTracerConfig cfg;
    cfg.sinkPath = "/tmp/hcloud_bench_overheads.spans.part";
    obs::SpanTracer tracer(cfg);
    const obs::SpanContext root{tracer.newTraceId(),
                                tracer.newSpanId()};
    obs::SpanBinding bind(&tracer, root);
    for (auto _ : state) {
        obs::SpanScope scope("bench.span");
        benchmark::DoNotOptimize(scope.active());
    }
    state.counters["recorded"] =
        static_cast<double>(tracer.recorded());
    std::remove(cfg.sinkPath.c_str());
}
// Same rationale as BM_TracerRecordSink: bound the streamed file.
BENCHMARK(BM_SpanRecord)->Iterations(1 << 18);

/**
 * Prometheus text rendering of a ~200-series registry — the cost of one
 * /metrics scrape. It runs on the server's accept thread, so it must be
 * cheap enough that a 1 s scrape interval is invisible next to a sweep.
 */
void
BM_PromTextRender(benchmark::State& state)
{
    obs::ProcessMetrics pm;
    for (int i = 0; i < 80; ++i) {
        pm.counter("bench_counter_total", "counter fleet",
                   {{"idx", std::to_string(i)}})
            .inc(static_cast<double>(i) * 1.5);
        pm.gauge("bench_gauge", "gauge fleet",
                 {{"idx", std::to_string(i)}})
            .set(static_cast<double>(i) * 0.25);
    }
    // 40 histogram series; each default ladder renders ~16 bucket lines.
    for (int i = 0; i < 40; ++i) {
        obs::ProcessHistogram& h =
            pm.histogram("bench_latency_seconds", "histogram fleet",
                         {{"idx", std::to_string(i)}});
        for (int j = 0; j < 8; ++j)
            h.observe(0.001 * static_cast<double>(1 << j));
    }
    for (auto _ : state) {
        std::string page = obs::renderPromText(pm);
        benchmark::DoNotOptimize(page.data());
    }
}
BENCHMARK(BM_PromTextRender)->Unit(benchmark::kMicrosecond);

/**
 * DES kernel hot path: schedule + fire one event with an engine-sized
 * capture (56 bytes — inside kEventCallbackCapacity, so the allocation-
 * free slab/inline path). Before the InlineFunction/slab kernel this
 * cycle cost two heap allocations (std::function spill + shared handle
 * state); now it is a slab-slot reuse plus a heap push/pop.
 */
void
BM_EventQueuePushPop(benchmark::State& state)
{
    sim::EventQueue q;
    struct
    {
        double a[6] = {1, 2, 3, 4, 5, 6};
        std::uint64_t n = 0;
    } payload;
    sim::Time t = 0.0;
    for (auto _ : state) {
        t += 1.0;
        q.push(t, [payload]() mutable { ++payload.n; });
        q.pop().second();
    }
    if (q.heapCallbacks() != 0)
        state.SkipWithError("capture unexpectedly spilled to the heap");
}
BENCHMARK(BM_EventQueuePushPop);

/**
 * Quality-path cost per effectiveQuality() call on a loaded instance.
 * Arg(0): repeated queries at one tick — the tick-coherent cache path
 * the engine hits when many jobs share an instance. Arg(1): each query
 * advances the clock — the uncached recompute (OU advance + O(residents)
 * pressure sum) paid once per (instance, tick).
 */
void
BM_EffectiveQuality(benchmark::State& state)
{
    const bool advance = state.range(0) != 0;
    const cloud::ProviderProfile gce = cloud::ProviderProfile::gce();
    cloud::Machine host(1, true, {}, sim::Rng(3));
    host.allocate(16);
    const auto& st16 =
        cloud::InstanceTypeCatalog::defaultCatalog().byName("st16");
    cloud::Instance inst(1, st16, gce, &host, false, sim::Rng(9), 0.0);
    for (sim::JobId job = 1; job <= 6; ++job)
        inst.addResident(job, {2.0, 0.1 * static_cast<double>(job)}, 0.0);
    sim::Time t = 1.0;
    for (auto _ : state) {
        if (advance)
            t += 1.0;
        benchmark::DoNotOptimize(inst.effectiveQuality(t, 0.6, 1));
    }
}
BENCHMARK(BM_EffectiveQuality)->Arg(0)->Arg(1);

/** Scenario generation (trace synthesis) at paper scale. */
void
BM_ScenarioGeneration(benchmark::State& state)
{
    for (auto _ : state) {
        workload::ScenarioConfig config;
        config.kind = workload::ScenarioKind::HighVariability;
        config.seed = 42;
        benchmark::DoNotOptimize(workload::generateScenario(config));
    }
}
BENCHMARK(BM_ScenarioGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
