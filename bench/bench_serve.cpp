/**
 * @file
 * Closed-loop load generator for the hcloud serve daemon.
 *
 * Drives an in-process srv::ServeApp (the identical stack the
 * hcloud_serve binary runs) over real loopback HTTP: N tenants
 * partitioned across C client threads, each client POSTing
 * 1-second-spaced batch jobs round-robin over its tenants on a
 * keep-alive connection and timing every request wall-clock, then (when
 * --advances > 0) driving an advance phase so the submit and advance
 * request stages report separate latency distributions. Reports
 * aggregate submission throughput and p50/p90/p99/max latency, and
 * writes the machine-readable artifact BENCH_serve.json (CI uploads
 * it) with one "stages" row per request stage.
 *
 * --span-trace runs the whole bench with request-span tracing enabled
 * (the acceptance path: every HTTP request must join its engine
 * decisions by trace id in the emitted JSONL).
 *
 * --data-dir runs the bench with session journaling on (the durability
 * tax path: every accepted submit/advance appends one journal record,
 * fsynced per --fsync), so CI can gate the journaling overhead as a
 * journal-on vs journal-off qps ratio.
 *
 * --timeline-cadence runs the bench with cluster-state timeline
 * sampling on at the given virtual-second cadence (the observability
 * tax path; default 0 = off so the baseline row stays comparable),
 * recording the per-tenant sample totals in the artifact.
 *
 * Usage: bench_serve [--tenants N] [--clients N] [--jobs N]
 *                    [--advances N] [--span-trace PATH] [--out PATH]
 *                    [--data-dir DIR] [--fsync always|interval|never]
 *                    [--timeline-cadence N]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/json.hpp"
#include "obs/process_metrics.hpp"
#include "srv/http_client.hpp"
#include "srv/serve_app.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

std::string
tenantBody(const std::string& id, std::uint64_t seed)
{
    hcloud::obs::JsonWriter w;
    w.beginObject();
    w.field("id", id);
    w.field("strategy", "HM");
    w.key("scenario");
    w.beginObject();
    w.field("kind", "static");
    w.field("duration", 600.0);
    w.field("seed", seed);
    w.field("loadScale", 0.02);
    w.endObject();
    w.key("engine");
    w.beginObject();
    w.field("seed", seed);
    w.field("useProfiling", false);
    w.endObject();
    w.endObject();
    return w.take();
}

std::string
jobBody(double arrival)
{
    hcloud::obs::JsonWriter w;
    w.beginObject();
    w.field("kind", "hadoop-recommender");
    w.field("arrival", arrival);
    w.field("coresIdeal", 4);
    w.field("idealDuration", 30.0);
    w.endObject();
    return w.take();
}

double
percentileMs(std::vector<double>& sortedSeconds, double p)
{
    if (sortedSeconds.empty())
        return 0.0;
    const double rank =
        p * static_cast<double>(sortedSeconds.size() - 1);
    const std::size_t index = static_cast<std::size_t>(rank);
    return sortedSeconds[index] * 1e3;
}

/** Latency distribution of one request stage (sorts in place). */
struct StageStats
{
    const char* stage;
    std::size_t requests = 0;
    double p50Ms = 0.0;
    double p90Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
};

StageStats
stageStats(const char* stage, std::vector<double>& latencySeconds)
{
    std::sort(latencySeconds.begin(), latencySeconds.end());
    StageStats s;
    s.stage = stage;
    s.requests = latencySeconds.size();
    s.p50Ms = percentileMs(latencySeconds, 0.50);
    s.p90Ms = percentileMs(latencySeconds, 0.90);
    s.p99Ms = percentileMs(latencySeconds, 0.99);
    s.maxMs =
        latencySeconds.empty() ? 0.0 : latencySeconds.back() * 1e3;
    return s;
}

void
stageJson(hcloud::obs::JsonWriter& w, const StageStats& s)
{
    w.beginObject();
    w.field("stage", s.stage);
    w.field("requests", static_cast<std::uint64_t>(s.requests));
    w.field("p50Ms", s.p50Ms);
    w.field("p90Ms", s.p90Ms);
    w.field("p99Ms", s.p99Ms);
    w.field("maxMs", s.maxMs);
    w.endObject();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace hcloud;

    std::size_t tenants = 100;
    std::size_t clients = 8;
    std::size_t jobsPerTenant = 100;
    std::size_t advances = 3;
    std::string outPath = "BENCH_serve.json";
    std::string spanPath;
    std::string dataDir;
    srv::FsyncPolicy fsync = srv::FsyncPolicy::Interval;
    double timelineCadence = 0.0;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (std::strcmp(argv[i], "--tenants") == 0)
            tenants = static_cast<std::size_t>(std::atol(next()));
        else if (std::strcmp(argv[i], "--clients") == 0)
            clients = static_cast<std::size_t>(std::atol(next()));
        else if (std::strcmp(argv[i], "--jobs") == 0)
            jobsPerTenant = static_cast<std::size_t>(std::atol(next()));
        else if (std::strcmp(argv[i], "--advances") == 0)
            advances = static_cast<std::size_t>(std::atol(next()));
        else if (std::strcmp(argv[i], "--span-trace") == 0)
            spanPath = next();
        else if (std::strcmp(argv[i], "--out") == 0)
            outPath = next();
        else if (std::strcmp(argv[i], "--data-dir") == 0)
            dataDir = next();
        else if (std::strcmp(argv[i], "--timeline-cadence") == 0)
            timelineCadence = std::atof(next());
        else if (std::strcmp(argv[i], "--fsync") == 0) {
            if (!srv::parseFsyncPolicy(next(), &fsync)) {
                std::fprintf(stderr,
                             "bench_serve: --fsync requires always, "
                             "interval or never\n");
                return 2;
            }
        } else {
            std::fprintf(stderr, "bench_serve: unknown option %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (tenants == 0 || clients == 0 || jobsPerTenant == 0)
        return 2;
    clients = std::min(clients, tenants);

    obs::ProcessMetrics metrics;
    srv::ServeConfig config;
    config.shards = 8;
    config.httpWorkers = clients;
    config.maxPendingConnections = 2 * clients + 16;
    config.spanPath = spanPath;
    config.journal.dataDir = dataDir;
    config.journal.fsync = fsync;
    config.timelineCadence = timelineCadence;
    srv::ServeApp app(config, metrics);
    if (!spanPath.empty() && !app.spans().enabled()) {
        std::fprintf(stderr, "bench_serve: cannot open span sink %s\n",
                     spanPath.c_str());
        return 1;
    }
    std::string error;
    if (!app.start(0, &error)) {
        std::fprintf(stderr, "bench_serve: start failed: %s\n",
                     error.c_str());
        return 1;
    }

    std::printf("bench_serve: %zu tenants x %zu jobs over %zu clients "
                "(port %u)\n",
                tenants, jobsPerTenant, clients, app.boundPort());

    // Phase 1: create the tenant fleet (scenario generation dominates;
    // not part of the submission-rate window).
    const Clock::time_point setupStart = Clock::now();
    std::atomic<std::size_t> createFailures{0};
    {
        std::vector<std::thread> workers;
        for (std::size_t c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
                srv::HttpClient client(app.boundPort());
                for (std::size_t t = c; t < tenants; t += clients) {
                    const std::string id =
                        "bench-" + std::to_string(t);
                    const auto r = client.post(
                        "/v1/tenants", tenantBody(id, 42 + t));
                    if (r.status != 201)
                        createFailures.fetch_add(1);
                }
            });
        }
        for (std::thread& w : workers)
            w.join();
    }
    const double setupSeconds = seconds(Clock::now() - setupStart);
    if (createFailures.load() != 0) {
        std::fprintf(stderr, "bench_serve: %zu tenant creations failed\n",
                     createFailures.load());
        return 1;
    }

    // Phase 2: the measured closed loop. Every client owns a tenant
    // partition and round-robins one job per tenant per virtual second.
    const std::size_t totalJobs = tenants * jobsPerTenant;
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<std::size_t> submitFailures{0};
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::mutex startMutex;
    std::condition_variable startCv;

    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            srv::HttpClient client(app.boundPort());
            std::vector<std::string> targets;
            for (std::size_t t = c; t < tenants; t += clients)
                targets.push_back("/v1/tenants/bench-" +
                                  std::to_string(t) + "/jobs");
            std::vector<double>& lat = latencies[c];
            lat.reserve(targets.size() * jobsPerTenant);

            ready.fetch_add(1);
            {
                std::unique_lock<std::mutex> lock(startMutex);
                startCv.wait(lock, [&] { return go.load(); });
            }
            for (std::size_t j = 0; j < jobsPerTenant; ++j) {
                const std::string body =
                    jobBody(static_cast<double>(j) * 1.0);
                for (const std::string& target : targets) {
                    const Clock::time_point t0 = Clock::now();
                    const auto r = client.post(target, body);
                    lat.push_back(seconds(Clock::now() - t0));
                    if (r.status != 200)
                        submitFailures.fetch_add(1);
                }
            }
        });
    }
    while (ready.load() != clients)
        std::this_thread::yield();
    const Clock::time_point windowStart = Clock::now();
    {
        std::lock_guard<std::mutex> lock(startMutex);
        go.store(true);
    }
    startCv.notify_all();
    for (std::thread& w : workers)
        w.join();
    const double wallSeconds = seconds(Clock::now() - windowStart);

    // Phase 3: the advance stage — each client steps its tenants past
    // the submitted arrivals so decision work dominated by the engine's
    // advance path gets its own latency distribution.
    std::vector<std::vector<double>> advanceLatencies(clients);
    std::atomic<std::size_t> advanceFailures{0};
    if (advances > 0) {
        std::vector<std::thread> advWorkers;
        for (std::size_t c = 0; c < clients; ++c) {
            advWorkers.emplace_back([&, c] {
                srv::HttpClient client(app.boundPort());
                std::vector<std::string> targets;
                for (std::size_t t = c; t < tenants; t += clients)
                    targets.push_back("/v1/tenants/bench-" +
                                      std::to_string(t) + "/advance");
                std::vector<double>& lat = advanceLatencies[c];
                lat.reserve(targets.size() * advances);
                for (std::size_t a = 1; a <= advances; ++a) {
                    obs::JsonWriter body;
                    body.beginObject();
                    body.field("to",
                               static_cast<double>(jobsPerTenant) +
                                   static_cast<double>(a) * 60.0);
                    body.endObject();
                    const std::string payload = body.take();
                    for (const std::string& target : targets) {
                        const Clock::time_point t0 = Clock::now();
                        const auto r = client.post(target, payload);
                        lat.push_back(seconds(Clock::now() - t0));
                        if (r.status != 200)
                            advanceFailures.fetch_add(1);
                    }
                }
            });
        }
        for (std::thread& w : advWorkers)
            w.join();
    }

    // Durability + observability tax accounting, sampled before
    // shutdown closes fds.
    std::uint64_t journalBytes = 0;
    std::uint64_t timelineSamples = 0;
    for (const auto& row : app.sessions().status()) {
        journalBytes += row.journalBytes;
        timelineSamples += row.timelineSamples;
    }

    app.stop();

    std::vector<double> all;
    all.reserve(totalJobs);
    for (const std::vector<double>& lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    std::vector<double> advAll;
    for (const std::vector<double>& lat : advanceLatencies)
        advAll.insert(advAll.end(), lat.begin(), lat.end());

    const StageStats submitStats = stageStats("submit", all);
    const StageStats advanceStats = stageStats("advance", advAll);
    const double qps = static_cast<double>(totalJobs) / wallSeconds;
    const double p50 = submitStats.p50Ms;
    const double p90 = submitStats.p90Ms;
    const double p99 = submitStats.p99Ms;
    const double worst = submitStats.maxMs;

    std::printf("bench_serve: %zu jobs in %.3f s -> %.0f jobs/s "
                "(p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, max %.3f ms, "
                "%zu failures)\n",
                totalJobs, wallSeconds, qps, p50, p90, p99, worst,
                submitFailures.load());
    if (advances > 0)
        std::printf("bench_serve: advance stage %zu requests "
                    "(p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, "
                    "max %.3f ms, %zu failures)\n",
                    advanceStats.requests, advanceStats.p50Ms,
                    advanceStats.p90Ms, advanceStats.p99Ms,
                    advanceStats.maxMs, advanceFailures.load());
    if (!dataDir.empty())
        std::printf("bench_serve: journaling to %s (fsync=%s, "
                    "%.1f MiB across %zu tenants)\n",
                    dataDir.c_str(), srv::toString(fsync),
                    static_cast<double>(journalBytes) / (1 << 20),
                    tenants);
    if (app.spans().enabled())
        std::printf("bench_serve: %llu span records -> %s\n",
                    static_cast<unsigned long long>(
                        app.spans().recorded()),
                    spanPath.c_str());
    if (timelineCadence > 0.0)
        std::printf("bench_serve: timeline sampling every %.1f virtual "
                    "seconds (%llu samples across %zu tenants)\n",
                    timelineCadence,
                    static_cast<unsigned long long>(timelineSamples),
                    tenants);

    obs::JsonWriter w;
    w.beginObject();
    w.field("schemaVersion", 3);
    w.field("benchmark",
            "hcloud serve closed-loop job submission over loopback "
            "HTTP (in-process ServeApp)");
    w.field("tenants", static_cast<std::uint64_t>(tenants));
    w.field("clients", static_cast<std::uint64_t>(clients));
    w.field("jobsPerTenant", static_cast<std::uint64_t>(jobsPerTenant));
    w.field("jobs", static_cast<std::uint64_t>(totalJobs));
    w.field("failures",
            static_cast<std::uint64_t>(submitFailures.load() +
                                       advanceFailures.load()));
    w.field("setupSeconds", setupSeconds);
    w.field("wallSeconds", wallSeconds);
    w.field("qps", qps);
    w.field("p50Ms", p50);
    w.field("p90Ms", p90);
    w.field("p99Ms", p99);
    w.field("maxMs", worst);
    w.key("journal");
    w.beginObject();
    w.field("enabled", !dataDir.empty());
    if (!dataDir.empty()) {
        w.field("fsync", srv::toString(fsync));
        w.field("bytes", journalBytes);
    }
    w.endObject();
    w.field("spans", app.spans().enabled());
    if (app.spans().enabled())
        w.field("spanRecords", app.spans().recorded());
    w.key("timeline");
    w.beginObject();
    w.field("enabled", timelineCadence > 0.0);
    if (timelineCadence > 0.0) {
        w.field("cadence", timelineCadence);
        w.field("samples", timelineSamples);
    }
    w.endObject();
    w.key("stages");
    w.beginArray();
    stageJson(w, submitStats);
    if (advances > 0)
        stageJson(w, advanceStats);
    w.endArray();
    w.key("host");
    w.beginObject();
    w.field("nproc", static_cast<std::uint64_t>(
                         sysconf(_SC_NPROCESSORS_ONLN)));
    w.endObject();
    w.endObject();

    std::ofstream out(outPath);
    out << w.take() << "\n";
    if (!out) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    std::printf("bench_serve: wrote %s\n", outPath.c_str());
    return submitFailures.load() + advanceFailures.load() == 0 ? 0 : 1;
}
