/**
 * @file
 * Figure 15: performance and cost sensitivity to idle-instance retention time.
 *
 * Usage: bench_fig15_retention [loadScale] [seed] [threads]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42);
 *   threads sets the worker count (default: HCLOUD_THREADS env var or
 *   hardware concurrency; 1 forces serial execution). Results are
 *   bit-identical at any thread count.
 */

#include <cstdlib>

#include "exp/figures.hpp"
#include "runtime/parallel_runner.hpp"

int
main(int argc, char** argv)
{
    hcloud::exp::ExperimentOptions opt;
    if (argc > 1)
        opt.loadScale = std::atof(argv[1]);
    if (argc > 2)
        opt.seed = std::strtoull(argv[2], nullptr, 10);
    if (argc > 3)
        opt.threads = static_cast<std::size_t>(
            std::strtoull(argv[3], nullptr, 10));
    hcloud::runtime::ParallelRunner runner(opt);
    hcloud::exp::fig15Retention(runner);
    return 0;
}
