/**
 * @file
 * Figure 15: performance and cost sensitivity to idle-instance retention time.
 *
 * Usage: bench_fig15_retention [loadScale] [seed] [threads]
 *                              [--json <path>] [--trace <path>]
 *                              [--metrics-port <port>]
 *                              [--seeds <n>] [--ci]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42);
 *   threads sets the worker count (default: HCLOUD_THREADS env var or
 *   hardware concurrency; 1 forces serial execution). Results are
 *   bit-identical at any thread count;
 *   --seeds / --ci replace the single-seed figure with a multi-seed
 *   exp::runSweep over the retention grid: per-cell mean +/- 95% CI on
 *   stdout, and the aggregates in the --json report's `sweeps` array.
 */

#include "exp/cli.hpp"
#include "exp/figures.hpp"
#include "exp/sweep.hpp"
#include "runtime/parallel_runner.hpp"

int
main(int argc, char** argv)
{
    namespace exp = hcloud::exp;
    exp::BenchCli cli = exp::parseBenchCli(argc, argv,
                                           /*allowSweep=*/true);
    if (cli.parseError)
        return 2;
    exp::ScopedMetricsServer metrics(cli);
    if (metrics.failed())
        return 1;
    hcloud::runtime::ParallelRunner runner(cli.options,
                                           cli.engineConfig());
    if (cli.sweepRequested()) {
        exp::SweepOptions options;
        options.title = "fig15_retention";
        options.seeds = cli.effectiveSeeds();
        options.baseSeed = cli.options.seed;
        options.loadScale = cli.options.loadScale;
        options.threads = cli.options.threads;
        exp::SweepResult sweep =
            exp::runSweep(exp::fig15SweepGrid(cli.engineConfig()),
                          options);
        exp::printSweepTable(sweep);
        return exp::writeBenchArtifacts(cli, "fig15_retention", runner,
                                        {sweep})
            ? 0
            : 1;
    }
    runner.setRecordAdhoc(cli.wantsArtifacts());
    exp::fig15Retention(runner);
    return exp::writeBenchArtifacts(cli, "fig15_retention", runner)
        ? 0
        : 1;
}
