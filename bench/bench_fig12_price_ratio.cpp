/**
 * @file
 * Figure 12: cost sensitivity to the on-demand:reserved price ratio.
 *
 * Usage: bench_fig12_price_ratio [loadScale] [seed] [threads]
 *                                [--json <path>] [--trace <path>]
 *                                [--metrics-port <port>]
 *                                [--seeds <n>] [--ci]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42);
 *   threads sets the worker count (default: HCLOUD_THREADS env var or
 *   hardware concurrency; 1 forces serial execution). Results are
 *   bit-identical at any thread count;
 *   --json writes a machine-readable report of every run;
 *   --trace forces tracing on and writes the event streams as JSONL
 *   (without it, the HCLOUD_TRACE environment knob decides). The JSONL
 *   is byte-identical for any HCLOUD_THREADS value at a fixed seed;
 *   --metrics-port serves live Prometheus metrics on 127.0.0.1 for the
 *   lifetime of the sweep (0 = ephemeral port, printed at startup);
 *   --seeds / --ci replace the single-seed figure with a multi-seed
 *   exp::runSweep over the fig12 grid: per-cell mean +/- 95% CI on
 *   stdout, and the aggregates in the --json report's `sweeps` array.
 */

#include "exp/cli.hpp"
#include "exp/figures.hpp"
#include "exp/sweep.hpp"
#include "runtime/parallel_runner.hpp"

int
main(int argc, char** argv)
{
    namespace exp = hcloud::exp;
    exp::BenchCli cli = exp::parseBenchCli(argc, argv,
                                           /*allowSweep=*/true);
    if (cli.parseError)
        return 2;
    exp::ScopedMetricsServer metrics(cli);
    if (metrics.failed())
        return 1;
    hcloud::runtime::ParallelRunner runner(cli.options,
                                           cli.engineConfig());
    if (cli.sweepRequested()) {
        exp::SweepOptions options;
        options.title = "fig12_price_ratio";
        options.seeds = cli.effectiveSeeds();
        options.baseSeed = cli.options.seed;
        options.loadScale = cli.options.loadScale;
        options.threads = cli.options.threads;
        exp::SweepResult sweep =
            exp::runSweep(exp::fig12SweepGrid(cli.engineConfig()),
                          options);
        exp::printSweepTable(sweep);
        return exp::writeBenchArtifacts(cli, "fig12_price_ratio", runner,
                                        {sweep})
            ? 0
            : 1;
    }
    runner.setRecordAdhoc(cli.wantsArtifacts());
    exp::fig12PriceRatio(runner);
    return exp::writeBenchArtifacts(cli, "fig12_price_ratio", runner)
        ? 0
        : 1;
}
