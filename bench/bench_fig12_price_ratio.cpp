/**
 * @file
 * Figure 12: cost sensitivity to the on-demand:reserved price ratio.
 *
 * Usage: bench_fig12_price_ratio [loadScale] [seed] [threads]
 *                                [--json <path>] [--trace <path>]
 *                                [--metrics-port <port>]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42);
 *   threads sets the worker count (default: HCLOUD_THREADS env var or
 *   hardware concurrency; 1 forces serial execution). Results are
 *   bit-identical at any thread count;
 *   --json writes a machine-readable report of every run;
 *   --trace forces tracing on and writes the event streams as JSONL
 *   (without it, the HCLOUD_TRACE environment knob decides). The JSONL
 *   is byte-identical for any HCLOUD_THREADS value at a fixed seed;
 *   --metrics-port serves live Prometheus metrics on 127.0.0.1 for the
 *   lifetime of the sweep (0 = ephemeral port, printed at startup).
 */

#include "exp/cli.hpp"
#include "exp/figures.hpp"
#include "runtime/parallel_runner.hpp"

int
main(int argc, char** argv)
{
    hcloud::exp::BenchCli cli = hcloud::exp::parseBenchCli(argc, argv);
    if (cli.parseError)
        return 2;
    hcloud::exp::ScopedMetricsServer metrics(cli);
    if (metrics.failed())
        return 1;
    hcloud::runtime::ParallelRunner runner(cli.options,
                                           cli.engineConfig());
    runner.setRecordAdhoc(cli.wantsArtifacts());
    hcloud::exp::fig12PriceRatio(runner);
    return hcloud::exp::writeBenchArtifacts(cli, "fig12_price_ratio",
                                            runner)
        ? 0
        : 1;
}
