/**
 * @file
 * Figure 7: reserved utilization and cost across mapping policies.
 *
 * Usage: bench_fig07_policy_util_cost [loadScale] [seed] [threads]
 *                                     [--json <path>] [--trace <path>]
 *                                     [--metrics-port <port>]
 *   loadScale scales the scenario load curves (default 1.0 = paper scale);
 *   seed selects the deterministic random seed (default 42);
 *   --json writes a machine-readable report of every run;
 *   --trace forces tracing on and writes the event streams as JSONL
 *   (without it, the HCLOUD_TRACE environment knob decides).
 */

#include "exp/cli.hpp"
#include "exp/figures.hpp"

int
main(int argc, char** argv)
{
    hcloud::exp::BenchCli cli = hcloud::exp::parseBenchCli(argc, argv);
    if (cli.parseError)
        return 2;
    hcloud::exp::ScopedMetricsServer metrics(cli);
    if (metrics.failed())
        return 1;
    hcloud::exp::Runner runner(cli.options, cli.engineConfig());
    runner.setRecordAdhoc(cli.wantsArtifacts());
    hcloud::exp::fig07PolicyUtilCost(runner);
    return hcloud::exp::writeBenchArtifacts(cli, "fig07_policy_util_cost",
                                            runner)
        ? 0
        : 1;
}
