# Empty dependencies file for compare_strategies.
# This may be replaced when dependencies are built.
