file(REMOVE_RECURSE
  "CMakeFiles/trace_export.dir/trace_export.cpp.o"
  "CMakeFiles/trace_export.dir/trace_export.cpp.o.d"
  "trace_export"
  "trace_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
