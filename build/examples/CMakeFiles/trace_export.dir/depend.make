# Empty dependencies file for trace_export.
# This may be replaced when dependencies are built.
