
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/CMakeFiles/hcloud_core.dir/core/cluster.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/cluster.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/hcloud_core.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/CMakeFiles/hcloud_core.dir/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/hybrid.cpp.o.d"
  "/root/repo/src/core/hybrid_spot.cpp" "src/CMakeFiles/hcloud_core.dir/core/hybrid_spot.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/hybrid_spot.cpp.o.d"
  "/root/repo/src/core/mapping_policy.cpp" "src/CMakeFiles/hcloud_core.dir/core/mapping_policy.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/mapping_policy.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/hcloud_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/on_demand.cpp" "src/CMakeFiles/hcloud_core.dir/core/on_demand.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/on_demand.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/CMakeFiles/hcloud_core.dir/core/placement.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/placement.cpp.o.d"
  "/root/repo/src/core/qos_monitor.cpp" "src/CMakeFiles/hcloud_core.dir/core/qos_monitor.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/qos_monitor.cpp.o.d"
  "/root/repo/src/core/quality_tracker.cpp" "src/CMakeFiles/hcloud_core.dir/core/quality_tracker.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/quality_tracker.cpp.o.d"
  "/root/repo/src/core/queue_estimator.cpp" "src/CMakeFiles/hcloud_core.dir/core/queue_estimator.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/queue_estimator.cpp.o.d"
  "/root/repo/src/core/retention.cpp" "src/CMakeFiles/hcloud_core.dir/core/retention.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/retention.cpp.o.d"
  "/root/repo/src/core/soft_limit.cpp" "src/CMakeFiles/hcloud_core.dir/core/soft_limit.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/soft_limit.cpp.o.d"
  "/root/repo/src/core/static_reserved.cpp" "src/CMakeFiles/hcloud_core.dir/core/static_reserved.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/static_reserved.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/CMakeFiles/hcloud_core.dir/core/strategy.cpp.o" "gcc" "src/CMakeFiles/hcloud_core.dir/core/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcloud_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
