file(REMOVE_RECURSE
  "libhcloud_core.a"
)
