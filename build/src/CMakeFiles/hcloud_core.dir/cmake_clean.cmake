file(REMOVE_RECURSE
  "CMakeFiles/hcloud_core.dir/core/cluster.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/cluster.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/engine.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/engine.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/hybrid.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/hybrid.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/hybrid_spot.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/hybrid_spot.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/mapping_policy.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/mapping_policy.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/metrics.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/on_demand.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/on_demand.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/placement.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/placement.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/qos_monitor.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/qos_monitor.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/quality_tracker.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/quality_tracker.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/queue_estimator.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/queue_estimator.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/retention.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/retention.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/soft_limit.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/soft_limit.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/static_reserved.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/static_reserved.cpp.o.d"
  "CMakeFiles/hcloud_core.dir/core/strategy.cpp.o"
  "CMakeFiles/hcloud_core.dir/core/strategy.cpp.o.d"
  "libhcloud_core.a"
  "libhcloud_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcloud_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
