# Empty dependencies file for hcloud_core.
# This may be replaced when dependencies are built.
