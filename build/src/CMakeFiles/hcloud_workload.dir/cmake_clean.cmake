file(REMOVE_RECURSE
  "CMakeFiles/hcloud_workload.dir/workload/archetypes.cpp.o"
  "CMakeFiles/hcloud_workload.dir/workload/archetypes.cpp.o.d"
  "CMakeFiles/hcloud_workload.dir/workload/batch_model.cpp.o"
  "CMakeFiles/hcloud_workload.dir/workload/batch_model.cpp.o.d"
  "CMakeFiles/hcloud_workload.dir/workload/job.cpp.o"
  "CMakeFiles/hcloud_workload.dir/workload/job.cpp.o.d"
  "CMakeFiles/hcloud_workload.dir/workload/latency_model.cpp.o"
  "CMakeFiles/hcloud_workload.dir/workload/latency_model.cpp.o.d"
  "CMakeFiles/hcloud_workload.dir/workload/scenario.cpp.o"
  "CMakeFiles/hcloud_workload.dir/workload/scenario.cpp.o.d"
  "CMakeFiles/hcloud_workload.dir/workload/sensitivity.cpp.o"
  "CMakeFiles/hcloud_workload.dir/workload/sensitivity.cpp.o.d"
  "CMakeFiles/hcloud_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/hcloud_workload.dir/workload/trace.cpp.o.d"
  "libhcloud_workload.a"
  "libhcloud_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcloud_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
