# Empty compiler generated dependencies file for hcloud_workload.
# This may be replaced when dependencies are built.
