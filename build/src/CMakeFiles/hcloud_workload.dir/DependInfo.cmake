
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/archetypes.cpp" "src/CMakeFiles/hcloud_workload.dir/workload/archetypes.cpp.o" "gcc" "src/CMakeFiles/hcloud_workload.dir/workload/archetypes.cpp.o.d"
  "/root/repo/src/workload/batch_model.cpp" "src/CMakeFiles/hcloud_workload.dir/workload/batch_model.cpp.o" "gcc" "src/CMakeFiles/hcloud_workload.dir/workload/batch_model.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/CMakeFiles/hcloud_workload.dir/workload/job.cpp.o" "gcc" "src/CMakeFiles/hcloud_workload.dir/workload/job.cpp.o.d"
  "/root/repo/src/workload/latency_model.cpp" "src/CMakeFiles/hcloud_workload.dir/workload/latency_model.cpp.o" "gcc" "src/CMakeFiles/hcloud_workload.dir/workload/latency_model.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/CMakeFiles/hcloud_workload.dir/workload/scenario.cpp.o" "gcc" "src/CMakeFiles/hcloud_workload.dir/workload/scenario.cpp.o.d"
  "/root/repo/src/workload/sensitivity.cpp" "src/CMakeFiles/hcloud_workload.dir/workload/sensitivity.cpp.o" "gcc" "src/CMakeFiles/hcloud_workload.dir/workload/sensitivity.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/hcloud_workload.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/hcloud_workload.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
