file(REMOVE_RECURSE
  "libhcloud_workload.a"
)
