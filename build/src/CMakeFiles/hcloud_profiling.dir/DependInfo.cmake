
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/classifier.cpp" "src/CMakeFiles/hcloud_profiling.dir/profiling/classifier.cpp.o" "gcc" "src/CMakeFiles/hcloud_profiling.dir/profiling/classifier.cpp.o.d"
  "/root/repo/src/profiling/matrix_factorization.cpp" "src/CMakeFiles/hcloud_profiling.dir/profiling/matrix_factorization.cpp.o" "gcc" "src/CMakeFiles/hcloud_profiling.dir/profiling/matrix_factorization.cpp.o.d"
  "/root/repo/src/profiling/quasar.cpp" "src/CMakeFiles/hcloud_profiling.dir/profiling/quasar.cpp.o" "gcc" "src/CMakeFiles/hcloud_profiling.dir/profiling/quasar.cpp.o.d"
  "/root/repo/src/profiling/signal.cpp" "src/CMakeFiles/hcloud_profiling.dir/profiling/signal.cpp.o" "gcc" "src/CMakeFiles/hcloud_profiling.dir/profiling/signal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcloud_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
