# Empty dependencies file for hcloud_profiling.
# This may be replaced when dependencies are built.
