file(REMOVE_RECURSE
  "libhcloud_profiling.a"
)
