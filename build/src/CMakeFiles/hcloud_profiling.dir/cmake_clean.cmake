file(REMOVE_RECURSE
  "CMakeFiles/hcloud_profiling.dir/profiling/classifier.cpp.o"
  "CMakeFiles/hcloud_profiling.dir/profiling/classifier.cpp.o.d"
  "CMakeFiles/hcloud_profiling.dir/profiling/matrix_factorization.cpp.o"
  "CMakeFiles/hcloud_profiling.dir/profiling/matrix_factorization.cpp.o.d"
  "CMakeFiles/hcloud_profiling.dir/profiling/quasar.cpp.o"
  "CMakeFiles/hcloud_profiling.dir/profiling/quasar.cpp.o.d"
  "CMakeFiles/hcloud_profiling.dir/profiling/signal.cpp.o"
  "CMakeFiles/hcloud_profiling.dir/profiling/signal.cpp.o.d"
  "libhcloud_profiling.a"
  "libhcloud_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcloud_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
