# Empty dependencies file for hcloud_cloud.
# This may be replaced when dependencies are built.
