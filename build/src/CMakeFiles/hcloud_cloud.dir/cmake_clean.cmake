file(REMOVE_RECURSE
  "CMakeFiles/hcloud_cloud.dir/cloud/billing.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/billing.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/external_load.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/external_load.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/instance.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/instance.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/instance_type.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/instance_type.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/machine.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/machine.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/pricing.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/pricing.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/provider.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/provider.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/provider_profile.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/provider_profile.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/spin_up.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/spin_up.cpp.o.d"
  "CMakeFiles/hcloud_cloud.dir/cloud/spot_market.cpp.o"
  "CMakeFiles/hcloud_cloud.dir/cloud/spot_market.cpp.o.d"
  "libhcloud_cloud.a"
  "libhcloud_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcloud_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
