file(REMOVE_RECURSE
  "libhcloud_cloud.a"
)
