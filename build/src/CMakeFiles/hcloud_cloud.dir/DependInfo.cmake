
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/billing.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/billing.cpp.o.d"
  "/root/repo/src/cloud/external_load.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/external_load.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/external_load.cpp.o.d"
  "/root/repo/src/cloud/instance.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/instance.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/instance.cpp.o.d"
  "/root/repo/src/cloud/instance_type.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/instance_type.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/instance_type.cpp.o.d"
  "/root/repo/src/cloud/machine.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/machine.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/machine.cpp.o.d"
  "/root/repo/src/cloud/pricing.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/pricing.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/pricing.cpp.o.d"
  "/root/repo/src/cloud/provider.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/provider.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/provider.cpp.o.d"
  "/root/repo/src/cloud/provider_profile.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/provider_profile.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/provider_profile.cpp.o.d"
  "/root/repo/src/cloud/spin_up.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/spin_up.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/spin_up.cpp.o.d"
  "/root/repo/src/cloud/spot_market.cpp" "src/CMakeFiles/hcloud_cloud.dir/cloud/spot_market.cpp.o" "gcc" "src/CMakeFiles/hcloud_cloud.dir/cloud/spot_market.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
