file(REMOVE_RECURSE
  "libhcloud_exp.a"
)
