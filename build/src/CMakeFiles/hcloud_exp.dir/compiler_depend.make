# Empty compiler generated dependencies file for hcloud_exp.
# This may be replaced when dependencies are built.
