file(REMOVE_RECURSE
  "CMakeFiles/hcloud_exp.dir/exp/figures.cpp.o"
  "CMakeFiles/hcloud_exp.dir/exp/figures.cpp.o.d"
  "CMakeFiles/hcloud_exp.dir/exp/figures_sensitivity.cpp.o"
  "CMakeFiles/hcloud_exp.dir/exp/figures_sensitivity.cpp.o.d"
  "CMakeFiles/hcloud_exp.dir/exp/report.cpp.o"
  "CMakeFiles/hcloud_exp.dir/exp/report.cpp.o.d"
  "CMakeFiles/hcloud_exp.dir/exp/runner.cpp.o"
  "CMakeFiles/hcloud_exp.dir/exp/runner.cpp.o.d"
  "libhcloud_exp.a"
  "libhcloud_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcloud_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
