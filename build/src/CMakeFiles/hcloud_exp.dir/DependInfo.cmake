
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/figures.cpp" "src/CMakeFiles/hcloud_exp.dir/exp/figures.cpp.o" "gcc" "src/CMakeFiles/hcloud_exp.dir/exp/figures.cpp.o.d"
  "/root/repo/src/exp/figures_sensitivity.cpp" "src/CMakeFiles/hcloud_exp.dir/exp/figures_sensitivity.cpp.o" "gcc" "src/CMakeFiles/hcloud_exp.dir/exp/figures_sensitivity.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/hcloud_exp.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/hcloud_exp.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/CMakeFiles/hcloud_exp.dir/exp/runner.cpp.o" "gcc" "src/CMakeFiles/hcloud_exp.dir/exp/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcloud_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
