file(REMOVE_RECURSE
  "CMakeFiles/hcloud_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/hcloud_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/hcloud_sim.dir/sim/feedback.cpp.o"
  "CMakeFiles/hcloud_sim.dir/sim/feedback.cpp.o.d"
  "CMakeFiles/hcloud_sim.dir/sim/ou_process.cpp.o"
  "CMakeFiles/hcloud_sim.dir/sim/ou_process.cpp.o.d"
  "CMakeFiles/hcloud_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/hcloud_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/hcloud_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/hcloud_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/hcloud_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/hcloud_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/hcloud_sim.dir/sim/timeseries.cpp.o"
  "CMakeFiles/hcloud_sim.dir/sim/timeseries.cpp.o.d"
  "libhcloud_sim.a"
  "libhcloud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcloud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
