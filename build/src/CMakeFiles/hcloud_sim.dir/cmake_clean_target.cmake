file(REMOVE_RECURSE
  "libhcloud_sim.a"
)
