# Empty dependencies file for hcloud_sim.
# This may be replaced when dependencies are built.
