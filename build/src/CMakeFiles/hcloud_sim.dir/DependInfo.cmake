
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/hcloud_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/hcloud_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/feedback.cpp" "src/CMakeFiles/hcloud_sim.dir/sim/feedback.cpp.o" "gcc" "src/CMakeFiles/hcloud_sim.dir/sim/feedback.cpp.o.d"
  "/root/repo/src/sim/ou_process.cpp" "src/CMakeFiles/hcloud_sim.dir/sim/ou_process.cpp.o" "gcc" "src/CMakeFiles/hcloud_sim.dir/sim/ou_process.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/hcloud_sim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/hcloud_sim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/hcloud_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/hcloud_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/hcloud_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/hcloud_sim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/timeseries.cpp" "src/CMakeFiles/hcloud_sim.dir/sim/timeseries.cpp.o" "gcc" "src/CMakeFiles/hcloud_sim.dir/sim/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
