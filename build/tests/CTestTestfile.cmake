# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_sim_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_sim_rng[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_sim_ou_feedback[1]_include.cmake")
include("/root/repo/build/tests/test_cloud_types_pricing[1]_include.cmake")
include("/root/repo/build/tests/test_cloud_billing[1]_include.cmake")
include("/root/repo/build/tests/test_cloud_instances[1]_include.cmake")
include("/root/repo/build/tests/test_cloud_provider[1]_include.cmake")
include("/root/repo/build/tests/test_workload_sensitivity[1]_include.cmake")
include("/root/repo/build/tests/test_workload_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_profiling[1]_include.cmake")
include("/root/repo/build/tests/test_core_policies[1]_include.cmake")
include("/root/repo/build/tests/test_core_components[1]_include.cmake")
include("/root/repo/build/tests/test_core_engine[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_spot[1]_include.cmake")
include("/root/repo/build/tests/test_exp_harness[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
