# Empty compiler generated dependencies file for test_sim_ou_feedback.
# This may be replaced when dependencies are built.
