file(REMOVE_RECURSE
  "CMakeFiles/test_sim_ou_feedback.dir/test_sim_ou_feedback.cpp.o"
  "CMakeFiles/test_sim_ou_feedback.dir/test_sim_ou_feedback.cpp.o.d"
  "test_sim_ou_feedback"
  "test_sim_ou_feedback.pdb"
  "test_sim_ou_feedback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_ou_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
