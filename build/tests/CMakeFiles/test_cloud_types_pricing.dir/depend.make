# Empty dependencies file for test_cloud_types_pricing.
# This may be replaced when dependencies are built.
