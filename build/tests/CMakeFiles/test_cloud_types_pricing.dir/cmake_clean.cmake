file(REMOVE_RECURSE
  "CMakeFiles/test_cloud_types_pricing.dir/test_cloud_types_pricing.cpp.o"
  "CMakeFiles/test_cloud_types_pricing.dir/test_cloud_types_pricing.cpp.o.d"
  "test_cloud_types_pricing"
  "test_cloud_types_pricing.pdb"
  "test_cloud_types_pricing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud_types_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
