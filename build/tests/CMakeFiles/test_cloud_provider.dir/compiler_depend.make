# Empty compiler generated dependencies file for test_cloud_provider.
# This may be replaced when dependencies are built.
