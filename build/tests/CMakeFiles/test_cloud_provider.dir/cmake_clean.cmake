file(REMOVE_RECURSE
  "CMakeFiles/test_cloud_provider.dir/test_cloud_provider.cpp.o"
  "CMakeFiles/test_cloud_provider.dir/test_cloud_provider.cpp.o.d"
  "test_cloud_provider"
  "test_cloud_provider.pdb"
  "test_cloud_provider[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud_provider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
