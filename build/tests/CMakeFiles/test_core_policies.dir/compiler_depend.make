# Empty compiler generated dependencies file for test_core_policies.
# This may be replaced when dependencies are built.
