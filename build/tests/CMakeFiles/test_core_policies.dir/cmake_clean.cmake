file(REMOVE_RECURSE
  "CMakeFiles/test_core_policies.dir/test_core_policies.cpp.o"
  "CMakeFiles/test_core_policies.dir/test_core_policies.cpp.o.d"
  "test_core_policies"
  "test_core_policies.pdb"
  "test_core_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
