file(REMOVE_RECURSE
  "CMakeFiles/test_sim_rng.dir/test_sim_rng.cpp.o"
  "CMakeFiles/test_sim_rng.dir/test_sim_rng.cpp.o.d"
  "test_sim_rng"
  "test_sim_rng.pdb"
  "test_sim_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
