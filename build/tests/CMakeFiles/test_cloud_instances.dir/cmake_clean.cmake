file(REMOVE_RECURSE
  "CMakeFiles/test_cloud_instances.dir/test_cloud_instances.cpp.o"
  "CMakeFiles/test_cloud_instances.dir/test_cloud_instances.cpp.o.d"
  "test_cloud_instances"
  "test_cloud_instances.pdb"
  "test_cloud_instances[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
