# Empty dependencies file for test_cloud_instances.
# This may be replaced when dependencies are built.
