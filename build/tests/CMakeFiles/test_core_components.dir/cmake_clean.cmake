file(REMOVE_RECURSE
  "CMakeFiles/test_core_components.dir/test_core_components.cpp.o"
  "CMakeFiles/test_core_components.dir/test_core_components.cpp.o.d"
  "test_core_components"
  "test_core_components.pdb"
  "test_core_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
