# Empty compiler generated dependencies file for test_core_components.
# This may be replaced when dependencies are built.
