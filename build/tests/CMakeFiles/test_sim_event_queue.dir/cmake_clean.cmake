file(REMOVE_RECURSE
  "CMakeFiles/test_sim_event_queue.dir/test_sim_event_queue.cpp.o"
  "CMakeFiles/test_sim_event_queue.dir/test_sim_event_queue.cpp.o.d"
  "test_sim_event_queue"
  "test_sim_event_queue.pdb"
  "test_sim_event_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
