# Empty compiler generated dependencies file for test_cloud_billing.
# This may be replaced when dependencies are built.
