file(REMOVE_RECURSE
  "CMakeFiles/test_cloud_billing.dir/test_cloud_billing.cpp.o"
  "CMakeFiles/test_cloud_billing.dir/test_cloud_billing.cpp.o.d"
  "test_cloud_billing"
  "test_cloud_billing.pdb"
  "test_cloud_billing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
