# Empty compiler generated dependencies file for test_sim_timeseries.
# This may be replaced when dependencies are built.
