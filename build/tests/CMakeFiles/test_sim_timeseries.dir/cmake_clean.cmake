file(REMOVE_RECURSE
  "CMakeFiles/test_sim_timeseries.dir/test_sim_timeseries.cpp.o"
  "CMakeFiles/test_sim_timeseries.dir/test_sim_timeseries.cpp.o.d"
  "test_sim_timeseries"
  "test_sim_timeseries.pdb"
  "test_sim_timeseries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
