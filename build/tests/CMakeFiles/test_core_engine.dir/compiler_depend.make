# Empty compiler generated dependencies file for test_core_engine.
# This may be replaced when dependencies are built.
