file(REMOVE_RECURSE
  "CMakeFiles/test_core_engine.dir/test_core_engine.cpp.o"
  "CMakeFiles/test_core_engine.dir/test_core_engine.cpp.o.d"
  "test_core_engine"
  "test_core_engine.pdb"
  "test_core_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
