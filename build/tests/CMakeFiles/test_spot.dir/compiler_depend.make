# Empty compiler generated dependencies file for test_spot.
# This may be replaced when dependencies are built.
