file(REMOVE_RECURSE
  "CMakeFiles/test_spot.dir/test_spot.cpp.o"
  "CMakeFiles/test_spot.dir/test_spot.cpp.o.d"
  "test_spot"
  "test_spot.pdb"
  "test_spot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
