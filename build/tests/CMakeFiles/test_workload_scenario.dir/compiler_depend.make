# Empty compiler generated dependencies file for test_workload_scenario.
# This may be replaced when dependencies are built.
