file(REMOVE_RECURSE
  "CMakeFiles/test_workload_scenario.dir/test_workload_scenario.cpp.o"
  "CMakeFiles/test_workload_scenario.dir/test_workload_scenario.cpp.o.d"
  "test_workload_scenario"
  "test_workload_scenario.pdb"
  "test_workload_scenario[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
