# Empty dependencies file for test_workload_sensitivity.
# This may be replaced when dependencies are built.
