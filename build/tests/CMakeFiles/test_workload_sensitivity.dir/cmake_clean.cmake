file(REMOVE_RECURSE
  "CMakeFiles/test_workload_sensitivity.dir/test_workload_sensitivity.cpp.o"
  "CMakeFiles/test_workload_sensitivity.dir/test_workload_sensitivity.cpp.o.d"
  "test_workload_sensitivity"
  "test_workload_sensitivity.pdb"
  "test_workload_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
