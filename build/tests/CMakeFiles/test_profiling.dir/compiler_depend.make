# Empty compiler generated dependencies file for test_profiling.
# This may be replaced when dependencies are built.
