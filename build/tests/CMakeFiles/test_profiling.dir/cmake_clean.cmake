file(REMOVE_RECURSE
  "CMakeFiles/test_profiling.dir/test_profiling.cpp.o"
  "CMakeFiles/test_profiling.dir/test_profiling.cpp.o.d"
  "test_profiling"
  "test_profiling.pdb"
  "test_profiling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
