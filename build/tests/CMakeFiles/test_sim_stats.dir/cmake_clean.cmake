file(REMOVE_RECURSE
  "CMakeFiles/test_sim_stats.dir/test_sim_stats.cpp.o"
  "CMakeFiles/test_sim_stats.dir/test_sim_stats.cpp.o.d"
  "test_sim_stats"
  "test_sim_stats.pdb"
  "test_sim_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
