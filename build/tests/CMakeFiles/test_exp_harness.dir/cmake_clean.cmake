file(REMOVE_RECURSE
  "CMakeFiles/test_exp_harness.dir/test_exp_harness.cpp.o"
  "CMakeFiles/test_exp_harness.dir/test_exp_harness.cpp.o.d"
  "test_exp_harness"
  "test_exp_harness.pdb"
  "test_exp_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
