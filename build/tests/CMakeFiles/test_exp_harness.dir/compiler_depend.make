# Empty compiler generated dependencies file for test_exp_harness.
# This may be replaced when dependencies are built.
