file(REMOVE_RECURSE
  "CMakeFiles/test_sim_simulator.dir/test_sim_simulator.cpp.o"
  "CMakeFiles/test_sim_simulator.dir/test_sim_simulator.cpp.o.d"
  "test_sim_simulator"
  "test_sim_simulator.pdb"
  "test_sim_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
