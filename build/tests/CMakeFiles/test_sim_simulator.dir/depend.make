# Empty dependencies file for test_sim_simulator.
# This may be replaced when dependencies are built.
