# Empty compiler generated dependencies file for bench_fig13_duration.
# This may be replaced when dependencies are built.
