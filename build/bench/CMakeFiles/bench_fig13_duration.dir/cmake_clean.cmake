file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_duration.dir/bench_fig13_duration.cpp.o"
  "CMakeFiles/bench_fig13_duration.dir/bench_fig13_duration.cpp.o.d"
  "bench_fig13_duration"
  "bench_fig13_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
