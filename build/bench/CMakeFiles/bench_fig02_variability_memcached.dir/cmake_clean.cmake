file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_variability_memcached.dir/bench_fig02_variability_memcached.cpp.o"
  "CMakeFiles/bench_fig02_variability_memcached.dir/bench_fig02_variability_memcached.cpp.o.d"
  "bench_fig02_variability_memcached"
  "bench_fig02_variability_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_variability_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
