# Empty compiler generated dependencies file for bench_fig02_variability_memcached.
# This may be replaced when dependencies are built.
