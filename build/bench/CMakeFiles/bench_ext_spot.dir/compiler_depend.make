# Empty compiler generated dependencies file for bench_ext_spot.
# This may be replaced when dependencies are built.
