file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_spot.dir/bench_ext_spot.cpp.o"
  "CMakeFiles/bench_ext_spot.dir/bench_ext_spot.cpp.o.d"
  "bench_ext_spot"
  "bench_ext_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
