file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_variability_batch.dir/bench_fig01_variability_batch.cpp.o"
  "CMakeFiles/bench_fig01_variability_batch.dir/bench_fig01_variability_batch.cpp.o.d"
  "bench_fig01_variability_batch"
  "bench_fig01_variability_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_variability_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
