# Empty compiler generated dependencies file for bench_fig01_variability_batch.
# This may be replaced when dependencies are built.
