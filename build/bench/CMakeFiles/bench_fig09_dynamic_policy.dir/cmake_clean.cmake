file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_dynamic_policy.dir/bench_fig09_dynamic_policy.cpp.o"
  "CMakeFiles/bench_fig09_dynamic_policy.dir/bench_fig09_dynamic_policy.cpp.o.d"
  "bench_fig09_dynamic_policy"
  "bench_fig09_dynamic_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_dynamic_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
