# Empty compiler generated dependencies file for bench_fig09_dynamic_policy.
# This may be replaced when dependencies are built.
