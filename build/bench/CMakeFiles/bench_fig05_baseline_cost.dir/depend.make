# Empty dependencies file for bench_fig05_baseline_cost.
# This may be replaced when dependencies are built.
