# Empty dependencies file for bench_table2_scenarios.
# This may be replaced when dependencies are built.
