file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scenarios.dir/bench_table2_scenarios.cpp.o"
  "CMakeFiles/bench_table2_scenarios.dir/bench_table2_scenarios.cpp.o.d"
  "bench_table2_scenarios"
  "bench_table2_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
