file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_strategy_matrix.dir/bench_table1_strategy_matrix.cpp.o"
  "CMakeFiles/bench_table1_strategy_matrix.dir/bench_table1_strategy_matrix.cpp.o.d"
  "bench_table1_strategy_matrix"
  "bench_table1_strategy_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_strategy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
