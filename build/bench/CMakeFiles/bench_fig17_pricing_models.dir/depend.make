# Empty dependencies file for bench_fig17_pricing_models.
# This may be replaced when dependencies are built.
