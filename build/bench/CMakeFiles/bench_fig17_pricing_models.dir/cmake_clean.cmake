file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_pricing_models.dir/bench_fig17_pricing_models.cpp.o"
  "CMakeFiles/bench_fig17_pricing_models.dir/bench_fig17_pricing_models.cpp.o.d"
  "bench_fig17_pricing_models"
  "bench_fig17_pricing_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_pricing_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
