file(REMOVE_RECURSE
  "CMakeFiles/bench_overheads.dir/bench_overheads.cpp.o"
  "CMakeFiles/bench_overheads.dir/bench_overheads.cpp.o.d"
  "bench_overheads"
  "bench_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
