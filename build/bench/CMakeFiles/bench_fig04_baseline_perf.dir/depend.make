# Empty dependencies file for bench_fig04_baseline_perf.
# This may be replaced when dependencies are built.
