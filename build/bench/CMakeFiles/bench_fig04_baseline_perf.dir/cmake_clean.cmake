file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_baseline_perf.dir/bench_fig04_baseline_perf.cpp.o"
  "CMakeFiles/bench_fig04_baseline_perf.dir/bench_fig04_baseline_perf.cpp.o.d"
  "bench_fig04_baseline_perf"
  "bench_fig04_baseline_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_baseline_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
