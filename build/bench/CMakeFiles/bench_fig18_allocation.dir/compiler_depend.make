# Empty compiler generated dependencies file for bench_fig18_allocation.
# This may be replaced when dependencies are built.
