file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_allocation.dir/bench_fig18_allocation.cpp.o"
  "CMakeFiles/bench_fig18_allocation.dir/bench_fig18_allocation.cpp.o.d"
  "bench_fig18_allocation"
  "bench_fig18_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
