file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_policy_perf.dir/bench_fig06_policy_perf.cpp.o"
  "CMakeFiles/bench_fig06_policy_perf.dir/bench_fig06_policy_perf.cpp.o.d"
  "bench_fig06_policy_perf"
  "bench_fig06_policy_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_policy_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
