# Empty dependencies file for bench_fig06_policy_perf.
# This may be replaced when dependencies are built.
