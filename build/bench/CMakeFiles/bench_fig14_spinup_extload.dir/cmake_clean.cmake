file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_spinup_extload.dir/bench_fig14_spinup_extload.cpp.o"
  "CMakeFiles/bench_fig14_spinup_extload.dir/bench_fig14_spinup_extload.cpp.o.d"
  "bench_fig14_spinup_extload"
  "bench_fig14_spinup_extload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_spinup_extload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
