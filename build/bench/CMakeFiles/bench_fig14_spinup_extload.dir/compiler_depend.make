# Empty compiler generated dependencies file for bench_fig14_spinup_extload.
# This may be replaced when dependencies are built.
