# Empty dependencies file for bench_fig10_hybrid_perf.
# This may be replaced when dependencies are built.
