file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hybrid_perf.dir/bench_fig10_hybrid_perf.cpp.o"
  "CMakeFiles/bench_fig10_hybrid_perf.dir/bench_fig10_hybrid_perf.cpp.o.d"
  "bench_fig10_hybrid_perf"
  "bench_fig10_hybrid_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hybrid_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
