file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_sensitive_apps.dir/bench_fig16_sensitive_apps.cpp.o"
  "CMakeFiles/bench_fig16_sensitive_apps.dir/bench_fig16_sensitive_apps.cpp.o.d"
  "bench_fig16_sensitive_apps"
  "bench_fig16_sensitive_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_sensitive_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
