# Empty dependencies file for bench_fig16_sensitive_apps.
# This may be replaced when dependencies are built.
