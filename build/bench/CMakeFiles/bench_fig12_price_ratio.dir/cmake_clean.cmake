file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_price_ratio.dir/bench_fig12_price_ratio.cpp.o"
  "CMakeFiles/bench_fig12_price_ratio.dir/bench_fig12_price_ratio.cpp.o.d"
  "bench_fig12_price_ratio"
  "bench_fig12_price_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_price_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
