# Empty compiler generated dependencies file for bench_fig12_price_ratio.
# This may be replaced when dependencies are built.
