# Empty compiler generated dependencies file for bench_fig11_hybrid_cost.
# This may be replaced when dependencies are built.
