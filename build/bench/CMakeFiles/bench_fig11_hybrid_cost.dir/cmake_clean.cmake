file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hybrid_cost.dir/bench_fig11_hybrid_cost.cpp.o"
  "CMakeFiles/bench_fig11_hybrid_cost.dir/bench_fig11_hybrid_cost.cpp.o.d"
  "bench_fig11_hybrid_cost"
  "bench_fig11_hybrid_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hybrid_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
