# Empty dependencies file for bench_fig07_policy_util_cost.
# This may be replaced when dependencies are built.
