file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_policy_util_cost.dir/bench_fig07_policy_util_cost.cpp.o"
  "CMakeFiles/bench_fig07_policy_util_cost.dir/bench_fig07_policy_util_cost.cpp.o.d"
  "bench_fig07_policy_util_cost"
  "bench_fig07_policy_util_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_policy_util_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
