# Empty dependencies file for bench_fig21_breakdown.
# This may be replaced when dependencies are built.
