file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_retention.dir/bench_fig15_retention.cpp.o"
  "CMakeFiles/bench_fig15_retention.dir/bench_fig15_retention.cpp.o.d"
  "bench_fig15_retention"
  "bench_fig15_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
