# Empty dependencies file for bench_fig15_retention.
# This may be replaced when dependencies are built.
