#include "srv/session_journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace hcloud::srv {

namespace {

constexpr const char* kSuffix = ".journal";

/** Full EINTR-safe write of @p data; false on any hard failure. */
bool
writeAll(int fd, const char* data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

const char*
toString(FsyncPolicy policy)
{
    switch (policy) {
      case FsyncPolicy::Always:
        return "always";
      case FsyncPolicy::Interval:
        return "interval";
      case FsyncPolicy::Never:
        return "never";
    }
    return "?";
}

bool
parseFsyncPolicy(const std::string& name, FsyncPolicy* out)
{
    if (name == "always")
        *out = FsyncPolicy::Always;
    else if (name == "interval")
        *out = FsyncPolicy::Interval;
    else if (name == "never")
        *out = FsyncPolicy::Never;
    else
        return false;
    return true;
}

bool
validTenantId(const std::string& id)
{
    if (id.empty() || id.size() > 64)
        return false;
    if (id.front() == '.' || id.front() == '-')
        return false;
    for (char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                        c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
SessionJournal::pathFor(const std::string& dataDir,
                        const std::string& tenant)
{
    std::string path = dataDir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += tenant;
    path += kSuffix;
    return path;
}

bool
SessionJournal::removeFile(const std::string& dataDir,
                           const std::string& tenant)
{
    const std::string path = pathFor(dataDir, tenant);
    return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

SessionJournal::SessionJournal(const JournalConfig& config,
                               std::string tenant, bool truncate,
                               obs::ProcessMetrics& metrics)
    : config_(config), tenant_(std::move(tenant)),
      path_(pathFor(config.dataDir, tenant_)), metrics_(metrics)
{
    appendsTotal_ =
        &metrics_.counter("hcloud_journal_appends_total",
                          "Journal records appended across all tenants");
    appendBytesTotal_ =
        &metrics_.counter("hcloud_journal_bytes_total",
                          "Journal bytes written across all tenants");
    writeFailuresTotal_ = &metrics_.counter(
        "hcloud_journal_write_failures_total",
        "Journal appends that failed and poisoned the log");
    fsyncsTotal_ =
        &metrics_.counter("hcloud_journal_fsyncs_total",
                          "Journal fsync calls across all tenants");
    fsyncSeconds_ = &metrics_.histogram("hcloud_journal_fsync_seconds",
                                        "Journal fsync latency");

    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0) {
        error_ = path_ + ": " + std::strerror(errno);
        return;
    }
    struct stat st{};
    if (::fstat(fd_, &st) == 0)
        bytes_.store(static_cast<std::uint64_t>(st.st_size),
                     std::memory_order_relaxed);
    preallocate();
}

SessionJournal::~SessionJournal()
{
    if (fd_ < 0)
        return;
    sync();
    // Release unused preallocated extents; logical size is untouched.
    if (preallocEnd_ > bytes())
        ::ftruncate(fd_, static_cast<off_t>(bytes()));
    ::close(fd_);
    fd_ = -1;
}

void
SessionJournal::preallocate()
{
    // Extents are preallocated a chunk ahead (KEEP_SIZE: the logical
    // size — what replay reads and the quota counts — is unchanged) so
    // the per-append write(2) never does block allocation; delayed
    // allocation and extent-tree updates on every append were the
    // dominant journaling cost at bench scale. Best-effort: a
    // filesystem without fallocate just keeps allocating per append.
    constexpr std::uint64_t kChunk = 1ull << 20;
    const std::uint64_t want =
        ((bytes() / kChunk) + 1) * kChunk;
    if (::fallocate(fd_, FALLOC_FL_KEEP_SIZE, 0,
                    static_cast<off_t>(want)) == 0)
        preallocEnd_ = want;
}

void
SessionJournal::append(const std::string& line)
{
    if (!ok())
        throw ApiError{503, "journal_unavailable",
                       "journal for tenant \"" + tenant_ +
                           "\" is not writable: " + error_};
    obs::SpanScope span("journal.append");
    if (!writeAll(fd_, line.data(), line.size())) {
        // A failed append poisons the journal: further writes would
        // leave a hole in the command stream, so the tenant turns
        // read-only (503) instead of silently diverging from its log.
        // The fd stays open (closed only at destruction) so the
        // background flusher never races a close.
        error_ = path_ + ": " + std::strerror(errno);
        poisoned_.store(true, std::memory_order_release);
        writeFailuresTotal_->inc();
        throw ApiError{503, "journal_unavailable",
                       "journal write failed for tenant \"" + tenant_ +
                           "\": " + error_};
    }
    bytes_.fetch_add(line.size(), std::memory_order_relaxed);
    appends_.fetch_add(1, std::memory_order_relaxed);
    appendsTotal_->inc();
    appendBytesTotal_->inc(static_cast<double>(line.size()));
    dirty_.store(true, std::memory_order_release);
    if (bytes() + 4096 > preallocEnd_)
        preallocate(); // appends are strand-serialized; see header

    // Always pays the disk inline; Interval leaves the dirty flag for
    // the SessionManager flusher thread so request strands never block
    // on a millisecond-scale fsync.
    if (config_.fsync == FsyncPolicy::Always)
        flushIfDirty();
}

void
SessionJournal::sync()
{
    flushIfDirty();
}

bool
SessionJournal::flushIfDirty()
{
    if (fd_ < 0)
        return false;
    if (!dirty_.exchange(false, std::memory_order_acq_rel))
        return false;
    obs::SpanScope span("journal.fsync");
    const std::uint64_t t0 = obs::SpanTracer::nowNs();
    // fdatasync flushes the data plus the metadata needed to read it
    // back (including size), which is exactly the replay contract.
    while (::fdatasync(fd_) != 0 && errno == EINTR) {
    }
    const std::uint64_t t1 = obs::SpanTracer::nowNs();
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    recordFsync(static_cast<double>(t1 - t0) / 1e9);
    return true;
}

void
SessionJournal::recordFsync(double seconds)
{
    fsyncsTotal_->inc();
    fsyncSeconds_->observe(seconds);
}

std::size_t
SessionJournal::syncBatch(const std::vector<SessionJournal*>& journals)
{
    std::vector<SessionJournal*> dirty;
    dirty.reserve(journals.size());
    for (SessionJournal* j : journals)
        if (j && j->fd_ >= 0 &&
            j->dirty_.exchange(false, std::memory_order_acq_rel))
            dirty.push_back(j);
    if (dirty.empty())
        return 0;
    obs::SpanScope span("journal.fsync");
    const std::uint64_t t0 = obs::SpanTracer::nowNs();
    while (::syncfs(dirty.front()->fd_) != 0 && errno == EINTR) {
    }
    const std::uint64_t t1 = obs::SpanTracer::nowNs();
    // Per-journal fsyncs() counts times this journal's data was made
    // durable; the process-wide counter/histogram count the syscall.
    for (SessionJournal* j : dirty)
        j->fsyncs_.fetch_add(1, std::memory_order_relaxed);
    dirty.front()->recordFsync(static_cast<double>(t1 - t0) / 1e9);
    return dirty.size();
}

void
SessionJournal::appendCreate(const SessionConfig& config)
{
    obs::JsonWriter w;
    w.rawDoubles(true); // re-parsed on replay, never byte-compared
    w.beginObject();
    w.field("v", 1);
    w.field("op", "create");
    w.key("config");
    sessionConfigJson(w, config);
    w.endObject();
    std::string line = w.take();
    line += '\n';
    append(line);
}

void
SessionJournal::appendSubmit(const workload::JobSpec& spec)
{
    obs::JsonWriter w;
    w.rawDoubles(true); // hot path: one snprintf per double
    w.beginObject();
    w.field("v", 1);
    w.field("op", "submit");
    w.key("job");
    jobSpecJson(w, spec);
    w.endObject();
    std::string line = w.take();
    line += '\n';
    append(line);
}

void
SessionJournal::appendAdvance(double to)
{
    obs::JsonWriter w;
    w.rawDoubles(true);
    w.beginObject();
    w.field("v", 1);
    w.field("op", "advance");
    w.field("to", to);
    w.endObject();
    std::string line = w.take();
    line += '\n';
    append(line);
}

JournalLoad
loadJournal(const std::string& path)
{
    JournalLoad load;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        load.error = path + ": " + std::strerror(errno);
        return load;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    load.ok = true;

    std::size_t offset = 0;
    while (offset < text.size()) {
        const std::size_t eol = text.find('\n', offset);
        if (eol == std::string::npos) {
            // Partial trailing line: the classic SIGKILL-mid-write tail.
            ++load.droppedLines;
            break;
        }
        const std::string_view line(text.data() + offset, eol - offset);
        JournalRecord record;
        bool good = false;
        try {
            const obs::JsonValue v = obs::parseJson(line);
            const obs::JsonValue* op = v.find("op");
            if (op && op->type == obs::JsonValue::Type::String) {
                if (op->string == "create") {
                    const obs::JsonValue* config = v.find("config");
                    if (config) {
                        record.op = JournalRecord::Op::Create;
                        record.config = parseSessionConfig(*config);
                        good = true;
                    }
                } else if (op->string == "submit") {
                    const obs::JsonValue* job = v.find("job");
                    if (job) {
                        record.op = JournalRecord::Op::Submit;
                        record.job = parseJobSpec(*job);
                        good = true;
                    }
                } else if (op->string == "advance") {
                    const obs::JsonValue* to = v.find("to");
                    if (to &&
                        to->type == obs::JsonValue::Type::Number) {
                        record.op = JournalRecord::Op::Advance;
                        record.to = to->number;
                        good = true;
                    }
                }
            }
        } catch (const std::exception&) {
            good = false;
        } catch (const ApiError&) {
            good = false;
        }
        if (!good) {
            // First bad line: everything from here on is untrusted.
            std::size_t dropped = 1;
            std::size_t scan = eol + 1;
            while (scan < text.size()) {
                const std::size_t next = text.find('\n', scan);
                ++dropped;
                if (next == std::string::npos)
                    break;
                scan = next + 1;
            }
            load.droppedLines += dropped;
            break;
        }
        load.records.push_back(std::move(record));
        offset = eol + 1;
        load.validBytes = offset;
    }
    return load;
}

bool
ensureDataDir(const std::string& dataDir)
{
    if (dataDir.empty())
        return false;
    std::string partial;
    partial.reserve(dataDir.size());
    std::size_t pos = 0;
    while (pos <= dataDir.size()) {
        const std::size_t slash = dataDir.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? dataDir.size() : slash;
        partial.assign(dataDir, 0, end);
        if (!partial.empty() && partial != "/" &&
            ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
        if (slash == std::string::npos)
            break;
        pos = slash + 1;
    }
    struct stat st{};
    return ::stat(dataDir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string>
listJournals(const std::string& dataDir)
{
    std::vector<std::string> tenants;
    DIR* dir = ::opendir(dataDir.c_str());
    if (!dir)
        return tenants;
    const std::size_t suffixLen = std::strlen(kSuffix);
    while (struct dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.size() <= suffixLen ||
            name.compare(name.size() - suffixLen, suffixLen, kSuffix) !=
                0)
            continue;
        tenants.push_back(name.substr(0, name.size() - suffixLen));
    }
    ::closedir(dir);
    std::sort(tenants.begin(), tenants.end());
    return tenants;
}

} // namespace hcloud::srv
