#include "srv/json_api.hpp"

#include <stdexcept>

namespace hcloud::srv {

namespace {

using obs::JsonValue;

/** 422 with a uniform "field <name> ..." message. */
[[noreturn]] void
fieldError(std::string_view name, std::string_view what)
{
    throw ApiError{422, "invalid_field",
                   "field \"" + std::string(name) + "\" " +
                       std::string(what)};
}

const JsonValue&
requireObject(const JsonValue& v, std::string_view what)
{
    if (v.type != JsonValue::Type::Object)
        throw ApiError{422, "invalid_body",
                       std::string(what) + " must be a JSON object"};
    return v;
}

/** Required number field. */
double
getNumber(const JsonValue& obj, std::string_view name)
{
    const JsonValue* f = obj.find(name);
    if (!f)
        fieldError(name, "is required");
    if (f->type != JsonValue::Type::Number)
        fieldError(name, "must be a number");
    return f->number;
}

/** Optional number field. */
double
getNumberOr(const JsonValue& obj, std::string_view name, double fallback)
{
    const JsonValue* f = obj.find(name);
    if (!f)
        return fallback;
    if (f->type != JsonValue::Type::Number)
        fieldError(name, "must be a number");
    return f->number;
}

std::string
getStringOr(const JsonValue& obj, std::string_view name,
            std::string fallback)
{
    const JsonValue* f = obj.find(name);
    if (!f)
        return fallback;
    if (f->type != JsonValue::Type::String)
        fieldError(name, "must be a string");
    return f->string;
}

bool
getBoolOr(const JsonValue& obj, std::string_view name, bool fallback)
{
    const JsonValue* f = obj.find(name);
    if (!f)
        return fallback;
    if (f->type != JsonValue::Type::Bool)
        fieldError(name, "must be a boolean");
    return f->boolean;
}

} // namespace

std::string
errorJson(std::string_view code, std::string_view message)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("error");
    w.beginObject();
    w.field("code", code);
    w.field("message", message);
    w.endObject();
    w.endObject();
    return w.take();
}

obs::JsonValue
parseBody(std::string_view body)
{
    if (body.empty())
        throw ApiError{400, "empty_body", "request body is required"};
    try {
        return obs::parseJson(body);
    } catch (const std::runtime_error& e) {
        throw ApiError{400, "bad_json",
                       std::string("malformed JSON: ") + e.what()};
    }
}

bool
parseStrategyKind(const std::string& name, core::StrategyKind* out)
{
    for (core::StrategyKind kind : core::kAllStrategies) {
        if (name == core::toString(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parseScenarioKind(const std::string& name, workload::ScenarioKind* out)
{
    for (workload::ScenarioKind kind : workload::kAllScenarios) {
        if (name == workload::toString(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parseAppKind(const std::string& name, workload::AppKind* out)
{
    static constexpr workload::AppKind kAll[] = {
        workload::AppKind::HadoopRecommender,
        workload::AppKind::HadoopSvm,
        workload::AppKind::HadoopMatFac,
        workload::AppKind::SparkAnalytics,
        workload::AppKind::SparkRealtime,
        workload::AppKind::Memcached,
    };
    for (workload::AppKind kind : kAll) {
        if (name == workload::toString(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

SessionConfig
parseSessionConfig(const JsonValue& v)
{
    requireObject(v, "session config");
    SessionConfig config;
    config.id = getStringOr(v, "id", "");

    const std::string strategy = getStringOr(v, "strategy", "HM");
    if (!parseStrategyKind(strategy, &config.strategy))
        throw ApiError{422, "unknown_strategy",
                       "unknown strategy \"" + strategy +
                           "\" (expected SR, OdF, OdM, HF or HM)"};

    if (const JsonValue* scenario = v.find("scenario")) {
        requireObject(*scenario, "scenario");
        const std::string kind =
            getStringOr(*scenario, "kind", "static");
        if (!parseScenarioKind(kind, &config.scenario.kind))
            throw ApiError{422, "unknown_scenario",
                           "unknown scenario \"" + kind +
                               "\" (expected static, low-variability "
                               "or high-variability)"};
        config.scenario.duration = getNumberOr(
            *scenario, "duration", config.scenario.duration);
        if (config.scenario.duration <= 0.0)
            fieldError("duration", "must be positive");
        config.scenario.seed = static_cast<std::uint64_t>(getNumberOr(
            *scenario, "seed",
            static_cast<double>(config.scenario.seed)));
        config.scenario.loadScale = getNumberOr(
            *scenario, "loadScale", config.scenario.loadScale);
        if (config.scenario.loadScale <= 0.0)
            fieldError("loadScale", "must be positive");
        config.scenario.sensitiveFraction =
            getNumberOr(*scenario, "sensitiveFraction",
                        config.scenario.sensitiveFraction);
    }

    if (const JsonValue* engine = v.find("engine")) {
        requireObject(*engine, "engine");
        config.engine.seed = static_cast<std::uint64_t>(getNumberOr(
            *engine, "seed", static_cast<double>(config.engine.seed)));
        config.engine.useProfiling = getBoolOr(
            *engine, "useProfiling", config.engine.useProfiling);
        config.engine.retentionMultiple =
            getNumberOr(*engine, "retentionMultiple",
                        config.engine.retentionMultiple);
        config.engine.maxRuntime = getNumberOr(
            *engine, "maxRuntime", config.engine.maxRuntime);
        // Explicit timeline config pins the sampler on or off (the
        // daemon normalizes its default before journaling, so replayed
        // create records always take this branch and reproduce the
        // original sampling cadence regardless of current flags/env).
        if (const JsonValue* timeline = engine->find("timeline")) {
            requireObject(*timeline, "timeline");
            config.engine.timeline.mode =
                getBoolOr(*timeline, "enabled", false)
                ? obs::TimelineConfig::Mode::On
                : obs::TimelineConfig::Mode::Off;
            config.engine.timeline.cadence = getNumberOr(
                *timeline, "cadence", config.engine.timeline.cadence);
            if (config.engine.timeline.cadence <= 0.0)
                fieldError("cadence", "must be positive");
        }
    }
    return config;
}

workload::JobSpec
parseJobSpec(const JsonValue& v)
{
    requireObject(v, "job spec");
    workload::JobSpec spec;
    spec.id = static_cast<sim::JobId>(getNumberOr(v, "id", 0.0));

    const std::string kind = getStringOr(v, "kind", "");
    if (kind.empty())
        fieldError("kind", "is required");
    if (!parseAppKind(kind, &spec.kind))
        throw ApiError{422, "unknown_app",
                       "unknown application kind \"" + kind + "\""};

    spec.arrival = getNumber(v, "arrival");
    if (spec.arrival < 0.0)
        fieldError("arrival", "must be >= 0");
    spec.coresIdeal = getNumberOr(v, "coresIdeal", spec.coresIdeal);
    if (spec.coresIdeal <= 0.0)
        fieldError("coresIdeal", "must be positive");
    spec.memoryPerCore =
        getNumberOr(v, "memoryPerCore", spec.memoryPerCore);
    spec.idealDuration =
        getNumberOr(v, "idealDuration", spec.idealDuration);
    spec.lcLoadRps = getNumberOr(v, "lcLoadRps", spec.lcLoadRps);
    spec.lcLifetime = getNumberOr(v, "lcLifetime", spec.lcLifetime);
    spec.lcQosUs = getNumberOr(v, "lcQosUs", spec.lcQosUs);

    if (const JsonValue* sensitivity = v.find("sensitivity")) {
        if (sensitivity->type != JsonValue::Type::Array ||
            sensitivity->array.size() != workload::kNumResources)
            fieldError("sensitivity",
                       "must be an array of " +
                           std::to_string(workload::kNumResources) +
                           " numbers");
        for (std::size_t i = 0; i < workload::kNumResources; ++i) {
            const JsonValue& c = sensitivity->array[i];
            if (c.type != JsonValue::Type::Number)
                fieldError("sensitivity", "must contain only numbers");
            spec.sensitivity[i] = c.number;
        }
    }
    return spec;
}

void
jobSpecJson(obs::JsonWriter& w, const workload::JobSpec& spec)
{
    w.beginObject();
    w.field("id", static_cast<std::uint64_t>(spec.id));
    w.field("kind", workload::toString(spec.kind));
    w.field("arrival", spec.arrival);
    w.field("coresIdeal", spec.coresIdeal);
    w.field("memoryPerCore", spec.memoryPerCore);
    w.field("idealDuration", spec.idealDuration);
    w.field("lcLoadRps", spec.lcLoadRps);
    w.field("lcLifetime", spec.lcLifetime);
    w.field("lcQosUs", spec.lcQosUs);
    w.key("sensitivity");
    w.beginArray();
    for (double c : spec.sensitivity)
        w.value(c);
    w.endArray();
    w.endObject();
}

void
sessionConfigJson(obs::JsonWriter& w, const SessionConfig& config)
{
    w.beginObject();
    w.field("id", config.id);
    w.field("strategy", core::toString(config.strategy));
    w.key("scenario");
    w.beginObject();
    w.field("kind", workload::toString(config.scenario.kind));
    w.field("duration", config.scenario.duration);
    w.field("seed", static_cast<std::uint64_t>(config.scenario.seed));
    w.field("loadScale", config.scenario.loadScale);
    w.field("sensitiveFraction", config.scenario.sensitiveFraction);
    w.endObject();
    w.key("engine");
    w.beginObject();
    w.field("seed", static_cast<std::uint64_t>(config.engine.seed));
    w.field("useProfiling", config.engine.useProfiling);
    w.field("retentionMultiple", config.engine.retentionMultiple);
    w.field("maxRuntime", config.engine.maxRuntime);
    // resolveEnabled(), not mode==On: an Auto-mode config serializes the
    // decision the engine actually froze at construction, so a journal
    // replayed under a different HCLOUD_TIMELINE still reproduces it.
    w.key("timeline");
    w.beginObject();
    w.field("enabled", config.engine.timeline.resolveEnabled());
    w.field("cadence", config.engine.timeline.cadence);
    w.endObject();
    w.endObject();
    w.endObject();
}

} // namespace hcloud::srv
