/**
 * @file
 * hcloud_serve: the provisioning-as-a-service daemon binary.
 *
 * Thin shell around srv::ServeApp: parse flags, start the app, block
 * until SIGTERM/SIGINT, drain gracefully. The signal path uses the
 * self-pipe trick (a signal handler may only write to a pipe; the main
 * thread blocks reading it) so shutdown is async-signal-safe.
 *
 * Usage:
 *   hcloud_serve [--port N] [--shards N] [--threads N]
 *                [--http-workers N] [--span-trace PATH] [--slow-ms N]
 *                [--data-dir DIR] [--fsync POLICY]
 *                [--fsync-interval-ms N] [--max-journal-mb N]
 *                [--max-sessions N] [--idle-evict-s N]
 *                [--max-advance N] [--timeline-cadence N]
 */

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "srv/serve_app.hpp"

namespace {

int gSignalPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 0;
    // Best-effort: a full pipe means a wake byte is already pending.
    [[maybe_unused]] ssize_t n = ::write(gSignalPipe[1], &byte, 1);
}

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--shards N] [--threads N]\n"
        "          [--http-workers N] [--span-trace PATH] "
        "[--slow-ms N]\n"
        "          [--data-dir DIR] [--fsync always|interval|never]\n"
        "          [--fsync-interval-ms N] [--max-journal-mb N]\n"
        "          [--max-sessions N] [--idle-evict-s N] "
        "[--max-advance N]\n"
        "          [--timeline-cadence N]\n"
        "\n"
        "  --port N          listen port (default 8080, 0 = ephemeral)\n"
        "  --shards N        tenant session strands (default 8)\n"
        "  --threads N       engine worker threads (default: "
        "HCLOUD_THREADS or hardware)\n"
        "  --http-workers N  HTTP connection workers (default 8)\n"
        "  --span-trace P    write request spans as JSONL to P\n"
        "                    (default: HCLOUD_SPANS, unset = off)\n"
        "  --slow-ms N       warn-log requests slower than N ms\n"
        "                    (default: HCLOUD_SLOW_MS, unset = off)\n"
        "  --data-dir D      journal sessions to D/<tenant>.journal and\n"
        "                    restore them on startup (default: off —\n"
        "                    sessions are lost on restart)\n"
        "  --fsync P         journal fsync policy: always, interval\n"
        "                    (default) or never\n"
        "  --fsync-interval-ms N  background flusher period under the\n"
        "                    interval policy (default 50)\n"
        "  --max-journal-mb N  per-tenant journal cap in MiB; writes\n"
        "                    past it shed 429 (default 64, 0 = "
        "unbounded)\n"
        "  --max-sessions N  live-session admission cap; creates past\n"
        "                    it shed 429 (default 0 = unlimited)\n"
        "  --idle-evict-s N  evict sessions idle N seconds to their\n"
        "                    journal, reviving lazily (default 0 = "
        "never;\n"
        "                    requires --data-dir)\n"
        "  --max-advance N   max virtual seconds one advance may cover\n"
        "                    (default 10000000, 0 = unbounded)\n"
        "  --timeline-cadence N  default cluster-state sampling period\n"
        "                    in virtual seconds for new sessions, served\n"
        "                    at GET /v1/tenants/{id}/timeline (default\n"
        "                    30, 0 = off by default)\n",
        argv0);
}

bool
parseCount(const char* value, long* out)
{
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0)
        return false;
    *out = parsed;
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    long port = 8080;
    hcloud::srv::ServeConfig config;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        auto next = [&](long* out) {
            if (i + 1 >= argc || !parseCount(argv[++i], out)) {
                std::fprintf(stderr, "serve: %s requires a number\n",
                             arg);
                return false;
            }
            return true;
        };
        long value = 0;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strcmp(arg, "--port") == 0) {
            if (!next(&value) || value > 65535)
                return 2;
            port = value;
        } else if (std::strcmp(arg, "--shards") == 0) {
            if (!next(&value))
                return 2;
            config.shards = static_cast<std::size_t>(value);
        } else if (std::strcmp(arg, "--threads") == 0) {
            if (!next(&value))
                return 2;
            config.threads = static_cast<std::size_t>(value);
        } else if (std::strcmp(arg, "--http-workers") == 0) {
            if (!next(&value) || value == 0)
                return 2;
            config.httpWorkers = static_cast<std::size_t>(value);
        } else if (std::strcmp(arg, "--span-trace") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "serve: --span-trace requires a path\n");
                return 2;
            }
            config.spanPath = argv[++i];
        } else if (std::strcmp(arg, "--slow-ms") == 0) {
            if (!next(&value))
                return 2;
            config.slowMs = static_cast<double>(value);
        } else if (std::strcmp(arg, "--data-dir") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "serve: --data-dir requires a path\n");
                return 2;
            }
            config.journal.dataDir = argv[++i];
        } else if (std::strcmp(arg, "--fsync") == 0) {
            if (i + 1 >= argc ||
                !hcloud::srv::parseFsyncPolicy(argv[++i],
                                               &config.journal.fsync)) {
                std::fprintf(stderr,
                             "serve: --fsync requires always, interval "
                             "or never\n");
                return 2;
            }
        } else if (std::strcmp(arg, "--fsync-interval-ms") == 0) {
            if (!next(&value))
                return 2;
            config.journal.fsyncIntervalMs = static_cast<double>(value);
        } else if (std::strcmp(arg, "--max-journal-mb") == 0) {
            if (!next(&value))
                return 2;
            config.journal.maxBytesPerTenant =
                static_cast<std::uint64_t>(value) << 20;
        } else if (std::strcmp(arg, "--max-sessions") == 0) {
            if (!next(&value))
                return 2;
            config.limits.maxSessions = static_cast<std::size_t>(value);
        } else if (std::strcmp(arg, "--idle-evict-s") == 0) {
            if (!next(&value))
                return 2;
            config.limits.idleEvictSeconds = static_cast<double>(value);
        } else if (std::strcmp(arg, "--max-advance") == 0) {
            if (!next(&value))
                return 2;
            config.maxAdvance = static_cast<double>(value);
        } else if (std::strcmp(arg, "--timeline-cadence") == 0) {
            if (!next(&value))
                return 2;
            config.timelineCadence = static_cast<double>(value);
        } else {
            std::fprintf(stderr, "serve: unknown option %s\n", arg);
            usage(argv[0]);
            return 2;
        }
    }

    if (::pipe(gSignalPipe) != 0) {
        std::perror("serve: pipe");
        return 1;
    }
    struct sigaction action{};
    action.sa_handler = onSignal;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    hcloud::srv::ServeApp app(config);
    std::string error;
    if (!app.start(static_cast<std::uint16_t>(port), &error)) {
        std::fprintf(stderr, "serve: start failed: %s\n",
                     error.c_str());
        return 1;
    }
    std::printf("serve: listening http://127.0.0.1:%u/ "
                "(shards=%zu, http-workers=%zu)\n",
                app.boundPort(), config.shards, config.httpWorkers);
    if (!config.journal.dataDir.empty()) {
        const auto stats = app.sessions().lifecycleStats();
        std::printf("serve: journaling to %s (fsync=%s, restored %llu "
                    "session%s)\n",
                    config.journal.dataDir.c_str(),
                    hcloud::srv::toString(config.journal.fsync),
                    static_cast<unsigned long long>(stats.restored),
                    stats.restored == 1 ? "" : "s");
    }
    if (app.spans().enabled())
        std::printf("serve: span trace -> %s\n",
                    app.spans().sinkPath().c_str());
    if (app.slowMs() > 0.0)
        std::printf("serve: slow-request log at >= %.1f ms\n",
                    app.slowMs());
    if (config.timelineCadence > 0.0)
        std::printf("serve: timeline sampling every %.1f virtual "
                    "seconds (default)\n",
                    config.timelineCadence);
    else
        std::printf("serve: timeline sampling off by default\n");
    std::fflush(stdout);

    char byte;
    while (::read(gSignalPipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::printf("serve: draining...\n");
    std::fflush(stdout);
    app.stop();
    std::printf("serve: stopped\n");
    return 0;
}
