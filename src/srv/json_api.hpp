/**
 * @file
 * JSON request/response vocabulary of the hcloud serve API.
 *
 * Strictly-typed parsing: every field is checked for presence (where
 * required) and JSON type, and violations throw ApiError with an HTTP
 * status (400 malformed JSON, 422 wrong shape/unknown enum value) and a
 * machine-readable code — the daemon's handlers translate these into the
 * structured error body
 *
 *     {"error": {"code": "...", "message": "..."}}
 *
 * so malformed input is always a 4xx with a parseable explanation, never
 * a crash or a silent default (asserted in tests/test_srv_api.cpp).
 *
 * Serialization reuses obs::JsonWriter, whose double formatting is the
 * shortest round-trip form — a JobSpec serialized here and parsed back
 * is bit-identical, which the HTTP-vs-batch determinism test leans on.
 */

#ifndef HCLOUD_SRV_JSON_API_HPP
#define HCLOUD_SRV_JSON_API_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "core/types.hpp"
#include "obs/json.hpp"
#include "workload/job.hpp"
#include "workload/scenario.hpp"

namespace hcloud::srv {

/** API-level failure carrying the HTTP status to answer with. */
struct ApiError
{
    int status;          ///< HTTP status (400/404/409/422)
    std::string code;    ///< stable machine-readable identifier
    std::string message; ///< human-readable explanation
};

/** `{"error":{"code":...,"message":...}}`. */
std::string errorJson(std::string_view code, std::string_view message);

/** Everything needed to create one tenant session. */
struct SessionConfig
{
    /** Tenant id; empty = server assigns "t-<seq>". */
    std::string id;
    core::StrategyKind strategy = core::StrategyKind::HM;
    /** Scenario whose trace sizes the reserved pool (and whose seed +
     *  loadScale define the tenant's workload identity). */
    workload::ScenarioConfig scenario{};
    core::EngineConfig engine{};
};

// ---- Parsing (throws ApiError) -----------------------------------------

/** Parse a request body into a JSON value: 400 on malformed JSON. */
obs::JsonValue parseBody(std::string_view body);

/** 422 unless every enum/type constraint holds. */
SessionConfig parseSessionConfig(const obs::JsonValue& v);

/** 422 unless every enum/type constraint holds. */
workload::JobSpec parseJobSpec(const obs::JsonValue& v);

bool parseStrategyKind(const std::string& name, core::StrategyKind* out);
bool parseScenarioKind(const std::string& name,
                       workload::ScenarioKind* out);
bool parseAppKind(const std::string& name, workload::AppKind* out);

// ---- Serialization ------------------------------------------------------

/** JobSpec as a JSON object (round-trips bit-exactly via parseJobSpec). */
void jobSpecJson(obs::JsonWriter& w, const workload::JobSpec& spec);

/** SessionConfig as a JSON object (round-trips bit-exactly via
 *  parseSessionConfig) — the journal's "create" record payload. */
void sessionConfigJson(obs::JsonWriter& w, const SessionConfig& config);

} // namespace hcloud::srv

#endif // HCLOUD_SRV_JSON_API_HPP
