/**
 * @file
 * SessionJournal: per-tenant write-ahead command log for crash recovery.
 *
 * The daemon's durability unit is the API-level command stream, not the
 * engine state: because a session is a deterministic function of its
 * accepted commands (the PR 6 bit-identity contract between the HTTP
 * session path and the batch runner), journaling just three record kinds
 *
 *     {"v":1,"op":"create","config":{...}}   the session's SessionConfig
 *     {"v":1,"op":"submit","job":{...}}      every *accepted* JobSpec,
 *                                            with the resolved job id
 *     {"v":1,"op":"advance","to":T}          every explicit advance
 *
 * is enough to rebuild the session byte-for-byte — replayed decisions,
 * decision log and /report match the pre-crash session exactly
 * (tests/test_srv_journal.cpp). Records are JSONL appended to
 * `<data-dir>/<tenant>.journal` through the same obs::JsonWriter whose
 * double formatting round-trips bit-exactly, so a replayed JobSpec is
 * the JobSpec that was submitted.
 *
 * Write discipline: one write(2) per record (the tail of the file is
 * always a prefix of the record stream — a SIGKILL can at worst truncate
 * the final line, which loadJournal() drops with a structured warning),
 * fsync per the configured FsyncPolicy:
 *
 *   - Always:   fsync after every append, on the append path (survives
 *     power loss, pays the disk on every request);
 *   - Interval: appends only mark the journal dirty; the owning
 *     SessionManager's background flusher group-commits every dirty
 *     journal with one syncfs(2) per fsyncIntervalMs (the default —
 *     survives process death immediately because the page cache holds
 *     completed writes, bounds data-at-risk on kernel crash to about
 *     one interval, and keeps disk syncs off the request strands
 *     entirely at constant syscall cost per pass);
 *   - Never:    no fsync until close (process-death durability only).
 *
 * Extents are fallocate'd a chunk ahead (KEEP_SIZE) so the per-append
 * write(2) never pays block allocation; unused preallocation is
 * trimmed on clean close.
 *
 * Appends happen on the session's shard strand (EngineSession owns the
 * journal and appends right after the engine op succeeds), so the
 * journal order IS the execution order without any extra locking.
 * flushIfDirty() is the one cross-thread entry point (flusher thread,
 * while the strand may be appending): fsyncing concurrently with
 * write(2) is kernel-safe, dirty is an atomic flag set after the write
 * lands, and the flusher keeps the session alive via shared_ptr so the
 * fd cannot be closed under it (a failed append poisons the journal
 * but deliberately leaves the fd open until destruction).
 *
 * Observability: appends and fsyncs publish counters and an fsync
 * latency histogram into obs::ProcessMetrics and emit "journal.append" /
 * "journal.fsync" spans that join the active request trace; replay emits
 * "journal.replay".
 */

#ifndef HCLOUD_SRV_SESSION_JOURNAL_HPP
#define HCLOUD_SRV_SESSION_JOURNAL_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/process_metrics.hpp"
#include "srv/json_api.hpp"
#include "workload/job.hpp"

namespace hcloud::srv {

/** When journal appends reach the disk platter. */
enum class FsyncPolicy
{
    Always,   ///< fsync every append, on the append path
    Interval, ///< background flusher fdatasyncs dirty journals per interval
    Never,    ///< no fsync until close
};

const char* toString(FsyncPolicy policy);
/** Parse "always" / "interval" / "never"; false on anything else. */
bool parseFsyncPolicy(const std::string& name, FsyncPolicy* out);

/** Journal knobs, shared by every tenant journal of one daemon. */
struct JournalConfig
{
    /** Journal directory; empty = journaling (and durability) off. */
    std::string dataDir;
    FsyncPolicy fsync = FsyncPolicy::Interval;
    /** Interval policy: minimum wall-clock spacing between fsyncs. */
    double fsyncIntervalMs = 50.0;
    /** Per-tenant journal size cap in bytes; growing past it sheds the
     *  tenant's writes with a structured 429 (0 = unbounded). */
    std::uint64_t maxBytesPerTenant = 64ull << 20;

    bool enabled() const { return !dataDir.empty(); }
};

/** One replayable journal record. */
struct JournalRecord
{
    enum class Op
    {
        Create,
        Submit,
        Advance,
    };

    Op op = Op::Create;
    SessionConfig config;   ///< Create
    workload::JobSpec job;  ///< Submit
    double to = 0.0;        ///< Advance
};

/** Result of reading one journal file back. */
struct JournalLoad
{
    /** False when the file could not be opened/read at all. */
    bool ok = false;
    std::string error;
    std::vector<JournalRecord> records;
    /** File offset just past the last valid record; the corrupt tail
     *  (if any) starts here and should be truncated before appending. */
    std::uint64_t validBytes = 0;
    /** Trailing lines dropped as truncated or corrupt. */
    std::size_t droppedLines = 0;
};

/**
 * One tenant's append-only command log. Appends are strand-serialized
 * by the owning EngineSession; flushIfDirty() and the stats reads
 * (bytes/appends/fsyncs) are safe from any thread, so the background
 * flusher and /statusz can run against a journal that is being
 * appended to.
 */
class SessionJournal
{
  public:
    /** `<dataDir>/<tenant>.journal`. */
    static std::string pathFor(const std::string& dataDir,
                               const std::string& tenant);

    /** Delete the tenant's journal file (missing file is not an error).
     *  @return false on any other unlink failure. */
    static bool removeFile(const std::string& dataDir,
                           const std::string& tenant);

    /**
     * Open the tenant's journal for appending. @p truncate starts a
     * fresh log (tenant creation); false resumes an existing one
     * (restore/revival — the caller already replayed its records).
     * Check ok() before use; a failed open leaves an inert journal.
     */
    SessionJournal(const JournalConfig& config, std::string tenant,
                   bool truncate,
                   obs::ProcessMetrics& metrics =
                       obs::ProcessMetrics::instance());

    /** Flushes (policy-independent fsync) and closes. */
    ~SessionJournal();

    SessionJournal(const SessionJournal&) = delete;
    SessionJournal& operator=(const SessionJournal&) = delete;

    bool ok() const
    {
        return fd_ >= 0 && !poisoned_.load(std::memory_order_acquire);
    }
    const std::string& error() const { return error_; }
    const std::string& path() const { return path_; }
    const std::string& tenant() const { return tenant_; }

    /** @throws ApiError 503 journal_unavailable on write failure. */
    void appendCreate(const SessionConfig& config);
    void appendSubmit(const workload::JobSpec& spec);
    void appendAdvance(double to);

    /** Current size is at/over the per-tenant cap. */
    bool overQuota() const
    {
        return config_.maxBytesPerTenant != 0 &&
               bytes() >= config_.maxBytesPerTenant;
    }

    /** Force an fsync now (eviction and close call this). */
    void sync();

    /**
     * fdatasync iff appends landed since the last flush. Thread-safe
     * against concurrent appends. @return true if it synced.
     */
    bool flushIfDirty();

    /**
     * Group commit for the Interval flusher: clear every dirty flag,
     * then make all the journals' writes durable with ONE syncfs(2) on
     * the shared data-dir filesystem instead of one fdatasync per
     * journal — constant syscall cost per pass regardless of tenant
     * count (syncfs also flushes unrelated dirty data on that
     * filesystem, an acceptable superset of the durability promise).
     * Thread-safe against concurrent appends.
     * @return the number of dirty journals covered.
     */
    static std::size_t
    syncBatch(const std::vector<SessionJournal*>& journals);

    std::uint64_t bytes() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }
    std::uint64_t appends() const
    {
        return appends_.load(std::memory_order_relaxed);
    }
    std::uint64_t fsyncs() const
    {
        return fsyncs_.load(std::memory_order_relaxed);
    }

  private:
    void append(const std::string& line);
    void recordFsync(double seconds);
    void preallocate();

    JournalConfig config_;
    std::string tenant_;
    std::string path_;
    std::string error_;
    obs::ProcessMetrics& metrics_;
    // Series resolved once at open: the registry lookup (sanitize +
    // lock + map find) is too slow for the per-append hot path.
    obs::ProcessCounter* appendsTotal_ = nullptr;
    obs::ProcessCounter* appendBytesTotal_ = nullptr;
    obs::ProcessCounter* writeFailuresTotal_ = nullptr;
    obs::ProcessCounter* fsyncsTotal_ = nullptr;
    obs::ProcessHistogram* fsyncSeconds_ = nullptr;
    // fd_ is written in the ctor (before the journal is shared) and
    // closed only in the dtor (exclusive: the flusher pins the owning
    // session via shared_ptr), so concurrent append/flush never race
    // on the descriptor itself. A failed write poisons the journal
    // instead of closing the fd early.
    int fd_ = -1;
    /** Extents preallocated up to here (ctor + strand-side appends
     *  only); logical size stays bytes_. */
    std::uint64_t preallocEnd_ = 0;
    std::atomic<bool> poisoned_{false};
    std::atomic<bool> dirty_{false}; ///< bytes written since last fsync
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> appends_{0};
    std::atomic<std::uint64_t> fsyncs_{0};
};

/**
 * Read a journal file back into records. Tolerant by construction: a
 * truncated or corrupt tail (the worst a SIGKILL mid-write can do) is
 * dropped and reported via droppedLines/validBytes, never a crash. A
 * load whose first record is not a matching "create" is reported
 * through ok=false/error by the caller's validation, not here.
 */
JournalLoad loadJournal(const std::string& path);

/** Tenant ids of every `*.journal` in @p dataDir, sorted by name. */
std::vector<std::string> listJournals(const std::string& dataDir);

/** mkdir -p for the journal directory; false (with errno set) when a
 *  component can't be created. An existing directory is success. */
bool ensureDataDir(const std::string& dataDir);

/**
 * Valid tenant id: 1..64 chars of [A-Za-z0-9_.-], not starting with
 * '.' or '-'. Enforced at creation so a tenant id is always a safe
 * journal file name, metric label and URL segment.
 */
bool validTenantId(const std::string& id);

} // namespace hcloud::srv

#endif // HCLOUD_SRV_SESSION_JOURNAL_HPP
