#include "srv/serve_app.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>
#include <vector>

#include <unistd.h>

#include "exp/report_json.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/prom_text.hpp"
#include "obs/timeline.hpp"
#include "srv/json_api.hpp"

namespace hcloud::srv {

namespace {

/** Route handler with ApiError -> structured 4xx translation. */
template <typename Fn>
HttpServer::Handler
api(Fn fn)
{
    return [fn = std::move(fn)](const HttpRequest& request) {
        try {
            return fn(request);
        } catch (const ApiError& e) {
            return HttpResponse::json(e.status,
                                      errorJson(e.code, e.message));
        }
    };
}

void
decisionJson(obs::JsonWriter& w, const DecisionRecord& d)
{
    w.beginObject();
    w.field("time", d.time);
    w.field("job", static_cast<std::uint64_t>(d.job));
    w.field("reason", obs::toString(d.reason));
    w.field("value", d.value);
    if (!d.detail.empty())
        w.field("detail", d.detail);
    w.endObject();
}

/** Span sink path: explicit config wins, then HCLOUD_SPANS. */
obs::SpanTracerConfig
spanConfig(const ServeConfig& config)
{
    obs::SpanTracerConfig sc;
    sc.sinkPath = config.spanPath;
    if (sc.sinkPath.empty()) {
        if (const char* env = std::getenv("HCLOUD_SPANS"))
            sc.sinkPath = env;
    }
    return sc;
}

/** Response bound of GET .../timeline: at most this many samples per
 *  call; clients page with the returned nextSince cursor. */
constexpr std::size_t kMaxTimelineSamples = 2048;

/** Find query parameter @p name in "k=v&k=v"; false when absent. */
bool
queryParam(const std::string& query, std::string_view name,
           std::string* out)
{
    std::size_t pos = 0;
    while (pos <= query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string_view pair(query.data() + pos, amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
            out->assign(pair.substr(eq + 1));
            return true;
        }
        pos = amp + 1;
    }
    return false;
}

/** Strict full-token u64 query parameter with a minimum; 422 on any
 *  malformed, signed or out-of-range value. */
std::uint64_t
queryU64(const HttpRequest& request, std::string_view name,
         std::uint64_t fallback, std::uint64_t minValue)
{
    std::string raw;
    if (!queryParam(request.query, name, &raw))
        return fallback;
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
    if (raw.empty() || raw[0] == '-' || raw[0] == '+' ||
        end != raw.c_str() + raw.size() || errno == ERANGE ||
        value < minValue)
        throw ApiError{422, "invalid_query",
                       "query parameter \"" + std::string(name) +
                           "\" must be an integer >= " +
                           std::to_string(minValue)};
    return static_cast<std::uint64_t>(value);
}

/** Slow threshold: explicit config wins, then HCLOUD_SLOW_MS. */
double
resolveSlowMs(double configured)
{
    if (configured > 0.0)
        return configured;
    if (const char* env = std::getenv("HCLOUD_SLOW_MS"))
        return std::atof(env);
    return 0.0;
}

} // namespace

HttpServerConfig
ServeApp::makeServerConfig(const ServeConfig& config)
{
    HttpServerConfig http;
    http.workers = config.httpWorkers;
    http.maxPendingConnections = config.maxPendingConnections;
    // `this` outlives server_ (declared last), and onRequest only fires
    // while the server runs, so the capture is safe.
    http.spans = &spans_;
    http.onRequest = [this](const RequestSummary& summary) {
        observeRequest(summary);
    };
    // Transport-level failures (404/405/413/503/500) speak the same
    // structured-error JSON as the API handlers.
    http.errorResponse = [](int status, std::string_view message) {
        const char* code;
        switch (status) {
          case 400:
            code = "bad_request";
            break;
          case 404:
            code = "not_found";
            break;
          case 405:
            code = "method_not_allowed";
            break;
          case 408:
            code = "timeout";
            break;
          case 413:
            code = "body_too_large";
            break;
          case 503:
            code = "overloaded";
            break;
          default:
            code = "internal_error";
            break;
        }
        return HttpResponse::json(status, errorJson(code, message));
    };
    return http;
}

ServeApp::ServeApp(ServeConfig config, obs::ProcessMetrics& metrics)
    : metrics_(metrics), spans_(spanConfig(config)),
      status_(config.statusRequests),
      slowMs_(resolveSlowMs(config.slowMs)),
      maxAdvance_(config.maxAdvance),
      timelineCadence_(config.timelineCadence),
      startNs_(obs::SpanTracer::nowNs()), pool_(config.threads),
      sessions_(pool_, config.shards, config.journal, config.limits,
                metrics_),
      server_(makeServerConfig(config))
{
    routes();
    metrics_
        .gauge("hcloud_spans_enabled",
               "1 when span tracing has an open sink")
        .set(spans_.enabled() ? 1.0 : 0.0);
    // Replay-restore every journaled tenant before the server can be
    // started: a restarted daemon answers its first request with every
    // pre-crash session already rebuilt.
    sessions_.restoreAll();
}

ServeApp::~ServeApp()
{
    stop();
}

bool
ServeApp::start(std::uint16_t port, std::string* error)
{
    return server_.start(port, error);
}

void
ServeApp::stop()
{
    // Transport first (no new requests), then let the shards drain any
    // work already accepted. SessionManager's destructor drains again,
    // so stop() + destruction is safe in either order.
    server_.stop();
    spans_.flush();
}

void
ServeApp::observeRequest(const RequestSummary& summary)
{
    const double totalSec =
        static_cast<double>(summary.stages.totalNs()) / 1e9;
    metrics_
        .histogram("hcloud_http_request_seconds",
                   "Request wall time per route",
                   {{"route", summary.route},
                    {"method", summary.method}})
        .observe(totalSec);
    const std::pair<const char*, std::uint64_t> stages[] = {
        {"read", summary.stages.readNs},
        {"route", summary.stages.routeNs},
        {"handle", summary.stages.handleNs},
        {"write", summary.stages.writeNs},
    };
    for (const auto& [stage, ns] : stages) {
        metrics_
            .histogram("hcloud_http_stage_seconds",
                       "Request wall time per processing stage",
                       {{"stage", stage}})
            .observe(static_cast<double>(ns) / 1e9);
    }
    metrics_
        .counter("hcloud_http_responses_total",
                 "Responses per route and status",
                 {{"route", summary.route},
                  {"status", std::to_string(summary.status)}})
        .inc();
    status_.add(summary);
    // Piggyback idle eviction on request traffic (rate-limited inside),
    // so durability needs no dedicated timer thread.
    sessions_.maybeSweep();

    const double totalMs = totalSec * 1e3;
    if (slowMs_ > 0.0 && totalMs >= slowMs_) {
        obs::Log::instance().warn(
            "slow_request", [&](obs::JsonWriter& w) {
                w.field("method", summary.method);
                w.field("route", summary.route);
                w.field("status", summary.status);
                if (summary.trace != 0)
                    w.field("trace", summary.trace);
                w.field("totalMs", totalMs);
                w.field("readMs",
                        static_cast<double>(summary.stages.readNs) / 1e6);
                w.field("routeMs",
                        static_cast<double>(summary.stages.routeNs) /
                            1e6);
                w.field("handleMs",
                        static_cast<double>(summary.stages.handleNs) /
                            1e6);
                w.field("writeMs",
                        static_cast<double>(summary.stages.writeNs) /
                            1e6);
            });
    }
}

void
ServeApp::routes()
{
    server_.route("POST", "/v1/tenants", api([this](auto& r) {
                      return handleCreateTenant(r);
                  }));
    server_.route("GET", "/v1/tenants", api([this](auto& r) {
                      return handleListTenants(r);
                  }));
    server_.route("POST", "/v1/tenants/*/jobs", api([this](auto& r) {
                      return handleSubmitJob(r);
                  }));
    server_.route("POST", "/v1/tenants/*/advance", api([this](auto& r) {
                      return handleAdvance(r);
                  }));
    server_.route("DELETE", "/v1/tenants/*", api([this](auto& r) {
                      return handleDeleteTenant(r);
                  }));
    server_.route("GET", "/v1/tenants/*/report", api([this](auto& r) {
                      return handleReport(r);
                  }));
    server_.route("GET", "/v1/tenants/*/timeline", api([this](auto& r) {
                      return handleTimeline(r);
                  }));
    server_.route("GET", "/metrics", [this](const HttpRequest&) {
        metrics_
            .counter("hcloud_exposition_scrapes_total",
                     "Scrapes served by the /metrics endpoint")
            .inc();
        HttpResponse response;
        response.contentType =
            "text/plain; version=0.0.4; charset=utf-8";
        response.body = obs::renderPromText(metrics_);
        return response;
    });
    server_.route("GET", "/healthz", [this](const HttpRequest& r) {
        return handleHealthz(r);
    });
    server_.route("GET", "/statusz", [this](const HttpRequest& r) {
        return handleStatusz(r);
    });
}

HttpResponse
ServeApp::handleCreateTenant(const HttpRequest& request)
{
    SessionConfig config =
        parseSessionConfig(parseBody(request.body));
    // Resolve the daemon-wide default (--timeline-cadence) into an
    // explicit per-session mode before create journals the config:
    // replaying the journal must reproduce the original sampling
    // stream even if the daemon restarts with different flags.
    if (config.engine.timeline.mode == obs::TimelineConfig::Mode::Auto) {
        config.engine.timeline.mode = timelineCadence_ > 0.0
            ? obs::TimelineConfig::Mode::On
            : obs::TimelineConfig::Mode::Off;
        if (timelineCadence_ > 0.0)
            config.engine.timeline.cadence = timelineCadence_;
    }
    const std::string id = sessions_.create(std::move(config));

    obs::JsonWriter w;
    w.beginObject();
    w.field("schemaVersion", exp::kReportSchemaVersion);
    w.field("tenant", id);
    w.field("sessions",
            static_cast<std::uint64_t>(sessions_.sessionCount()));
    w.endObject();
    return HttpResponse::json(201, w.take());
}

HttpResponse
ServeApp::handleListTenants(const HttpRequest&)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("tenants");
    w.beginArray();
    for (const std::string& id : sessions_.tenantIds())
        w.value(id);
    w.endArray();
    w.endObject();
    return HttpResponse::json(200, w.take());
}

HttpResponse
ServeApp::handleSubmitJob(const HttpRequest& request)
{
    const std::string& tenant = request.params[0];
    const workload::JobSpec spec =
        parseJobSpec(parseBody(request.body));

    obs::TimelineSample latest;
    bool haveLatest = false;
    const SubmitOutcome outcome = sessions_.with(
        tenant, [&spec, &latest, &haveLatest](EngineSession& s) {
            SubmitOutcome outcome = s.submitJob(spec);
            haveLatest = s.latestTimelineSample(&latest);
            return outcome;
        });
    if (haveLatest)
        sessions_.recordSimGauges(tenant, latest);

    switch (outcome.status) {
      case core::EngineRun::SubmitStatus::Accepted:
        break;
      case core::EngineRun::SubmitStatus::ArrivalInPast:
        throw ApiError{409, "arrival_in_past",
                       "arrival is before the session clock"};
      case core::EngineRun::SubmitStatus::DuplicateId:
        throw ApiError{409, "duplicate_job",
                       "job id " + std::to_string(outcome.id) +
                           " already exists"};
    }
    sessions_.countJob(tenant);
    sessions_.countDecisions(
        tenant, static_cast<std::uint64_t>(outcome.decisions.size()));

    obs::JsonWriter w;
    w.beginObject();
    w.field("job", static_cast<std::uint64_t>(outcome.id));
    w.field("state", outcome.state);
    w.key("decisions");
    w.beginArray();
    for (const DecisionRecord& d : outcome.decisions)
        decisionJson(w, d);
    w.endArray();
    w.endObject();
    return HttpResponse::json(200, w.take());
}

HttpResponse
ServeApp::handleAdvance(const HttpRequest& request)
{
    const std::string& tenant = request.params[0];
    const obs::JsonValue body = parseBody(request.body);
    const obs::JsonValue* to = body.find("to");
    if (!to || to->type != obs::JsonValue::Type::Number)
        throw ApiError{422, "invalid_field",
                       "field \"to\" must be a number"};
    // Validate BEFORE touching the strand: a non-finite target (1e309
    // overflows strtod to +inf) would make runUntil spin forever —
    // external-load processes self-reschedule — pinning the shard and
    // starving every tenant on it.
    if (!std::isfinite(to->number) || to->number < 0.0)
        throw ApiError{422, "invalid_field",
                       "field \"to\" must be a finite number >= 0"};

    obs::TimelineSample latest;
    bool haveLatest = false;
    const std::pair<sim::Time, std::size_t> advanced = sessions_.with(
        tenant,
        [t = to->number, maxAdvance = maxAdvance_, &latest,
         &haveLatest](EngineSession& s) {
            const sim::Time now = s.now();
            if (t < now)
                throw ApiError{
                    422, "clock_regression",
                    "field \"to\" (" + std::to_string(t) +
                        ") is behind the session clock (" +
                        std::to_string(now) +
                        "); virtual time is monotonic"};
            if (maxAdvance > 0.0 && t - now > maxAdvance)
                throw ApiError{
                    422, "invalid_field",
                    "field \"to\" advances " + std::to_string(t - now) +
                        "s past the session clock; the per-call "
                        "horizon is " +
                        std::to_string(maxAdvance) +
                        "s (--max-advance)"};
            const std::size_t before = s.decisions().size();
            s.advanceTo(t);
            haveLatest = s.latestTimelineSample(&latest);
            return std::pair<sim::Time, std::size_t>(
                s.now(), s.decisions().size() - before);
        });
    sessions_.countDecisions(
        tenant, static_cast<std::uint64_t>(advanced.second));
    // Live simulation gauges track the newest cluster snapshot, so a
    // /metrics scrape between advances shows the tenant's current
    // utilization/quality/cost without touching its strand.
    if (haveLatest)
        sessions_.recordSimGauges(tenant, latest);

    obs::JsonWriter w;
    w.beginObject();
    w.field("now", advanced.first);
    w.field("decisions",
            static_cast<std::uint64_t>(advanced.second));
    w.endObject();
    return HttpResponse::json(200, w.take());
}

HttpResponse
ServeApp::handleDeleteTenant(const HttpRequest& request)
{
    const std::string& tenant = request.params[0];
    sessions_.erase(tenant);
    obs::JsonWriter w;
    w.beginObject();
    w.field("tenant", tenant);
    w.field("deleted", true);
    w.field("sessions",
            static_cast<std::uint64_t>(sessions_.sessionCount()));
    w.endObject();
    return HttpResponse::json(200, w.take());
}

HttpResponse
ServeApp::handleReport(const HttpRequest& request)
{
    const std::string& tenant = request.params[0];
    std::string report = sessions_.with(
        tenant, [](EngineSession& s) { return s.reportJson(); });
    return HttpResponse::json(200, std::move(report));
}

HttpResponse
ServeApp::handleTimeline(const HttpRequest& request)
{
    const std::string& tenant = request.params[0];
    const std::uint64_t since = queryU64(request, "since", 0, 0);
    const std::uint64_t stride = queryU64(request, "stride", 1, 1);

    struct View
    {
        bool enabled = false;
        double cadence = 0.0;
        std::uint64_t recorded = 0;
        std::uint64_t dropped = 0;
        std::vector<obs::TimelineSample> samples;
    };
    const View view =
        sessions_.with(tenant, [since, stride](EngineSession& s) {
            View v;
            v.enabled = s.timeline().enabled();
            v.cadence = s.timeline().config().cadence;
            v.recorded = s.timeline().recordedCount();
            v.dropped = s.timeline().droppedCount();
            v.samples =
                s.timelineSince(since, stride, kMaxTimelineSamples);
            return v;
        });

    obs::JsonWriter w;
    w.beginObject();
    w.field("tenant", tenant);
    w.field("enabled", view.enabled);
    w.field("cadence", view.cadence);
    w.field("recorded", view.recorded);
    // dropped = samples evicted from the ring before a sink (sessions
    // have none) saw them; a cursor older than recorded-dropped can no
    // longer be served exactly.
    w.field("dropped", view.dropped);
    w.field("nextSince", view.samples.empty()
                ? since
                : view.samples.back().seq + 1);
    w.key("samples");
    w.beginArray();
    for (const obs::TimelineSample& s : view.samples) {
        w.beginObject();
        obs::timelineSampleJson(w, s);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return HttpResponse::json(200, w.take());
}

HttpResponse
ServeApp::handleHealthz(const HttpRequest&)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("status", "ok");
    w.field("service", "hcloud_serve");
    w.field("schemaVersion", exp::kReportSchemaVersion);
    w.field("pid", static_cast<std::int64_t>(::getpid()));
#if defined(__VERSION__)
    w.field("compiler", __VERSION__);
#endif
    w.field("uptimeSeconds",
            static_cast<double>(obs::SpanTracer::nowNs() - startNs_) /
                1e9);
    w.field("sessions",
            static_cast<std::uint64_t>(sessions_.sessionCount()));
    w.field("spans", spans_.enabled());
    const JournalConfig& journal = sessions_.journalConfig();
    w.field("journal", journal.enabled());
    w.field("dataDir", journal.dataDir);
    w.field("fsync", toString(journal.fsync));
    w.field("maxSessions",
            static_cast<std::uint64_t>(sessions_.limits().maxSessions));
    w.field("timelineCadence", timelineCadence_);
    w.endObject();
    return HttpResponse::json(200, w.take());
}

HttpResponse
ServeApp::handleStatusz(const HttpRequest&)
{
    StatuszInfo info;
    info.uptimeSeconds =
        static_cast<double>(obs::SpanTracer::nowNs() - startNs_) / 1e9;
    info.requestsServed = server_.requestsServed();
    info.connectionsRejected = server_.connectionsRejected();
    info.spansEnabled = spans_.enabled();
    info.spanPath = spans_.sinkPath();
    info.spansRecorded = spans_.recorded();
    info.slowMs = slowMs_;
    info.timelineCadence = timelineCadence_;
    const JournalConfig& journal = sessions_.journalConfig();
    info.journalEnabled = journal.enabled();
    info.dataDir = journal.dataDir;
    info.fsyncPolicy = toString(journal.fsync);
    info.maxSessions = sessions_.limits().maxSessions;
    info.idleEvictSeconds = sessions_.limits().idleEvictSeconds;
    info.lifecycle = sessions_.lifecycleStats();
    info.sessions = sessions_.status();
    info.queueDepths = sessions_.queueDepths();
    info.tasksExecuted = sessions_.tasksExecuted();
    info.slowest = status_.slowest(10);
    return HttpResponse::text(200, renderStatusz(info));
}

} // namespace hcloud::srv
