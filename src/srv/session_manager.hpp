/**
 * @file
 * SessionManager: the daemon's tenant registry + shard serialization.
 *
 * Each tenant session is pinned at creation to one strand of a
 * runtime::ShardedExecutor (shard = creation sequence % shards), and
 * every touch of the session — construction, job submission, advancing,
 * reporting — runs through with() on that strand. One tenant's engine is
 * therefore strictly serialized (no locks inside the simulation) while
 * different tenants on different shards run concurrently on the shared
 * ThreadPool; N HTTP workers hammering one tenant serialize cleanly
 * (asserted under TSan in tests/test_srv_session.cpp).
 *
 * Per-tenant observability lands in an obs::ProcessMetrics registry as
 * labeled families:
 *   - hcloud_serve_sessions             (gauge, process-wide)
 *   - hcloud_serve_jobs_submitted_total {tenant=...}
 *   - hcloud_serve_decisions_total      {tenant=...}
 * so a /metrics scrape shows every tenant as its own series.
 */

#ifndef HCLOUD_SRV_SESSION_MANAGER_HPP
#define HCLOUD_SRV_SESSION_MANAGER_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/process_metrics.hpp"
#include "runtime/sharded_executor.hpp"
#include "srv/engine_session.hpp"

namespace hcloud::srv {

/** Owns every tenant session and serializes access per shard. */
class SessionManager
{
  public:
    SessionManager(runtime::ThreadPool& pool, std::size_t shards,
                   obs::ProcessMetrics& metrics =
                       obs::ProcessMetrics::instance());

    /** Waits for all in-flight session work before returning. */
    ~SessionManager();

    SessionManager(const SessionManager&) = delete;
    SessionManager& operator=(const SessionManager&) = delete;

    /**
     * Create a session; empty config.id gets "t-<seq>" assigned. The
     * (heavy) engine construction runs on the calling thread — the
     * session is only published (and thus reachable by other threads)
     * once fully built, so no half-initialized engine is ever visible.
     * @return the tenant id.
     * @throws ApiError 409 when the id already exists.
     */
    std::string create(SessionConfig config);

    /**
     * Run @p fn against tenant @p id's session on its shard, blocking
     * for the result. Whatever @p fn throws propagates to the caller.
     * @throws ApiError 404 for unknown tenants.
     */
    template <typename Fn>
    auto with(const std::string& id, Fn&& fn)
        -> decltype(fn(std::declval<EngineSession&>()))
    {
        Entry* entry = find(id);
        if (!entry)
            throw ApiError{404, "unknown_tenant",
                           "no tenant \"" + id + "\""};
        EngineSession* session = entry->session.get();
        return executor_.call(entry->shard,
                              [&fn, session] { return fn(*session); });
    }

    /** Count one submitted job for @p id (labeled series). */
    void countJob(const std::string& id);
    /** Count @p n observed decisions for @p id (labeled series). */
    void countDecisions(const std::string& id, std::uint64_t n);

    std::size_t sessionCount() const;
    /** All tenant ids, in creation order. */
    std::vector<std::string> tenantIds() const;
    std::size_t shards() const { return executor_.shards(); }

    /** One /statusz row per tenant, from lock-free LiveStats reads. */
    struct SessionStatus
    {
        std::string id;
        std::size_t shard = 0;
        bool ready = false; ///< false while still constructing
        double now = 0.0;
        std::uint64_t jobs = 0;
        std::uint64_t finished = 0;
        std::uint64_t decisions = 0;
    };

    /**
     * Snapshot of every session, in creation order. Never hops onto a
     * strand — reads EngineSession::LiveStats atomics under the map
     * lock, so the status page works even with every shard busy.
     */
    std::vector<SessionStatus> status() const;

    /** Queued + running tasks per strand (see ShardedExecutor). */
    std::vector<std::size_t> queueDepths() const
    {
        return executor_.queueDepths();
    }

    /** Strand tasks completed since startup. */
    std::uint64_t tasksExecuted() const
    {
        return executor_.tasksExecuted();
    }

  private:
    struct Entry
    {
        std::unique_ptr<EngineSession> session;
        std::size_t shard = 0;
    };

    Entry* find(const std::string& id);

    runtime::ShardedExecutor executor_;
    obs::ProcessMetrics& metrics_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> sessions_;
    std::vector<std::string> order_; ///< creation order for listing
    std::uint64_t nextSeq_ = 0;
};

} // namespace hcloud::srv

#endif // HCLOUD_SRV_SESSION_MANAGER_HPP
