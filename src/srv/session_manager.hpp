/**
 * @file
 * SessionManager: the daemon's tenant registry + shard serialization +
 * session lifecycle (durability, eviction, deletion, admission).
 *
 * Each tenant session is pinned at creation to one strand of a
 * runtime::ShardedExecutor (shard = creation sequence % shards), and
 * every touch of the session — construction, job submission, advancing,
 * reporting — runs through with() on that strand. One tenant's engine is
 * therefore strictly serialized (no locks inside the simulation) while
 * different tenants on different shards run concurrently on the shared
 * ThreadPool; N HTTP workers hammering one tenant serialize cleanly
 * (asserted under TSan in tests/test_srv_session.cpp).
 *
 * Lifecycle (all journal-backed behavior is off when JournalConfig is
 * disabled, i.e. no --data-dir):
 *
 *  - create: claims the id (validated as a safe filename/label), checks
 *    the session-count admission cap (sweeping idle sessions first),
 *    builds the engine, opens a fresh journal and writes the "create"
 *    record before the session is reachable;
 *  - restoreAll: at startup, replays every journal in the data dir
 *    through the ordinary EngineSession path — deterministic replay
 *    makes the restored session byte-identical to the pre-crash one;
 *  - erase: removes the session, its journal file and its per-tenant
 *    metric series (a strand barrier drains in-flight work first);
 *  - sweepIdle + lazy revival: sessions idle past the threshold drop
 *    their in-memory engine (journal synced first); the next touch
 *    rebuilds them from the journal on their own strand.
 *
 * Per-tenant observability lands in an obs::ProcessMetrics registry as
 * labeled families:
 *   - hcloud_serve_sessions             (gauge, process-wide)
 *   - hcloud_serve_jobs_submitted_total {tenant=...}
 *   - hcloud_serve_decisions_total      {tenant=...}
 *   - hcloud_sim_*                      {tenant=...} live simulation
 *     gauges (utilization, quality p50, queue length, spot price,
 *     accumulated cost, ...) refreshed from the newest timeline sample
 * so a /metrics scrape shows every tenant as its own series; deletion
 * and idle eviction retire the tenant's series so the page does not
 * leak labels.
 */

#ifndef HCLOUD_SRV_SESSION_MANAGER_HPP
#define HCLOUD_SRV_SESSION_MANAGER_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/process_metrics.hpp"
#include "runtime/sharded_executor.hpp"
#include "srv/engine_session.hpp"
#include "srv/session_journal.hpp"

namespace hcloud::srv {

/** Admission + eviction knobs (0 = unlimited / never). Lives at
 *  namespace scope so it is a complete type when used as a default
 *  argument inside SessionManager (GCC rejects `= {}` for a nested
 *  aggregate of a still-incomplete class). */
struct SessionLimits
{
    /** Max live (in-memory) sessions; past it creates shed 429. */
    std::size_t maxSessions = 0;
    /** Evict sessions idle this long (requires journaling, which
     *  revival depends on). */
    double idleEvictSeconds = 0.0;
};

/** Owns every tenant session and serializes access per shard. */
class SessionManager
{
  public:
    using Limits = SessionLimits;

    SessionManager(runtime::ThreadPool& pool, std::size_t shards,
                   JournalConfig journal = {}, Limits limits = {},
                   obs::ProcessMetrics& metrics =
                       obs::ProcessMetrics::instance());

    /** Waits for all in-flight session work before returning. */
    ~SessionManager();

    SessionManager(const SessionManager&) = delete;
    SessionManager& operator=(const SessionManager&) = delete;

    /**
     * Create a session; empty config.id gets "t-<seq>" assigned. The
     * (heavy) engine construction runs on the calling thread — the
     * session is only published (and thus reachable by other threads)
     * once fully built, so no half-initialized engine is ever visible.
     * With journaling on, the journal is opened fresh and the "create"
     * record is durable before the tenant answers its first request.
     * @return the tenant id.
     * @throws ApiError 409 duplicate, 422 invalid id, 429 at the
     * session cap, 503 when the journal cannot be opened.
     */
    std::string create(SessionConfig config);

    /**
     * Delete tenant @p id: unpublish it, drain its strand, unlink its
     * journal and retire its per-tenant metric series. In-flight
     * requests that already resolved the session finish against it
     * (shared_ptr); later ones get 404.
     * @throws ApiError 404 for unknown tenants.
     */
    void erase(const std::string& id);

    /**
     * Rebuild every journaled session found in the data dir by replay.
     * Call once at startup, before the HTTP server is reachable. A
     * journal whose tail is truncated/corrupt is truncated back to its
     * last valid record (structured warn); one that cannot be replayed
     * at all is skipped with a structured warn, never a crash.
     * @return the number of sessions restored.
     */
    std::size_t restoreAll();

    /**
     * Evict sessions idle past Limits::idleEvictSeconds: sync + drop
     * the in-memory engine, keep the journal for lazy revival on next
     * touch. No-op unless journaling and eviction are both enabled.
     * @return the number of sessions evicted.
     */
    std::size_t sweepIdle();

    /**
     * Run @p fn against tenant @p id's session on its shard, blocking
     * for the result. Whatever @p fn throws propagates to the caller.
     * An evicted session is revived from its journal first (on the
     * strand, so revival serializes with everything else).
     * @throws ApiError 404 for unknown tenants.
     */
    template <typename Fn>
    auto with(const std::string& id, Fn&& fn)
        -> decltype(fn(std::declval<EngineSession&>()))
    {
        const std::size_t shard = shardOf(id); // 404 when absent
        return executor_.call(shard, [this, &id, &fn] {
            std::shared_ptr<EngineSession> session = resolve(id);
            return fn(*session);
        });
    }

    /** Count one submitted job for @p id (labeled series). */
    void countJob(const std::string& id);
    /** Count @p n observed decisions for @p id (labeled series). */
    void countDecisions(const std::string& id, std::uint64_t n);

    /**
     * Refresh tenant @p id's live simulation gauges (the hcloud_sim_*
     * families, labeled {tenant=id}) from its newest timeline sample.
     * The daemon calls this after every operation that advances virtual
     * time; deletion and idle eviction retire the series
     * (removeSimGauges) so /metrics never leaks labels.
     */
    void recordSimGauges(const std::string& id,
                         const obs::TimelineSample& sample);

    std::size_t sessionCount() const;
    /** Sessions currently resident in memory (not evicted). */
    std::size_t liveCount() const;
    /** All tenant ids, in creation order. */
    std::vector<std::string> tenantIds() const;
    std::size_t shards() const { return executor_.shards(); }

    const JournalConfig& journalConfig() const { return journal_; }
    const Limits& limits() const { return limits_; }

    /** One /statusz row per tenant, from lock-free LiveStats reads. */
    struct SessionStatus
    {
        std::string id;
        std::size_t shard = 0;
        bool ready = false; ///< false while still constructing
        bool evicted = false;
        double now = 0.0;
        std::uint64_t jobs = 0;
        std::uint64_t finished = 0;
        std::uint64_t decisions = 0;
        std::uint64_t timelineSamples = 0;
        std::uint64_t journalBytes = 0;
    };

    /**
     * Snapshot of every session, in creation order. Never hops onto a
     * strand — reads EngineSession::LiveStats atomics under the map
     * lock, so the status page works even with every shard busy.
     */
    std::vector<SessionStatus> status() const;

    /** Durability/lifecycle counters for the /statusz panel. */
    struct LifecycleStats
    {
        std::uint64_t restored = 0;
        std::uint64_t evictions = 0;
        std::uint64_t revivals = 0;
        std::uint64_t deletes = 0;
        std::uint64_t admissionRejects = 0;
        std::uint64_t truncatedLines = 0;
    };

    LifecycleStats lifecycleStats() const;

    /** Queued + running tasks per strand (see ShardedExecutor). */
    std::vector<std::size_t> queueDepths() const
    {
        return executor_.queueDepths();
    }

    /** Strand tasks completed since startup. */
    std::uint64_t tasksExecuted() const
    {
        return executor_.tasksExecuted();
    }

    /**
     * Rate-limited idle-eviction trigger: runs sweepIdle() at most once
     * per idleEvictSeconds. The daemon calls this from its request
     * observer, so eviction needs no dedicated timer thread.
     */
    void maybeSweep();

  private:
    struct Entry
    {
        std::shared_ptr<EngineSession> session;
        std::size_t shard = 0;
        bool evicted = false;
        /** Last with()/create/revive touch (SpanTracer::nowNs). */
        std::uint64_t lastTouchNs = 0;
    };

    /** @throws ApiError 404; the shard of a (possibly evicted) id. */
    std::size_t shardOf(const std::string& id);

    /**
     * Strand-side session lookup: touches the idle clock, revives an
     * evicted session from its journal. @throws ApiError 404 (deleted
     * between routing and execution) or 409 (still initializing).
     */
    std::shared_ptr<EngineSession> resolve(const std::string& id);

    /** Replay one journal into a fresh session (no journal attached);
     *  throws ApiError on an unreplayable journal. */
    std::shared_ptr<EngineSession>
    replayJournal(const std::string& id, bool truncateCorruptTail);

    /** One flusher pass: fdatasync every live dirty journal. Pins each
     *  session via shared_ptr so fds cannot close underneath it. */
    void flushJournals();

    /** Retire every hcloud_sim_* series labeled {tenant=id}. */
    void removeSimGauges(const std::string& id);

    runtime::ShardedExecutor executor_;
    JournalConfig journal_;
    Limits limits_;
    obs::ProcessMetrics& metrics_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> sessions_;
    std::vector<std::string> order_; ///< creation order for listing
    std::uint64_t nextSeq_ = 0;
    std::size_t liveCount_ = 0; ///< non-evicted published sessions

    std::atomic<std::uint64_t> restored_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> revivals_{0};
    std::atomic<std::uint64_t> deletes_{0};
    std::atomic<std::uint64_t> admissionRejects_{0};
    std::atomic<std::uint64_t> truncatedLines_{0};
    std::atomic<std::uint64_t> lastSweepNs_{0};

    // Interval fsync policy runs on this thread (started only when
    // journaling is on with FsyncPolicy::Interval) so request strands
    // never pay a disk sync; see SessionJournal's write-discipline doc.
    std::thread flusher_;
    std::mutex flusherMutex_;
    std::condition_variable flusherCv_;
    bool stopFlusher_ = false;
};

} // namespace hcloud::srv

#endif // HCLOUD_SRV_SESSION_MANAGER_HPP
