#include "srv/engine_session.hpp"

#include <utility>

#include "cloud/provider_profile.hpp"
#include "exp/report_json.hpp"
#include "obs/span.hpp"
#include "workload/scenario.hpp"

namespace hcloud::srv {

namespace {

/**
 * RAII: stamp the engine tracer's active trace id from the current
 * thread-local span context for the duration of one session operation,
 * so every decision TraceEvent it records carries the wire request's
 * trace id. Restores the previous stamp (operations nest: submitJob
 * calls advanceTo).
 */
class ActiveTraceStamp
{
  public:
    explicit ActiveTraceStamp(obs::Tracer& tracer)
        : tracer_(tracer), prev_(tracer.activeTrace())
    {
        const obs::SpanContext ctx = obs::currentSpanContext();
        if (ctx.valid())
            tracer_.setActiveTrace(ctx.trace);
    }
    ~ActiveTraceStamp() { tracer_.setActiveTrace(prev_); }

    ActiveTraceStamp(const ActiveTraceStamp&) = delete;
    ActiveTraceStamp& operator=(const ActiveTraceStamp&) = delete;

  private:
    obs::Tracer& tracer_;
    std::uint64_t prev_;
};

/** Engine config with the tracing the session machinery requires. */
core::EngineConfig
sessionEngineConfig(core::EngineConfig config)
{
    // The decision log is fed by the onRecord observer (lossless, before
    // ring eviction), so the ring itself only needs to hold enough for
    // report debugging; keeping it small bounds per-tenant memory with
    // hundreds of concurrent sessions.
    config.trace.mode = obs::TraceConfig::Mode::On;
    config.trace.ringCapacity = 4096;
    // Per-run sinks make no sense for a long-lived session.
    config.trace.sinkPath.clear();
    config.trace.sinkStem.clear();
    // Freeze the timeline decision at construction: resolving Auto here
    // (against HCLOUD_TIMELINE) means the journaled create record —
    // which serializes the resolved mode — replays identically even
    // when the daemon restarts under a different environment.
    config.timeline.mode = config.timeline.resolveEnabled()
        ? obs::TimelineConfig::Mode::On
        : obs::TimelineConfig::Mode::Off;
    config.timeline.sinkPath.clear();
    config.timeline.sinkStem.clear();
    return config;
}

} // namespace

const char*
jobStateName(workload::JobState state)
{
    switch (state) {
      case workload::JobState::Pending:
        return "pending";
      case workload::JobState::Queued:
        return "queued";
      case workload::JobState::Waiting:
        return "waiting";
      case workload::JobState::Running:
        return "running";
      case workload::JobState::Completed:
        return "completed";
      case workload::JobState::Failed:
        return "failed";
    }
    return "?";
}

EngineSession::EngineSession(SessionConfig config)
    : config_(std::move(config)),
      trace_(workload::generateScenario(config_.scenario)),
      engine_(sessionEngineConfig(config_.engine),
              cloud::ProviderProfile::gce(),
              [this](core::EngineContext& ctx) {
                  return core::makeStrategy(config_.strategy, ctx);
              })
{
    engine_.tracer().setOnRecord([this](const obs::TraceEvent& event) {
        if (event.kind != obs::EventKind::Decision || event.job == 0)
            return;
        decisions_.push_back(DecisionRecord{event.time, event.job,
                                            event.reason, event.value,
                                            event.detail});
        // Mirror the decision into the request's span stream (the
        // strand restored the caller's binding), joining the virtual
        // and wall-clock worlds at the individual decision.
        if (obs::SpanTracer* st = obs::currentSpanTracer();
            st && st->enabled()) {
            const obs::SpanContext ctx = obs::currentSpanContext();
            if (ctx.valid()) {
                std::string detail = "job ";
                detail += std::to_string(event.job);
                detail += ' ';
                detail += obs::toString(event.reason);
                st->event(ctx.trace, ctx.span, "decision", event.time,
                          detail);
            }
        }
    });
    engine_.beginSession(trace_);
    updateLive();
}

void
EngineSession::checkQuota() const
{
    if (journal_ && journal_->overQuota())
        throw ApiError{429, "journal_quota_exceeded",
                       "tenant \"" + config_.id +
                           "\" journal is at its size cap (" +
                           std::to_string(journal_->bytes()) +
                           " bytes); delete the tenant or raise "
                           "--max-journal-mb"};
}

SubmitOutcome
EngineSession::submitJob(workload::JobSpec spec)
{
    obs::SpanScope span("engine.submit");
    ActiveTraceStamp stamp(engine_.tracer());
    checkQuota();
    SubmitOutcome outcome;
    if (spec.id == 0)
        spec.id = nextId_;
    outcome.id = spec.id;

    outcome.status = engine_.submit(spec);
    if (outcome.status != core::EngineRun::SubmitStatus::Accepted)
        return outcome;
    if (spec.id >= nextId_)
        nextId_ = spec.id + 1;
    // Journal the accepted spec with its resolved id so replay submits
    // the exact same job. The engine already accepted: an append failure
    // throws 503 but the in-memory session keeps the job — the journal
    // is poisoned from here on, so the divergence cannot reach disk.
    if (journal_)
        journal_->appendSubmit(spec);

    const std::size_t decisionsBefore = decisions_.size();
    // Make the arrival happen now: with profiling off the provisioning
    // decision lands synchronously; with profiling on it lands after the
    // profiling delay, observable via a later advance or the report.
    step(spec.arrival);
    for (std::size_t i = decisionsBefore; i < decisions_.size(); ++i) {
        if (decisions_[i].job == spec.id)
            outcome.decisions.push_back(decisions_[i]);
    }
    if (const workload::Job* job = engine_.job(spec.id))
        outcome.state = jobStateName(job->state);
    updateLive();
    return outcome;
}

bool
EngineSession::advanceTo(sim::Time t)
{
    obs::SpanScope span("engine.advance");
    ActiveTraceStamp stamp(engine_.tracer());
    checkQuota();
    if (!engine_.advanceTo(t))
        return false;
    if (journal_)
        journal_->appendAdvance(t);
    updateLive();
    return true;
}

void
EngineSession::step(sim::Time t)
{
    obs::SpanScope span("engine.advance");
    ActiveTraceStamp stamp(engine_.tracer());
    engine_.advanceTo(t);
    updateLive();
}

std::string
EngineSession::reportJson()
{
    obs::SpanScope span("engine.report");
    ActiveTraceStamp stamp(engine_.tracer());
    core::RunResult result =
        engine_.liveResult(workload::toString(config_.scenario.kind));
    // Zero the wall-clock telemetry: the report must be a pure function
    // of the command stream so a journal-replayed session reproduces it
    // byte-for-byte. eventsProcessed is deterministic and stays.
    result.telemetry.traceGenSec = 0.0;
    result.telemetry.setupSec = 0.0;
    result.telemetry.simLoopSec = 0.0;
    result.telemetry.finalizeSec = 0.0;
    result.telemetry.eventsPerSec = 0.0;

    obs::JsonWriter w;
    w.beginObject();
    w.field("schemaVersion", exp::kReportSchemaVersion);
    w.field("tenant", config_.id);
    w.field("strategy", core::toString(config_.strategy));
    w.field("scenario", workload::toString(config_.scenario.kind));
    w.field("now", engine_.now());
    w.field("jobs", static_cast<std::uint64_t>(engine_.jobCount()));
    w.field("finished",
            static_cast<std::uint64_t>(engine_.finishedCount()));
    w.key("run");
    exp::runResultJson(w, result);
    w.key("decisions");
    w.beginArray();
    for (const DecisionRecord& d : decisions_) {
        w.beginObject();
        w.field("time", d.time);
        w.field("job", static_cast<std::uint64_t>(d.job));
        w.field("reason", obs::toString(d.reason));
        w.field("value", d.value);
        if (!d.detail.empty())
            w.field("detail", d.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    updateLive();
    return w.take();
}

void
EngineSession::updateLive()
{
    live_.now.store(engine_.now(), std::memory_order_relaxed);
    live_.jobs.store(engine_.jobCount(), std::memory_order_relaxed);
    live_.finished.store(engine_.finishedCount(),
                         std::memory_order_relaxed);
    live_.decisions.store(decisions_.size(), std::memory_order_relaxed);
    live_.timelineSamples.store(engine_.timeline().recordedCount(),
                                std::memory_order_relaxed);
}

} // namespace hcloud::srv
