#include "srv/http_client.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hcloud::srv {

namespace {

bool
sendAll(int fd, std::string_view data)
{
    const char* p = data.data();
    std::size_t remaining = data.size();
    while (remaining > 0) {
        const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += static_cast<std::size_t>(n);
        remaining -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Recv append; returns false on EOF or error. */
bool
recvSome(int fd, std::string& buffer)
{
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        buffer.append(chunk, static_cast<std::size_t>(n));
        return true;
    }
}

} // namespace

HttpClient::HttpClient(std::uint16_t port)
    : port_(port)
{
}

HttpClient::~HttpClient()
{
    disconnect();
}

void
HttpClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
HttpClient::ensureConnected()
{
    if (fd_ >= 0)
        return true;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    // Latency benchmark: don't let Nagle batch tiny request writes.
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int rc;
    do {
        rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        disconnect();
        return false;
    }
    return true;
}

ClientResponse
HttpClient::get(std::string_view target)
{
    return request("GET", target, {}, {});
}

ClientResponse
HttpClient::post(std::string_view target, std::string_view body,
                 std::string_view contentType)
{
    return request("POST", target, body, contentType);
}

ClientResponse
HttpClient::del(std::string_view target)
{
    return request("DELETE", target, {}, {});
}

ClientResponse
HttpClient::request(std::string_view method, std::string_view target,
                    std::string_view body, std::string_view contentType)
{
    std::string wire;
    wire.reserve(128 + body.size());
    wire += method;
    wire += ' ';
    wire += target;
    wire += " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
    if (!body.empty() || method == "POST") {
        wire += "Content-Type: ";
        wire += contentType;
        wire += "\r\nContent-Length: ";
        wire += std::to_string(body.size());
        wire += "\r\n";
    }
    wire += "\r\n";
    wire += body;

    ClientResponse out;
    const bool hadConnection = fd_ >= 0;
    if (!ensureConnected())
        return out;
    if (tryOnce(wire, out))
        return out;
    // A stale keep-alive connection the server closed looks like an IO
    // failure; retry exactly once on a fresh connection.
    disconnect();
    if (!hadConnection || !ensureConnected())
        return out;
    tryOnce(wire, out);
    return out;
}

bool
HttpClient::tryOnce(const std::string& wire, ClientResponse& out)
{
    if (!sendAll(fd_, wire))
        return false;

    std::string buffer;
    std::size_t headEnd;
    while ((headEnd = buffer.find("\r\n\r\n")) == std::string::npos) {
        if (!recvSome(fd_, buffer))
            return false;
    }

    // Status line: "HTTP/1.1 200 OK".
    const std::size_t firstSpace = buffer.find(' ');
    if (firstSpace == std::string::npos || firstSpace > headEnd)
        return false;
    out.status = std::atoi(buffer.c_str() + firstSpace + 1);

    std::size_t contentLength = 0;
    bool close = false;
    std::size_t lineStart = buffer.find("\r\n") + 2;
    while (lineStart < headEnd) {
        std::size_t lineEnd = buffer.find("\r\n", lineStart);
        std::string line =
            buffer.substr(lineStart, lineEnd - lineStart);
        for (char& c : line)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (line.rfind("content-length:", 0) == 0)
            contentLength = std::strtoull(
                line.c_str() + std::strlen("content-length:"), nullptr,
                10);
        else if (line.rfind("connection:", 0) == 0 &&
                 line.find("close") != std::string::npos)
            close = true;
        lineStart = lineEnd + 2;
    }

    const std::size_t bodyStart = headEnd + 4;
    while (buffer.size() < bodyStart + contentLength) {
        if (!recvSome(fd_, buffer))
            return false;
    }
    out.body = buffer.substr(bodyStart, contentLength);
    out.ok = true;
    if (close)
        disconnect();
    return true;
}

} // namespace hcloud::srv
