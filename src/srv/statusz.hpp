/**
 * @file
 * /statusz: live human-readable daemon status.
 *
 * StatusBoard keeps a bounded ring of recent RequestSummary records
 * (fed from HttpServerConfig::onRequest) so /statusz can show the N
 * slowest recent requests with their stage breakdowns. renderStatusz
 * assembles the full page: uptime and request counters, the live
 * session table (from SessionManager::status(), lock-free per row),
 * strand queue depths (lock-free atomics) and the slow-request table.
 * Plain text on purpose — it's for humans mid-incident, curl and eyes,
 * while /metrics stays the machine surface.
 */

#ifndef HCLOUD_SRV_STATUSZ_HPP
#define HCLOUD_SRV_STATUSZ_HPP

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "srv/http_server.hpp"
#include "srv/session_manager.hpp"

namespace hcloud::srv {

/** Bounded ring of recent request summaries (thread-safe). */
class StatusBoard
{
  public:
    explicit StatusBoard(std::size_t capacity = 512);

    StatusBoard(const StatusBoard&) = delete;
    StatusBoard& operator=(const StatusBoard&) = delete;

    void add(const RequestSummary& summary);

    /** Requests recorded since startup (not bounded by the ring). */
    std::uint64_t total() const;

    /** Up to @p n slowest requests still in the ring, slowest first. */
    std::vector<RequestSummary> slowest(std::size_t n) const;

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::vector<RequestSummary> ring_;
    std::size_t next_ = 0; ///< ring insertion cursor
    std::uint64_t total_ = 0;
};

/** Everything renderStatusz needs, gathered by the caller. */
struct StatuszInfo
{
    double uptimeSeconds = 0.0;
    std::uint64_t requestsServed = 0;
    std::uint64_t connectionsRejected = 0;
    bool spansEnabled = false;
    std::string spanPath;
    std::uint64_t spansRecorded = 0;
    double slowMs = 0.0; ///< slow-request log threshold (0 = off)
    /** Default timeline sampling cadence in virtual seconds (0 = off). */
    double timelineCadence = 0.0;
    // Durability panel (journalEnabled false = everything below n/a).
    bool journalEnabled = false;
    std::string dataDir;
    std::string fsyncPolicy;
    std::size_t maxSessions = 0;    ///< 0 = unlimited
    double idleEvictSeconds = 0.0;  ///< 0 = never
    SessionManager::LifecycleStats lifecycle;
    std::vector<SessionManager::SessionStatus> sessions;
    std::vector<std::size_t> queueDepths;
    std::uint64_t tasksExecuted = 0;
    std::vector<RequestSummary> slowest;
};

/** Render the plain-text /statusz page. */
std::string renderStatusz(const StatuszInfo& info);

} // namespace hcloud::srv

#endif // HCLOUD_SRV_STATUSZ_HPP
