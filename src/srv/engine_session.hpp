/**
 * @file
 * EngineSession: one tenant's live provisioning simulation.
 *
 * Wraps core::EngineRun in session mode behind the vocabulary the daemon
 * speaks: jobs are submitted one at a time (each submission advances
 * virtual time to its arrival so the provisioning decision happens
 * before the HTTP response is written), reports are schema-versioned
 * JSON snapshots, and every Decision trace event with a subject job is
 * harvested into an append-only decision log via obs::Tracer's onRecord
 * observer (lossless — the ring buffer is kept tiny because the log,
 * not the ring, is the session's source of truth).
 *
 * Determinism contract: a session created with the same strategy,
 * scenario config and engine seed as a batch run (exp::Runner::runWith),
 * fed the jobs of the generated scenario trace in arrival order, emits a
 * decision log identical to the Decision events of the batch run's trace
 * — same times, jobs, reasons, values and details, bit for bit
 * (tests/test_srv_session.cpp). The engine-level argument for why the
 * different event-installation order cannot flip tie-breaks lives in
 * core/engine_run.hpp.
 *
 * Not thread-safe: the owning SessionManager serializes all access
 * through the session's shard strand.
 */

#ifndef HCLOUD_SRV_ENGINE_SESSION_HPP
#define HCLOUD_SRV_ENGINE_SESSION_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine_run.hpp"
#include "obs/timeline.hpp"
#include "srv/json_api.hpp"
#include "srv/session_journal.hpp"
#include "workload/trace.hpp"

namespace hcloud::srv {

/** One provisioning decision, as harvested from the trace stream. */
struct DecisionRecord
{
    sim::Time time = 0.0;
    sim::JobId job = 0;
    obs::DecisionReason reason = obs::DecisionReason::None;
    double value = 0.0;
    std::string detail;
};

/** Result of one job submission, after advancing to its arrival. */
struct SubmitOutcome
{
    core::EngineRun::SubmitStatus status =
        core::EngineRun::SubmitStatus::Accepted;
    /** The (possibly server-assigned) job id. */
    sim::JobId id = 0;
    /** Job state after the arrival fired ("pending", "running", ...). */
    std::string state;
    /** Decisions about this job that fired during the submission. */
    std::vector<DecisionRecord> decisions;
};

/** Lower-case JobState name for API responses. */
const char* jobStateName(workload::JobState state);

/** One tenant's live engine, steppable in virtual time. */
class EngineSession
{
  public:
    /**
     * Generates the scenario trace (reserved-pool sizing + workload
     * identity), wires the engine and enters session mode. Heavy — the
     * manager runs construction on the session's shard.
     */
    explicit EngineSession(SessionConfig config);

    const SessionConfig& config() const { return config_; }
    const std::string& id() const { return config_.id; }

    /** The generated scenario trace the strategy was sized from. */
    const workload::ArrivalTrace& trace() const { return trace_; }

    sim::Time now() const { return engine_.now(); }
    std::size_t jobCount() const { return engine_.jobCount(); }
    std::size_t finishedCount() const { return engine_.finishedCount(); }

    /**
     * Submit one job and advance virtual time to its arrival, so the
     * mapping decision (profiling off) or profiling kickoff happens
     * before returning. spec.id 0 = assign the next free id; explicit
     * ids must not repeat and arrivals must be >= now().
     *
     * When a journal is attached, the accepted spec (with its resolved
     * id) is appended after the engine accepts it; the internal advance
     * to spec.arrival is NOT separately journaled because replaying the
     * submit reproduces it.
     */
    SubmitOutcome submitJob(workload::JobSpec spec);

    /**
     * Run the session forward to virtual time @p t and journal the
     * explicit advance. @return false (nothing happens, nothing is
     * journaled) when t < now().
     */
    bool advanceTo(sim::Time t);

    /**
     * Adopt @p journal as this session's write-ahead log. The manager
     * attaches it after construction (fresh create) or after replay
     * (restore/revival), so replayed commands are never re-journaled.
     * Strand thread only, like every other mutation.
     */
    void attachJournal(std::unique_ptr<SessionJournal> journal)
    {
        journal_ = std::move(journal);
    }

    /** The attached journal, or nullptr (journaling off / replaying). */
    SessionJournal* journal() const { return journal_.get(); }

    /** Every job!=0 decision so far, in emission order. */
    const std::vector<DecisionRecord>& decisions() const
    {
        return decisions_;
    }

    /** The engine's cluster-state timeline (ring of samples). */
    const obs::Timeline& timeline() const { return engine_.timeline(); }

    /**
     * Ring-retained timeline samples with seq >= @p sinceSeq, keeping
     * every stride-th sample by absolute seq (so downsampling is stable
     * across cursors), capped at @p maxSamples. Chronological order.
     * Delegates to obs::Timeline::since — strand thread only.
     */
    std::vector<obs::TimelineSample>
    timelineSince(std::uint64_t sinceSeq, std::uint64_t stride,
                  std::size_t maxSamples) const
    {
        return engine_.timeline().since(sinceSeq, stride, maxSamples);
    }

    /** Most recent timeline sample; false when none recorded yet. */
    bool latestTimelineSample(obs::TimelineSample* out) const
    {
        return engine_.timeline().latest(out);
    }

    /**
     * Schema-versioned report: tenant identity, clock, job counts, the
     * full exp::runResultJson summary of a live (non-destructive) result
     * snapshot, and the decision log. Wall-clock telemetry fields
     * (setup/sim-loop seconds, events/sec) are zeroed so the report is a
     * pure function of the command stream — the byte-identity anchor for
     * journal replay (events_processed is deterministic and kept).
     */
    std::string reportJson();

    /**
     * Lock-free snapshot of the session's headline numbers, refreshed
     * after every strand operation. /statusz reads these atomics
     * directly instead of hopping onto the session's strand, so a
     * wedged or busy shard cannot wedge the status page.
     */
    struct LiveStats
    {
        std::atomic<double> now{0.0};
        std::atomic<std::uint64_t> jobs{0};
        std::atomic<std::uint64_t> finished{0};
        std::atomic<std::uint64_t> decisions{0};
        std::atomic<std::uint64_t> timelineSamples{0};
    };

    const LiveStats& liveStats() const { return live_; }

  private:
    /** Refresh live_ from the engine (strand thread only). */
    void updateLive();

    /** Advance without journaling (submitJob's internal step). */
    void step(sim::Time t);

    /** 429 journal_quota_exceeded when the journal is at its cap —
     *  checked BEFORE the engine op so engine and journal never
     *  diverge on a shed command. */
    void checkQuota() const;

    SessionConfig config_;
    workload::ArrivalTrace trace_;
    core::EngineRun engine_; ///< after trace_: beginSession needs it
    std::vector<DecisionRecord> decisions_;
    sim::JobId nextId_ = 1;
    std::unique_ptr<SessionJournal> journal_;
    LiveStats live_;
};

} // namespace hcloud::srv

#endif // HCLOUD_SRV_ENGINE_SESSION_HPP
