#include "srv/http_server.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/span.hpp"

namespace hcloud::srv {

namespace {

void
closeQuietly(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Full EINTR-safe send of @p data; SIGPIPE suppressed. */
bool
sendAll(int fd, std::string_view data)
{
    const char* p = data.data();
    std::size_t remaining = data.size();
    while (remaining > 0) {
        const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += static_cast<std::size_t>(n);
        remaining -= static_cast<std::size_t>(n);
    }
    return true;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

std::vector<std::string>
splitSegments(std::string_view path)
{
    std::vector<std::string> segments;
    std::size_t pos = 0;
    while (pos < path.size()) {
        if (path[pos] == '/') {
            ++pos;
            continue;
        }
        const std::size_t end = path.find('/', pos);
        segments.emplace_back(
            path.substr(pos, end == std::string_view::npos ? std::string_view::npos
                                                           : end - pos));
        if (end == std::string_view::npos)
            break;
        pos = end;
    }
    return segments;
}

/** Parsed request head; status != 0 encodes a parse failure. */
struct ParsedHead
{
    int errorStatus = 0;
    const char* errorMessage = "";
    std::size_t contentLength = 0;
    bool clientClose = false;
    bool http11 = true;
    HttpRequest request;
};

ParsedHead
parseHead(std::string_view head)
{
    ParsedHead out;
    const std::size_t line_end = head.find("\r\n");
    const std::string_view line = head.substr(
        0, line_end == std::string_view::npos ? head.size() : line_end);

    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? std::string_view::npos
                                      : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        sp1 == 0 || sp2 == sp1 + 1) {
        out.errorStatus = 400;
        out.errorMessage = "malformed request line";
        return out;
    }
    const std::string_view version = trim(line.substr(sp2 + 1));
    if (version.rfind("HTTP/1.", 0) != 0) {
        out.errorStatus = 400;
        out.errorMessage = "unsupported protocol";
        return out;
    }
    out.http11 = version != "HTTP/1.0";

    HttpRequest& req = out.request;
    req.method = std::string(line.substr(0, sp1));
    std::transform(req.method.begin(), req.method.end(), req.method.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::toupper(c));
                   });
    req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    const std::size_t qmark = req.target.find('?');
    req.path = req.target.substr(0, qmark);
    req.query = qmark == std::string::npos ? std::string()
                                           : req.target.substr(qmark + 1);

    // Header lines until the blank line.
    std::size_t pos = line_end == std::string_view::npos
        ? head.size()
        : line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos)
            eol = head.size();
        const std::string_view hline = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (hline.empty())
            break;
        const std::size_t colon = hline.find(':');
        if (colon == std::string_view::npos)
            continue; // tolerate junk header lines
        std::string name = toLower(trim(hline.substr(0, colon)));
        std::string value(trim(hline.substr(colon + 1)));
        if (name == "content-length") {
            errno = 0;
            char* end = nullptr;
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (errno != 0 || end == value.c_str() || *end != '\0') {
                out.errorStatus = 400;
                out.errorMessage = "bad content-length";
                return out;
            }
            out.contentLength = static_cast<std::size_t>(v);
        } else if (name == "connection") {
            if (toLower(value).find("close") != std::string::npos)
                out.clientClose = true;
        }
        req.headers.emplace_back(std::move(name), std::move(value));
    }
    return out;
}

} // namespace

const std::string*
HttpRequest::header(std::string_view name) const
{
    for (const auto& [n, v] : headers) {
        if (n == name)
            return &v;
    }
    return nullptr;
}

const char*
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 202: return "Accepted";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 422: return "Unprocessable Entity";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

HttpServer::HttpServer(HttpServerConfig config) : config_(std::move(config))
{
    if (config_.workers == 0)
        config_.workers = 1;
    if (config_.maxPendingConnections == 0)
        config_.maxPendingConnections = 1;
    observing_ = config_.spans != nullptr || config_.onRequest != nullptr;
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::route(std::string_view method, std::string_view pattern,
                  Handler handler)
{
    Route r;
    r.method = std::string(method);
    std::transform(r.method.begin(), r.method.end(), r.method.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::toupper(c));
                   });
    r.pattern = std::string(pattern);
    r.segments = splitSegments(pattern);
    r.handler = std::move(handler);
    routes_.push_back(std::move(r));
}

bool
HttpServer::start(std::uint16_t port, std::string* error)
{
    auto fail = [&](const char* what) {
        if (error)
            *error = std::string(what) + ": " + std::strerror(errno);
        closeQuietly(listenFd_);
        closeQuietly(wakeFd_[0]);
        closeQuietly(wakeFd_[1]);
        return false;
    };

    if (running_) {
        if (error)
            *error = "already running";
        return false;
    }

    if (::pipe(wakeFd_) != 0)
        return fail("pipe");
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        return fail("bind");
    if (::listen(listenFd_, 64) != 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workers_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (acceptThread_.joinable()) {
        running_ = false;
        // Self-pipe wake-up: every poll (accept loop and per-connection
        // waits) has the read end in its set, so one byte wakes them all
        // — the byte is never drained, so POLLIN stays readable for every
        // poller. EINTR here just retries the write.
        const char byte = 0;
        while (::write(wakeFd_[1], &byte, 1) < 0 && errno == EINTR) {
        }
        acceptThread_.join();
        queueCv_.notify_all();
        for (std::thread& w : workers_)
            w.join();
        workers_.clear();
    }
    running_ = false;
    // Connections still queued when the workers exited get closed
    // unanswered; their clients see a reset, which is what a drained
    // server owes brand-new work.
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        for (const PendingConn& conn : pendingFds_)
            ::close(conn.fd);
        pendingFds_.clear();
    }
    closeQuietly(listenFd_);
    closeQuietly(wakeFd_[0]);
    closeQuietly(wakeFd_[1]);
    port_ = 0;
}

void
HttpServer::acceptLoop()
{
    while (running_) {
        pollfd fds[2];
        fds[0].fd = listenFd_;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = wakeFd_[0];
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[1].revents != 0 || !running_)
            return; // stop() woke us
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        int client = -1;
        do {
            client = ::accept(listenFd_, nullptr, nullptr);
        } while (client < 0 && errno == EINTR);
        if (client < 0)
            continue;
        // Nagle + delayed ACK costs ~40 ms per request/response turn on
        // loopback; a request/response server always wants NODELAY.
        const int nodelay = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof(nodelay));
        bool accepted = false;
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            if (pendingFds_.size() < config_.maxPendingConnections) {
                PendingConn conn;
                conn.fd = client;
                if (observing_)
                    conn.acceptNs = obs::SpanTracer::nowNs();
                pendingFds_.push_back(conn);
                accepted = true;
            }
        }
        if (accepted) {
            queueCv_.notify_one();
            continue;
        }
        // Bounded queue full: shed load here instead of queueing without
        // limit. The canned response is tiny, so this cannot block the
        // accept loop on a sane socket buffer.
        connectionsRejected_.fetch_add(1, std::memory_order_relaxed);
        const HttpResponse resp = errorFor(503, "server overloaded");
        sendResponse(client, nullptr, resp, /*keepAlive=*/false);
        ::close(client);
    }
}

void
HttpServer::workerLoop()
{
    for (;;) {
        PendingConn conn;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return !pendingFds_.empty() || !running_;
            });
            if (pendingFds_.empty())
                return; // stopping and drained
            conn = pendingFds_.front();
            pendingFds_.pop_front();
        }
        handleConnection(conn.fd, conn.acceptNs);
        ::close(conn.fd);
    }
}

int
HttpServer::waitReadable(int fd, int timeoutMs)
{
    pollfd fds[2];
    fds[0].fd = fd;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wakeFd_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    for (;;) {
        const int ready = ::poll(fds, 2, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (fds[1].revents != 0 || !running_)
            return -1; // stop() woke us
        if (ready == 0)
            return 0; // idle timeout
        if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
            return 1;
    }
}

void
HttpServer::handleConnection(int fd, std::uint64_t acceptNs)
{
    std::string buffer;
    while (running_) {
        if (!serveOne(fd, buffer, acceptNs))
            return;
        acceptNs = 0; // queue wait belongs to the first request only
    }
}

bool
HttpServer::serveOne(int fd, std::string& buffer, std::uint64_t acceptNs)
{
    // Stage clocks: t0 = first request byte available, t1 = head+body
    // read and parsed, t2 = routed, t3 = handler returned, t4 = response
    // sent. Contiguous by construction, so the stage durations sum to
    // the request's wall time. Every sample is gated on observing_ —
    // an unobserved server takes zero clock reads per request.
    std::uint64_t t0 = 0;
    if (observing_ && !buffer.empty())
        t0 = obs::SpanTracer::nowNs(); // pipelined request already here

    // ---- Read the request head (bounded, idle-timed) -------------------
    std::size_t head_end;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
        if (buffer.size() > config_.maxRequestBytes) {
            sendResponse(fd, nullptr, errorFor(413, "request too large"),
                         false);
            return false;
        }
        const int readable = waitReadable(fd, config_.idleTimeoutMs);
        if (readable <= 0)
            return false; // idle timeout, stop, or error: just close
        char chunk[4096];
        ssize_t n;
        do {
            n = ::recv(fd, chunk, sizeof(chunk), 0);
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return false; // EOF or error
        if (observing_ && t0 == 0)
            t0 = obs::SpanTracer::nowNs();
        buffer.append(chunk, static_cast<std::size_t>(n));
    }

    ParsedHead head = parseHead(std::string_view(buffer).substr(0, head_end));
    if (head.errorStatus != 0) {
        requestsServed_.fetch_add(1, std::memory_order_relaxed);
        sendResponse(fd, nullptr,
                     errorFor(head.errorStatus, head.errorMessage), false);
        return false;
    }

    // ---- Read the body (Content-Length bytes past the head) ------------
    if (head.contentLength > config_.maxRequestBytes) {
        requestsServed_.fetch_add(1, std::memory_order_relaxed);
        sendResponse(fd, nullptr, errorFor(413, "request too large"),
                     false);
        return false;
    }
    const std::size_t body_start = head_end + 4;
    while (buffer.size() - body_start < head.contentLength) {
        const int readable = waitReadable(fd, config_.idleTimeoutMs);
        if (readable <= 0)
            return false;
        char chunk[4096];
        ssize_t n;
        do {
            n = ::recv(fd, chunk, sizeof(chunk), 0);
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return false;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    HttpRequest& req = head.request;
    req.body = buffer.substr(body_start, head.contentLength);
    // Keep pipelined bytes beyond this request for the next iteration.
    buffer.erase(0, body_start + head.contentLength);

    const std::uint64_t t1 = observing_ ? obs::SpanTracer::nowNs() : 0;

    // ---- Route ----------------------------------------------------------
    requestsServed_.fetch_add(1, std::memory_order_relaxed);
    const std::vector<std::string> segments = splitSegments(req.path);
    const Route* matched = nullptr;
    const Route* pathRoute = nullptr; ///< path matched, method did not
    for (const Route& route : routes_) {
        if (route.segments.size() != segments.size())
            continue;
        bool ok = true;
        for (std::size_t i = 0; ok && i < segments.size(); ++i) {
            if (route.segments[i] != "*" &&
                route.segments[i] != segments[i])
                ok = false;
        }
        if (!ok)
            continue;
        if (route.method == req.method) {
            matched = &route;
            break;
        }
        if (!pathRoute)
            pathRoute = &route;
    }

    const std::uint64_t t2 = observing_ ? obs::SpanTracer::nowNs() : 0;

    // Span setup: allocate ids before the handler so everything it does
    // (strand hops, engine calls) parents under this request's trace,
    // but emit no span lines until the response is on the wire — sink
    // serialization must not open gaps between the stage clocks.
    obs::SpanTracer* st =
        (config_.spans && config_.spans->enabled()) ? config_.spans
                                                    : nullptr;
    std::uint64_t traceId = 0;
    std::uint64_t rootId = 0;
    std::uint64_t handleId = 0;
    if (st) {
        traceId = st->newTraceId();
        rootId = st->newSpanId();
        handleId = st->newSpanId();
    }

    HttpResponse response;
    if (matched) {
        for (std::size_t i = 0; i < segments.size(); ++i) {
            if (matched->segments[i] == "*")
                req.params.push_back(segments[i]);
        }
        try {
            if (st) {
                // The handle span itself is emitted below with the t2/t3
                // stage clocks; here we only bind it as the thread-local
                // parent for the handler's strand hops and engine spans.
                obs::SpanBinding bind(
                    st, obs::SpanContext{traceId, handleId});
                response = matched->handler(req);
            } else {
                response = matched->handler(req);
            }
        } catch (const std::exception& e) {
            response = errorFor(500, e.what());
        } catch (...) {
            response = errorFor(500, "handler failed");
        }
    } else if (pathRoute) {
        response = errorFor(405, "method not allowed");
    } else {
        response = errorFor(404, "not found");
    }

    const std::uint64_t t3 = observing_ ? obs::SpanTracer::nowNs() : 0;

    const bool keep = config_.keepAlive && head.http11 &&
        !head.clientClose && !response.closeConnection && running_;
    const bool sent = sendResponse(fd, &req, response, keep);

    if (observing_) {
        const std::uint64_t t4 = obs::SpanTracer::nowNs();
        const Route* labeled = matched ? matched : pathRoute;
        if (st) {
            // All spans share the t0..t4 stage clocks, so the child
            // durations sum exactly to the root's wall time.
            if (acceptNs != 0 && acceptNs <= t0)
                st->span(traceId, st->newSpanId(), rootId,
                         "http.accept_wait", acceptNs, t0);
            st->span(traceId, st->newSpanId(), rootId, "http.read", t0,
                     t1);
            st->span(traceId, st->newSpanId(), rootId, "http.route", t1,
                     t2);
            st->span(traceId, handleId, rootId, "http.handle", t2, t3);
            st->span(traceId, st->newSpanId(), rootId, "http.write", t3,
                     t4);
            std::string detail = req.method;
            detail += ' ';
            detail += labeled ? labeled->pattern : req.path;
            detail += ' ';
            detail += std::to_string(response.status);
            st->span(traceId, rootId, 0, "http.request", t0, t4, detail);
        }
        if (config_.onRequest) {
            RequestSummary summary;
            summary.method = req.method;
            summary.route = labeled ? labeled->pattern : "unmatched";
            summary.status = response.status;
            summary.trace = traceId;
            summary.endNs = t4;
            summary.stages.readNs = t1 - t0;
            summary.stages.routeNs = t2 - t1;
            summary.stages.handleNs = t3 - t2;
            summary.stages.writeNs = t4 - t3;
            try {
                config_.onRequest(summary);
            } catch (...) {
                // Observation must never take the connection down.
            }
        }
    }

    if (!sent)
        return false;
    return keep;
}

HttpResponse
HttpServer::errorFor(int status, std::string_view message) const
{
    if (config_.errorResponse)
        return config_.errorResponse(status, message);
    std::string body;
    switch (status) {
      case 404: body = "not found\n"; break;
      case 405: body = "method not allowed\n"; break;
      default:
        body = std::string(message);
        if (body.empty())
            body = statusReason(status);
        body += '\n';
        break;
    }
    return HttpResponse::text(status, std::move(body));
}

bool
HttpServer::sendResponse(int fd, const HttpRequest*,
                         const HttpResponse& response, bool keepAlive)
{
    std::string head = "HTTP/1.1 ";
    head += std::to_string(response.status);
    head += ' ';
    head += statusReason(response.status);
    head += "\r\nContent-Type: ";
    head += response.contentType;
    head += "\r\nContent-Length: ";
    head += std::to_string(response.body.size());
    head += keepAlive ? "\r\nConnection: keep-alive\r\n\r\n"
                      : "\r\nConnection: close\r\n\r\n";
    // One write per response: a split head/body write would hand Nagle a
    // runt segment and stall the client behind a delayed ACK.
    head += response.body;
    return sendAll(fd, head);
}

} // namespace hcloud::srv
