/**
 * @file
 * ServeApp: the hcloud provisioning-as-a-service daemon, as a library.
 *
 * Wires the serving stack — srv::HttpServer for transport,
 * srv::SessionManager for sharded tenant sessions, obs::ProcessMetrics
 * for per-tenant observability — behind one start()/stop() pair so the
 * binary (serve_main.cpp), the benchmark (bench_serve) and the tests all
 * drive the identical daemon in-process.
 *
 * HTTP surface (all request/response bodies JSON):
 *
 *   POST /v1/tenants             create a session     -> 201 {tenant,...}
 *   GET  /v1/tenants             list tenants         -> 200 {tenants:[..]}
 *   POST /v1/tenants/{id}/jobs   submit a job, advance to its arrival
 *                                -> 200 {job, state, decisions:[..]}
 *   POST /v1/tenants/{id}/advance {"to": seconds}     -> 200 {now}
 *                                (to must be finite, >= 0, >= now and
 *                                within --max-advance of now -> else 422)
 *   DELETE /v1/tenants/{id}      remove session + journal + metric
 *                                series -> 200 {tenant, deleted}
 *   GET  /v1/tenants/{id}/report schema-versioned report (see
 *                                EngineSession::reportJson)
 *   GET  /v1/tenants/{id}/timeline
 *                                ring-retained cluster-state samples;
 *                                ?since=<seq> resumes a cursor and
 *                                ?stride=<n> downsamples (every n-th
 *                                sample by absolute seq). Bounded
 *                                response; 404 unknown tenant, 422
 *                                malformed query -> structured errors
 *   GET  /metrics                Prometheus text (per-tenant series +
 *                                per-route/per-stage latency histograms)
 *   GET  /healthz                liveness: 200 + build-info JSON
 *   GET  /statusz                human status page: session table,
 *                                strand queue depths, slowest requests
 *
 * Observability: every routed request feeds per-route and per-stage
 * latency histograms and the /statusz slow-request ring; when span
 * tracing is on (--span-trace / HCLOUD_SPANS) each request becomes a
 * trace whose spans cover the HTTP stages, strand wait/exec and engine
 * work, with decision events stamped by trace id. Requests slower than
 * --slow-ms / HCLOUD_SLOW_MS emit one structured warn line with the
 * full stage breakdown through obs::Log.
 *
 * Every client-caused failure is a 4xx with the structured body
 * {"error":{"code","message"}} (the server-wide error formatter is
 * installed on the transport, so 404/405/413/503 match too); handler
 * bugs surface as 500 with the same shape, never a crash.
 */

#ifndef HCLOUD_SRV_SERVE_APP_HPP
#define HCLOUD_SRV_SERVE_APP_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/process_metrics.hpp"
#include "obs/span.hpp"
#include "runtime/thread_pool.hpp"
#include "srv/http_server.hpp"
#include "srv/session_manager.hpp"
#include "srv/statusz.hpp"

namespace hcloud::srv {

struct ServeConfig
{
    /** Session shards (concurrent tenant strands). */
    std::size_t shards = 8;
    /** Engine thread-pool workers; 0 = defaultThreadCount(). */
    std::size_t threads = 0;
    /** HTTP connection workers. */
    std::size_t httpWorkers = 8;
    /** Accepted-connection queue bound (then 503). */
    std::size_t maxPendingConnections = 256;
    /** Span JSONL output path; "" defers to HCLOUD_SPANS (unset=off). */
    std::string spanPath;
    /** Slow-request log threshold in ms; 0 defers to HCLOUD_SLOW_MS
     *  (unset = no slow-request logging). */
    double slowMs = 0.0;
    /** Recent requests kept for the /statusz slow table. */
    std::size_t statusRequests = 512;
    /** Durability: journal.dataDir empty = journaling (and restore,
     *  eviction, revival) off. */
    JournalConfig journal;
    /** Admission cap + idle eviction (see SessionManager::Limits). */
    SessionManager::Limits limits;
    /** Max virtual seconds one advance call may cover (0 = unbounded);
     *  the guard that keeps `{"to": 1e308}` from pinning a strand. */
    double maxAdvance = 1e7;
    /**
     * Default cluster-state timeline cadence in virtual seconds for
     * sessions that do not pin `engine.timeline` themselves; 0 turns
     * default sampling off. Normalized into an explicit per-session
     * mode before the create record is journaled, so replay never
     * depends on the flags the daemon restarts with.
     */
    double timelineCadence = 30.0;
};

/** The daemon: sharded multi-tenant sessions behind an HTTP API. */
class ServeApp
{
  public:
    explicit ServeApp(ServeConfig config = {},
                      obs::ProcessMetrics& metrics =
                          obs::ProcessMetrics::instance());

    /** Graceful drain (equivalent to stop()). */
    ~ServeApp();

    ServeApp(const ServeApp&) = delete;
    ServeApp& operator=(const ServeApp&) = delete;

    /** Bind 127.0.0.1:@p port (0 = ephemeral) and serve. Journaled
     *  sessions were already restored during construction. */
    bool start(std::uint16_t port, std::string* error = nullptr);

    /**
     * Graceful drain: stop accepting, finish in-flight requests, wait
     * for all shard work, join every thread. Idempotent; this is what
     * SIGTERM triggers in the binary.
     */
    void stop();

    bool running() const { return server_.running(); }
    std::uint16_t boundPort() const { return server_.boundPort(); }

    SessionManager& sessions() { return sessions_; }
    const HttpServer& server() const { return server_; }
    obs::SpanTracer& spans() { return spans_; }
    const StatusBoard& statusBoard() const { return status_; }
    /** Resolved slow-request threshold (after HCLOUD_SLOW_MS). */
    double slowMs() const { return slowMs_; }

  private:
    void routes();
    /** Transport config wiring spans + the onRequest observer. */
    HttpServerConfig makeServerConfig(const ServeConfig& config);
    /** onRequest sink: histograms, status ring, slow-request log. */
    void observeRequest(const RequestSummary& summary);
    HttpResponse handleCreateTenant(const HttpRequest& request);
    HttpResponse handleListTenants(const HttpRequest& request);
    HttpResponse handleSubmitJob(const HttpRequest& request);
    HttpResponse handleAdvance(const HttpRequest& request);
    HttpResponse handleDeleteTenant(const HttpRequest& request);
    HttpResponse handleReport(const HttpRequest& request);
    HttpResponse handleTimeline(const HttpRequest& request);
    HttpResponse handleHealthz(const HttpRequest& request);
    HttpResponse handleStatusz(const HttpRequest& request);

    obs::ProcessMetrics& metrics_;
    obs::SpanTracer spans_;
    StatusBoard status_;
    double slowMs_ = 0.0;
    double maxAdvance_ = 0.0;
    double timelineCadence_ = 0.0;
    std::uint64_t startNs_ = 0; ///< construction time, for uptime
    runtime::ThreadPool pool_;
    SessionManager sessions_;
    HttpServer server_; ///< last: its config captures `this`
};

} // namespace hcloud::srv

#endif // HCLOUD_SRV_SERVE_APP_HPP
