#include "srv/statusz.hpp"

#include <algorithm>
#include <cstdio>

namespace hcloud::srv {

namespace {

std::string
formatMs(std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
    return buf;
}

} // namespace

StatusBoard::StatusBoard(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(capacity_);
}

void
StatusBoard::add(const RequestSummary& summary)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(summary);
        return;
    }
    ring_[next_] = summary;
    next_ = (next_ + 1) % capacity_;
}

std::uint64_t
StatusBoard::total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::vector<RequestSummary>
StatusBoard::slowest(std::size_t n) const
{
    std::vector<RequestSummary> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = ring_;
    }
    std::sort(out.begin(), out.end(),
              [](const RequestSummary& a, const RequestSummary& b) {
                  return a.stages.totalNs() > b.stages.totalNs();
              });
    if (out.size() > n)
        out.resize(n);
    return out;
}

std::string
renderStatusz(const StatuszInfo& info)
{
    std::string out;
    out.reserve(2048);
    char line[256];

    out += "hcloud serve status\n";
    std::snprintf(line, sizeof(line), "uptime_seconds: %.1f\n",
                  info.uptimeSeconds);
    out += line;
    std::snprintf(line, sizeof(line), "requests_served: %llu\n",
                  static_cast<unsigned long long>(info.requestsServed));
    out += line;
    std::snprintf(line, sizeof(line), "connections_rejected: %llu\n",
                  static_cast<unsigned long long>(
                      info.connectionsRejected));
    out += line;
    if (info.spansEnabled) {
        std::snprintf(line, sizeof(line),
                      "span_trace: %s (%llu records)\n",
                      info.spanPath.c_str(),
                      static_cast<unsigned long long>(
                          info.spansRecorded));
        out += line;
    } else {
        out += "span_trace: off\n";
    }
    if (info.slowMs > 0.0) {
        std::snprintf(line, sizeof(line),
                      "slow_request_log: >= %.1f ms\n", info.slowMs);
        out += line;
    } else {
        out += "slow_request_log: off\n";
    }
    if (info.timelineCadence > 0.0) {
        std::snprintf(line, sizeof(line),
                      "timeline: every %.1f virtual seconds (default)\n",
                      info.timelineCadence);
        out += line;
    } else {
        out += "timeline: off by default\n";
    }

    out += "\ndurability:\n";
    if (info.journalEnabled) {
        std::snprintf(line, sizeof(line),
                      "  journal: %s (fsync=%s)\n", info.dataDir.c_str(),
                      info.fsyncPolicy.c_str());
        out += line;
        if (info.maxSessions != 0) {
            std::snprintf(line, sizeof(line), "  max_sessions: %zu\n",
                          info.maxSessions);
            out += line;
        } else {
            out += "  max_sessions: unlimited\n";
        }
        if (info.idleEvictSeconds > 0.0) {
            std::snprintf(line, sizeof(line),
                          "  idle_evict_seconds: %.1f\n",
                          info.idleEvictSeconds);
            out += line;
        } else {
            out += "  idle_evict: off\n";
        }
        std::snprintf(
            line, sizeof(line),
            "  restored: %llu  evictions: %llu  revivals: %llu  "
            "deletes: %llu\n",
            static_cast<unsigned long long>(info.lifecycle.restored),
            static_cast<unsigned long long>(info.lifecycle.evictions),
            static_cast<unsigned long long>(info.lifecycle.revivals),
            static_cast<unsigned long long>(info.lifecycle.deletes));
        out += line;
        std::snprintf(line, sizeof(line),
                      "  admission_rejects: %llu  truncated_lines: "
                      "%llu\n",
                      static_cast<unsigned long long>(
                          info.lifecycle.admissionRejects),
                      static_cast<unsigned long long>(
                          info.lifecycle.truncatedLines));
        out += line;
    } else {
        out += "  journal: off (in-memory only; sessions do not "
               "survive restart)\n";
    }

    out += "\nstrand queue depths:";
    for (std::size_t depth : info.queueDepths) {
        std::snprintf(line, sizeof(line), " %zu", depth);
        out += line;
    }
    std::snprintf(line, sizeof(line), " (tasks executed: %llu)\n",
                  static_cast<unsigned long long>(info.tasksExecuted));
    out += line;

    std::snprintf(line, sizeof(line), "\nsessions (%zu):\n",
                  info.sessions.size());
    out += line;
    out += "  tenant            shard  sim_now      jobs  finished  "
           "decisions  samples  journal_kb\n";
    for (const SessionManager::SessionStatus& s : info.sessions) {
        if (s.evicted) {
            std::snprintf(line, sizeof(line),
                          "  %-16s  %5zu  (evicted; revives on next "
                          "touch)\n",
                          s.id.c_str(), s.shard);
            out += line;
            continue;
        }
        if (!s.ready) {
            std::snprintf(line, sizeof(line),
                          "  %-16s  %5zu  (initializing)\n", s.id.c_str(),
                          s.shard);
            out += line;
            continue;
        }
        std::snprintf(line, sizeof(line),
                      "  %-16s  %5zu  %11.1f  %4llu  %8llu  %9llu  "
                      "%7llu  %10.1f\n",
                      s.id.c_str(), s.shard, s.now,
                      static_cast<unsigned long long>(s.jobs),
                      static_cast<unsigned long long>(s.finished),
                      static_cast<unsigned long long>(s.decisions),
                      static_cast<unsigned long long>(s.timelineSamples),
                      static_cast<double>(s.journalBytes) / 1024.0);
        out += line;
    }

    std::snprintf(line, sizeof(line), "\nslowest recent requests (%zu):\n",
                  info.slowest.size());
    out += line;
    for (const RequestSummary& r : info.slowest) {
        out += "  ";
        out += formatMs(r.stages.totalNs());
        out += "ms ";
        out += r.method;
        out += ' ';
        out += r.route;
        out += ' ';
        out += std::to_string(r.status);
        if (r.trace != 0) {
            out += " trace=";
            out += std::to_string(r.trace);
        }
        out += " read=";
        out += formatMs(r.stages.readNs);
        out += "ms route=";
        out += formatMs(r.stages.routeNs);
        out += "ms handle=";
        out += formatMs(r.stages.handleNs);
        out += "ms write=";
        out += formatMs(r.stages.writeNs);
        out += "ms\n";
    }
    return out;
}

} // namespace hcloud::srv
