/**
 * @file
 * HttpServer: small threaded HTTP/1.1 server for the serving layer.
 *
 * Generalizes the socket/accept loop proven in obs::MetricsHttpServer
 * (which is now a thin wrapper over this class) into a reusable server
 * with method+pattern routing, keep-alive, a bounded accepted-connection
 * queue and a worker pool. Design constraints:
 *
 *  - all socket calls are EINTR-safe; responses are written with
 *    MSG_NOSIGNAL so a client hanging up cannot SIGPIPE the process;
 *  - the listener binds 127.0.0.1 with SO_REUSEADDR; port 0 binds an
 *    ephemeral port reported by boundPort();
 *  - reads are bounded (maxRequestBytes -> 413) and idle connections are
 *    closed after idleTimeoutMs, so a stuck client cannot wedge a worker
 *    forever;
 *  - accepted connections queue up to maxPendingConnections; beyond that
 *    the accept loop answers 503 immediately — the bench's closed loop
 *    observes back-pressure instead of unbounded queueing;
 *  - stop() is idempotent and deterministic: close the listener (no new
 *    connections), wake every poll via the self-pipe, finish in-flight
 *    requests, join all threads, close every descriptor. This doubles as
 *    the SIGTERM drain of hcloud_serve;
 *  - handler exceptions become 500s; a throwing handler never kills a
 *    worker.
 *
 * Routing: patterns are '/'-separated segment lists where a "*" segment
 * matches exactly one path segment and is captured into
 * HttpRequest::params in pattern order (the pattern "/v1/tenants/" + "*"
 * + "/jobs" matches "/v1/tenants/t-3/jobs" with params = {"t-3"}). A
 * path that matches some
 * pattern under a different method yields 405; an unmatched path 404.
 * Error responses route through HttpServerConfig::errorResponse when set
 * (the JSON API installs a structured-error formatter), else plain text.
 */

#ifndef HCLOUD_SRV_HTTP_SERVER_HPP
#define HCLOUD_SRV_HTTP_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace hcloud::obs {
class SpanTracer;
}

namespace hcloud::srv {

/** One parsed request, as handed to a route handler. */
struct HttpRequest
{
    std::string method; ///< upper-case ("GET", "POST", ...)
    std::string target; ///< raw request target, including any query
    std::string path;   ///< target up to '?'
    std::string query;  ///< after '?' ("" when absent)
    /** Header (name, value) pairs; names lower-cased. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    /** Wildcard captures, in pattern order. */
    std::vector<std::string> params;

    /** Value of header @p name (lower-case), or nullptr. */
    const std::string* header(std::string_view name) const;
};

/** One response, as returned by a route handler. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain";
    std::string body;
    /** Force Connection: close after this response. */
    bool closeConnection = false;

    static HttpResponse text(int status, std::string body)
    {
        HttpResponse r;
        r.status = status;
        r.body = std::move(body);
        return r;
    }

    static HttpResponse json(int status, std::string body)
    {
        HttpResponse r;
        r.status = status;
        r.contentType = "application/json";
        r.body = std::move(body);
        return r;
    }
};

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char* statusReason(int status);

/**
 * Wall-clock stage durations of one served request, in steady-clock
 * nanoseconds. The stages are contiguous — read starts at the first
 * request byte, write ends when the response hit the socket — so their
 * sum is the request's wall time (accept-queue wait is reported
 * separately: it precedes the first byte and belongs to the connection,
 * not the request).
 */
struct RequestStages
{
    std::uint64_t readNs = 0;   ///< first byte -> head+body read+parsed
    std::uint64_t routeNs = 0;  ///< route-table match
    std::uint64_t handleNs = 0; ///< handler execution
    std::uint64_t writeNs = 0;  ///< response serialization + send

    std::uint64_t totalNs() const
    {
        return readNs + routeNs + handleNs + writeNs;
    }
};

/** Per-request record handed to HttpServerConfig::onRequest. */
struct RequestSummary
{
    std::string method;
    /** Matched route pattern (wildcard segments kept as "*", e.g.
     *  "/v1/tenants/STAR/jobs" with STAR spelled as the asterisk);
     *  "unmatched" for 404s so label cardinality stays bounded. */
    std::string route;
    int status = 0;
    /** Span trace id of this request (0 = span tracing off). */
    std::uint64_t trace = 0;
    /** steady-clock ns when the response finished sending. */
    std::uint64_t endNs = 0;
    RequestStages stages;
};

struct HttpServerConfig
{
    /** Worker threads serving accepted connections. */
    std::size_t workers = 4;
    /** Accepted connections waiting for a worker; beyond this, 503. */
    std::size_t maxPendingConnections = 64;
    /** Bound on request head + body; larger requests get 413. */
    std::size_t maxRequestBytes = 1u << 20;
    /** Idle keep-alive connections are closed after this long. */
    int idleTimeoutMs = 5000;
    /** Offer keep-alive (false = close after every response, which
     *  read-to-EOF clients like Prometheus scrapers rely on). */
    bool keepAlive = true;
    /**
     * Builds server-generated error responses (400/404/405/413/500/503).
     * Unset = plain-text bodies ("not found\n", ...). @p message is a
     * short human-readable explanation.
     */
    std::function<HttpResponse(int status, std::string_view message)>
        errorResponse;
    /**
     * Span tracer for end-to-end request tracing; nullptr (the default)
     * or a disabled tracer keeps the hot path free of clock samples.
     * When enabled, each routed request gets a trace id, an
     * "http.request" root span with read/route/handle/write children,
     * and the (tracer, context) pair is bound thread-locally around the
     * handler so downstream strand hops and engine calls join the trace.
     */
    obs::SpanTracer* spans = nullptr;
    /**
     * Invoked on the worker thread after every routed request (matched,
     * 404 or 405 — not connection-level parse failures). The serving
     * layer derives latency histograms, the /statusz slow-request table
     * and the slow-request log line from this.
     */
    std::function<void(const RequestSummary&)> onRequest;
};

/**
 * Blocking HTTP/1.1 server: one accept thread, N connection workers.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest&)>;

    explicit HttpServer(HttpServerConfig config = {});

    /** Stops the server if still running. */
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /**
     * Register @p handler for @p method + @p pattern. Call before
     * start(); the route table is immutable while running.
     */
    void route(std::string_view method, std::string_view pattern,
               Handler handler);

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start accept + workers.
     * @return false (with @p error filled when non-null) on any socket
     * failure; the server is then inert and safe to destroy or restart.
     */
    bool start(std::uint16_t port, std::string* error = nullptr);

    /** Accept loop is live. */
    bool running() const { return running_; }

    /** Actual bound port (resolves port 0); 0 when not running. */
    std::uint16_t boundPort() const { return port_; }

    /** Requests answered by a handler or router so far. */
    std::uint64_t requestsServed() const { return requestsServed_; }

    /** Connections refused with 503 because the queue was full. */
    std::uint64_t connectionsRejected() const
    {
        return connectionsRejected_;
    }

    /**
     * Idempotent graceful drain: stop accepting, wake idle connections,
     * finish in-flight requests, join every thread, close every fd.
     */
    void stop();

  private:
    struct Route
    {
        std::string method;
        std::string pattern; ///< original pattern, for RequestSummary
        std::vector<std::string> segments;
        Handler handler;
    };

    /** A connection waiting for a worker (acceptNs = 0 unless the
     *  server is observing requests). */
    struct PendingConn
    {
        int fd = -1;
        std::uint64_t acceptNs = 0;
    };

    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd, std::uint64_t acceptNs);
    /** Serve one request from @p buffer/@p fd; @p acceptNs is nonzero
     *  only for the connection's first request. @return keep the
     *  connection? */
    bool serveOne(int fd, std::string& buffer, std::uint64_t acceptNs);
    /** The built error response for @p status. */
    HttpResponse errorFor(int status, std::string_view message) const;
    bool sendResponse(int fd, const HttpRequest* request,
                      const HttpResponse& response, bool keepAlive);
    /** Wait for @p fd readable (or stop/timeout): 1 = readable,
     *  0 = timeout, -1 = stop or error. */
    int waitReadable(int fd, int timeoutMs);

    HttpServerConfig config_;
    std::vector<Route> routes_;

    int listenFd_ = -1;
    int wakeFd_[2] = {-1, -1}; ///< self-pipe: [0] polled, [1] written
    /** Atomic: stop() clears it while clients may still query it. */
    std::atomic<std::uint16_t> port_{0};
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> requestsServed_{0};
    std::atomic<std::uint64_t> connectionsRejected_{0};

    /** True when onRequest or a span tracer is configured; gates every
     *  clock sample so the default server stays observation-free. */
    bool observing_ = false;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<PendingConn> pendingFds_;
};

} // namespace hcloud::srv

#endif // HCLOUD_SRV_HTTP_SERVER_HPP
