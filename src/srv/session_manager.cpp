#include "srv/session_manager.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include <unistd.h>

#include "obs/log.hpp"
#include "obs/span.hpp"

namespace hcloud::srv {

namespace {

/**
 * The hcloud_sim_* gauge families recordSimGauges maintains. One table
 * shared with removeSimGauges so a series added here can never be
 * forgotten by the retirement path (the label-leak tests would catch
 * it regardless).
 */
struct SimGaugeDef
{
    const char* name;
    const char* help;
};

constexpr SimGaugeDef kSimGauges[] = {
    {"hcloud_sim_now", "Tenant virtual clock at the last timeline sample"},
    {"hcloud_sim_instances",
     "Provisioned instances (reserved + on-demand + spot)"},
    {"hcloud_sim_utilization", "Reserved-pool core utilization [0,1]"},
    {"hcloud_sim_quality_p50",
     "Median effective instance quality across the cluster"},
    {"hcloud_sim_queue_length", "Jobs queued for reserved capacity"},
    {"hcloud_sim_running_jobs", "Jobs running at the last sample"},
    {"hcloud_sim_spot_price",
     "Spot price as a fraction of the on-demand rate"},
    {"hcloud_sim_qos_violations",
     "LC jobs in an active QoS-violation streak"},
    {"hcloud_sim_cost_total", "Accumulated provisioning cost (USD)"},
};

/** nextSeq_ floor implied by a server-assigned id "t-<n>" (0 if not). */
std::uint64_t
assignedSeq(const std::string& id)
{
    if (id.size() < 3 || id.compare(0, 2, "t-") != 0)
        return 0;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(id.c_str() + 2, &end, 10);
    return (end && *end == '\0') ? n : 0;
}

} // namespace

SessionManager::SessionManager(runtime::ThreadPool& pool,
                               std::size_t shards, JournalConfig journal,
                               Limits limits,
                               obs::ProcessMetrics& metrics)
    : executor_(pool, shards), journal_(std::move(journal)),
      limits_(limits), metrics_(metrics)
{
    if (journal_.enabled() && !ensureDataDir(journal_.dataDir)) {
        const std::string error = std::strerror(errno);
        obs::Log::instance().warn(
            "journal_dir_unavailable", [&](obs::JsonWriter& w) {
                w.field("dir", journal_.dataDir);
                w.field("error", error);
            });
    }
    if (journal_.enabled() && journal_.fsync == FsyncPolicy::Interval) {
        flusher_ = std::thread([this] {
            const auto interval = std::chrono::duration<double, std::milli>(
                journal_.fsyncIntervalMs > 0.0 ? journal_.fsyncIntervalMs
                                               : 1.0);
            std::unique_lock<std::mutex> lock(flusherMutex_);
            while (!stopFlusher_) {
                flusherCv_.wait_for(lock, interval,
                                    [this] { return stopFlusher_; });
                if (stopFlusher_)
                    break;
                lock.unlock();
                flushJournals();
                lock.lock();
            }
        });
    }
}

SessionManager::~SessionManager()
{
    if (flusher_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(flusherMutex_);
            stopFlusher_ = true;
        }
        flusherCv_.notify_all();
        flusher_.join();
    }
    executor_.drain();
}

void
SessionManager::flushJournals()
{
    // Snapshot under the lock, sync outside it: the disk sync can take
    // milliseconds and must not block create/erase/status. The
    // shared_ptr copies keep every journal's fd alive even if a tenant
    // is deleted or evicted mid-pass; syncBatch group-commits every
    // dirty journal with one syscall.
    std::vector<std::shared_ptr<EngineSession>> live;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        live.reserve(sessions_.size());
        for (const auto& [id, entry] : sessions_)
            if (entry.session)
                live.push_back(entry.session);
    }
    std::vector<SessionJournal*> journals;
    journals.reserve(live.size());
    for (const auto& session : live)
        if (SessionJournal* journal = session->journal())
            journals.push_back(journal);
    SessionJournal::syncBatch(journals);
}

std::string
SessionManager::create(SessionConfig config)
{
    if (!config.id.empty() && !validTenantId(config.id))
        throw ApiError{422, "invalid_tenant_id",
                       "tenant id must be 1..64 chars of [A-Za-z0-9_.-] "
                       "and not start with '.' or '-'"};

    // Claim the identity (and a live-count slot) under the lock; retry
    // once after an idle sweep when the admission cap is hit.
    auto claim = [this](SessionConfig& c, std::size_t* shard) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (limits_.maxSessions != 0 && liveCount_ >= limits_.maxSessions)
            return false;
        if (c.id.empty())
            c.id = "t-" + std::to_string(nextSeq_ + 1);
        if (sessions_.count(c.id) != 0)
            throw ApiError{409, "duplicate_tenant",
                           "tenant \"" + c.id + "\" already exists"};
        *shard = static_cast<std::size_t>(nextSeq_) % executor_.shards();
        ++nextSeq_;
        // Claim the id with an empty entry; with() treats a session
        // still under construction as not ready.
        Entry entry;
        entry.shard = *shard;
        entry.lastTouchNs = obs::SpanTracer::nowNs();
        sessions_.emplace(c.id, std::move(entry));
        order_.push_back(c.id);
        ++liveCount_;
        return true;
    };

    std::size_t shard = 0;
    if (!claim(config, &shard)) {
        sweepIdle();
        if (!claim(config, &shard)) {
            admissionRejects_.fetch_add(1, std::memory_order_relaxed);
            metrics_
                .counter("hcloud_serve_admission_rejects_total",
                         "Requests shed by admission control",
                         {{"reason", "too_many_sessions"}})
                .inc();
            throw ApiError{
                429, "too_many_sessions",
                "session cap reached (" +
                    std::to_string(limits_.maxSessions) +
                    " live sessions); delete or let idle tenants "
                    "evict, or raise --max-sessions"};
        }
    }
    const std::string id = config.id;

    auto rollback = [this, &id] {
        std::lock_guard<std::mutex> lock(mutex_);
        sessions_.erase(id);
        order_.erase(std::find(order_.begin(), order_.end(), id));
        --liveCount_;
    };

    std::shared_ptr<EngineSession> session;
    try {
        session = std::make_shared<EngineSession>(std::move(config));
        if (journal_.enabled()) {
            auto journal = std::make_unique<SessionJournal>(
                journal_, id, /*truncate=*/true, metrics_);
            if (!journal->ok())
                throw ApiError{503, "journal_unavailable",
                               "cannot open journal: " +
                                   journal->error()};
            journal->appendCreate(session->config());
            session->attachJournal(std::move(journal));
        }
    } catch (...) {
        rollback();
        throw;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        sessions_[id].session = std::move(session);
    }

    metrics_.gauge("hcloud_serve_sessions", "Live tenant sessions")
        .add(1.0);
    metrics_
        .counter("hcloud_serve_tenants_created_total",
                 "Tenant sessions created since startup")
        .inc();
    // Touch the per-tenant families at creation so a scrape shows the
    // tenant even before its first job.
    metrics_.counter("hcloud_serve_jobs_submitted_total",
                     "Jobs submitted per tenant", {{"tenant", id}});
    metrics_.counter("hcloud_serve_decisions_total",
                     "Provisioning decisions observed per tenant",
                     {{"tenant", id}});
    return id;
}

void
SessionManager::erase(const std::string& id)
{
    Entry entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sessions_.find(id);
        if (it == sessions_.end())
            throw ApiError{404, "unknown_tenant",
                           "no tenant \"" + id + "\""};
        if (!it->second.session && !it->second.evicted)
            throw ApiError{409, "tenant_initializing",
                           "tenant \"" + id + "\" is still initializing"};
        entry = std::move(it->second);
        sessions_.erase(it);
        order_.erase(std::find(order_.begin(), order_.end(), id));
        if (!entry.evicted)
            --liveCount_;
    }

    // Drain in-flight strand work that already resolved the session
    // before tearing anything down (stragglers hold the shared_ptr).
    executor_.call(entry.shard, [] {});
    entry.session.reset(); // closes (and syncs) the journal fd

    if (journal_.enabled())
        SessionJournal::removeFile(journal_.dataDir, id);

    if (!entry.evicted)
        metrics_.gauge("hcloud_serve_sessions", "Live tenant sessions")
            .add(-1.0);
    metrics_.remove("hcloud_serve_jobs_submitted_total",
                    {{"tenant", id}});
    metrics_.remove("hcloud_serve_decisions_total", {{"tenant", id}});
    removeSimGauges(id);
    deletes_.fetch_add(1, std::memory_order_relaxed);
    metrics_
        .counter("hcloud_serve_deletes_total",
                 "Tenant sessions deleted since startup")
        .inc();
    obs::Log::instance().info("tenant_deleted", [&](obs::JsonWriter& w) {
        w.field("tenant", id);
    });
}

std::shared_ptr<EngineSession>
SessionManager::replayJournal(const std::string& id,
                              bool truncateCorruptTail)
{
    obs::SpanScope span("journal.replay");
    const std::string path = SessionJournal::pathFor(journal_.dataDir, id);
    JournalLoad load = loadJournal(path);
    if (!load.ok)
        throw ApiError{503, "journal_unavailable",
                       "cannot read journal: " + load.error};
    if (load.droppedLines != 0) {
        truncatedLines_.fetch_add(load.droppedLines,
                                  std::memory_order_relaxed);
        metrics_
            .counter("hcloud_journal_truncated_lines_total",
                     "Corrupt/truncated journal lines dropped on replay")
            .inc(static_cast<double>(load.droppedLines));
        obs::Log::instance().warn(
            "journal_truncated", [&](obs::JsonWriter& w) {
                w.field("tenant", id);
                w.field("dropped_lines",
                        static_cast<std::uint64_t>(load.droppedLines));
                w.field("valid_bytes", load.validBytes);
            });
        if (truncateCorruptTail)
            (void)::truncate(path.c_str(),
                             static_cast<off_t>(load.validBytes));
    }
    if (load.records.empty() ||
        load.records.front().op != JournalRecord::Op::Create ||
        load.records.front().config.id != id)
        throw ApiError{503, "journal_invalid",
                       "journal for \"" + id +
                           "\" does not start with a matching create "
                           "record"};

    auto session = std::make_shared<EngineSession>(
        std::move(load.records.front().config));
    for (std::size_t i = 1; i < load.records.size(); ++i) {
        JournalRecord& r = load.records[i];
        if (r.op == JournalRecord::Op::Submit) {
            const SubmitOutcome outcome = session->submitJob(r.job);
            if (outcome.status !=
                core::EngineRun::SubmitStatus::Accepted)
                throw ApiError{503, "journal_invalid",
                               "journaled submit was rejected on "
                               "replay (tenant \"" +
                                   id + "\", record " +
                                   std::to_string(i) + ")"};
        } else if (r.op == JournalRecord::Op::Advance) {
            session->advanceTo(r.to);
        }
    }
    metrics_
        .counter("hcloud_journal_replayed_records_total",
                 "Journal records replayed into sessions")
        .inc(static_cast<double>(load.records.size()));
    return session;
}

std::size_t
SessionManager::restoreAll()
{
    if (!journal_.enabled())
        return 0;
    std::size_t restored = 0;
    for (const std::string& id : listJournals(journal_.dataDir)) {
        if (!validTenantId(id)) {
            obs::Log::instance().warn(
                "journal_skipped", [&](obs::JsonWriter& w) {
                    w.field("tenant", id);
                    w.field("reason", "invalid tenant id");
                });
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (sessions_.count(id) != 0)
                continue;
        }
        std::shared_ptr<EngineSession> session;
        try {
            session = replayJournal(id, /*truncateCorruptTail=*/true);
        } catch (const ApiError& e) {
            obs::Log::instance().warn(
                "journal_skipped", [&](obs::JsonWriter& w) {
                    w.field("tenant", id);
                    w.field("reason", e.message);
                });
            continue;
        }
        // Reopen for appending; a failed reopen still publishes the
        // session (reports stay readable) but its writes shed 503.
        auto journal = std::make_unique<SessionJournal>(
            journal_, id, /*truncate=*/false, metrics_);
        session->attachJournal(std::move(journal));

        {
            std::lock_guard<std::mutex> lock(mutex_);
            Entry entry;
            entry.shard =
                static_cast<std::size_t>(nextSeq_) % executor_.shards();
            entry.lastTouchNs = obs::SpanTracer::nowNs();
            entry.session = std::move(session);
            ++nextSeq_;
            // Keep server-assigned ids collision-free after restart.
            nextSeq_ = std::max(nextSeq_, assignedSeq(id));
            sessions_.emplace(id, std::move(entry));
            order_.push_back(id);
            ++liveCount_;
        }
        metrics_.gauge("hcloud_serve_sessions", "Live tenant sessions")
            .add(1.0);
        metrics_.counter("hcloud_serve_jobs_submitted_total",
                         "Jobs submitted per tenant", {{"tenant", id}});
        metrics_.counter("hcloud_serve_decisions_total",
                         "Provisioning decisions observed per tenant",
                         {{"tenant", id}});
        restored_.fetch_add(1, std::memory_order_relaxed);
        metrics_
            .counter("hcloud_serve_restored_total",
                     "Tenant sessions restored from journals at startup")
            .inc();
        obs::Log::instance().info(
            "session_restored", [&](obs::JsonWriter& w) {
                w.field("tenant", id);
            });
        ++restored;
    }
    return restored;
}

std::size_t
SessionManager::shardOf(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        throw ApiError{404, "unknown_tenant", "no tenant \"" + id + "\""};
    return it->second.shard;
}

std::shared_ptr<EngineSession>
SessionManager::resolve(const std::string& id)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sessions_.find(id);
        if (it == sessions_.end())
            throw ApiError{404, "unknown_tenant",
                           "no tenant \"" + id + "\""};
        if (it->second.session) {
            it->second.lastTouchNs = obs::SpanTracer::nowNs();
            return it->second.session;
        }
        if (!it->second.evicted)
            throw ApiError{409, "tenant_initializing",
                           "tenant \"" + id + "\" is still initializing"};
    }

    // Lazy revival: rebuild from the journal. Only this id's strand
    // runs resolve(id), so nobody else can be reviving it; the replay
    // runs unlocked to keep the registry responsive.
    std::shared_ptr<EngineSession> session =
        replayJournal(id, /*truncateCorruptTail=*/true);
    auto journal = std::make_unique<SessionJournal>(
        journal_, id, /*truncate=*/false, metrics_);
    session->attachJournal(std::move(journal));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sessions_.find(id);
        if (it == sessions_.end()) // deleted while reviving
            throw ApiError{404, "unknown_tenant",
                           "no tenant \"" + id + "\""};
        it->second.session = session;
        it->second.evicted = false;
        it->second.lastTouchNs = obs::SpanTracer::nowNs();
        ++liveCount_;
    }
    metrics_.gauge("hcloud_serve_sessions", "Live tenant sessions")
        .add(1.0);
    revivals_.fetch_add(1, std::memory_order_relaxed);
    metrics_
        .counter("hcloud_serve_revivals_total",
                 "Evicted sessions revived from journals")
        .inc();
    obs::Log::instance().info("session_revived",
                              [&](obs::JsonWriter& w) {
                                  w.field("tenant", id);
                              });
    return session;
}

std::size_t
SessionManager::sweepIdle()
{
    if (!journal_.enabled() || limits_.idleEvictSeconds <= 0.0)
        return 0;
    const std::uint64_t now = obs::SpanTracer::nowNs();
    const double thresholdNs = limits_.idleEvictSeconds * 1e9;

    struct Candidate
    {
        std::string id;
        std::size_t shard;
    };
    std::vector<Candidate> candidates;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::string& id : order_) {
            auto it = sessions_.find(id);
            if (it == sessions_.end() || !it->second.session ||
                it->second.evicted)
                continue;
            if (static_cast<double>(now - it->second.lastTouchNs) >=
                thresholdNs)
                candidates.push_back({id, it->second.shard});
        }
    }

    std::size_t evicted = 0;
    for (const Candidate& c : candidates) {
        const bool did = executor_.call(c.shard, [this, &c, now,
                                                  thresholdNs] {
            std::shared_ptr<EngineSession> session;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = sessions_.find(c.id);
                // Re-check on the strand: the session may have been
                // touched, deleted or already evicted since the scan.
                if (it == sessions_.end() || !it->second.session ||
                    it->second.evicted ||
                    static_cast<double>(now - it->second.lastTouchNs) <
                        thresholdNs)
                    return false;
                session = std::move(it->second.session);
                it->second.evicted = true;
                --liveCount_;
            }
            session.reset(); // syncs + closes the journal
            return true;
        });
        if (!did)
            continue;
        ++evicted;
        // An evicted tenant is no longer simulating; stale gauges would
        // misread as live state, so its hcloud_sim_* series retire here
        // and reappear on revival (next sampled advance).
        removeSimGauges(c.id);
        metrics_.gauge("hcloud_serve_sessions", "Live tenant sessions")
            .add(-1.0);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        metrics_
            .counter("hcloud_serve_evictions_total",
                     "Idle sessions evicted to their journals")
            .inc();
        obs::Log::instance().info("session_evicted",
                                  [&](obs::JsonWriter& w) {
                                      w.field("tenant", c.id);
                                  });
    }
    return evicted;
}

void
SessionManager::maybeSweep()
{
    if (!journal_.enabled() || limits_.idleEvictSeconds <= 0.0)
        return;
    const std::uint64_t now = obs::SpanTracer::nowNs();
    const std::uint64_t intervalNs =
        static_cast<std::uint64_t>(limits_.idleEvictSeconds * 1e9);
    std::uint64_t last = lastSweepNs_.load(std::memory_order_relaxed);
    if (now - last < intervalNs)
        return;
    if (!lastSweepNs_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed))
        return; // another thread claimed this sweep
    sweepIdle();
}

void
SessionManager::recordSimGauges(const std::string& id,
                                const obs::TimelineSample& sample)
{
    const double values[] = {
        sample.t,
        static_cast<double>(sample.reservedInstances +
                            sample.onDemandInstances +
                            sample.spotInstances),
        sample.utilization,
        sample.qualityP50,
        static_cast<double>(sample.queueLength),
        static_cast<double>(sample.runningJobs),
        sample.spotPrice,
        static_cast<double>(sample.qosTracked),
        sample.costTotal,
    };
    static_assert(std::size(values) == std::size(kSimGauges),
                  "one value per hcloud_sim_* gauge family");
    for (std::size_t i = 0; i < std::size(kSimGauges); ++i)
        metrics_
            .gauge(kSimGauges[i].name, kSimGauges[i].help,
                   {{"tenant", id}})
            .set(values[i]);
}

void
SessionManager::removeSimGauges(const std::string& id)
{
    for (const SimGaugeDef& def : kSimGauges)
        metrics_.remove(def.name, {{"tenant", id}});
}

void
SessionManager::countJob(const std::string& id)
{
    metrics_
        .counter("hcloud_serve_jobs_submitted_total",
                 "Jobs submitted per tenant", {{"tenant", id}})
        .inc();
}

void
SessionManager::countDecisions(const std::string& id, std::uint64_t n)
{
    if (n == 0)
        return;
    metrics_
        .counter("hcloud_serve_decisions_total",
                 "Provisioning decisions observed per tenant",
                 {{"tenant", id}})
        .inc(static_cast<double>(n));
}

std::size_t
SessionManager::sessionCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

std::size_t
SessionManager::liveCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return liveCount_;
}

std::vector<std::string>
SessionManager::tenantIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
}

std::vector<SessionManager::SessionStatus>
SessionManager::status() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SessionStatus> out;
    out.reserve(order_.size());
    for (const std::string& id : order_) {
        const auto it = sessions_.find(id);
        if (it == sessions_.end())
            continue;
        SessionStatus row;
        row.id = id;
        row.shard = it->second.shard;
        row.evicted = it->second.evicted;
        if (const EngineSession* session = it->second.session.get()) {
            const EngineSession::LiveStats& live = session->liveStats();
            row.ready = true;
            row.now = live.now.load(std::memory_order_relaxed);
            row.jobs = live.jobs.load(std::memory_order_relaxed);
            row.finished = live.finished.load(std::memory_order_relaxed);
            row.decisions =
                live.decisions.load(std::memory_order_relaxed);
            row.timelineSamples =
                live.timelineSamples.load(std::memory_order_relaxed);
            if (const SessionJournal* journal = session->journal())
                row.journalBytes = journal->bytes();
        }
        out.push_back(std::move(row));
    }
    return out;
}

SessionManager::LifecycleStats
SessionManager::lifecycleStats() const
{
    LifecycleStats stats;
    stats.restored = restored_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.revivals = revivals_.load(std::memory_order_relaxed);
    stats.deletes = deletes_.load(std::memory_order_relaxed);
    stats.admissionRejects =
        admissionRejects_.load(std::memory_order_relaxed);
    stats.truncatedLines =
        truncatedLines_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace hcloud::srv
