#include "srv/session_manager.hpp"

namespace hcloud::srv {

SessionManager::SessionManager(runtime::ThreadPool& pool,
                               std::size_t shards,
                               obs::ProcessMetrics& metrics)
    : executor_(pool, shards), metrics_(metrics)
{
}

SessionManager::~SessionManager()
{
    executor_.drain();
}

std::string
SessionManager::create(SessionConfig config)
{
    std::size_t shard;
    {
        // Reserve identity first so concurrent creates can't collide;
        // the map slot itself is only filled once the engine is built.
        std::lock_guard<std::mutex> lock(mutex_);
        if (config.id.empty())
            config.id = "t-" + std::to_string(nextSeq_ + 1);
        if (sessions_.count(config.id) != 0)
            throw ApiError{409, "duplicate_tenant",
                           "tenant \"" + config.id +
                               "\" already exists"};
        shard = static_cast<std::size_t>(nextSeq_) % executor_.shards();
        ++nextSeq_;
        // Claim the id with an empty entry; with() treats a session
        // still under construction as not ready.
        sessions_[config.id] = Entry{nullptr, shard};
        order_.push_back(config.id);
    }

    const std::string id = config.id;
    auto session = std::make_unique<EngineSession>(std::move(config));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sessions_[id].session = std::move(session);
    }

    metrics_.gauge("hcloud_serve_sessions", "Live tenant sessions")
        .add(1.0);
    metrics_
        .counter("hcloud_serve_tenants_created_total",
                 "Tenant sessions created since startup")
        .inc();
    // Touch the per-tenant families at creation so a scrape shows the
    // tenant even before its first job.
    metrics_.counter("hcloud_serve_jobs_submitted_total",
                     "Jobs submitted per tenant", {{"tenant", id}});
    metrics_.counter("hcloud_serve_decisions_total",
                     "Provisioning decisions observed per tenant",
                     {{"tenant", id}});
    return id;
}

SessionManager::Entry*
SessionManager::find(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return nullptr;
    if (!it->second.session)
        throw ApiError{409, "tenant_initializing",
                       "tenant \"" + id + "\" is still initializing"};
    return &it->second;
}

void
SessionManager::countJob(const std::string& id)
{
    metrics_
        .counter("hcloud_serve_jobs_submitted_total",
                 "Jobs submitted per tenant", {{"tenant", id}})
        .inc();
}

void
SessionManager::countDecisions(const std::string& id, std::uint64_t n)
{
    if (n == 0)
        return;
    metrics_
        .counter("hcloud_serve_decisions_total",
                 "Provisioning decisions observed per tenant",
                 {{"tenant", id}})
        .inc(static_cast<double>(n));
}

std::size_t
SessionManager::sessionCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

std::vector<std::string>
SessionManager::tenantIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
}

std::vector<SessionManager::SessionStatus>
SessionManager::status() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SessionStatus> out;
    out.reserve(order_.size());
    for (const std::string& id : order_) {
        const auto it = sessions_.find(id);
        if (it == sessions_.end())
            continue;
        SessionStatus row;
        row.id = id;
        row.shard = it->second.shard;
        if (const EngineSession* session = it->second.session.get()) {
            const EngineSession::LiveStats& live = session->liveStats();
            row.ready = true;
            row.now = live.now.load(std::memory_order_relaxed);
            row.jobs = live.jobs.load(std::memory_order_relaxed);
            row.finished = live.finished.load(std::memory_order_relaxed);
            row.decisions =
                live.decisions.load(std::memory_order_relaxed);
        }
        out.push_back(std::move(row));
    }
    return out;
}

} // namespace hcloud::srv
