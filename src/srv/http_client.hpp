/**
 * @file
 * HttpClient: minimal blocking HTTP/1.1 client for loopback use.
 *
 * Exists for the closed-loop load generator (bench_serve) and the
 * serving-layer tests: one persistent keep-alive connection per client,
 * EINTR-safe IO, Content-Length framing. Deliberately not a general
 * HTTP client — no TLS, no chunked encoding, no redirects. When the
 * server closes the connection (or on any IO error) the next request
 * transparently reconnects once.
 */

#ifndef HCLOUD_SRV_HTTP_CLIENT_HPP
#define HCLOUD_SRV_HTTP_CLIENT_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace hcloud::srv {

/** Response to one client request. */
struct ClientResponse
{
    /** False on connect/IO/parse failure; status/body then meaningless. */
    bool ok = false;
    int status = 0;
    std::string body;
};

/** One keep-alive connection to 127.0.0.1:port. Not thread-safe. */
class HttpClient
{
  public:
    explicit HttpClient(std::uint16_t port);

    ~HttpClient();

    HttpClient(const HttpClient&) = delete;
    HttpClient& operator=(const HttpClient&) = delete;

    ClientResponse get(std::string_view target);
    ClientResponse post(std::string_view target, std::string_view body,
                        std::string_view contentType =
                            "application/json");
    ClientResponse del(std::string_view target);

    /** Close the connection (next request reconnects). */
    void disconnect();

  private:
    ClientResponse request(std::string_view method,
                           std::string_view target,
                           std::string_view body,
                           std::string_view contentType);
    /** One attempt on the current connection; false = retryable. */
    bool tryOnce(const std::string& wire, ClientResponse& out);
    bool ensureConnected();

    std::uint16_t port_;
    int fd_ = -1;
};

} // namespace hcloud::srv

#endif // HCLOUD_SRV_HTTP_CLIENT_HPP
