/**
 * @file
 * Quasar facade: profiling + classification with a signature cache.
 *
 * This is the interface provisioning strategies consume (Section 3.3):
 * given a new job, return an estimate of its resource preferences — the
 * full sensitivity vector, the quality score Q it needs, and the amount
 * of resources (cores, memory) that satisfy its QoS — after a short
 * profiling delay the first time an application signature is seen
 * (5-10 s in the paper; cached afterwards). Classification itself costs
 * ~20 ms of wall-clock, tracked as a decision overhead.
 */

#ifndef HCLOUD_PROFILING_QUASAR_HPP
#define HCLOUD_PROFILING_QUASAR_HPP

#include <cstdint>
#include <map>
#include <tuple>

#include "profiling/classifier.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "workload/job.hpp"
#include "workload/sensitivity.hpp"

namespace hcloud::profiling {

/** Quasar parameters. */
struct QuasarConfig
{
    ClassifierConfig classifier{};
    /** Profiling observation noise (stddev); grows in noisy contexts. */
    double observationNoise = 0.05;
    /** Profiling run length bounds (paper: 5-10 s, first submission). */
    sim::Duration profileMin = 5.0;
    sim::Duration profileMax = 10.0;
    /** Wall-clock classification latency (paper: ~20 ms). */
    sim::Duration classificationLatency = 0.020;
    std::uint64_t seed = 11;
};

/** Resource-preference estimate for one job. */
struct Estimate
{
    workload::ResourceVector sensitivity{};
    /** Estimated quality score Q the job needs, in [0, 1]. */
    double quality = 0.0;
    /** Estimated scalar interference sensitivity. */
    double sensitivityScalar = 0.0;
    /** Estimated pressure on co-residents. */
    double pressure = 0.0;
    /** Estimated cores that satisfy QoS. */
    double cores = 1.0;
    /** Estimated memory per core in GiB. */
    double memoryPerCore = 1.5;
};

/**
 * Profiling/classification service used by the strategies.
 */
class Quasar
{
  public:
    explicit Quasar(QuasarConfig config);

    /** Bootstrap the classifier library (done lazily otherwise). */
    void warmUp();

    /**
     * Re-arm for a new run: fresh RNG stream, empty signature cache,
     * zeroed counters. The bootstrapped classifier is KEPT when the
     * classifier config is unchanged — bootstrap() is a pure function of
     * ClassifierConfig (it draws only from the classifier's own seed,
     * never the run seed), so the retained trained state is bit-identical
     * to what a fresh bootstrap would produce. This is what makes
     * engine reuse across sweep runs cheap: the ~2 ms library training
     * is paid once per engine instead of once per run.
     */
    void reset(const QuasarConfig& config);

    /** True if this job's application signature is already cached. */
    bool isCached(const workload::JobSpec& spec) const;

    /**
     * Profiling delay the job must pay before estimation: zero for cached
     * signatures, uniform in [profileMin, profileMax] otherwise.
     */
    sim::Duration profilingDelay(const workload::JobSpec& spec);

    /**
     * Estimate the job's resource preferences. Caches by signature.
     */
    const Estimate& estimate(const workload::JobSpec& spec);

    /** Adjust observation noise (noisy environments lower accuracy). */
    void setObservationNoise(double noise)
    {
        config_.observationNoise = noise;
    }

    std::size_t cacheSize() const { return cache_.size(); }
    std::size_t classifications() const { return classifications_; }
    const WorkloadClassifier& classifier() const { return classifier_; }

  private:
    /** Application signature: kind + size bucket + memory bucket. */
    using Signature = std::tuple<workload::AppKind, int, int>;

    static Signature signatureOf(const workload::JobSpec& spec);

    Estimate classifyNow(const workload::JobSpec& spec);

    QuasarConfig config_;
    WorkloadClassifier classifier_;
    sim::Rng rng_;
    std::map<Signature, Estimate> cache_;
    std::size_t classifications_ = 0;
    bool warm_ = false;
};

} // namespace hcloud::profiling

#endif // HCLOUD_PROFILING_QUASAR_HPP
