#include "profiling/signal.hpp"

#include <algorithm>

namespace hcloud::profiling {

FeatureVector
featuresOf(const workload::JobSpec& spec)
{
    FeatureVector f(kNumFeatures, 0.0);
    for (std::size_t i = 0; i < workload::kNumResources; ++i)
        f[i] = spec.sensitivity[i];
    f[kFeatureCores] = spec.coresIdeal / kCoresScale;
    f[kFeatureMemory] = spec.memoryPerCore / kMemoryScale;
    return f;
}

ProfilingSignal
profileJob(const workload::JobSpec& spec, double noise, sim::Rng& rng)
{
    // Indices observed by the two-instance-type, two-interference-source
    // profiling run: cpu (0), llc (3), mem-bw (4), net-bw (8), plus the
    // two scale features.
    static constexpr std::size_t kObserved[] = {0, 3, 4, 8, kFeatureCores,
                                                kFeatureMemory};
    const FeatureVector truth = featuresOf(spec);
    ProfilingSignal signal;
    signal.reserve(std::size(kObserved));
    for (std::size_t idx : kObserved) {
        // Scale features (cores, memory) are measured almost directly by
        // the profiling run; sensitivities carry the full noise.
        const double sigma = idx >= kFeatureCores ? 0.25 * noise : noise;
        const double v =
            std::clamp(truth[idx] + rng.normal(0.0, sigma), 0.0, 1.0);
        signal.emplace_back(idx, v);
    }
    return signal;
}

} // namespace hcloud::profiling
