/**
 * @file
 * SGD matrix factorization for collaborative filtering.
 *
 * Quasar's classification engine reconstructs missing entries of a
 * (jobs x features) matrix via PQ-style low-rank factorization. This is a
 * from-scratch implementation: biased matrix factorization trained with
 * stochastic gradient descent, plus a fold-in path that characterizes a
 * new row from a handful of observed entries with the item factors fixed.
 */

#ifndef HCLOUD_PROFILING_MATRIX_FACTORIZATION_HPP
#define HCLOUD_PROFILING_MATRIX_FACTORIZATION_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace hcloud::profiling {

/** Hyper-parameters of the factorization. */
struct MfConfig
{
    std::size_t rank = 6;
    std::size_t epochs = 60;
    double learningRate = 0.04;
    double regularization = 0.02;
    /** Fold-in iterations when completing a new row. */
    std::size_t foldInIterations = 120;
};

inline bool
operator==(const MfConfig& a, const MfConfig& b)
{
    return a.rank == b.rank && a.epochs == b.epochs &&
        a.learningRate == b.learningRate &&
        a.regularization == b.regularization &&
        a.foldInIterations == b.foldInIterations;
}

/**
 * Biased low-rank factorization R ~ mu + b_col + U V^T over the known
 * entries of a tall sparse matrix.
 */
class MatrixFactorization
{
  public:
    /**
     * @param cols Number of columns (features).
     * @param config Hyper-parameters.
     * @param seed Seed for factor initialization and SGD shuffling.
     */
    MatrixFactorization(std::size_t cols, MfConfig config,
                        std::uint64_t seed);

    /** Add a training row given its known entries; returns the row id. */
    std::size_t addRow(const std::vector<std::pair<std::size_t, double>>&
                           entries);

    std::size_t rows() const { return rowCount_; }
    std::size_t cols() const { return cols_; }

    /** Run SGD over all known entries. */
    void train();

    /** RMSE over the training entries (after train()). */
    double trainRmse() const;

    /**
     * Complete a new, unseen row from sparse observations: solves for the
     * row factor with column factors fixed, then predicts every column.
     */
    std::vector<double> completeRow(
        const std::vector<std::pair<std::size_t, double>>& observed) const;

    /** Predict a single entry of an existing training row. */
    double predict(std::size_t row, std::size_t col) const;

  private:
    struct Entry
    {
        std::size_t row;
        std::size_t col;
        double value;
    };

    double predictWith(const std::vector<double>& rowFactor,
                       std::size_t col, double rowBias) const;

    std::size_t cols_;
    MfConfig config_;
    mutable sim::Rng rng_;

    std::vector<Entry> entries_;
    std::size_t rowCount_ = 0;

    double globalMean_ = 0.0;
    std::vector<double> colBias_;
    std::vector<double> rowBias_;
    /** Row-major factors: U[r * rank + k], V[c * rank + k]. */
    std::vector<double> u_;
    std::vector<double> v_;
    bool trained_ = false;
};

} // namespace hcloud::profiling

#endif // HCLOUD_PROFILING_MATRIX_FACTORIZATION_HPP
