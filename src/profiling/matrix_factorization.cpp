#include "profiling/matrix_factorization.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace hcloud::profiling {

MatrixFactorization::MatrixFactorization(std::size_t cols, MfConfig config,
                                         std::uint64_t seed)
    : cols_(cols), config_(config), rng_(seed), colBias_(cols, 0.0)
{
    v_.resize(cols_ * config_.rank);
    for (double& x : v_)
        x = rng_.normal(0.0, 0.1);
}

std::size_t
MatrixFactorization::addRow(
    const std::vector<std::pair<std::size_t, double>>& entries)
{
    const std::size_t row = rowCount_++;
    for (const auto& [col, value] : entries) {
        assert(col < cols_);
        entries_.push_back(Entry{row, col, value});
    }
    rowBias_.push_back(0.0);
    for (std::size_t k = 0; k < config_.rank; ++k)
        u_.push_back(rng_.normal(0.0, 0.1));
    trained_ = false;
    return row;
}

void
MatrixFactorization::train()
{
    if (entries_.empty())
        return;

    globalMean_ = 0.0;
    for (const auto& e : entries_)
        globalMean_ += e.value;
    globalMean_ /= static_cast<double>(entries_.size());

    std::vector<std::size_t> order(entries_.size());
    std::iota(order.begin(), order.end(), 0);

    const double lr = config_.learningRate;
    const double reg = config_.regularization;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng_.engine());
        for (std::size_t idx : order) {
            const Entry& e = entries_[idx];
            double* uf = &u_[e.row * config_.rank];
            double* vf = &v_[e.col * config_.rank];
            double pred = globalMean_ + rowBias_[e.row] + colBias_[e.col];
            for (std::size_t k = 0; k < config_.rank; ++k)
                pred += uf[k] * vf[k];
            const double err = e.value - pred;
            rowBias_[e.row] += lr * (err - reg * rowBias_[e.row]);
            colBias_[e.col] += lr * (err - reg * colBias_[e.col]);
            for (std::size_t k = 0; k < config_.rank; ++k) {
                const double uk = uf[k];
                uf[k] += lr * (err * vf[k] - reg * uk);
                vf[k] += lr * (err * uk - reg * vf[k]);
            }
        }
    }
    trained_ = true;
}

double
MatrixFactorization::trainRmse() const
{
    if (entries_.empty())
        return 0.0;
    double sse = 0.0;
    for (const auto& e : entries_) {
        const double err = e.value - predict(e.row, e.col);
        sse += err * err;
    }
    return std::sqrt(sse / static_cast<double>(entries_.size()));
}

double
MatrixFactorization::predict(std::size_t row, std::size_t col) const
{
    assert(row < rowCount_ && col < cols_);
    double pred = globalMean_ + rowBias_[row] + colBias_[col];
    const double* uf = &u_[row * config_.rank];
    const double* vf = &v_[col * config_.rank];
    for (std::size_t k = 0; k < config_.rank; ++k)
        pred += uf[k] * vf[k];
    return pred;
}

double
MatrixFactorization::predictWith(const std::vector<double>& rowFactor,
                                 std::size_t col, double rowBias) const
{
    double pred = globalMean_ + rowBias + colBias_[col];
    const double* vf = &v_[col * config_.rank];
    for (std::size_t k = 0; k < config_.rank; ++k)
        pred += rowFactor[k] * vf[k];
    return pred;
}

std::vector<double>
MatrixFactorization::completeRow(
    const std::vector<std::pair<std::size_t, double>>& observed) const
{
    assert(trained_ && "completeRow() requires train()");
    std::vector<double> factor(config_.rank, 0.0);
    double bias = 0.0;
    const double lr = config_.learningRate;
    const double reg = config_.regularization;
    // Fold-in: gradient steps on the observed entries, V fixed.
    for (std::size_t it = 0; it < config_.foldInIterations; ++it) {
        for (const auto& [col, value] : observed) {
            const double err = value - predictWith(factor, col, bias);
            bias += lr * (err - reg * bias);
            const double* vf = &v_[col * config_.rank];
            for (std::size_t k = 0; k < config_.rank; ++k)
                factor[k] += lr * (err * vf[k] - reg * factor[k]);
        }
    }
    std::vector<double> out(cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        out[c] = predictWith(factor, c, bias);
    // Observed entries override predictions: the measurement is strictly
    // better information than the reconstruction.
    for (const auto& [col, value] : observed)
        out[col] = value;
    return out;
}

} // namespace hcloud::profiling
