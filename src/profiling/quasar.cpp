#include "profiling/quasar.hpp"

#include <algorithm>
#include <cmath>

namespace hcloud::profiling {

Quasar::Quasar(QuasarConfig config)
    : config_(config),
      classifier_(config.classifier),
      rng_(config.seed)
{
}

void
Quasar::warmUp()
{
    if (warm_)
        return;
    classifier_.bootstrap();
    warm_ = true;
}

void
Quasar::reset(const QuasarConfig& config)
{
    if (!(config.classifier == config_.classifier)) {
        classifier_ = WorkloadClassifier(config.classifier);
        warm_ = false;
    }
    config_ = config;
    rng_ = sim::Rng(config.seed);
    cache_.clear();
    classifications_ = 0;
}

Quasar::Signature
Quasar::signatureOf(const workload::JobSpec& spec)
{
    const int core_bucket =
        static_cast<int>(std::round(std::log2(std::max(spec.coresIdeal,
                                                       1.0))));
    const int mem_bucket = static_cast<int>(spec.memoryPerCore);
    return {spec.kind, core_bucket, mem_bucket};
}

bool
Quasar::isCached(const workload::JobSpec& spec) const
{
    return cache_.find(signatureOf(spec)) != cache_.end();
}

sim::Duration
Quasar::profilingDelay(const workload::JobSpec& spec)
{
    if (isCached(spec))
        return 0.0;
    return rng_.uniform(config_.profileMin, config_.profileMax);
}

Estimate
Quasar::classifyNow(const workload::JobSpec& spec)
{
    warmUp();
    ++classifications_;
    const ProfilingSignal signal =
        profileJob(spec, config_.observationNoise, rng_);
    const FeatureVector f = classifier_.classify(signal);

    Estimate e;
    for (std::size_t i = 0; i < workload::kNumResources; ++i)
        e.sensitivity[i] = f[i];
    e.quality = workload::qualityScore(e.sensitivity);
    e.sensitivityScalar =
        workload::interferenceSensitivity(e.sensitivity);
    e.pressure = workload::pressureScalar(e.sensitivity);
    // Round the size estimate conservatively upward: undersizing a
    // latency-critical service saturates it, which is far costlier than
    // a slightly generous allocation.
    e.cores = std::clamp(std::ceil(f[kFeatureCores] * kCoresScale - 0.25),
                         1.0, 16.0);
    e.memoryPerCore =
        std::clamp(f[kFeatureMemory] * kMemoryScale, 0.5, 6.0);
    return e;
}

const Estimate&
Quasar::estimate(const workload::JobSpec& spec)
{
    const Signature sig = signatureOf(spec);
    auto it = cache_.find(sig);
    if (it == cache_.end())
        it = cache_.emplace(sig, classifyNow(spec)).first;
    return it->second;
}

} // namespace hcloud::profiling
