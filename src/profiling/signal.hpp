/**
 * @file
 * Profiling signal: the sparse observation a short profiling run yields.
 *
 * Quasar profiles a new job on two instance types while injecting
 * interference in two shared resources (e.g. LLC and network bandwidth).
 * That produces noisy observations of a handful of entries of the job's
 * feature vector; classification completes the rest.
 *
 * Feature-space layout (kNumFeatures columns):
 *   [0, kNumResources)  per-resource sensitivity c_i,
 *   kFeatureCores       ideal parallelism, normalized by 16 vCPUs,
 *   kFeatureMemory      memory per core, normalized by 6 GiB.
 */

#ifndef HCLOUD_PROFILING_SIGNAL_HPP
#define HCLOUD_PROFILING_SIGNAL_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace hcloud::profiling {

/** Index of the normalized ideal-cores feature. */
inline constexpr std::size_t kFeatureCores = workload::kNumResources;
/** Index of the normalized memory-per-core feature. */
inline constexpr std::size_t kFeatureMemory = workload::kNumResources + 1;
/** Total feature-vector width. */
inline constexpr std::size_t kNumFeatures = workload::kNumResources + 2;

/** Normalization constants. */
inline constexpr double kCoresScale = 16.0;
inline constexpr double kMemoryScale = 6.0;

/** One observed (feature, value) pair. */
using Observation = std::pair<std::size_t, double>;

/** A sparse profiling observation of a job. */
using ProfilingSignal = std::vector<Observation>;

/** Dense feature vector of a fully-characterized job. */
using FeatureVector = std::vector<double>;

/** Build the dense (true) feature vector of a job spec. */
FeatureVector featuresOf(const workload::JobSpec& spec);

/**
 * Simulate a profiling run: observe the injected-resource sensitivities
 * (cpu, llc, mem-bw, net-bw) plus the scale features, each perturbed by
 * Gaussian noise of the given stddev.
 */
ProfilingSignal profileJob(const workload::JobSpec& spec, double noise,
                           sim::Rng& rng);

} // namespace hcloud::profiling

#endif // HCLOUD_PROFILING_SIGNAL_HPP
