/**
 * @file
 * Workload classifier: reference library + matrix-factorization engine.
 *
 * The classifier owns a library of previously-characterized jobs (rows of
 * the jobs x features matrix). New jobs are characterized by folding their
 * sparse profiling signal into the trained factorization, which transfers
 * structure from similar library jobs — Quasar's core mechanism.
 */

#ifndef HCLOUD_PROFILING_CLASSIFIER_HPP
#define HCLOUD_PROFILING_CLASSIFIER_HPP

#include <cstdint>

#include "profiling/matrix_factorization.hpp"
#include "profiling/signal.hpp"

namespace hcloud::profiling {

/** Classifier parameters. */
struct ClassifierConfig
{
    /** Size of the bootstrap reference library. */
    std::size_t referenceJobs = 150;
    MfConfig mf{};
    std::uint64_t seed = 7;
};

inline bool
operator==(const ClassifierConfig& a, const ClassifierConfig& b)
{
    return a.referenceJobs == b.referenceJobs && a.seed == b.seed &&
        a.mf == b.mf;
}

/**
 * Quasar-style workload classifier.
 */
class WorkloadClassifier
{
  public:
    explicit WorkloadClassifier(ClassifierConfig config);

    /**
     * Seed the library with synthetic reference jobs drawn from the
     * application archetypes, then train the factorization. Idempotent.
     */
    void bootstrap();

    /** Add one fully-characterized job to the library (no retraining). */
    void addLibraryJob(const FeatureVector& features);

    /** Retrain the factorization over the current library. */
    void retrain();

    /** Library size. */
    std::size_t libraryRows() const { return mf_.rows(); }

    /** Training RMSE of the current factorization. */
    double trainRmse() const { return mf_.trainRmse(); }

    /**
     * Characterize a new job from its profiling signal: returns the
     * completed dense feature vector (sensitivities clamped to [0, 1]).
     */
    FeatureVector classify(const ProfilingSignal& signal) const;

  private:
    ClassifierConfig config_;
    MatrixFactorization mf_;
    bool bootstrapped_ = false;
};

} // namespace hcloud::profiling

#endif // HCLOUD_PROFILING_CLASSIFIER_HPP
