#include "profiling/classifier.hpp"

#include <algorithm>

#include "workload/archetypes.hpp"

namespace hcloud::profiling {

WorkloadClassifier::WorkloadClassifier(ClassifierConfig config)
    : config_(config), mf_(kNumFeatures, config.mf, config.seed)
{
}

void
WorkloadClassifier::bootstrap()
{
    if (bootstrapped_)
        return;
    bootstrapped_ = true;
    sim::Rng rng(config_.seed);
    sim::Rng size_rng = rng.child("sizes");
    const std::size_t kinds = std::size(workload::kAllAppKinds);
    for (std::size_t i = 0; i < config_.referenceJobs; ++i) {
        const workload::AppKind kind = workload::kAllAppKinds[i % kinds];
        workload::JobSpec spec;
        spec.kind = kind;
        spec.sensitivity = workload::generateSensitivity(kind, rng);
        static const double kCores[] = {1, 2, 4, 8, 16};
        spec.coresIdeal = kCores[size_rng.uniformInt(0, 4)];
        spec.memoryPerCore = size_rng.uniform(0.8, 5.5);
        const FeatureVector f = featuresOf(spec);
        addLibraryJob(f);
    }
    retrain();
}

void
WorkloadClassifier::addLibraryJob(const FeatureVector& features)
{
    std::vector<std::pair<std::size_t, double>> entries;
    entries.reserve(features.size());
    for (std::size_t c = 0; c < features.size(); ++c)
        entries.emplace_back(c, features[c]);
    mf_.addRow(entries);
}

void
WorkloadClassifier::retrain()
{
    mf_.train();
}

FeatureVector
WorkloadClassifier::classify(const ProfilingSignal& signal) const
{
    FeatureVector f = mf_.completeRow(signal);
    for (double& x : f)
        x = std::clamp(x, 0.0, 1.0);
    return f;
}

} // namespace hcloud::profiling
