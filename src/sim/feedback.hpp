/**
 * @file
 * Linear-transfer-function feedback controller.
 *
 * Section 4.2 of the paper adjusts the soft utilization limit of reserved
 * instances "using a simple feedback loop with linear transfer functions"
 * driven by the job-queue length. This class is that reusable primitive:
 * a proportional controller on the error signal with slew-rate limiting
 * and output clamping, generic enough for tests to exercise in isolation.
 */

#ifndef HCLOUD_SIM_FEEDBACK_HPP
#define HCLOUD_SIM_FEEDBACK_HPP

namespace hcloud::sim {

/** Configuration of a LinearFeedbackController. */
struct FeedbackConfig
{
    /** Proportional gain applied to (setpoint - measurement). */
    double gain = 1.0;
    /** Lower clamp on the controller output. */
    double outputMin = 0.0;
    /** Upper clamp on the controller output. */
    double outputMax = 1.0;
    /** Maximum |change| of the output per update (0 = unlimited). */
    double maxStep = 0.0;
};

/**
 * Proportional feedback controller with clamping and slew limiting.
 *
 * output' = clamp(output + gain * (setpoint - measurement))
 */
class LinearFeedbackController
{
  public:
    LinearFeedbackController(FeedbackConfig config, double initialOutput);

    /**
     * Feed one measurement; returns the new output.
     *
     * @param setpoint Desired value of the measured signal.
     * @param measurement Observed value.
     */
    double update(double setpoint, double measurement);

    double output() const { return output_; }

    /** Reset the output without disturbing the configuration. */
    void reset(double output);

  private:
    FeedbackConfig config_;
    double output_;
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_FEEDBACK_HPP
