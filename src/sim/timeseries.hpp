/**
 * @file
 * Time-indexed measurement containers.
 *
 *  - TimeWeightedStat: integrates a piecewise-constant signal over
 *    simulated time (the right notion of "average utilization").
 *  - StepSeries: records (time, value) breakpoints of a piecewise-constant
 *    signal for later resampling — used for the allocation/utilization
 *    figures.
 */

#ifndef HCLOUD_SIM_TIMESERIES_HPP
#define HCLOUD_SIM_TIMESERIES_HPP

#include <vector>

#include "sim/types.hpp"

namespace hcloud::sim {

/**
 * Time-weighted average of a piecewise-constant signal.
 *
 * The signal starts at the value supplied to the constructor; record(t, v)
 * closes the previous segment at t and starts a new one at value v.
 */
class TimeWeightedStat
{
  public:
    explicit TimeWeightedStat(Time start = 0.0, double initial = 0.0);

    /** Change the signal value at time @p t (t must be monotone). */
    void record(Time t, double value);

    /** Current signal value. */
    double value() const { return value_; }

    /** Time-weighted mean over [start, t]. */
    double average(Time t) const;

    /** Integral of the signal over [start, t]. */
    double integral(Time t) const;

    /** Largest value ever recorded (including the initial value). */
    double peak() const { return peak_; }

  private:
    Time start_;
    Time lastTime_;
    double value_;
    double area_ = 0.0;
    double peak_;
};

/**
 * Recorded breakpoints of a piecewise-constant signal, resamplable on a
 * fixed grid for plotting.
 */
class StepSeries
{
  public:
    struct Point
    {
        Time t;
        double v;
    };

    /** Append a breakpoint; times must be non-decreasing. */
    void record(Time t, double v);

    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }
    const std::vector<Point>& points() const { return points_; }

    /** Signal value at time t (value of the latest breakpoint <= t). */
    double at(Time t) const;

    /**
     * Resample on a uniform grid of @p n points covering [t0, t1].
     */
    std::vector<Point> resample(Time t0, Time t1, std::size_t n) const;

    /** Time-weighted average of the signal over [t0, t1]. */
    double average(Time t0, Time t1) const;

    /** Maximum breakpoint value in [t0, t1]. */
    double maxOver(Time t0, Time t1) const;

  private:
    std::vector<Point> points_;
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_TIMESERIES_HPP
