#include "sim/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace hcloud::sim {

TimeWeightedStat::TimeWeightedStat(Time start, double initial)
    : start_(start), lastTime_(start), value_(initial), peak_(initial)
{
}

void
TimeWeightedStat::record(Time t, double value)
{
    assert(t >= lastTime_ && "time must be monotone");
    area_ += value_ * (t - lastTime_);
    lastTime_ = t;
    value_ = value;
    peak_ = std::max(peak_, value);
}

double
TimeWeightedStat::average(Time t) const
{
    const Duration span = t - start_;
    if (span <= 0.0)
        return value_;
    return integral(t) / span;
}

double
TimeWeightedStat::integral(Time t) const
{
    assert(t >= lastTime_);
    return area_ + value_ * (t - lastTime_);
}

void
StepSeries::record(Time t, double v)
{
    assert((points_.empty() || t >= points_.back().t) &&
           "time must be non-decreasing");
    // Collapse same-time updates: the last write wins.
    if (!points_.empty() && points_.back().t == t) {
        points_.back().v = v;
        return;
    }
    points_.push_back({t, v});
}

double
StepSeries::at(Time t) const
{
    if (points_.empty() || t < points_.front().t)
        return 0.0;
    // Find the latest breakpoint <= t.
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](Time lhs, const Point& rhs) { return lhs < rhs.t; });
    return (it - 1)->v;
}

double
StepSeries::average(Time t0, Time t1) const
{
    if (t1 <= t0)
        return at(t0);
    double area = 0.0;
    Time cursor = t0;
    double value = at(t0);
    for (const Point& p : points_) {
        if (p.t <= t0)
            continue;
        if (p.t >= t1)
            break;
        area += value * (p.t - cursor);
        cursor = p.t;
        value = p.v;
    }
    area += value * (t1 - cursor);
    return area / (t1 - t0);
}

double
StepSeries::maxOver(Time t0, Time t1) const
{
    double best = at(t0);
    for (const Point& p : points_) {
        if (p.t < t0 || p.t > t1)
            continue;
        best = std::max(best, p.v);
    }
    return best;
}

std::vector<StepSeries::Point>
StepSeries::resample(Time t0, Time t1, std::size_t n) const
{
    std::vector<Point> out;
    if (n == 0)
        return out;
    out.reserve(n);
    const Duration step = n > 1 ? (t1 - t0) / static_cast<double>(n - 1)
                                : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const Time t = t0 + step * static_cast<double>(i);
        out.push_back({t, at(t)});
    }
    return out;
}

} // namespace hcloud::sim
