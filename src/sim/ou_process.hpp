/**
 * @file
 * Ornstein–Uhlenbeck process sampler.
 *
 * Used as the temporal component of instance quality and for external load
 * fluctuation: a mean-reverting random walk is the standard minimal model
 * for "noisy around a level" signals, and exposes exactly two intuitive
 * knobs — relaxation time and stationary standard deviation.
 */

#ifndef HCLOUD_SIM_OU_PROCESS_HPP
#define HCLOUD_SIM_OU_PROCESS_HPP

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hcloud::sim {

/**
 * Exact-discretization Ornstein–Uhlenbeck process:
 *
 *   dX = theta (mu - X) dt + sigma dW
 *
 * advanced with the closed-form transition density, so step size does not
 * bias the statistics.
 */
class OuProcess
{
  public:
    /**
     * @param mean Long-run mean mu.
     * @param relaxation Time constant 1/theta (seconds to decorrelate).
     * @param stationaryStddev Standard deviation of the stationary
     *        distribution.
     * @param rng Random stream (owned by the caller's composition root,
     *        copied here).
     * @param initial Starting value; defaults to the mean.
     */
    OuProcess(double mean, Duration relaxation, double stationaryStddev,
              Rng rng, double initial);

    OuProcess(double mean, Duration relaxation, double stationaryStddev,
              Rng rng);

    /** Advance the process to absolute time @p t and return X(t). */
    double advanceTo(Time t);

    /** Last sampled value without advancing. */
    double value() const { return x_; }

    double mean() const { return mean_; }
    double stationaryStddev() const { return stddev_; }

  private:
    double mean_;
    double theta_;
    double stddev_;
    Rng rng_;
    double x_;
    Time lastTime_ = 0.0;
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_OU_PROCESS_HPP
