/**
 * @file
 * Pending-event set for the discrete-event simulation kernel.
 *
 * Events are (time, sequence, callback) triples. The monotonically
 * increasing sequence number breaks ties so that events scheduled for the
 * same instant fire in scheduling order, which keeps runs deterministic.
 *
 * The implementation is allocation-free on the common path: callbacks
 * live in a small-buffer-optimized InlineFunction (heap fallback only for
 * oversized captures, counted in heapCallbacks()), and event records come
 * from a slab with an intrusive free list. Handles are generation-counted
 * (queue pointer, slot, generation) so cancellation needs no shared
 * control block: firing or cancelling bumps the slot's generation, which
 * simultaneously invalidates stale handles and stale heap entries, and a
 * recycled slot can never resurrect an old handle. The binary heap holds
 * plain 24-byte entries; cancelled events are dropped lazily when they
 * reach the top.
 */

#ifndef HCLOUD_SIM_EVENT_QUEUE_HPP
#define HCLOUD_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/types.hpp"

namespace hcloud::sim {

/**
 * Inline storage budget for event callbacks. Sized for the engine's
 * largest scheduling capture (the arrival closure: seven references plus
 * an index, 64 bytes); anything larger spills to the heap and shows up in
 * EventQueue::heapCallbacks(), which tests pin to zero.
 */
inline constexpr std::size_t kEventCallbackCapacity = 64;

/** Callback invoked when an event fires. */
using EventCallback = InlineFunction<void(), kEventCallbackCapacity>;

class EventQueue;

/**
 * Handle to a scheduled event, used for cancellation.
 *
 * Handles are trivially copyable; all copies refer to the same event. A
 * default-constructed handle refers to nothing and is never pending.
 * Handles must not outlive the queue that issued them.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event has neither fired nor been cancelled. */
    bool pending() const;

    /**
     * Cancel the event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel();

  private:
    friend class EventQueue;

    EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
        : queue_(queue), slot_(slot), gen_(gen)
    {
    }

    EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * Time-ordered pending-event set.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /**
     * Insert an event.
     *
     * @param when Absolute simulated time at which to fire.
     * @param cb Callback to invoke.
     * @return Handle usable to cancel the event.
     */
    EventHandle push(Time when, EventCallback cb);

    /** True if no live (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live events. */
    std::size_t size() const { return live_; }

    /** Time of the earliest live event, or kTimeNever if empty. */
    Time nextTime() const;

    /**
     * Pop and return the earliest live event.
     * @pre !empty()
     */
    std::pair<Time, EventCallback> pop();

    /** Drop every pending event. */
    void clear();

    /** Pushes whose callback spilled to the heap (oversized capture). */
    std::uint64_t heapCallbacks() const { return heapCallbacks_; }

    /** Event records ever allocated (slab high-water mark). */
    std::size_t slabSize() const { return slab_.size(); }

  private:
    friend class EventHandle;

    /** Slab-resident event record; the slot index is its identity. */
    struct Record
    {
        EventCallback cb;
        /** Bumped when the slot is freed; stale handles/entries show a
         *  mismatching generation and are ignored/skipped. */
        std::uint32_t gen = 0;
        /** True from push until the event fires or is cancelled. */
        bool live = false;
    };

    /** Heap element: ordering key plus a generation-checked slot ref. */
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Min-heap on (when, seq): a fires strictly after b. */
    static bool
    later(const Entry& a, const Entry& b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    bool slotPending(std::uint32_t slot, std::uint32_t gen) const;
    bool cancelSlot(std::uint32_t slot, std::uint32_t gen);

    /** Release a slot: destroy the callback, invalidate handles/entries. */
    void freeSlot(std::uint32_t slot);

    /** Discard stale entries sitting at the top of the heap. */
    void skipDead() const;

    mutable std::vector<Entry> heap_;
    std::vector<Record> slab_;
    std::vector<std::uint32_t> freeSlots_;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
    std::uint64_t heapCallbacks_ = 0;
};

inline bool
EventHandle::pending() const
{
    return queue_ && queue_->slotPending(slot_, gen_);
}

inline bool
EventHandle::cancel()
{
    return queue_ && queue_->cancelSlot(slot_, gen_);
}

} // namespace hcloud::sim

#endif // HCLOUD_SIM_EVENT_QUEUE_HPP
