/**
 * @file
 * Pending-event set for the discrete-event simulation kernel.
 *
 * Events are (time, sequence, callback) triples kept in a binary heap.
 * The monotonically increasing sequence number breaks ties so that events
 * scheduled for the same instant fire in scheduling order, which keeps runs
 * deterministic. Cancellation is supported through lightweight handles and
 * lazy deletion (cancelled events stay in the heap and are skipped on pop).
 */

#ifndef HCLOUD_SIM_EVENT_QUEUE_HPP
#define HCLOUD_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace hcloud::sim {

/** Callback invoked when an event fires. */
using EventCallback = std::function<void()>;

/**
 * Handle to a scheduled event, used for cancellation.
 *
 * Handles are cheap to copy; all copies refer to the same event. A default-
 * constructed handle refers to nothing and is never pending.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event has neither fired nor been cancelled. */
    bool pending() const { return state_ && !state_->done; }

    /**
     * Cancel the event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel();

  private:
    friend class EventQueue;

    struct State
    {
        bool done = false;
        std::shared_ptr<std::size_t> live;
    };

    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<State> state_;
};

/**
 * Time-ordered pending-event set.
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /**
     * Insert an event.
     *
     * @param when Absolute simulated time at which to fire.
     * @param cb Callback to invoke.
     * @return Handle usable to cancel the event.
     */
    EventHandle push(Time when, EventCallback cb);

    /** True if no live (non-cancelled) events remain. */
    bool empty() const { return *live_ == 0; }

    /** Number of live events. */
    std::size_t size() const { return *live_; }

    /** Time of the earliest live event, or kTimeNever if empty. */
    Time nextTime() const;

    /**
     * Pop and return the earliest live event.
     * @pre !empty()
     */
    std::pair<Time, EventCallback> pop();

    /** Drop every pending event. */
    void clear();

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        EventCallback cb;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Discard cancelled entries sitting at the top of the heap. */
    void skipDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    std::shared_ptr<std::size_t> live_;
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_EVENT_QUEUE_HPP
