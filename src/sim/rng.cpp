#include "sim/rng.hpp"

#include <cmath>
#include <vector>

namespace hcloud::sim {

namespace {

/** SplitMix64 finalizer: good avalanche, cheap, stable across platforms. */
std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over a string label. */
std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed), engine_(splitMix64(seed))
{
}

Rng
Rng::child(std::string_view label) const
{
    return Rng(splitMix64(seed_ ^ fnv1a(label)));
}

Rng
Rng::child(std::uint64_t key) const
{
    return Rng(splitMix64(seed_ ^ splitMix64(key ^ 0xa5a5a5a5a5a5a5a5ULL)));
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double
Rng::lognormalFromQuantiles(double median, double p95)
{
    // For X ~ LogNormal(mu, sigma): median = e^mu, p95 = e^(mu+1.6449*sigma).
    const double mu = std::log(median);
    const double sigma = (std::log(p95) - mu) / 1.6448536269514722;
    return lognormal(mu, std::max(sigma, 1e-9));
}

double
Rng::exponential(double mean)
{
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return std::bernoulli_distribution(p)(engine_);
}

double
Rng::beta(double a, double b)
{
    std::gamma_distribution<double> ga(a, 1.0);
    std::gamma_distribution<double> gb(b, 1.0);
    const double x = ga(engine_);
    const double y = gb(engine_);
    const double s = x + y;
    return s > 0.0 ? x / s : 0.5;
}

double
Rng::pareto(double scale, double shape)
{
    const double u = uniform(std::numeric_limits<double>::min(), 1.0);
    return scale / std::pow(u, 1.0 / shape);
}

std::size_t
Rng::weightedIndex(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    double r = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
}

} // namespace hcloud::sim
