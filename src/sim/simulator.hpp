/**
 * @file
 * Discrete-event simulator: clock plus event loop.
 *
 * The simulator owns the clock and an EventQueue. Client code schedules
 * callbacks at absolute times or relative delays and then drives the loop
 * with run(), runUntil() or step(). Periodic activities (monitoring,
 * feedback controllers) use schedulePeriodic(), which reschedules itself
 * until cancelled or until the predicate asks to stop.
 */

#ifndef HCLOUD_SIM_SIMULATOR_HPP
#define HCLOUD_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace hcloud::sim {

/**
 * The discrete-event simulation kernel.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time in seconds. */
    Time now() const { return now_; }

    /** Schedule @p cb at absolute time @p when (must be >= now). */
    EventHandle at(Time when, EventCallback cb);

    /** Schedule @p cb after @p delay seconds (must be >= 0). */
    EventHandle after(Duration delay, EventCallback cb);

    /**
     * Schedule a periodic callback every @p period seconds, first firing
     * after one period. The callback returns true to keep running, false
     * to stop. Returns a handle cancelling the *next* occurrence; once
     * cancelled the chain ends.
     */
    void every(Duration period, std::function<bool()> cb);

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /**
     * Scheduled callbacks that spilled to the heap because their capture
     * exceeded the inline buffer. Zero for every engine-sized callback;
     * tests pin this so capture growth fails loudly instead of silently
     * reintroducing per-event allocations.
     */
    std::uint64_t callbackHeapAllocs() const
    {
        return queue_.heapCallbacks();
    }

    /** True if no events are pending. */
    bool idle() const { return queue_.empty(); }

    /** Time of the next pending event (kTimeNever when idle). */
    Time nextEventTime() const { return queue_.nextTime(); }

    /** Execute the single earliest event. @return false if idle. */
    bool step();

    /**
     * Run until the queue drains or the clock passes @p until.
     * Events at exactly @p until are executed. The clock is advanced to
     * @p until even if the queue drains earlier (when until is finite).
     */
    void runUntil(Time until);

    /** Run until the event queue drains completely. */
    void run();

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    EventQueue queue_;
    Time now_ = 0.0;
    std::uint64_t eventsRun_ = 0;
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_SIMULATOR_HPP
