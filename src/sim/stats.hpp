/**
 * @file
 * Statistics containers used by the metrics and reporting layers.
 *
 *  - OnlineStats: streaming count/mean/variance/min/max (Welford).
 *  - SampleSet: stores samples, answers arbitrary quantiles, boxplot
 *    summaries (p5/p25/mean/p75/p95 as drawn in the paper's figures) and
 *    empirical CDFs.
 *  - Histogram: fixed-width binning for utilization heatmaps.
 */

#ifndef HCLOUD_SIM_STATS_HPP
#define HCLOUD_SIM_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace hcloud::sim {

/**
 * Streaming moments via Welford's algorithm: O(1) memory.
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats& other);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Five-number summary matching the paper's boxplots: whiskers at p5/p95,
 * box at p25/p75, horizontal line at the mean.
 */
struct BoxplotSummary
{
    double p5 = 0.0;
    double p25 = 0.0;
    double mean = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
    std::size_t count = 0;
};

/**
 * Sample container with quantile queries.
 *
 * Samples are stored verbatim; quantiles use linear interpolation between
 * order statistics (type-7, the numpy default). Sorting is deferred and
 * cached until the next insertion.
 */
class SampleSet
{
  public:
    SampleSet() = default;

    /** Add one sample. */
    void add(double x);

    /** Add many samples. */
    void addAll(const std::vector<double>& xs);

    /** Merge another sample set into this one. */
    void merge(const SampleSet& other);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    double min() const;
    double max() const;

    /**
     * Quantile in [0, 1] with linear interpolation.
     * Returns 0.0 on an empty set, matching min()/max().
     */
    double quantile(double q) const;

    /** Shorthand percentile accessor, p in [0, 100]. */
    double percentile(double p) const { return quantile(p / 100.0); }

    /** Five-number boxplot summary. */
    BoxplotSummary boxplot() const;

    /** Fraction of samples <= x (empirical CDF). */
    double cdf(double x) const;

    /** Sorted copy of the samples. */
    const std::vector<double>& sorted() const;

    /** Raw samples in insertion order. */
    const std::vector<double>& raw() const { return samples_; }

    /** Remove all samples. */
    void clear();

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

/**
 * Fixed-width histogram over [lo, hi); out-of-range values clamp into the
 * first/last bin.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the range.
     * @param hi Exclusive upper bound of the range.
     * @param bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x, double weight = 1.0);

    std::size_t bins() const { return counts_.size(); }
    double binWidth() const { return width_; }
    double binLow(std::size_t i) const { return lo_ + width_ * i; }
    double count(std::size_t i) const { return counts_[i]; }
    double total() const { return total_; }

    /** Fraction of mass in bin i (0 when empty). */
    double fraction(std::size_t i) const;

  private:
    double lo_;
    double width_;
    double total_ = 0.0;
    std::vector<double> counts_;
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_STATS_HPP
