#include "sim/ou_process.hpp"

#include <cassert>
#include <cmath>

namespace hcloud::sim {

OuProcess::OuProcess(double mean, Duration relaxation,
                     double stationaryStddev, Rng rng, double initial)
    : mean_(mean),
      theta_(relaxation > 0.0 ? 1.0 / relaxation : 1e9),
      stddev_(stationaryStddev),
      rng_(rng),
      x_(initial)
{
}

OuProcess::OuProcess(double mean, Duration relaxation,
                     double stationaryStddev, Rng rng)
    : OuProcess(mean, relaxation, stationaryStddev, rng, mean)
{
}

double
OuProcess::advanceTo(Time t)
{
    assert(t >= lastTime_ && "OU process cannot run backwards");
    const Duration dt = t - lastTime_;
    if (dt <= 0.0)
        return x_;
    lastTime_ = t;
    // Exact transition: X(t+dt) ~ N(mu + (X-mu) e^{-theta dt},
    //                               sigma^2 (1 - e^{-2 theta dt})).
    const double decay = std::exp(-theta_ * dt);
    const double m = mean_ + (x_ - mean_) * decay;
    const double s = stddev_ * std::sqrt(1.0 - decay * decay);
    x_ = s > 0.0 ? rng_.normal(m, s) : m;
    return x_;
}

} // namespace hcloud::sim
