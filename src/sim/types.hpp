/**
 * @file
 * Basic simulation-wide type aliases and time helpers.
 *
 * Simulated time is kept in double-precision seconds. All modules agree on
 * this unit; helpers below make intent explicit at call sites.
 */

#ifndef HCLOUD_SIM_TYPES_HPP
#define HCLOUD_SIM_TYPES_HPP

#include <cstdint>
#include <limits>

namespace hcloud::sim {

/** Simulated time point, in seconds since simulation start. */
using Time = double;

/** Simulated duration, in seconds. */
using Duration = double;

/** Sentinel for "never" / "not yet scheduled". */
inline constexpr Time kTimeNever = std::numeric_limits<Time>::infinity();

/** Convert minutes to simulated seconds. */
constexpr Duration minutes(double m) { return m * 60.0; }

/** Convert hours to simulated seconds. */
constexpr Duration hours(double h) { return h * 3600.0; }

/** Convert days to simulated seconds. */
constexpr Duration days(double d) { return d * 86400.0; }

/** Convert weeks to simulated seconds. */
constexpr Duration weeks(double w) { return w * 7.0 * 86400.0; }

/** Monotonically increasing identifier types. */
using JobId = std::uint64_t;
using InstanceId = std::uint64_t;
using MachineId = std::uint64_t;

} // namespace hcloud::sim

#endif // HCLOUD_SIM_TYPES_HPP
