#include "sim/event_queue.hpp"

#include <cassert>

namespace hcloud::sim {

bool
EventHandle::cancel()
{
    if (!pending())
        return false;
    state_->done = true;
    if (state_->live)
        --(*state_->live);
    return true;
}

EventQueue::EventQueue()
    : live_(std::make_shared<std::size_t>(0))
{
}

EventHandle
EventQueue::push(Time when, EventCallback cb)
{
    auto state = std::make_shared<EventHandle::State>();
    state->live = live_;
    heap_.push(Entry{when, nextSeq_++, std::move(cb), state});
    ++(*live_);
    return EventHandle(std::move(state));
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && heap_.top().state->done)
        heap_.pop();
}

Time
EventQueue::nextTime() const
{
    skipDead();
    return heap_.empty() ? kTimeNever : heap_.top().when;
}

std::pair<Time, EventCallback>
EventQueue::pop()
{
    skipDead();
    assert(!heap_.empty() && "pop() on empty event queue");
    // priority_queue::top() is const; the entry is moved out via const_cast,
    // which is safe because the element is popped immediately afterwards.
    Entry& top = const_cast<Entry&>(heap_.top());
    Time when = top.when;
    EventCallback cb = std::move(top.cb);
    top.state->done = true;
    --(*live_);
    heap_.pop();
    return {when, std::move(cb)};
}

void
EventQueue::clear()
{
    while (!heap_.empty()) {
        heap_.top().state->done = true;
        heap_.pop();
    }
    *live_ = 0;
}

} // namespace hcloud::sim
