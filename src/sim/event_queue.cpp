#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace hcloud::sim {

EventHandle
EventQueue::push(Time when, EventCallback cb)
{
    if (cb.onHeap())
        ++heapCallbacks_;
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
    }
    Record& record = slab_[slot];
    record.cb = std::move(cb);
    record.live = true;
    heap_.push_back(Entry{when, nextSeq_++, slot, record.gen});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++live_;
    return EventHandle(this, slot, record.gen);
}

bool
EventQueue::slotPending(std::uint32_t slot, std::uint32_t gen) const
{
    return slot < slab_.size() && slab_[slot].gen == gen &&
        slab_[slot].live;
}

bool
EventQueue::cancelSlot(std::uint32_t slot, std::uint32_t gen)
{
    if (!slotPending(slot, gen))
        return false;
    // The heap entry stays behind; freeing bumps the generation, so the
    // stale entry is skipped lazily once it reaches the top.
    freeSlot(slot);
    --live_;
    return true;
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record& record = slab_[slot];
    record.cb = EventCallback();
    record.live = false;
    ++record.gen;
    freeSlots_.push_back(slot);
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty()) {
        const Entry& top = heap_.front();
        if (slab_[top.slot].gen == top.gen)
            break;
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
    }
}

Time
EventQueue::nextTime() const
{
    skipDead();
    return heap_.empty() ? kTimeNever : heap_.front().when;
}

std::pair<Time, EventCallback>
EventQueue::pop()
{
    skipDead();
    assert(!heap_.empty() && "pop() on empty event queue");
    const Entry top = heap_.front();
    Record& record = slab_[top.slot];
    assert(record.live);
    EventCallback cb = std::move(record.cb);
    freeSlot(top.slot);
    --live_;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    return {top.when, std::move(cb)};
}

void
EventQueue::clear()
{
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(slab_.size()); ++slot) {
        if (slab_[slot].live)
            freeSlot(slot);
    }
    heap_.clear();
    live_ = 0;
}

} // namespace hcloud::sim
