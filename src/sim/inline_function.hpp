/**
 * @file
 * Small-buffer-optimized move-only callable for the DES hot path.
 *
 * std::function performs a heap allocation for any callable larger than
 * its tiny internal buffer (16 bytes in libstdc++), which puts two
 * allocations on every scheduled event (the callable plus the handle
 * state). InlineFunction stores callables up to @p Capacity bytes in
 * place and only falls back to the heap for oversized or potentially
 * throwing-move types. The event queue counts those fallbacks so tests
 * can pin the common path to zero allocations.
 */

#ifndef HCLOUD_SIM_INLINE_FUNCTION_HPP
#define HCLOUD_SIM_INLINE_FUNCTION_HPP

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hcloud::sim {

/**
 * Move-only callable with @p Capacity bytes of inline storage.
 *
 * @tparam Capacity Inline buffer size in bytes. Callables that fit (and
 *         are nothrow-move-constructible, so container growth keeps the
 *         strong guarantee) are stored in place; anything else lives on
 *         the heap behind a pointer kept in the buffer.
 */
template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <std::size_t Capacity, typename R, typename... Args>
class InlineFunction<R(Args...), Capacity>
{
  public:
    /** True when a callable of type @p F is stored without allocating. */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    InlineFunction() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D&, Args...>>>
    InlineFunction(F&& f) // NOLINT(google-explicit-constructor)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            ::new (static_cast<void*>(buffer_))
                D*(new D(std::forward<F>(f)));
            ops_ = &heapOps<D>;
        }
    }

    InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(other.buffer_, buffer_);
            other.ops_ = nullptr;
        }
    }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(other.buffer_, buffer_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** True when the held callable required a heap allocation. */
    bool onHeap() const { return ops_ && ops_->heap; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(buffer_, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void*, Args&&...);
        /** Move the callable from @p src storage into @p dst storage and
         *  destroy the source ("destructive move"). */
        void (*relocate)(void* src, void* dst);
        void (*destroy)(void*);
        bool heap;
    };

    template <typename F>
    static constexpr Ops inlineOps = {
        [](void* s, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<F*>(s)))(
                std::forward<Args>(args)...);
        },
        [](void* src, void* dst) {
            F* f = std::launder(reinterpret_cast<F*>(src));
            ::new (dst) F(std::move(*f));
            f->~F();
        },
        [](void* s) { std::launder(reinterpret_cast<F*>(s))->~F(); },
        /*heap=*/false,
    };

    template <typename F>
    static constexpr Ops heapOps = {
        [](void* s, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<F**>(s)))(
                std::forward<Args>(args)...);
        },
        [](void* src, void* dst) {
            F** p = std::launder(reinterpret_cast<F**>(src));
            ::new (dst) F*(*p);
        },
        [](void* s) { delete *std::launder(reinterpret_cast<F**>(s)); },
        /*heap=*/true,
    };

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buffer_);
            ops_ = nullptr;
        }
    }

    static_assert(Capacity >= sizeof(void*),
                  "buffer must at least hold the heap fallback pointer");

    const Ops* ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buffer_[Capacity];
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_INLINE_FUNCTION_HPP
