#include "sim/simulator.hpp"

#include <cassert>
#include <cmath>
#include <memory>

namespace hcloud::sim {

EventHandle
Simulator::at(Time when, EventCallback cb)
{
    assert(when >= now_ && "cannot schedule event in the past");
    return queue_.push(when, std::move(cb));
}

EventHandle
Simulator::after(Duration delay, EventCallback cb)
{
    assert(delay >= 0.0 && "negative delay");
    return queue_.push(now_ + delay, std::move(cb));
}

void
Simulator::every(Duration period, std::function<bool()> cb)
{
    assert(period > 0.0 && "period must be positive");
    // Self-rescheduling closure; holds the callback by shared_ptr so the
    // chain owns it across occurrences.
    auto shared = std::make_shared<std::function<bool()>>(std::move(cb));
    struct Chain
    {
        Simulator* simulator;
        Duration period;
        std::shared_ptr<std::function<bool()>> body;

        void
        operator()() const
        {
            if ((*body)())
                simulator->after(period, Chain{*this});
        }
    };
    after(period, Chain{this, period, shared});
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    auto [when, cb] = queue_.pop();
    assert(when >= now_);
    now_ = when;
    ++eventsRun_;
    cb();
    return true;
}

void
Simulator::runUntil(Time until)
{
    while (!queue_.empty() && queue_.nextTime() <= until)
        step();
    if (std::isfinite(until) && until > now_)
        now_ = until;
}

void
Simulator::run()
{
    while (step()) {
    }
}

void
Simulator::reset()
{
    queue_.clear();
    now_ = 0.0;
    eventsRun_ = 0;
}

} // namespace hcloud::sim
