#include "sim/feedback.hpp"

#include <algorithm>
#include <cmath>

namespace hcloud::sim {

LinearFeedbackController::LinearFeedbackController(FeedbackConfig config,
                                                   double initialOutput)
    : config_(config),
      output_(std::clamp(initialOutput, config.outputMin, config.outputMax))
{
}

double
LinearFeedbackController::update(double setpoint, double measurement)
{
    double delta = config_.gain * (setpoint - measurement);
    if (config_.maxStep > 0.0)
        delta = std::clamp(delta, -config_.maxStep, config_.maxStep);
    output_ = std::clamp(output_ + delta, config_.outputMin,
                         config_.outputMax);
    return output_;
}

void
LinearFeedbackController::reset(double output)
{
    output_ = std::clamp(output, config_.outputMin, config_.outputMax);
}

} // namespace hcloud::sim
