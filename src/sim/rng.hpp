/**
 * @file
 * Deterministic random-number generation with named child streams.
 *
 * Reproducibility is a hard requirement: a full scenario run must be
 * bit-identical across invocations given the same root seed. To keep
 * independent subsystems statistically independent *and* insensitive to
 * the order in which other subsystems draw numbers, every subsystem derives
 * its own child stream by hashing the parent seed with a label
 * (e.g. rng.child("spin_up")). Adding draws in one subsystem then never
 * perturbs another subsystem's sequence.
 */

#ifndef HCLOUD_SIM_RNG_HPP
#define HCLOUD_SIM_RNG_HPP

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

namespace hcloud::sim {

/**
 * Seeded random stream wrapping std::mt19937_64 with convenience
 * distributions used throughout the simulator.
 */
class Rng
{
  public:
    /** Construct a stream from an explicit 64-bit seed. */
    explicit Rng(std::uint64_t seed);

    /**
     * Derive an independent child stream.
     *
     * The child's seed is a SplitMix64-style mix of this stream's seed and
     * a FNV-1a hash of @p label. Deriving a child does not consume any
     * state from the parent.
     *
     * @param label Stable name of the consumer subsystem.
     */
    Rng child(std::string_view label) const;

    /** Derive an independent child stream keyed by an integer (e.g. id). */
    Rng child(std::uint64_t key) const;

    /** Seed this stream was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Uniform real in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Lognormal draw parameterized by the underlying normal (mu, sigma). */
    double lognormal(double mu, double sigma);

    /**
     * Lognormal draw parameterized by target median and p95 quantile,
     * a convenient calibration interface for latency-like quantities.
     */
    double lognormalFromQuantiles(double median, double p95);

    /** Exponential draw with the given mean (not rate). */
    double exponential(double mean);

    /** Bernoulli draw: true with probability p. */
    bool bernoulli(double p);

    /**
     * Beta(a, b) draw via two gamma draws. Used for bounded quality
     * distributions in [0, 1].
     */
    double beta(double a, double b);

    /** Pareto draw with scale x_m and shape alpha (heavy-tailed). */
    double pareto(double scale, double shape);

    /** Pick an index in [0, weights.size()) proportionally to weights. */
    std::size_t weightedIndex(const std::vector<double>& weights);

    /** Access the raw engine for std:: distribution interop. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::uint64_t seed_;
    std::mt19937_64 engine_;
};

} // namespace hcloud::sim

#endif // HCLOUD_SIM_RNG_HPP
