#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace hcloud::sim {

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
OnlineStats::variance() const
{
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
OnlineStats::max() const
{
    return count_ ? max_ : 0.0;
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sortedValid_ = false;
}

void
SampleSet::addAll(const std::vector<double>& xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sortedValid_ = false;
}

void
SampleSet::merge(const SampleSet& other)
{
    addAll(other.samples_);
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

void
SampleSet::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
SampleSet::quantile(double q) const
{
    // Empty sets return 0.0 like min()/max(): the old assert-only guard
    // compiled out under NDEBUG and indexed sorted_[-0u] on release
    // builds fed an all-failed cell.
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    if (lo == hi)
        return sorted_[lo];
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

BoxplotSummary
SampleSet::boxplot() const
{
    BoxplotSummary b;
    if (samples_.empty())
        return b;
    b.p5 = quantile(0.05);
    b.p25 = quantile(0.25);
    b.mean = mean();
    b.p75 = quantile(0.75);
    b.p95 = quantile(0.95);
    b.count = samples_.size();
    return b;
}

double
SampleSet::cdf(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

const std::vector<double>&
SampleSet::sorted() const
{
    ensureSorted();
    return sorted_;
}

void
SampleSet::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = true;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0.0)
{
    assert(hi > lo && "histogram range must be non-empty");
}

void
Histogram::add(double x, double weight)
{
    const double pos = (x - lo_) / width_;
    std::size_t i;
    if (pos < 0.0) {
        i = 0;
    } else if (pos >= static_cast<double>(counts_.size())) {
        i = counts_.size() - 1;
    } else {
        i = static_cast<std::size_t>(pos);
    }
    counts_[i] += weight;
    total_ += weight;
}

double
Histogram::fraction(std::size_t i) const
{
    return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

} // namespace hcloud::sim
