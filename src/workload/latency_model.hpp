/**
 * @file
 * Latency-critical (memcached-like) performance model.
 *
 * Tail latency is modelled with an M/M/1-flavoured waiting-time term that
 * explodes as the effective utilization rho approaches saturation, plus a
 * multiplicative interference-jitter term — the two mechanisms behind the
 * tail-latency spikes of Figures 2 and 4b. Effective capacity scales with
 * allocated cores and instance quality, so both undersized allocations and
 * noisy instances raise the tail.
 */

#ifndef HCLOUD_WORKLOAD_LATENCY_MODEL_HPP
#define HCLOUD_WORKLOAD_LATENCY_MODEL_HPP

namespace hcloud::workload {

namespace latency_model {

/** Requests per second one core serves at quality 1. */
inline constexpr double kRpsPerCore = 12500.0;

/** p99 latency of an unloaded, un-interfered service, in microseconds. */
inline constexpr double kBaseP99Us = 150.0;

/** Utilization at which capacity is considered saturated. */
inline constexpr double kRhoCap = 0.995;

/**
 * p99 recorded while a service has no serving capacity at all — still
 * queued or waiting for an instance to spin up. Requests pile up at the
 * clients; this is the regime behind the 15-20 ms tails the paper
 * reports for OdM under load variability.
 */
inline constexpr double kUnservedP99Us = 20000.0;

/**
 * Grace period before unserved latency is charged: clients ramp up while
 * the service deploys, so only sustained capacity gaps (slow spin-up
 * tails, long queueing, instance churn) surface as timeouts.
 */
inline constexpr double kUnservedGraceSec = 25.0;

/** Ceiling on modelled p99: beyond this, clients time out and retry. */
inline constexpr double kTimeoutP99Us = 50000.0;

/**
 * p99 request latency in microseconds.
 *
 * @param loadRps Offered load.
 * @param cores Allocated cores.
 * @param quality Effective instance quality in [0, 1].
 * @param sensedPressure sensitivity * interference pressure in [0, 1];
 *        adds tail jitter beyond the pure capacity loss.
 */
double p99Us(double loadRps, double cores, double quality,
             double sensedPressure);

/** p99 with quality 1 and no interference (the isolation baseline). */
double isolationP99Us(double loadRps, double cores);

/**
 * QoS target assigned to a service: its isolation p99 with a 2x
 * engineering margin — tight enough that unmanaged interference violates
 * it, loose enough that a healthy allocation meets it.
 */
double qosTargetUs(double loadRps, double cores);

} // namespace latency_model

} // namespace hcloud::workload

#endif // HCLOUD_WORKLOAD_LATENCY_MODEL_HPP
