#include "workload/archetypes.hpp"

#include <algorithm>

namespace hcloud::workload {

const ResourceVector&
archetype(AppKind kind)
{
    // Columns: cpu, l1i, l1d, llc, mem-bw, mem-cap, disk-bw, disk-cap,
    //          net-bw, net-lat.
    static const ResourceVector kHadoopRec = {
        0.50, 0.20, 0.25, 0.35, 0.40, 0.50, 0.45, 0.50, 0.30, 0.15};
    static const ResourceVector kHadoopSvm = {
        0.65, 0.25, 0.30, 0.45, 0.50, 0.45, 0.35, 0.40, 0.25, 0.15};
    static const ResourceVector kHadoopMf = {
        0.60, 0.25, 0.35, 0.50, 0.60, 0.65, 0.40, 0.45, 0.30, 0.20};
    static const ResourceVector kSparkAn = {
        0.55, 0.25, 0.35, 0.50, 0.55, 0.70, 0.25, 0.30, 0.40, 0.30};
    static const ResourceVector kSparkRt = {
        0.70, 0.40, 0.50, 0.65, 0.60, 0.55, 0.20, 0.20, 0.60, 0.80};
    static const ResourceVector kMemcached = {
        0.55, 0.55, 0.60, 0.75, 0.50, 0.60, 0.10, 0.10, 0.70, 0.90};

    switch (kind) {
      case AppKind::HadoopRecommender:
        return kHadoopRec;
      case AppKind::HadoopSvm:
        return kHadoopSvm;
      case AppKind::HadoopMatFac:
        return kHadoopMf;
      case AppKind::SparkAnalytics:
        return kSparkAn;
      case AppKind::SparkRealtime:
        return kSparkRt;
      case AppKind::Memcached:
        return kMemcached;
    }
    return kHadoopRec;
}

ResourceVector
generateSensitivity(AppKind kind, sim::Rng& rng)
{
    ResourceVector v = archetype(kind);
    for (double& c : v)
        c = std::clamp(c + rng.normal(0.0, 0.08), 0.02, 0.98);
    return v;
}

} // namespace hcloud::workload
