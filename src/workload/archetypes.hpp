/**
 * @file
 * Per-application sensitivity archetypes.
 *
 * Each AppKind has a characteristic mean sensitivity vector (which shared
 * resources it presses on / suffers from); individual jobs jitter around
 * the archetype. The resulting job population is approximately low-rank
 * in the (jobs x resources) matrix — exactly the structure that makes
 * Quasar-style collaborative filtering work.
 */

#ifndef HCLOUD_WORKLOAD_ARCHETYPES_HPP
#define HCLOUD_WORKLOAD_ARCHETYPES_HPP

#include "sim/rng.hpp"
#include "workload/job.hpp"
#include "workload/sensitivity.hpp"

namespace hcloud::workload {

/** Archetype (mean) sensitivity vector of an application kind. */
const ResourceVector& archetype(AppKind kind);

/**
 * Draw a job's sensitivity vector: archetype plus per-resource jitter,
 * clamped to [0.02, 0.98].
 */
ResourceVector generateSensitivity(AppKind kind, sim::Rng& rng);

/** All application kinds, for iteration. */
inline constexpr AppKind kAllAppKinds[] = {
    AppKind::HadoopRecommender, AppKind::HadoopSvm, AppKind::HadoopMatFac,
    AppKind::SparkAnalytics,    AppKind::SparkRealtime, AppKind::Memcached,
};

} // namespace hcloud::workload

#endif // HCLOUD_WORKLOAD_ARCHETYPES_HPP
