/**
 * @file
 * Workload scenario generation (Figure 3 / Table 2).
 *
 * Three scenarios with increasing load variability:
 *  - Static: ~854 cores steady state, max:min ~1.1x;
 *  - Low Variability: 605-core steady state with a mid-scenario surge to
 *    ~900 cores, driven mostly by the latency-critical services;
 *  - High Variability: ~210-core trough with short-term spikes up to
 *    ~1226 cores, shorter individual jobs (~8 min average).
 *
 * The generator tracks the nominal outstanding demand per job class and
 * spawns a job (sized by class-specific distributions, scaled up when the
 * deficit is large) whenever demand falls short of the scenario's target
 * curve, producing ~1-second inter-arrivals and a demand curve that tracks
 * Figure 3.
 */

#ifndef HCLOUD_WORKLOAD_SCENARIO_HPP
#define HCLOUD_WORKLOAD_SCENARIO_HPP

#include <cstdint>

#include "sim/types.hpp"
#include "workload/trace.hpp"

namespace hcloud::workload {

/** The three evaluation scenarios. */
enum class ScenarioKind
{
    Static,
    LowVariability,
    HighVariability,
};

const char* toString(ScenarioKind kind);

/** All scenarios, for iteration. */
inline constexpr ScenarioKind kAllScenarios[] = {
    ScenarioKind::Static,
    ScenarioKind::LowVariability,
    ScenarioKind::HighVariability,
};

/** Scenario-generation parameters. */
struct ScenarioConfig
{
    ScenarioKind kind = ScenarioKind::Static;
    /** Ideal scenario length; the paper uses 2 hours. */
    sim::Duration duration = sim::hours(2.0);
    /** Root seed for the generated trace. */
    std::uint64_t seed = 42;
    /**
     * Fraction of jobs drawn from interference-sensitive applications
     * (memcached / real-time Spark). Negative = natural per-scenario mix.
     * Used by the Figure 16 sweep.
     */
    double sensitiveFraction = -1.0;
    /** Scales the whole target-load curve (for smaller test runs). */
    double loadScale = 1.0;
};

/** Aggregate target load (cores) of a scenario at time @p t (Figure 3). */
double targetLoad(ScenarioKind kind, sim::Time t);

/** Batch-class share of the target load at time @p t. */
double targetBatchLoad(ScenarioKind kind, sim::Time t);

/** Latency-critical share of the target load at time @p t. */
double targetLcLoad(ScenarioKind kind, sim::Time t);

/**
 * Stable 64-bit digest over every generation-relevant field of @p config
 * (kind, duration, seed, sensitiveFraction, loadScale). Two configs with
 * equal digests generate byte-identical traces, which is the key of the
 * shared scenario-trace cache in exp::SweepScheduler: identical traces
 * are generated once per sweep instead of once per cell x seed.
 */
std::uint64_t digest(const ScenarioConfig& config);

/** Generate the arrival trace of a scenario. */
ArrivalTrace generateScenario(const ScenarioConfig& config);

} // namespace hcloud::workload

#endif // HCLOUD_WORKLOAD_SCENARIO_HPP
