#include "workload/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace hcloud::workload {

const char*
resourceName(std::size_t i)
{
    static const char* kNames[kNumResources] = {
        "cpu",      "l1i-cache", "l1d-cache", "llc",     "mem-bw",
        "mem-cap",  "disk-bw",   "disk-cap",  "net-bw",  "net-lat",
    };
    return i < kNumResources ? kNames[i] : "?";
}

double
qualityScore(const ResourceVector& c)
{
    ResourceVector sorted = c;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    double q = 0.0;
    double norm = 0.0;
    for (std::size_t k = 0; k < kNumResources; ++k) {
        const double weight =
            std::pow(10.0, 2.0 * static_cast<double>(kNumResources - 1 - k));
        q += std::clamp(sorted[k], 0.0, 1.0) * weight;
        norm += weight;
    }
    return q / norm;
}

double
interferenceSensitivity(const ResourceVector& c)
{
    double max = 0.0;
    double sum = 0.0;
    for (double v : c) {
        max = std::max(max, v);
        sum += v;
    }
    const double mean = sum / static_cast<double>(kNumResources);
    return std::clamp(0.65 * max + 0.35 * mean, 0.0, 1.0);
}

double
pressureScalar(const ResourceVector& c)
{
    double sum = 0.0;
    for (double v : c)
        sum += v;
    return sum / static_cast<double>(kNumResources);
}

} // namespace hcloud::workload
