#include "workload/latency_model.hpp"

#include <algorithm>
#include <cmath>

namespace hcloud::workload::latency_model {

double
p99Us(double loadRps, double cores, double quality, double sensedPressure)
{
    const double capacity =
        std::max(cores, 0.0) * std::clamp(quality, 0.0, 1.0) * kRpsPerCore;
    if (capacity <= 0.0)
        return kBaseP99Us * 1000.0; // effectively unavailable
    const double rho = loadRps / capacity;
    const double rho_eff = std::min(rho, kRhoCap);
    // M/M/1-style waiting growth, with linear penalty past saturation.
    double latency = kBaseP99Us * (1.0 + 0.5 * rho_eff / (1.0 - rho_eff));
    if (rho > 1.0)
        latency *= 1.0 + 4.0 * (rho - 1.0);
    // Interference jitter: co-runner phase changes fatten the tail even
    // when average capacity would suffice.
    latency *= 1.0 + 4.0 * std::clamp(sensedPressure, 0.0, 1.0);
    return std::min(latency, kTimeoutP99Us);
}

double
isolationP99Us(double loadRps, double cores)
{
    return p99Us(loadRps, cores, 1.0, 0.0);
}

double
qosTargetUs(double loadRps, double cores)
{
    return 2.0 * isolationP99Us(loadRps, cores);
}

} // namespace hcloud::workload::latency_model
