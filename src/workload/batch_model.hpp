/**
 * @file
 * Batch (throughput-bound) performance model.
 *
 * A batch job carries a total amount of work in core-seconds (measured at
 * quality 1). Delivered progress integrates allocated cores times the
 * effective instance quality, so interference and undersized allocations
 * both stretch completion time — the two effects Figures 1 and 4 measure.
 */

#ifndef HCLOUD_WORKLOAD_BATCH_MODEL_HPP
#define HCLOUD_WORKLOAD_BATCH_MODEL_HPP

#include "sim/types.hpp"

namespace hcloud::workload {

/**
 * Batch progress helpers (pure functions; state lives in Job).
 */
namespace batch_model {

/**
 * Work accomplished in an interval.
 *
 * @param cores Allocated cores.
 * @param quality Effective instance quality in [0, 1].
 * @param dt Interval length in seconds.
 * @return Core-seconds of work done.
 */
double workDone(double cores, double quality, sim::Duration dt);

/**
 * Parallel-efficiency factor: allocating more cores than the job's ideal
 * parallelism yields diminishing returns (Amdahl-style).
 *
 * @param cores Allocated cores.
 * @param coresIdeal The job's ideal parallelism.
 */
double parallelEfficiency(double cores, double coresIdeal);

/**
 * Estimated seconds to finish the remaining work at the current rate.
 * Returns sim::kTimeNever when the rate is zero.
 */
sim::Duration
estimateRemaining(double workRemaining, double cores, double quality,
                  double coresIdeal);

} // namespace batch_model

} // namespace hcloud::workload

#endif // HCLOUD_WORKLOAD_BATCH_MODEL_HPP
