/**
 * @file
 * Job specification and runtime state.
 *
 * Two job classes, as in the paper's scenarios: throughput-bound batch
 * analytics (Hadoop/Mahout and Spark) whose metric is completion time, and
 * latency-critical services (memcached) whose metric is the tail of the
 * request-latency distribution.
 */

#ifndef HCLOUD_WORKLOAD_JOB_HPP
#define HCLOUD_WORKLOAD_JOB_HPP

#include <string>

#include "cloud/instance.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "workload/sensitivity.hpp"

namespace hcloud::workload {

/** Coarse class: determines which performance metric applies. */
enum class JobClass
{
    Batch,
    LatencyCritical,
};

/** Concrete application, used for sensitivity archetypes and reporting. */
enum class AppKind
{
    HadoopRecommender, ///< Mahout recommender (batch, tolerant)
    HadoopSvm,         ///< Mahout SVM training (batch, tolerant)
    HadoopMatFac,      ///< Mahout matrix factorization (batch, moderate)
    SparkAnalytics,    ///< Spark ML analytics (batch, moderate)
    SparkRealtime,     ///< real-time Spark (batch metric, very sensitive)
    Memcached,         ///< latency-critical key-value service
};

const char* toString(AppKind kind);
const char* toString(JobClass cls);
JobClass classOf(AppKind kind);

/**
 * Immutable description of a submitted job.
 */
struct JobSpec
{
    sim::JobId id = 0;
    AppKind kind = AppKind::HadoopRecommender;
    sim::Time arrival = 0.0;

    /** Cores that achieve the QoS target in isolation. */
    double coresIdeal = 1.0;
    /** Memory demand per core in GiB (drives family selection). */
    double memoryPerCore = 1.5;

    /** Batch: completion time at ideal cores and quality 1. */
    sim::Duration idealDuration = 0.0;

    /** LC: offered load in requests/sec (constant over the lifetime). */
    double lcLoadRps = 0.0;
    /** LC: service lifetime. */
    sim::Duration lcLifetime = 0.0;
    /** LC: p99 latency QoS target in microseconds. */
    double lcQosUs = 0.0;

    /** True per-resource sensitivity (hidden from the provisioner). */
    ResourceVector sensitivity{};

    JobClass jobClass() const { return classOf(kind); }
    /** True quality score Q of this job. */
    double trueQuality() const { return qualityScore(sensitivity); }
    /** Scalar sensitivity for the performance model. */
    double sensitivityScalar() const
    {
        return interferenceSensitivity(sensitivity);
    }
    /** Scalar pressure exerted on co-residents. */
    double pressure() const { return pressureScalar(sensitivity); }
    /** Total batch work in core-seconds at quality 1. */
    double workTotal() const { return coresIdeal * idealDuration; }
};

/** Lifecycle of a job inside the engine. */
enum class JobState
{
    Pending,   ///< arrived, not yet mapped
    Queued,    ///< waiting for reserved capacity
    Waiting,   ///< assigned to an instance that is still spinning up
    Running,
    Completed,
    Failed,    ///< platform killed the instance (EC2 micro)
};

/**
 * Runtime state of one job.
 */
class Job
{
  public:
    explicit Job(JobSpec spec)
        : spec_(std::move(spec)),
          sensitivityScalar_(spec_.sensitivityScalar())
    {
    }

    const JobSpec& spec() const { return spec_; }
    sim::JobId id() const { return spec_.id; }

    /**
     * spec().sensitivityScalar(), computed once at construction: the spec
     * is immutable, and the engine needs the scalar on every progress
     * tick.
     */
    double sensitivityScalar() const { return sensitivityScalar_; }

    JobState state = JobState::Pending;

    /** Instance currently hosting (or designated to host) the job. */
    cloud::Instance* instance = nullptr;
    /** Cores allocated by the provisioner (may differ from ideal). */
    double cores = 0.0;
    /** True when the provisioner mapped the job to reserved capacity. */
    bool onReserved = false;

    sim::Time queuedAt = sim::kTimeNever;
    sim::Time startedAt = sim::kTimeNever;
    sim::Time completedAt = sim::kTimeNever;
    /** Time spent waiting before running (queueing + spin-up). */
    sim::Duration waitTime = 0.0;

    /** Batch: accumulated work in core-seconds. */
    double workDone = 0.0;
    /** Number of times the QoS monitor rescheduled this job. */
    int reschedules = 0;

    /** Engine bookkeeping: last progress-integration time. */
    sim::Time lastProgressAt = 0.0;
    /** Engine bookkeeping: whether the job is in the active list. */
    bool engineTracked = false;

    /** LC: per-tick p99 samples over the lifetime. */
    sim::SampleSet latencyUs;

    /** Completion time measured from arrival (batch metric). */
    sim::Duration turnaround() const;

    /**
     * Performance normalized to isolated execution, in [0, 1]:
     * batch: ideal duration / turnaround; LC: QoS target / achieved p99
     * (95th percentile over time), clamped.
     */
    double perfNormalized() const;

    /** Achieved LC tail latency (95th pct of recorded p99 samples). */
    double achievedLatencyUs() const;

  private:
    JobSpec spec_;
    double sensitivityScalar_;
};

} // namespace hcloud::workload

#endif // HCLOUD_WORKLOAD_JOB_HPP
