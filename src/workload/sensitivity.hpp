/**
 * @file
 * Resource-sensitivity vectors and the paper's quality encoding Q.
 *
 * Following Quasar (Section 3.3), a job's sensitivity to interference in
 * resource i is c_i with i in [1, N], N = 10. Large c_i means the job both
 * presses on and suffers from contention in resource i. The scalar quality
 * score Q is computed by sorting the vector by decreasing magnitude and
 * applying the order-preserving encoding
 *
 *   Q = c_j * 10^(2(N-1)) + c_k * 10^(2(N-2)) + ... + c_n,
 *
 * normalized into [0, 1]. High Q = resource-demanding job; low Q = job that
 * tolerates interference.
 */

#ifndef HCLOUD_WORKLOAD_SENSITIVITY_HPP
#define HCLOUD_WORKLOAD_SENSITIVITY_HPP

#include <array>
#include <cstddef>

namespace hcloud::workload {

/** Number of examined shared resources (Quasar's N). */
inline constexpr std::size_t kNumResources = 10;

/** Per-resource sensitivity, each entry in [0, 1]. */
using ResourceVector = std::array<double, kNumResources>;

/** Human-readable resource name for reports. */
const char* resourceName(std::size_t i);

/**
 * The order-preserving quality encoding Q, normalized to [0, 1].
 */
double qualityScore(const ResourceVector& c);

/**
 * Scalar interference sensitivity used by the performance model: how much
 * delivered quality degrades per unit of interference pressure. Weighted
 * toward the worst resource, since contention on the single most critical
 * resource dominates observed slowdown.
 */
double interferenceSensitivity(const ResourceVector& c);

/**
 * Scalar pressure the job exerts on co-resident workloads (mean c_i).
 */
double pressureScalar(const ResourceVector& c);

} // namespace hcloud::workload

#endif // HCLOUD_WORKLOAD_SENSITIVITY_HPP
