#include "workload/batch_model.hpp"

#include <algorithm>
#include <cmath>

namespace hcloud::workload::batch_model {

double
parallelEfficiency(double cores, double coresIdeal)
{
    if (cores <= coresIdeal || coresIdeal <= 0.0)
        return 1.0;
    // Extra cores beyond the ideal parallelism contribute at 35%.
    const double extra = cores - coresIdeal;
    return (coresIdeal + 0.35 * extra) / cores;
}

double
workDone(double cores, double quality, sim::Duration dt)
{
    return std::max(cores, 0.0) * std::clamp(quality, 0.0, 1.0) * dt;
}

sim::Duration
estimateRemaining(double workRemaining, double cores, double quality,
                  double coresIdeal)
{
    const double rate =
        cores * quality * parallelEfficiency(cores, coresIdeal);
    if (rate <= 0.0)
        return sim::kTimeNever;
    return std::max(workRemaining, 0.0) / rate;
}

} // namespace hcloud::workload::batch_model
