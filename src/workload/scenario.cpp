#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "workload/archetypes.hpp"
#include "workload/latency_model.hpp"

namespace hcloud::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** One Gaussian load spike of the high-variability scenario. */
struct Spike
{
    sim::Time center;
    double peak;   // cores above base
    double width;  // Gaussian sigma in seconds
};

/** Spike schedule calibrated so the aggregate peaks near 1226 cores. */
const Spike kHighVarSpikes[] = {
    {1000.0, 600.0, 90.0},   {2200.0, 1026.0, 110.0},
    {3300.0, 500.0, 85.0},   {4500.0, 1026.0, 115.0},
    {5800.0, 650.0, 95.0},
};

double
gaussian(double t, double center, double width)
{
    const double z = (t - center) / width;
    return std::exp(-z * z);
}

/** Low-variability mid-scenario surge (mostly latency-critical load). */
double
lowVarHump(sim::Time t)
{
    return 295.0 * gaussian(t, 3600.0, 1400.0);
}

} // namespace

const char*
toString(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Static:
        return "static";
      case ScenarioKind::LowVariability:
        return "low-variability";
      case ScenarioKind::HighVariability:
        return "high-variability";
    }
    return "?";
}

double
targetLoad(ScenarioKind kind, sim::Time t)
{
    switch (kind) {
      case ScenarioKind::Static:
        // 854-core steady state with a +/-5% slow ripple (max:min ~1.1).
        return 854.0 + 40.0 * std::sin(2.0 * kPi * t / 2400.0);
      case ScenarioKind::LowVariability:
        return 605.0 + lowVarHump(t);
      case ScenarioKind::HighVariability: {
        double load = 200.0 + 15.0 * std::sin(2.0 * kPi * t / 1700.0);
        for (const auto& s : kHighVarSpikes)
            load += s.peak * gaussian(t, s.center, s.width);
        return load;
      }
    }
    return 0.0;
}

double
targetBatchLoad(ScenarioKind kind, sim::Time t)
{
    switch (kind) {
      case ScenarioKind::Static:
        return 0.55 * targetLoad(kind, t);
      case ScenarioKind::LowVariability:
        // The surge is mostly latency-critical: batch takes only 25% of it.
        return 0.55 * 605.0 + 0.25 * lowVarHump(t);
      case ScenarioKind::HighVariability:
        return 0.60 * targetLoad(kind, t);
    }
    return 0.0;
}

double
targetLcLoad(ScenarioKind kind, sim::Time t)
{
    return targetLoad(kind, t) - targetBatchLoad(kind, t);
}

namespace {

/** Per-scenario job-size/duration distributions. */
struct ShapeParams
{
    double batchDurationMedian;
    double batchDurationSigma;
    double lcLifetimeMedian;
    double lcLifetimeSigma;
};

ShapeParams
shapeParams(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Static:
        return {300.0, 0.60, 420.0, 0.45};
      case ScenarioKind::LowVariability:
        return {300.0, 0.60, 420.0, 0.45};
      case ScenarioKind::HighVariability:
        // Shorter jobs (paper: 8.1 min average) so load can fall quickly.
        return {400.0, 0.50, 540.0, 0.40};
    }
    return {300.0, 0.6, 420.0, 0.45};
}

/** Draw batch job cores; large deficits get large jobs. */
double
drawBatchCores(sim::Rng& rng, double deficit)
{
    if (deficit > 30.0)
        return rng.bernoulli(0.5) ? 16.0 : 8.0;
    static const std::vector<double> weights = {0.45, 0.35, 0.15, 0.05};
    static const double sizes[] = {1.0, 2.0, 4.0, 8.0};
    return sizes[rng.weightedIndex(weights)];
}

/**
 * Draw LC service cores; large deficits get large services. Services are
 * at least 4 cores: real memcached deployments shard across a few cores
 * so a one-core sizing error never halves capacity.
 */
double
drawLcCores(sim::Rng& rng, double deficit)
{
    if (deficit > 30.0)
        return 16.0;
    static const std::vector<double> weights = {0.55, 0.35, 0.10};
    static const double sizes[] = {4.0, 8.0, 16.0};
    return sizes[rng.weightedIndex(weights)];
}

AppKind
drawBatchKind(sim::Rng& rng, double sensitiveFraction)
{
    if (sensitiveFraction >= 0.0) {
        // Figure 16 mode: kind is chosen by the sensitivity split already;
        // this function is only called for the insensitive batch pool.
        static const std::vector<double> weights = {0.35, 0.25, 0.25, 0.15};
        static const AppKind kinds[] = {
            AppKind::HadoopRecommender, AppKind::HadoopSvm,
            AppKind::HadoopMatFac, AppKind::SparkAnalytics};
        return kinds[rng.weightedIndex(weights)];
    }
    static const std::vector<double> weights = {0.30, 0.20, 0.20, 0.20,
                                                0.10};
    static const AppKind kinds[] = {
        AppKind::HadoopRecommender, AppKind::HadoopSvm,
        AppKind::HadoopMatFac, AppKind::SparkAnalytics,
        AppKind::SparkRealtime};
    return kinds[rng.weightedIndex(weights)];
}

double
memoryPerCore(AppKind kind, sim::Rng& rng)
{
    switch (kind) {
      case AppKind::Memcached:
        return rng.uniform(3.0, 5.5);
      case AppKind::SparkAnalytics:
      case AppKind::SparkRealtime:
        return rng.uniform(2.0, 3.5);
      default:
        return rng.uniform(1.0, 2.0);
    }
}

} // namespace

namespace {

/** FNV-1a over the raw bytes of @p value, continuing from @p h. */
template <typename T>
std::uint64_t
fnv1aMix(std::uint64_t h, const T& value)
{
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    for (unsigned char b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

std::uint64_t
digest(const ScenarioConfig& config)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    h = fnv1aMix(h, static_cast<std::uint32_t>(config.kind));
    h = fnv1aMix(h, config.duration);
    h = fnv1aMix(h, config.seed);
    h = fnv1aMix(h, config.sensitiveFraction);
    h = fnv1aMix(h, config.loadScale);
    return h;
}

ArrivalTrace
generateScenario(const ScenarioConfig& config)
{
    sim::Rng root(config.seed);
    sim::Rng arrival_rng = root.child("arrival");
    sim::Rng size_rng = root.child("size");
    sim::Rng kind_rng = root.child("kind");
    sim::Rng sens_rng = root.child("sensitivity");

    const ShapeParams shape = shapeParams(config.kind);

    // Outstanding nominal demand per class, drained by a min-heap of
    // (nominal end, cores, isBatch).
    struct Active
    {
        sim::Time end;
        double cores;
        bool batch;
        bool operator>(const Active& o) const { return end > o.end; }
    };
    std::priority_queue<Active, std::vector<Active>, std::greater<Active>>
        active;
    double demand_batch = 0.0;
    double demand_lc = 0.0;

    ArrivalTrace trace;
    sim::JobId next_id = 1;
    sim::Time t = 0.0;
    // Stop arrivals early enough that nominal completions fit the horizon.
    const sim::Time arrival_cutoff = config.duration * 0.93;

    while (true) {
        t += arrival_rng.exponential(1.0);
        if (t >= arrival_cutoff)
            break;
        while (!active.empty() && active.top().end <= t) {
            const Active& a = active.top();
            (a.batch ? demand_batch : demand_lc) -= a.cores;
            active.pop();
        }

        const double target_b =
            targetBatchLoad(config.kind, t) * config.loadScale;
        const double target_l =
            targetLcLoad(config.kind, t) * config.loadScale;
        const double deficit_b = target_b - demand_batch;
        const double deficit_l = target_l - demand_lc;
        if (deficit_b <= 0.0 && deficit_l <= 0.0) {
            // Demand satisfied. Users keep submitting, though: a trickle
            // of small short batch jobs arrives regardless, keeping the
            // ~1 s inter-arrival cadence of Table 2 (the deficit feedback
            // absorbs their load).
            if (!kind_rng.bernoulli(0.60))
                continue;
            JobSpec filler;
            filler.id = next_id++;
            filler.arrival = t;
            if (kind_rng.bernoulli(0.12) && config.duration - t > 240.0) {
                filler.kind = AppKind::Memcached;
                filler.coresIdeal = 4.0;
                filler.lcLifetime = std::clamp(
                    size_rng.lognormal(std::log(240.0), 0.4), 120.0,
                    config.duration - t);
                filler.lcLoadRps = filler.coresIdeal *
                    latency_model::kRpsPerCore * 0.50;
                filler.lcQosUs = latency_model::qosTargetUs(
                    filler.lcLoadRps, filler.coresIdeal);
                active.push(Active{t + filler.lcLifetime, 4.0, false});
                demand_lc += 4.0;
            } else {
                filler.kind =
                    drawBatchKind(kind_rng, config.sensitiveFraction);
                filler.coresIdeal = 1.0;
                filler.idealDuration = std::clamp(
                    size_rng.lognormal(std::log(150.0), 0.4), 60.0,
                    config.duration - t);
                active.push(Active{t + filler.idealDuration, 1.0, true});
                demand_batch += 1.0;
            }
            filler.sensitivity =
                generateSensitivity(filler.kind, sens_rng);
            filler.memoryPerCore = memoryPerCore(filler.kind, size_rng);
            trace.add(std::move(filler));
            continue;
        }

        // Pick the class. With a sensitivity override (Figure 16), split
        // by the requested fraction; otherwise weight by deficit.
        bool is_batch;
        AppKind kind;
        if (config.sensitiveFraction >= 0.0) {
            const bool sensitive =
                sens_rng.bernoulli(config.sensitiveFraction);
            if (sensitive) {
                is_batch = sens_rng.bernoulli(0.5);
                kind = is_batch ? AppKind::SparkRealtime
                                : AppKind::Memcached;
            } else {
                is_batch = true;
                kind = drawBatchKind(kind_rng, config.sensitiveFraction);
            }
            // Respect aggregate demand: skip if the total is satisfied.
            if (deficit_b + deficit_l <= 0.0)
                continue;
        } else {
            const double wb = std::max(deficit_b, 0.0);
            const double wl = std::max(deficit_l, 0.0);
            is_batch = kind_rng.uniform(0.0, wb + wl) < wb;
            kind = is_batch ? drawBatchKind(kind_rng, -1.0)
                            : AppKind::Memcached;
        }

        const double deficit = is_batch ? std::max(deficit_b, 0.0)
                                        : std::max(deficit_l, 0.0);

        JobSpec spec;
        spec.id = next_id++;
        spec.kind = kind;
        spec.arrival = t;
        spec.sensitivity = generateSensitivity(kind, sens_rng);
        spec.memoryPerCore = memoryPerCore(kind, size_rng);

        const sim::Duration remaining = config.duration - t;
        // Burst-driven jobs (spawned while demand lags a load spike) are
        // short-lived, so aggregate load can fall as fast as it rose —
        // the defining property of the high-variability scenario.
        const bool burst_job = deficit > 30.0;
        if (classOf(kind) == JobClass::Batch) {
            spec.coresIdeal = std::min(drawBatchCores(size_rng, deficit),
                                       std::max(deficit, 1.0));
            spec.coresIdeal = std::max(1.0, std::floor(spec.coresIdeal));
            const double median =
                shape.batchDurationMedian / (burst_job ? 3.0 : 1.0);
            spec.idealDuration = std::clamp(
                size_rng.lognormal(std::log(median),
                                   shape.batchDurationSigma),
                60.0, remaining);
        } else {
            spec.coresIdeal = std::min(drawLcCores(size_rng, deficit),
                                       std::max(deficit, 4.0));
            spec.coresIdeal = std::max(4.0, std::floor(spec.coresIdeal));
            const double median =
                shape.lcLifetimeMedian / (burst_job ? 2.5 : 1.0);
            spec.lcLifetime = std::clamp(
                size_rng.lognormal(std::log(median), shape.lcLifetimeSigma),
                120.0, remaining);
            // Services operate near 50% utilization at the ideal size,
            // leaving the usual tail-latency headroom.
            spec.lcLoadRps = spec.coresIdeal *
                latency_model::kRpsPerCore * 0.50;
            spec.lcQosUs = latency_model::qosTargetUs(spec.lcLoadRps,
                                                      spec.coresIdeal);
        }

        const sim::Duration nominal = classOf(kind) == JobClass::Batch
            ? spec.idealDuration
            : spec.lcLifetime;
        active.push(Active{t + nominal, spec.coresIdeal,
                           classOf(kind) == JobClass::Batch});
        (classOf(kind) == JobClass::Batch ? demand_batch : demand_lc) +=
            spec.coresIdeal;
        trace.add(std::move(spec));
    }

    trace.seal();
    return trace;
}

} // namespace hcloud::workload
