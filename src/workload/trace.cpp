#include "workload/trace.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace hcloud::workload {

namespace {

sim::Duration
nominalDuration(const JobSpec& s)
{
    return s.jobClass() == JobClass::Batch ? s.idealDuration : s.lcLifetime;
}

} // namespace

void
ArrivalTrace::add(JobSpec spec)
{
    assert(!sealed_);
    assert(jobs_.empty() || spec.arrival >= jobs_.back().arrival);
    horizon_ = std::max(horizon_, spec.arrival + nominalDuration(spec));
    jobs_.push_back(std::move(spec));
}

void
ArrivalTrace::seal()
{
    assert(!sealed_);
    sealed_ = true;
    // Build the nominal demand curve from arrival/end deltas.
    std::map<sim::Time, double> deltas;
    for (const auto& j : jobs_) {
        deltas[j.arrival] += j.coresIdeal;
        deltas[j.arrival + nominalDuration(j)] -= j.coresIdeal;
    }
    double level = 0.0;
    required_ = {};
    for (const auto& [t, d] : deltas) {
        level += d;
        required_.record(t, std::max(level, 0.0));
    }
}

TraceStats
ArrivalTrace::stats() const
{
    TraceStats s;
    s.jobCount = jobs_.size();
    double batch_core_seconds = 0.0;
    double lc_core_seconds = 0.0;
    double total_duration = 0.0;
    for (const auto& j : jobs_) {
        const double cs = j.coresIdeal * nominalDuration(j);
        if (j.jobClass() == JobClass::Batch) {
            ++s.batchJobs;
            batch_core_seconds += cs;
        } else {
            ++s.lcJobs;
            lc_core_seconds += cs;
        }
        total_duration += nominalDuration(j);
    }
    s.batchLcJobRatio = s.lcJobs
        ? static_cast<double>(s.batchJobs) / static_cast<double>(s.lcJobs)
        : 0.0;
    s.batchLcCoreRatio =
        lc_core_seconds > 0.0 ? batch_core_seconds / lc_core_seconds : 0.0;
    s.meanJobDuration =
        s.jobCount ? total_duration / static_cast<double>(s.jobCount) : 0.0;
    if (jobs_.size() >= 2) {
        s.meanInterArrival = (jobs_.back().arrival - jobs_.front().arrival) /
            static_cast<double>(jobs_.size() - 1);
    }
    s.idealCompletion = horizon_;

    // min/max of the demand curve, ignoring the ramp-up edge and the
    // post-cutoff drain tail, as the paper's Figure 3 does.
    const sim::Time lo = horizon_ * 0.05;
    const sim::Time hi = horizon_ * 0.88;
    double min_cores = 0.0;
    double max_cores = 0.0;
    bool first = true;
    for (const auto& p : required_.points()) {
        if (p.t < lo || p.t > hi)
            continue;
        if (first) {
            min_cores = max_cores = p.v;
            first = false;
        } else {
            min_cores = std::min(min_cores, p.v);
            max_cores = std::max(max_cores, p.v);
        }
    }
    s.minCores = min_cores;
    s.maxCores = max_cores;
    s.maxMinCoreRatio = min_cores > 0.0 ? max_cores / min_cores : 0.0;
    return s;
}

} // namespace hcloud::workload
