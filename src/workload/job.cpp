#include "workload/job.hpp"

#include <algorithm>
#include <cassert>

namespace hcloud::workload {

const char*
toString(AppKind kind)
{
    switch (kind) {
      case AppKind::HadoopRecommender:
        return "hadoop-recommender";
      case AppKind::HadoopSvm:
        return "hadoop-svm";
      case AppKind::HadoopMatFac:
        return "hadoop-matfac";
      case AppKind::SparkAnalytics:
        return "spark-analytics";
      case AppKind::SparkRealtime:
        return "spark-realtime";
      case AppKind::Memcached:
        return "memcached";
    }
    return "?";
}

const char*
toString(JobClass cls)
{
    return cls == JobClass::Batch ? "batch" : "latency-critical";
}

JobClass
classOf(AppKind kind)
{
    return kind == AppKind::Memcached ? JobClass::LatencyCritical
                                      : JobClass::Batch;
}

sim::Duration
Job::turnaround() const
{
    assert(state == JobState::Completed || state == JobState::Failed);
    return completedAt - spec_.arrival;
}

double
Job::achievedLatencyUs() const
{
    if (latencyUs.empty())
        return 0.0;
    return latencyUs.quantile(0.95);
}

double
Job::perfNormalized() const
{
    if (state == JobState::Failed)
        return 0.0;
    if (spec_.jobClass() == JobClass::Batch) {
        const sim::Duration t = turnaround();
        if (t <= 0.0)
            return 1.0;
        return std::clamp(spec_.idealDuration / t, 0.0, 1.0);
    }
    const double p99 = achievedLatencyUs();
    if (p99 <= 0.0)
        return 1.0;
    return std::clamp(spec_.lcQosUs / p99, 0.0, 1.0);
}

} // namespace hcloud::workload
