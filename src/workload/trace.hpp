/**
 * @file
 * Arrival traces: the output of scenario generation, the input of a run.
 */

#ifndef HCLOUD_WORKLOAD_TRACE_HPP
#define HCLOUD_WORKLOAD_TRACE_HPP

#include <string>
#include <vector>

#include "sim/timeseries.hpp"
#include "sim/types.hpp"
#include "workload/job.hpp"

namespace hcloud::workload {

/** Summary statistics of a trace, mirroring Table 2 of the paper. */
struct TraceStats
{
    std::size_t jobCount = 0;
    std::size_t batchJobs = 0;
    std::size_t lcJobs = 0;
    /** max : min of the nominal required-cores curve. */
    double maxMinCoreRatio = 0.0;
    double minCores = 0.0;
    double maxCores = 0.0;
    /** batch : LC ratio in job counts. */
    double batchLcJobRatio = 0.0;
    /** batch : LC ratio in core demand (core-seconds). */
    double batchLcCoreRatio = 0.0;
    /** Mean job duration in seconds (batch duration / LC lifetime). */
    double meanJobDuration = 0.0;
    /** Mean inter-arrival time in seconds. */
    double meanInterArrival = 0.0;
    /** Completion time with no delays or interference. */
    sim::Duration idealCompletion = 0.0;
};

/**
 * A generated arrival trace plus its nominal demand curve.
 */
class ArrivalTrace
{
  public:
    ArrivalTrace() = default;

    /** Jobs ordered by arrival time. */
    const std::vector<JobSpec>& jobs() const { return jobs_; }

    /** Nominal required cores over time (jobs at their ideal sizes). */
    const sim::StepSeries& requiredCores() const { return required_; }

    /** Scenario end time (last nominal job end). */
    sim::Time horizon() const { return horizon_; }

    /** Append a job (arrivals must be non-decreasing). */
    void add(JobSpec spec);

    /** Finalize: build the demand curve and freeze the trace. */
    void seal();

    /** Table 2-style statistics. */
    TraceStats stats() const;

  private:
    std::vector<JobSpec> jobs_;
    sim::StepSeries required_;
    sim::Time horizon_ = 0.0;
    bool sealed_ = false;
};

} // namespace hcloud::workload

#endif // HCLOUD_WORKLOAD_TRACE_HPP
