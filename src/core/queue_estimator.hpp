/**
 * @file
 * Queueing-time estimator (Section 4.2, Figure 9b).
 *
 * The dynamic mapping policy needs to know how long a queued job would
 * wait for capacity of a given instance type. The estimator watches the
 * rate at which capacity of each type is released over a sliding window
 * and models availability as a Poisson process, giving
 *   P[instance of type T available within x] = 1 - exp(-lambda_T x).
 * Measured waits are also recorded so the estimate can be validated
 * against the empirical CDF (the dots vs lines of Figure 9b).
 */

#ifndef HCLOUD_CORE_QUEUE_ESTIMATOR_HPP
#define HCLOUD_CORE_QUEUE_ESTIMATOR_HPP

#include <deque>
#include <map>
#include <string>

#include "cloud/instance_type.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/**
 * Per-instance-type capacity-release tracker and wait estimator.
 */
class QueueEstimator
{
  public:
    /** Releases older than this are dropped from the window. */
    static constexpr sim::Duration kWindow = 600.0;
    /** Maximum retained release events per type. */
    static constexpr std::size_t kMaxEvents = 256;

    /** Record that capacity of @p type became available at @p t. */
    void recordRelease(const cloud::InstanceType& type, sim::Time t);

    /** Record a measured queueing wait (for validation). */
    void recordMeasuredWait(const cloud::InstanceType& type,
                            sim::Duration wait);

    /** Estimated release rate (events/sec) of @p type at time @p now. */
    double releaseRate(const cloud::InstanceType& type,
                       sim::Time now) const;

    /**
     * Wait such that capacity arrives within it with probability @p p.
     * Returns kTimeNever when no release has been observed.
     */
    sim::Duration waitQuantile(const cloud::InstanceType& type, double p,
                               sim::Time now) const;

    /** P[capacity of @p type available within @p x seconds]. */
    double probAvailableWithin(const cloud::InstanceType& type,
                               sim::Duration x, sim::Time now) const;

    /** Measured waits recorded for @p type (empty set if none). */
    const sim::SampleSet& measuredWaits(
        const cloud::InstanceType& type) const;

  private:
    struct TypeState
    {
        std::deque<sim::Time> releases;
        sim::SampleSet measured;
    };

    void prune(TypeState& state, sim::Time now) const;

    mutable std::map<std::string, TypeState> types_;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_QUEUE_ESTIMATOR_HPP
