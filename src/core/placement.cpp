#include "core/placement.hpp"

#include <algorithm>

namespace hcloud::core {

namespace {

bool
usable(const cloud::Instance* i)
{
    return i->state() != cloud::InstanceState::Released && !i->faulty();
}

} // namespace

double
requiredQuality(double jobQualityScore)
{
    return 0.55 + 0.40 * std::clamp(jobQualityScore, 0.0, 1.0);
}

cloud::Instance*
leastLoaded(const std::vector<cloud::Instance*>& pool, double cores)
{
    cloud::Instance* best = nullptr;
    for (cloud::Instance* i : pool) {
        if (!usable(i) || i->coresFree() + 1e-9 < cores)
            continue;
        if (!best || i->coresFree() > best->coresFree())
            best = i;
    }
    return best;
}

cloud::Instance*
qualityAwareFit(const std::vector<cloud::Instance*>& pool, double cores,
                double sensitivity, double requiredQuality, sim::Time now)
{
    cloud::Instance* best_fit = nullptr;    // qualifies, tightest
    cloud::Instance* best_quality = nullptr; // fallback: highest quality
    double best_fit_free = 0.0;
    double best_q = -1.0;
    for (cloud::Instance* i : pool) {
        if (!usable(i) || i->coresFree() + 1e-9 < cores)
            continue;
        const double q =
            i->effectiveQuality(now, sensitivity, std::nullopt);
        if (q > best_q) {
            best_q = q;
            best_quality = i;
        }
        if (q + 1e-9 >= requiredQuality) {
            if (!best_fit || i->coresFree() < best_fit_free) {
                best_fit = i;
                best_fit_free = i->coresFree();
            }
        }
    }
    return best_fit ? best_fit : best_quality;
}

} // namespace hcloud::core
