/**
 * @file
 * Engine: runs one provisioning strategy against one arrival trace.
 *
 * The engine wires together the DES kernel, the simulated cloud provider,
 * the Quasar profiling service, a strategy, and the metrics collector.
 * It owns job lifecycle and performance integration: batch progress is
 * the integral of cores x effective quality; latency-critical services
 * sample their tail latency each tick; the QoS monitor is fed from the
 * same loop.
 */

#ifndef HCLOUD_CORE_ENGINE_HPP
#define HCLOUD_CORE_ENGINE_HPP

#include <functional>
#include <memory>
#include <string>

#include "cloud/provider_profile.hpp"
#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"
#include "workload/trace.hpp"

namespace hcloud::core {

/**
 * One-shot simulation driver.
 */
class Engine
{
  public:
    /**
     * @param config Run configuration.
     * @param profile Cloud provider variability profile (default: GCE).
     */
    explicit Engine(EngineConfig config,
                    cloud::ProviderProfile profile =
                        cloud::ProviderProfile::gce());

    const EngineConfig& config() const { return config_; }

    /**
     * Execute the trace under the given strategy and return the metrics.
     *
     * @param trace Arrival trace (typically from generateScenario()).
     * @param kind Strategy to drive.
     * @param scenarioName Label recorded in the result.
     */
    RunResult run(const workload::ArrivalTrace& trace, StrategyKind kind,
                  const std::string& scenarioName = "");

    /** Builds the strategy driving a run (extension point). */
    using StrategyFactory =
        std::function<std::unique_ptr<Strategy>(EngineContext&)>;

    /**
     * Execute the trace under a custom strategy (e.g. the spot-market
     * extension), constructed by @p factory against the run's context.
     */
    RunResult run(const workload::ArrivalTrace& trace,
                  const StrategyFactory& factory,
                  const std::string& scenarioName = "");

  private:
    EngineConfig config_;
    cloud::ProviderProfile profile_;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_ENGINE_HPP
