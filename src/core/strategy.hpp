/**
 * @file
 * Provisioning strategies (Table 3): shared machinery and the interface
 * the engine drives.
 *
 * A strategy decides (a) how many resources a job receives (via Quasar
 * estimates or user defaults), (b) whether it runs on reserved or
 * on-demand capacity, and (c) which instance hosts it. The engine owns
 * job progress; strategies own placement, acquisition, queueing,
 * retention and QoS reactions.
 */

#ifndef HCLOUD_CORE_STRATEGY_HPP
#define HCLOUD_CORE_STRATEGY_HPP

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/provider.hpp"
#include "core/cluster.hpp"
#include "core/mapping_policy.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/qos_monitor.hpp"
#include "core/queue_estimator.hpp"
#include "core/quality_tracker.hpp"
#include "core/retention.hpp"
#include "core/soft_limit.hpp"
#include "core/types.hpp"
#include "profiling/quasar.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace hcloud::core {

const char* toString(StrategyKind kind);

/** Everything a strategy needs from its environment. */
struct EngineContext
{
    sim::Simulator& simulator;
    cloud::CloudProvider& provider;
    const cloud::InstanceTypeCatalog& catalog;
    profiling::Quasar& quasar;
    MetricsCollector& metrics;
    /** Structured event tracing for this run (always present; cheap
     *  no-op when disabled). */
    obs::Tracer& tracer;
    const EngineConfig& config;
    /** Invoked when a job transitions to Running. */
    std::function<void(workload::Job&)> onJobStarted;
};

/** Resource sizing decided for one job. */
struct JobSizing
{
    double cores = 1.0;
    double memoryPerCore = 1.5;
    /** Target quality QT (estimated Q, or a default without profiling). */
    double quality = 0.5;
    /** Scalar interference-sensitivity estimate. */
    double sensitivity = 0.5;
    /** Scalar pressure estimate. */
    double pressure = 0.5;
};

/**
 * Abstract strategy plus the machinery every concrete strategy shares.
 */
class Strategy
{
  public:
    explicit Strategy(EngineContext& ctx);
    virtual ~Strategy() = default;

    Strategy(const Strategy&) = delete;
    Strategy& operator=(const Strategy&) = delete;

    virtual StrategyKind kind() const = 0;
    virtual std::string name() const { return toString(kind()); }

    /**
     * True when the strategy places work on small shared instances,
     * which degrades profiling accuracy (Section 3.3).
     */
    virtual bool usesSmallOnDemand() const { return false; }

    /** Build the reserved pool (if any) before arrivals begin. */
    virtual void start(const workload::ArrivalTrace& trace) = 0;

    /** Map and place a newly-arrived (or rescheduled) job. */
    virtual void submit(workload::Job& job) = 0;

    /** Called by the engine when a job finishes (completed or failed). */
    void jobCompleted(workload::Job& job);

    /** Periodic housekeeping: retention, queue draining, controllers. */
    virtual void tick();

    /** Feed one QoS check result; may boost or reschedule the job. */
    void qosCheck(workload::Job& job, bool violating);

    ClusterState& cluster() { return cluster_; }
    const ClusterState& cluster() const { return cluster_; }
    std::size_t reservedQueueLength() const
    {
        return reservedQueue_.size();
    }
    const QueueEstimator& queueEstimator() const { return queueEstimator_; }
    const QualityTracker& qualityTracker() const { return qualityTracker_; }
    /** Read-only QoS-violation state (obs::Timeline samples tracked()). */
    const QosMonitor& qosMonitor() const { return qosMonitor_; }

  protected:
    /** Decide the job's resources: Quasar estimate or user defaults. */
    JobSizing sizeJob(const workload::Job& job);

    /** The sizing previously decided for a job (sizeJob caches). */
    const JobSizing& sizingOf(const workload::Job& job) const;

    /** Try placing on the reserved pool. @return true on success. */
    bool tryPlaceReserved(workload::Job& job, const JobSizing& s);

    /** Enqueue for reserved capacity (FIFO, drained on completions). */
    void queueReserved(workload::Job& job);

    /** Place every queued job that now fits. */
    void drainReservedQueue();

    /**
     * Live on-demand instance able to host the job: free cores, matching
     * @p type (nullptr = any full-server standard shape), quality
     * adequate when profiling is on.
     */
    cloud::Instance* findOnDemandRoom(const JobSizing& s,
                                      const cloud::InstanceType* type,
                                      bool requireIdle,
                                      bool anyShape = false);

    /** Bind the job to an instance (starts it if already running). */
    void assignToInstance(workload::Job& job, cloud::Instance* instance,
                          const JobSizing& s, bool reserved);

    /** Acquire a new on-demand instance and bind the job to it. */
    void acquireFor(workload::Job& job, const cloud::InstanceType& type,
                    const JobSizing& s);

    /** Smallest shape fitting the sizing (OdM/HM path). */
    const cloud::InstanceType& pickSmallestType(const JobSizing& s) const;

    /** Full-server standard shape. */
    const cloud::InstanceType& largeType() const { return *large_; }

    /** Release an idle on-demand instance back to the provider. */
    void releaseInstance(cloud::Instance* instance);

    /** Transition the job to Running and notify the engine. */
    void startJob(workload::Job& job);

    /** Start the pending jobs of an instance that finished spinning up. */
    void onInstanceReady(cloud::Instance* instance);

    EngineContext& ctx_;
    ClusterState cluster_;
    RetentionPolicy retention_;
    QueueEstimator queueEstimator_;
    QualityTracker qualityTracker_;
    QosMonitor qosMonitor_;
    sim::Rng rng_;

    std::deque<workload::Job*> reservedQueue_;
    // Hash maps: these indexes are looked up per tick / per placement but
    // never iterated, so unordered iteration order cannot leak into any
    // simulated decision.
    /** Jobs bound to an instance that is still spinning up. */
    std::unordered_map<sim::InstanceId, std::vector<workload::Job*>>
        pending_;
    std::unordered_map<sim::JobId, JobSizing> sizings_;
    /** All live jobs this strategy has seen, for eviction handling. */
    std::unordered_map<sim::JobId, workload::Job*> jobIndex_;

  private:
    void handleRetention();

    const cloud::InstanceType* large_;
    std::size_t tickCount_ = 0;
};

/** Construct the strategy implementing @p kind. */
std::unique_ptr<Strategy> makeStrategy(StrategyKind kind,
                                       EngineContext& ctx);

} // namespace hcloud::core

#endif // HCLOUD_CORE_STRATEGY_HPP
