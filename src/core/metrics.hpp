/**
 * @file
 * Run metrics: everything the paper's figures need from one run.
 */

#ifndef HCLOUD_CORE_METRICS_HPP
#define HCLOUD_CORE_METRICS_HPP

#include <map>
#include <string>
#include <vector>

#include "cloud/billing.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "sim/stats.hpp"
#include "sim/timeseries.hpp"
#include "sim/types.hpp"
#include "workload/job.hpp"

namespace hcloud::core {

/** Final record of one job. */
struct JobOutcome
{
    sim::JobId id = 0;
    workload::AppKind kind = workload::AppKind::HadoopRecommender;
    workload::JobClass jobClass = workload::JobClass::Batch;
    bool onReserved = false;
    bool failed = false;
    /** Performance normalized to isolation, [0, 1]. */
    double perfNorm = 0.0;
    /** Batch: completion time from arrival, minutes. */
    double turnaroundMin = 0.0;
    /** LC: achieved tail latency in microseconds. */
    double latencyP99Us = 0.0;
    /** Queueing + spin-up wait before starting, seconds. */
    double waitSec = 0.0;
    /** Times the QoS monitor moved the job. */
    int reschedules = 0;
};

/** Per-instance utilization timeline (Figures 19-20). */
struct InstanceTimeline
{
    sim::InstanceId id = 0;
    std::string type;
    bool reserved = false;
    sim::Time acquiredAt = 0.0;
    sim::Time releasedAt = sim::kTimeNever;
    std::vector<sim::StepSeries::Point> utilization;
};

/**
 * Collects samples and series during a run; finalized into a RunResult.
 *
 * The simple counters and wait distributions live in an obs registry
 * (cached pointers keep the hot paths a single indirection); the named
 * accessors below stay the API so existing call sites are unaffected.
 */
class MetricsCollector
{
  public:
    MetricsCollector();

    // --- Job outcomes ----------------------------------------------------
    void recordOutcome(const workload::Job& job);

    // --- Allocation/utilization series -----------------------------------
    void recordAllocation(sim::Time t, double reservedCores,
                          double onDemandCores, double onDemandUsed);
    void recordReservedUtilization(sim::Time t, double utilization);
    void recordInstanceUtilization(sim::InstanceId id,
                                   const std::string& type, bool reserved,
                                   sim::Time acquiredAt, sim::Time t,
                                   double utilization);
    void recordInstanceReleased(sim::InstanceId id, sim::Time t);
    /** Per-app-kind allocated cores split by side (Figure 21). */
    void recordBreakdown(sim::Time t, const std::string& group,
                         bool reserved, double cores);

    // --- Counters (registry-backed) ---------------------------------------
    void countAcquisition() { acquisitions_->inc(); }
    void countImmediateRelease() { immediateReleases_->inc(); }
    void countReschedule() { reschedules_->inc(); }
    void countSpotInterruption() { spotInterruptions_->inc(); }
    void countQueued() { queuedJobs_->inc(); }
    void recordSpinUpWait(sim::Duration d) { spinUpWaits_->observe(d); }
    void recordQueueWait(sim::Duration d) { queueWaits_->observe(d); }

    // --- Accessors used when building the RunResult ----------------------
    const std::vector<JobOutcome>& outcomes() const { return outcomes_; }
    const sim::StepSeries& reservedAllocated() const
    {
        return reservedAllocated_;
    }
    const sim::StepSeries& onDemandAllocated() const
    {
        return onDemandAllocated_;
    }
    const sim::StepSeries& onDemandUsed() const { return onDemandUsed_; }
    const sim::StepSeries& reservedUtilization() const
    {
        return reservedUtilSeries_;
    }
    const std::map<sim::InstanceId, InstanceTimeline>& timelines() const
    {
        return timelines_;
    }
    const std::map<std::string, sim::StepSeries>& breakdown() const
    {
        return breakdown_;
    }
    std::size_t acquisitions() const { return acquisitions_->value(); }
    std::size_t immediateReleases() const
    {
        return immediateReleases_->value();
    }
    std::size_t reschedules() const { return reschedules_->value(); }
    std::size_t spotInterruptions() const
    {
        return spotInterruptions_->value();
    }
    std::size_t queuedJobs() const { return queuedJobs_->value(); }
    const sim::SampleSet& spinUpWaits() const
    {
        return spinUpWaits_->samples();
    }
    const sim::SampleSet& queueWaits() const
    {
        return queueWaits_->samples();
    }

    obs::MetricsRegistry& registry() { return registry_; }
    const obs::MetricsRegistry& registry() const { return registry_; }

  private:
    obs::MetricsRegistry registry_;
    std::vector<JobOutcome> outcomes_;
    sim::StepSeries reservedAllocated_;
    sim::StepSeries onDemandAllocated_;
    sim::StepSeries onDemandUsed_;
    sim::StepSeries reservedUtilSeries_;
    std::map<sim::InstanceId, InstanceTimeline> timelines_;
    std::map<std::string, sim::StepSeries> breakdown_;
    // Cached registry entries for the hot counting paths.
    obs::Counter* acquisitions_;
    obs::Counter* immediateReleases_;
    obs::Counter* reschedules_;
    obs::Counter* spotInterruptions_;
    obs::Counter* queuedJobs_;
    obs::HistogramMetric* spinUpWaits_;
    obs::HistogramMetric* queueWaits_;
};

/**
 * Everything a figure driver needs from one completed run.
 */
struct RunResult
{
    std::string strategy;
    std::string scenario;
    bool profiling = true;

    /** Simulated time when the last job finished. */
    sim::Time makespan = 0.0;

    /** Final record of every job. */
    std::vector<JobOutcome> outcomes;

    // Per-class performance distributions.
    sim::SampleSet batchTurnaroundMin;
    sim::SampleSet batchPerfNorm;
    sim::SampleSet lcLatencyUs;
    sim::SampleSet lcPerfNorm;
    /** Normalized perf split by mapping side (Figure 6). */
    sim::SampleSet perfReserved;
    sim::SampleSet perfOnDemand;

    /** Time-averaged reserved-pool utilization. */
    double reservedUtilizationAvg = 0.0;

    /** Usage meter, re-pricable under any PricingModel. */
    cloud::BillingMeter billing;

    // Series for Figures 9, 18-21.
    sim::StepSeries reservedAllocated;
    sim::StepSeries onDemandAllocated;
    sim::StepSeries onDemandUsed;
    sim::StepSeries reservedUtilization;
    sim::StepSeries softLimitHistory;
    std::map<sim::InstanceId, InstanceTimeline> instanceTimelines;
    std::map<std::string, sim::StepSeries> breakdown;

    // Counters.
    std::size_t jobCount = 0;
    std::size_t failedJobs = 0;
    std::size_t acquisitions = 0;
    std::size_t immediateReleases = 0;
    std::size_t reschedules = 0;
    std::size_t spotInterruptions = 0;
    std::size_t queuedJobs = 0;
    sim::SampleSet spinUpWaits;
    sim::SampleSet queueWaits;

    /** The structured event stream recorded by the run's obs::Tracer
     *  (empty when tracing is disabled). */
    obs::TraceBuffer trace;
    /** Cluster-state samples recorded by the run's obs::Timeline
     *  (empty when timeline sampling is disabled). */
    obs::TimelineBuffer timeline;
    /** Snapshot of every registered metric, sorted by name. */
    obs::MetricsSnapshot metricsSnapshot;
    /** Wall-clock phase profile (excluded from determinism digests). */
    obs::RunTelemetry telemetry;

    /** Mean normalized performance across every job. */
    double meanPerfNorm() const;

    /** Amortized run cost under a pricing model (Figures 5, 11, 12, 17). */
    cloud::CostBreakdown cost(const cloud::PricingModel& pricing) const;

    /**
     * Absolute cost of operating this workload for @p horizon under a
     * pricing model, reservations charged as full terms (Figure 13).
     */
    cloud::CostBreakdown costOverHorizon(const cloud::PricingModel& pricing,
                                         sim::Duration horizon) const;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_METRICS_HPP
