#include "core/metrics.hpp"

namespace hcloud::core {

MetricsCollector::MetricsCollector()
    : acquisitions_(&registry_.counter("strategy_acquisitions")),
      immediateReleases_(
          &registry_.counter("strategy_immediate_releases")),
      reschedules_(&registry_.counter("strategy_reschedules")),
      spotInterruptions_(
          &registry_.counter("strategy_spot_interruptions")),
      queuedJobs_(&registry_.counter("strategy_queued_jobs")),
      spinUpWaits_(&registry_.histogram("strategy_spin_up_wait_sec")),
      queueWaits_(&registry_.histogram("strategy_queue_wait_sec"))
{
}

void
MetricsCollector::recordOutcome(const workload::Job& job)
{
    JobOutcome o;
    o.id = job.id();
    o.kind = job.spec().kind;
    o.jobClass = job.spec().jobClass();
    o.onReserved = job.onReserved;
    o.failed = job.state == workload::JobState::Failed;
    o.perfNorm = job.perfNormalized();
    if (o.jobClass == workload::JobClass::Batch) {
        o.turnaroundMin = job.turnaround() / 60.0;
    } else {
        o.latencyP99Us = job.achievedLatencyUs();
    }
    o.waitSec = job.waitTime;
    o.reschedules = job.reschedules;
    outcomes_.push_back(o);
}

void
MetricsCollector::recordAllocation(sim::Time t, double reservedCores,
                                   double onDemandCores,
                                   double onDemandUsed)
{
    reservedAllocated_.record(t, reservedCores);
    onDemandAllocated_.record(t, onDemandCores);
    onDemandUsed_.record(t, onDemandUsed);
    registry_.gauge("cluster_reserved_cores").set(reservedCores);
    registry_.gauge("cluster_on_demand_cores").set(onDemandCores);
    registry_.gauge("cluster_on_demand_cores_used").set(onDemandUsed);
}

void
MetricsCollector::recordReservedUtilization(sim::Time t, double utilization)
{
    reservedUtilSeries_.record(t, utilization);
    registry_.gauge("cluster_reserved_utilization").set(utilization);
}

void
MetricsCollector::recordInstanceUtilization(sim::InstanceId id,
                                            const std::string& type,
                                            bool reserved,
                                            sim::Time acquiredAt,
                                            sim::Time t, double utilization)
{
    auto it = timelines_.find(id);
    if (it == timelines_.end()) {
        InstanceTimeline tl;
        tl.id = id;
        tl.type = type;
        tl.reserved = reserved;
        tl.acquiredAt = acquiredAt;
        it = timelines_.emplace(id, std::move(tl)).first;
    }
    it->second.utilization.push_back({t, utilization});
}

void
MetricsCollector::recordInstanceReleased(sim::InstanceId id, sim::Time t)
{
    auto it = timelines_.find(id);
    if (it != timelines_.end())
        it->second.releasedAt = t;
}

void
MetricsCollector::recordBreakdown(sim::Time t, const std::string& group,
                                  bool reserved, double cores)
{
    const std::string key =
        group + (reserved ? "/reserved" : "/on-demand");
    breakdown_[key].record(t, cores);
}

double
RunResult::meanPerfNorm() const
{
    sim::OnlineStats s;
    for (double x : batchPerfNorm.raw())
        s.add(x);
    for (double x : lcPerfNorm.raw())
        s.add(x);
    return s.mean();
}

cloud::CostBreakdown
RunResult::cost(const cloud::PricingModel& pricing) const
{
    return billing.amortized(pricing, makespan);
}

cloud::CostBreakdown
RunResult::costOverHorizon(const cloud::PricingModel& pricing,
                           sim::Duration horizon) const
{
    return billing.committed(pricing, makespan, horizon);
}

} // namespace hcloud::core
