#include "core/on_demand.hpp"

namespace hcloud::core {

OnDemandStrategy::OnDemandStrategy(EngineContext& ctx, bool mixed)
    : Strategy(ctx), mixed_(mixed)
{
}

void
OnDemandStrategy::start(const workload::ArrivalTrace& trace)
{
    (void)trace; // nothing to pre-provision
}

void
OnDemandStrategy::submitOnDemand(workload::Job& job, const JobSizing& s,
                                 bool forceLarge)
{
    if (!mixed_ || forceLarge) {
        // Full servers only: pack onto an existing instance with room,
        // otherwise acquire a fresh one.
        cloud::Instance* inst =
            findOnDemandRoom(s, &largeType(), /*requireIdle=*/false);
        if (inst) {
            assignToInstance(job, inst, s, /*reserved=*/false);
        } else {
            acquireFor(job, largeType(), s);
        }
        return;
    }
    // Mixed sizes: the smallest shape that satisfies the job (quality-
    // upgraded for hybrids). Hybrids pack onto any live on-demand
    // instance with room first; otherwise reuse a retained idle instance
    // of a compatible shape, and only then acquire.
    if (packOnDemand()) {
        cloud::Instance* packed = findOnDemandRoom(
            s, nullptr, /*requireIdle=*/false, /*anyShape=*/true);
        if (packed) {
            assignToInstance(job, packed, s, /*reserved=*/false);
            return;
        }
    }
    const cloud::InstanceType& type = odTypeFor(s);
    cloud::Instance* inst = findOnDemandRoom(s, &type, /*requireIdle=*/true);
    if (inst) {
        assignToInstance(job, inst, s, /*reserved=*/false);
    } else {
        acquireFor(job, type, s);
    }
}

void
OnDemandStrategy::submit(workload::Job& job)
{
    const JobSizing s = sizeJob(job);
    submitOnDemand(job, s, /*forceLarge=*/false);
}

} // namespace hcloud::core
