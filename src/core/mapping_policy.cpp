#include "core/mapping_policy.hpp"

#include <cassert>

namespace hcloud::core {

const char*
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::P1Random:
        return "P1-random";
      case PolicyKind::P2Q80:
        return "P2-Q>80";
      case PolicyKind::P3Q50:
        return "P3-Q>50";
      case PolicyKind::P4Q20:
        return "P4-Q>20";
      case PolicyKind::P5Load50:
        return "P5-load<50";
      case PolicyKind::P6Load70:
        return "P6-load<70";
      case PolicyKind::P7Load90:
        return "P7-load<90";
      case PolicyKind::P8Dynamic:
        return "P8-dynamic";
    }
    return "?";
}

const char*
toString(MapTarget target)
{
    switch (target) {
      case MapTarget::Reserved:
        return "reserved";
      case MapTarget::OnDemand:
        return "on-demand";
      case MapTarget::OnDemandLarge:
        return "on-demand-large";
      case MapTarget::QueueReserved:
        return "queue-reserved";
    }
    return "?";
}

namespace {

MapTarget
qualityThreshold(const MappingInputs& in, double threshold)
{
    return in.jobQuality > threshold ? MapTarget::Reserved
                                     : MapTarget::OnDemand;
}

MapTarget
loadLimit(const MappingInputs& in, double limit)
{
    return in.reservedUtilization < limit ? MapTarget::Reserved
                                          : MapTarget::OnDemand;
}

/**
 * HCloud's dynamic policy (Figure 8):
 *  - below the soft limit, everything goes to reserved;
 *  - between soft and hard, jobs whose needed quality the on-demand type
 *    meets with 90% confidence overflow to on-demand, sensitive jobs stay
 *    reserved;
 *  - above the hard limit, insensitive jobs overflow and sensitive jobs
 *    queue locally — unless the estimated queueing time exceeds the
 *    spin-up of a large on-demand instance, in which case the job takes
 *    the large on-demand escape hatch.
 */
MapTarget
dynamicPolicy(const MappingInputs& in, obs::DecisionReason* reason)
{
    const bool od_satisfies = in.onDemandQ90 + 1e-12 > in.jobQuality;
    if (in.reservedUtilization < in.softLimit) {
        *reason = obs::DecisionReason::BelowSoftLimit;
        return MapTarget::Reserved;
    }
    if (in.reservedUtilization < in.hardLimit) {
        *reason = od_satisfies ? obs::DecisionReason::SoftLimitExceeded
                               : obs::DecisionReason::QualityBelowQ90;
        return od_satisfies ? MapTarget::OnDemand : MapTarget::Reserved;
    }
    if (od_satisfies) {
        *reason = obs::DecisionReason::HardLimitExceeded;
        return MapTarget::OnDemand;
    }
    if (in.estimatedQueueWait > in.largeSpinUpMedian) {
        *reason = obs::DecisionReason::QueueWaitExceeded;
        return MapTarget::OnDemandLarge;
    }
    *reason = obs::DecisionReason::QualityBelowQ90;
    return MapTarget::QueueReserved;
}

} // namespace

MapTarget
decideMapping(PolicyKind policy, const MappingInputs& in,
              obs::DecisionReason* reason)
{
    obs::DecisionReason scratch;
    if (!reason)
        reason = &scratch;
    *reason = obs::DecisionReason::PolicyStatic;
    switch (policy) {
      case PolicyKind::P1Random:
        assert(in.rng && "P1 needs a random stream");
        return in.rng->bernoulli(0.5) ? MapTarget::Reserved
                                      : MapTarget::OnDemand;
      case PolicyKind::P2Q80:
        return qualityThreshold(in, 0.80);
      case PolicyKind::P3Q50:
        return qualityThreshold(in, 0.50);
      case PolicyKind::P4Q20:
        return qualityThreshold(in, 0.20);
      case PolicyKind::P5Load50:
        return loadLimit(in, 0.50);
      case PolicyKind::P6Load70:
        return loadLimit(in, 0.70);
      case PolicyKind::P7Load90:
        return loadLimit(in, 0.90);
      case PolicyKind::P8Dynamic:
        return dynamicPolicy(in, reason);
    }
    return MapTarget::Reserved;
}

} // namespace hcloud::core
