/**
 * @file
 * Job-to-instance placement heuristics.
 *
 * Two placement modes, matching Section 3.3:
 *  - leastLoaded: the naive baseline used when job preferences are
 *    unknown — pick the instance with the most free cores;
 *  - qualityAwareFit: Quasar-informed greedy search — among instances
 *    whose expected delivered quality meets the job's requirement, pick
 *    the tightest fit (least leftover capacity) to limit fragmentation;
 *    falls back to the best-quality instance with room when none
 *    qualifies.
 */

#ifndef HCLOUD_CORE_PLACEMENT_HPP
#define HCLOUD_CORE_PLACEMENT_HPP

#include <vector>

#include "cloud/instance.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/**
 * Delivered quality a job with quality score Q needs from an instance to
 * satisfy its QoS: interpolates between tolerant (0.55) and demanding
 * (0.95).
 */
double requiredQuality(double jobQualityScore);

/** Instance with the most free cores that fits @p cores, else nullptr. */
cloud::Instance* leastLoaded(const std::vector<cloud::Instance*>& pool,
                             double cores);

/**
 * Quality-aware tightest fit.
 *
 * @param pool Candidate instances.
 * @param cores Cores the job needs.
 * @param sensitivity Job's scalar interference sensitivity estimate.
 * @param requiredQuality Minimum expected effective quality.
 * @param now Current time (quality is evaluated at @p now).
 * @return Chosen instance, or nullptr when nothing fits at all.
 */
cloud::Instance* qualityAwareFit(const std::vector<cloud::Instance*>& pool,
                                 double cores, double sensitivity,
                                 double requiredQuality, sim::Time now);

} // namespace hcloud::core

#endif // HCLOUD_CORE_PLACEMENT_HPP
