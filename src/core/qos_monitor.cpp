#include "core/qos_monitor.hpp"

namespace hcloud::core {

QosMonitor::QosMonitor(int violationThreshold, int maxReschedules)
    : threshold_(violationThreshold), maxReschedules_(maxReschedules)
{
}

QosAction
QosMonitor::check(sim::JobId job, bool violating, bool canBoost,
                  int reschedulesSoFar, sim::Time now)
{
    if (!violating) {
        streak_.erase(job);
        return QosAction::None;
    }
    int& count = streak_[job];
    if (tracer_ && tracer_->enabled()) {
        // Debug: one event per violating check, value = current streak.
        tracer_->record({now, obs::EventKind::QosViolation,
                         obs::Severity::Debug, obs::DecisionReason::None,
                         job, 0, static_cast<double>(count + 1), {}});
    }
    if (++count < threshold_)
        return QosAction::None;
    count = 0;
    if (canBoost)
        return QosAction::Boost;
    if (reschedulesSoFar < maxReschedules_)
        return QosAction::Reschedule;
    return QosAction::None;
}

void
QosMonitor::forget(sim::JobId job)
{
    streak_.erase(job);
}

} // namespace hcloud::core
