#include "core/qos_monitor.hpp"

namespace hcloud::core {

QosMonitor::QosMonitor(int violationThreshold, int maxReschedules)
    : threshold_(violationThreshold), maxReschedules_(maxReschedules)
{
}

QosAction
QosMonitor::check(sim::JobId job, bool violating, bool canBoost,
                  int reschedulesSoFar)
{
    if (!violating) {
        streak_.erase(job);
        return QosAction::None;
    }
    int& count = streak_[job];
    if (++count < threshold_)
        return QosAction::None;
    count = 0;
    if (canBoost)
        return QosAction::Boost;
    if (reschedulesSoFar < maxReschedules_)
        return QosAction::Reschedule;
    return QosAction::None;
}

void
QosMonitor::forget(sim::JobId job)
{
    streak_.erase(job);
}

} // namespace hcloud::core
