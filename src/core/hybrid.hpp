/**
 * @file
 * HF / HM: HCloud's hybrid provisioning strategies (Section 4).
 *
 * Reserved capacity is provisioned for the minimum steady-state load;
 * overflow goes to on-demand resources. The configured mapping policy
 * (P1-P8) decides per job between reserved and on-demand; the default
 * dynamic policy (P8) uses an adaptive soft utilization limit, a hard
 * limit, the Q90-vs-QT quality test against the on-demand type the job
 * would receive, and a queue-wait escape hatch to large on-demand
 * instances. HF uses full-server on-demand instances only; HM mixes
 * smaller shapes for cost.
 */

#ifndef HCLOUD_CORE_HYBRID_HPP
#define HCLOUD_CORE_HYBRID_HPP

#include "core/on_demand.hpp"
#include "core/soft_limit.hpp"

namespace hcloud::core {

/**
 * The hybrid strategies (HF when !mixed, HM when mixed).
 */
class HybridStrategy : public OnDemandStrategy
{
  public:
    HybridStrategy(EngineContext& ctx, bool mixed);

    StrategyKind kind() const override
    {
        return mixed_ ? StrategyKind::HM : StrategyKind::HF;
    }

    void start(const workload::ArrivalTrace& trace) override;
    void submit(workload::Job& job) override;
    void tick() override;

    /** Number of reserved instances provisioned. */
    int poolSize() const { return poolSize_; }

    /** Current soft utilization limit. */
    double softLimit() const { return softLimit_.softLimit(); }

    /** Soft-limit trajectory (Figure 9a). */
    const sim::StepSeries& softLimitHistory() const
    {
        return softLimit_.history();
    }

  protected:
    /**
     * Quality-aware shape selection (Section 5.4): walk up the size
     * ladder until the type's tracked Q90 meets the job's target quality,
     * so overflow jobs land on instances that satisfy their QoS even if
     * that means a larger instance.
     */
    const cloud::InstanceType& odTypeFor(const JobSizing& s) override;

    bool packOnDemand() const override { return true; }

  private:
    /**
     * Decide where the job goes under the configured mapping policy;
     * @p reason receives why (traced as a Decision event by submit()).
     */
    MapTarget mapJob(const workload::Job& job, const JobSizing& s,
                     obs::DecisionReason* reason);

    SoftLimitController softLimit_;
    int poolSize_ = 0;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_HYBRID_HPP
