#include "core/static_reserved.hpp"

#include <cmath>

namespace hcloud::core {

StaticReservedStrategy::StaticReservedStrategy(EngineContext& ctx)
    : Strategy(ctx)
{
}

void
StaticReservedStrategy::start(const workload::ArrivalTrace& trace)
{
    // The paper assumes the min/max aggregate load of a scenario is known
    // (Section 1); SR sizes for the peak plus overprovisioning.
    const workload::TraceStats stats = trace.stats();
    const double peak =
        stats.maxCores * (1.0 + ctx_.config.reservedOverprovision);
    poolSize_ = std::max(
        1, static_cast<int>(std::ceil(peak / largeType().vcpus)));
    cluster_.setReservedPool(
        ctx_.provider.reserveDedicated(largeType(), poolSize_));
}

void
StaticReservedStrategy::submit(workload::Job& job)
{
    const JobSizing s = sizeJob(job);
    if (!tryPlaceReserved(job, s))
        queueReserved(job);
}

} // namespace hcloud::core
