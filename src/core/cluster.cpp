#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>

namespace hcloud::core {

void
ClusterState::setReservedPool(std::vector<cloud::Instance*> pool)
{
    assert(reserved_.empty() && "reserved pool already set");
    reserved_ = std::move(pool);
}

void
ClusterState::addOnDemand(cloud::Instance* instance)
{
    onDemand_.push_back(instance);
}

void
ClusterState::removeOnDemand(cloud::Instance* instance)
{
    auto it = std::find(onDemand_.begin(), onDemand_.end(), instance);
    assert(it != onDemand_.end());
    onDemand_.erase(it);
}

double
ClusterState::reservedCapacity() const
{
    double c = 0.0;
    for (const auto* i : reserved_)
        c += i->coresTotal();
    return c;
}

double
ClusterState::reservedUsed() const
{
    double c = 0.0;
    for (const auto* i : reserved_)
        c += i->coresUsed();
    return c;
}

double
ClusterState::reservedUtilization() const
{
    const double cap = reservedCapacity();
    return cap > 0.0 ? reservedUsed() / cap : 0.0;
}

double
ClusterState::onDemandCapacity() const
{
    double c = 0.0;
    for (const auto* i : onDemand_)
        c += i->coresTotal();
    return c;
}

double
ClusterState::onDemandUsed() const
{
    double c = 0.0;
    for (const auto* i : onDemand_)
        c += i->coresUsed();
    return c;
}

} // namespace hcloud::core
