#include "core/quality_tracker.hpp"

#include <algorithm>
#include <vector>

namespace hcloud::core {

QualityTracker::QualityTracker(const cloud::ProviderProfile& profile,
                               sim::Rng rng)
    : profile_(profile), rng_(rng)
{
}

QualityTracker::TypeState&
QualityTracker::stateFor(const cloud::InstanceType& type) const
{
    auto it = types_.find(type.name);
    if (it != types_.end())
        return it->second;
    // Seed with prior draws from the profile's spatial distribution so
    // decisions made before any observation are reasonable.
    TypeState state;
    const double mean = profile_.spatialMean.at(type.vcpus);
    const double kappa = profile_.spatialConcentration.at(type.vcpus);
    for (std::size_t i = 0; i < kPriorSamples; ++i) {
        state.window.push_back(
            rng_.beta(mean * kappa, (1.0 - mean) * kappa));
    }
    return types_.emplace(type.name, std::move(state)).first->second;
}

void
QualityTracker::record(const cloud::InstanceType& type, double quality)
{
    TypeState& s = stateFor(type);
    s.window.push_back(std::clamp(quality, 0.0, 1.0));
    if (s.window.size() > kMaxSamples)
        s.window.pop_front();
    s.dirty = true;
}

double
QualityTracker::qualityAtConfidence(const cloud::InstanceType& type,
                                    double confidence) const
{
    TypeState& s = stateFor(type);
    if (s.dirty) {
        s.sorted.assign(s.window.begin(), s.window.end());
        std::sort(s.sorted.begin(), s.sorted.end());
        s.dirty = false;
    }
    const std::vector<double>& sorted = s.sorted;
    const double q = std::clamp(1.0 - confidence, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::size_t
QualityTracker::samples(const cloud::InstanceType& type) const
{
    return stateFor(type).window.size();
}

} // namespace hcloud::core
