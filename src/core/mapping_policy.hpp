/**
 * @file
 * Application-mapping policies between reserved and on-demand resources.
 *
 * Implements the eight policies of Figures 6-7: random (P1), quality-score
 * thresholds (P2-P4), static reserved-load limits (P5-P7), and HCloud's
 * dynamic policy (P8, Figure 8) with its soft/hard utilization limits,
 * the Q90-vs-QT quality test, and the queue-wait escape hatch to a large
 * on-demand instance.
 */

#ifndef HCLOUD_CORE_MAPPING_POLICY_HPP
#define HCLOUD_CORE_MAPPING_POLICY_HPP

#include "core/types.hpp"
#include "obs/trace_event.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/** Where the mapping policy sends a job. */
enum class MapTarget
{
    Reserved,      ///< place on the reserved pool (queue if full)
    OnDemand,      ///< place on the strategy's usual on-demand shape
    OnDemandLarge, ///< escape hatch: force a full-server on-demand shape
    QueueReserved, ///< hold in the local queue for reserved capacity
};

const char* toString(MapTarget target);

/** Inputs the mapping decision consumes. */
struct MappingInputs
{
    /** Current reserved-pool utilization in [0, 1]. */
    double reservedUtilization = 0.0;
    /** Target quality QT the job needs (its estimated Q). */
    double jobQuality = 0.5;
    /** Quality the candidate on-demand type delivers at 90% confidence. */
    double onDemandQ90 = 0.9;
    /** Dynamic policy: soft utilization limit (adapted by feedback). */
    double softLimit = 0.65;
    /** Dynamic policy: hard utilization limit. */
    double hardLimit = 0.85;
    /** Estimated p99 wait for reserved capacity of the needed size. */
    sim::Duration estimatedQueueWait = 0.0;
    /** Median spin-up of the large (16 vCPU) on-demand shape. */
    sim::Duration largeSpinUpMedian = 15.0;
    /** Random stream (P1 only). */
    sim::Rng* rng = nullptr;
};

/**
 * Decide where to map a job under the given policy.
 *
 * @param reason When non-null, receives why the branch was taken
 *        (PolicyStatic for the mechanical P1-P7 policies; the dynamic
 *        policy reports which limit/quality/wait test fired).
 */
MapTarget decideMapping(PolicyKind policy, const MappingInputs& in,
                        obs::DecisionReason* reason = nullptr);

} // namespace hcloud::core

#endif // HCLOUD_CORE_MAPPING_POLICY_HPP
