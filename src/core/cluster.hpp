/**
 * @file
 * ClusterState: the strategy-side view of owned resources.
 */

#ifndef HCLOUD_CORE_CLUSTER_HPP
#define HCLOUD_CORE_CLUSTER_HPP

#include <vector>

#include "cloud/instance.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/**
 * Tracks the reserved pool and the set of live on-demand instances.
 */
class ClusterState
{
  public:
    /** Install the reserved pool (once, at strategy start). */
    void setReservedPool(std::vector<cloud::Instance*> pool);

    const std::vector<cloud::Instance*>& reservedPool() const
    {
        return reserved_;
    }

    /** Live on-demand instances (spinning up or running). */
    const std::vector<cloud::Instance*>& onDemand() const
    {
        return onDemand_;
    }

    void addOnDemand(cloud::Instance* instance);
    void removeOnDemand(cloud::Instance* instance);

    /** Total reserved capacity in cores. */
    double reservedCapacity() const;

    /** Cores in use on reserved instances. */
    double reservedUsed() const;

    /** Reserved utilization in [0, 1] (0 when there is no pool). */
    double reservedUtilization() const;

    /** Total capacity of live on-demand instances in cores. */
    double onDemandCapacity() const;

    /** Cores in use on live on-demand instances. */
    double onDemandUsed() const;

  private:
    std::vector<cloud::Instance*> reserved_;
    std::vector<cloud::Instance*> onDemand_;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_CLUSTER_HPP
