/**
 * @file
 * Core-layer shared types: engine configuration and strategy identifiers.
 */

#ifndef HCLOUD_CORE_TYPES_HPP
#define HCLOUD_CORE_TYPES_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "cloud/external_load.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/** The five provisioning strategies of Table 3. */
enum class StrategyKind
{
    SR,  ///< statically reserved
    OdF, ///< on-demand, full servers only
    OdM, ///< on-demand, mixed instance sizes
    HF,  ///< hybrid, full-server on-demand
    HM,  ///< hybrid, mixed on-demand
};

const char* toString(StrategyKind kind);

/** All strategies, for iteration. */
inline constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::SR, StrategyKind::OdF, StrategyKind::OdM,
    StrategyKind::HF, StrategyKind::HM,
};

/** Application-mapping policies examined in Figures 6-7. */
enum class PolicyKind
{
    P1Random,  ///< fair coin
    P2Q80,     ///< Q > 80% to reserved
    P3Q50,     ///< Q > 50% to reserved
    P4Q20,     ///< Q > 20% to reserved
    P5Load50,  ///< reserved while load < 50%
    P6Load70,  ///< reserved while load < 70%
    P7Load90,  ///< reserved while load < 90%
    P8Dynamic, ///< HCloud's dynamic policy (Figure 8)
};

const char* toString(PolicyKind kind);

inline constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::P1Random, PolicyKind::P2Q80,   PolicyKind::P3Q50,
    PolicyKind::P4Q20,    PolicyKind::P5Load50, PolicyKind::P6Load70,
    PolicyKind::P7Load90, PolicyKind::P8Dynamic,
};

/** Per-run engine configuration. */
struct EngineConfig
{
    std::uint64_t seed = 1;

    /** Use Quasar profiling/classification (vs user-supplied sizing). */
    bool useProfiling = true;
    /** Profiling observation noise; raised in noisy environments. */
    double observationNoise = 0.05;

    /** External-tenant load on shared machines (Figure 14b knob). */
    cloud::ExternalLoadConfig externalLoad{};
    /** Spin-up scale multiplier (Figure 14a knob). */
    double spinUpScale = 1.0;
    /** Fixed spin-up override in seconds (Figure 14a sweep). */
    std::optional<sim::Duration> spinUpFixed;

    /** Idle-instance retention, in multiples of the spin-up median. */
    double retentionMultiple = 10.0;
    /** Idle instances below this observed quality release immediately. */
    double qualityRetentionThreshold = 0.70;

    /** SR: overprovisioning factor above the scenario peak. */
    double reservedOverprovision = 0.15;

    /** Hybrid: job-mapping policy. */
    PolicyKind mappingPolicy = PolicyKind::P8Dynamic;
    /** Hybrid: hard reserved-utilization limit (Figure 8). */
    double hardLimit = 0.92;

    /** Engine tick for progress integration and housekeeping. */
    sim::Duration tick = 2.0;
    /** Per-instance utilization sampling period (Figures 19-20). */
    sim::Duration utilizationSample = 30.0;
    /** Safety cap on simulated runtime. */
    sim::Duration maxRuntime = sim::hours(12.0);

    /** Enable the QoS monitor (local boost, then reschedule). */
    bool qosMonitoring = true;

    /**
     * Structured event tracing (src/obs). Mode Auto defers to the
     * HCLOUD_TRACE environment variable; the recorded stream lands in
     * RunResult::trace.
     */
    obs::TraceConfig trace{};

    /**
     * Cluster-state timeline sampling (src/obs). Mode Auto defers to the
     * HCLOUD_TIMELINE environment variable; the sample stream lands in
     * RunResult::timeline. Sampling is read-only over memoized state, so
     * enabling it never perturbs decisions or RNG trajectories.
     */
    obs::TimelineConfig timeline{};
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_TYPES_HPP
