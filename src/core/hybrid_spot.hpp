/**
 * @file
 * HS: spot-augmented hybrid provisioning (Section 5.5 extension).
 *
 * The paper's future-work direction: "Incorporating spot instances in
 * provisioning for non-critical tasks or jobs with very relaxed
 * performance requirements can further improve cost-efficiency."
 *
 * HS extends HM with a third resource tier. Tolerant batch jobs (low
 * estimated Q) that the dynamic policy would overflow to on-demand are
 * instead bid onto spot capacity — full-server spot instances at a bid
 * between the typical spot price and the on-demand rate. When the market
 * reclaims an instance, its jobs are evicted and resubmitted through the
 * normal mapping path (their accumulated batch progress is retained, as
 * with checkpointed Hadoop tasks). Latency-critical and sensitive jobs
 * never touch spot capacity.
 */

#ifndef HCLOUD_CORE_HYBRID_SPOT_HPP
#define HCLOUD_CORE_HYBRID_SPOT_HPP

#include "core/hybrid.hpp"

namespace hcloud::core {

/** HS-specific knobs. */
struct SpotPolicyConfig
{
    /** Jobs with estimated Q above this never go to spot. */
    double maxQuality = 0.60;
    /** Bid as a fraction of the on-demand rate. */
    double bidFraction = 0.60;
    /** Skip spot while the market trades above this fraction. */
    double maxEntryFraction = 0.55;
};

/**
 * Hybrid + spot strategy.
 */
class HybridSpotStrategy : public HybridStrategy
{
  public:
    HybridSpotStrategy(EngineContext& ctx,
                       SpotPolicyConfig spotConfig = {});

    /** Reported as HM for classification; the name distinguishes it. */
    std::string name() const override { return "HS"; }

    void submit(workload::Job& job) override;

    /** Spot instances interrupted by the market so far. */
    std::size_t interruptions() const { return interruptions_; }

  private:
    /** True when this job may run on interruptible capacity. */
    bool spotEligible(const workload::Job& job, const JobSizing& s) const;

    /** Place on (or acquire) spot capacity. */
    void submitSpot(workload::Job& job, const JobSizing& s);

    /** Evict every resident of a reclaimed instance and resubmit. */
    void onSpotInterrupted(cloud::Instance* instance);

    SpotPolicyConfig spotConfig_;
    std::size_t interruptions_ = 0;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_HYBRID_SPOT_HPP
