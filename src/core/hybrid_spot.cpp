#include "core/hybrid_spot.hpp"

#include <vector>

namespace hcloud::core {

HybridSpotStrategy::HybridSpotStrategy(EngineContext& ctx,
                                       SpotPolicyConfig spotConfig)
    : HybridStrategy(ctx, /*mixed=*/true), spotConfig_(spotConfig)
{
}

bool
HybridSpotStrategy::spotEligible(const workload::Job& job,
                                 const JobSizing& s) const
{
    // Only throughput-bound work with relaxed requirements; a service
    // that loses its instance mid-session breaks its clients.
    if (job.spec().jobClass() != workload::JobClass::Batch)
        return false;
    if (s.quality > spotConfig_.maxQuality)
        return false;
    // Do not enter an expensive market: the bid would be underwater
    // almost immediately.
    return ctx_.provider.spotMarket().priceFraction(
               largeType(), ctx_.simulator.now()) <
        spotConfig_.maxEntryFraction;
}

void
HybridSpotStrategy::submitSpot(workload::Job& job, const JobSizing& s)
{
    // Pack onto an existing live spot instance when possible.
    const sim::Time now = ctx_.simulator.now();
    cloud::Instance* best = nullptr;
    for (cloud::Instance* inst : cluster_.onDemand()) {
        if (!inst->spot() ||
            inst->state() == cloud::InstanceState::Released ||
            inst->coresFree() + 1e-9 < s.cores) {
            continue;
        }
        if (!best || inst->coresFree() < best->coresFree())
            best = inst;
    }
    if (best) {
        ctx_.tracer.decision(now, obs::DecisionReason::SpotEntry,
                             job.id(), best->id(), s.cores, "packed");
        assignToInstance(job, best, s, /*reserved=*/false);
        return;
    }
    const double bid =
        spotConfig_.bidFraction * largeType().onDemandHourly;
    cloud::Instance* inst = ctx_.provider.acquireSpot(
        largeType(), bid,
        [this](cloud::Instance* ready) { onInstanceReady(ready); },
        [this](cloud::Instance* reclaimed) {
            onSpotInterrupted(reclaimed);
        });
    (void)now;
    cluster_.addOnDemand(inst);
    ctx_.metrics.countAcquisition();
    ctx_.tracer.decision(now, obs::DecisionReason::SpotEntry, job.id(),
                         inst->id(), bid, inst->type().name);
    assignToInstance(job, inst, s, /*reserved=*/false);
}

void
HybridSpotStrategy::onSpotInterrupted(cloud::Instance* instance)
{
    ++interruptions_;
    ctx_.metrics.countSpotInterruption();
    const sim::Time now = ctx_.simulator.now();
    // Evict every resident; batch progress is retained (checkpointing),
    // and the job re-enters the normal mapping path.
    std::vector<workload::Job*> evicted;
    for (const auto& [job_id, resident] : instance->residents()) {
        auto it = jobIndex_.find(job_id);
        if (it != jobIndex_.end())
            evicted.push_back(it->second);
    }
    for (workload::Job* job : evicted) {
        instance->removeResident(job->id(), now);
        job->instance = nullptr;
        job->state = workload::JobState::Pending;
    }
    pending_.erase(instance->id());
    cluster_.removeOnDemand(instance);
    // The provider releases the instance after this handler returns; we
    // only resubmit the displaced work.
    for (workload::Job* job : evicted)
        HybridStrategy::submit(*job);
}

void
HybridSpotStrategy::submit(workload::Job& job)
{
    const JobSizing s = sizeJob(job);
    if (spotEligible(job, s)) {
        // Spot replaces the on-demand leg for tolerant batch work when
        // the reserved pool is past its soft limit.
        const double util = cluster_.reservedUtilization();
        if (util >= softLimit() || !tryPlaceReserved(job, s)) {
            submitSpot(job, s);
            return;
        }
        return; // placed on reserved below the soft limit
    }
    HybridStrategy::submit(job);
}

} // namespace hcloud::core
