/**
 * @file
 * SR: statically-reserved provisioning (Section 3.1).
 *
 * Provisions dedicated full-server instances for the scenario's peak
 * requirement plus a small overprovisioning margin (latency-critical jobs
 * misbehave on nearly-saturated resources), then schedules every job on
 * the pool — greedy quality-aware with profiling, least-loaded without —
 * queueing jobs when the pool is full.
 */

#ifndef HCLOUD_CORE_STATIC_RESERVED_HPP
#define HCLOUD_CORE_STATIC_RESERVED_HPP

#include "core/strategy.hpp"

namespace hcloud::core {

/**
 * The fully-reserved strategy.
 */
class StaticReservedStrategy : public Strategy
{
  public:
    explicit StaticReservedStrategy(EngineContext& ctx);

    StrategyKind kind() const override { return StrategyKind::SR; }

    void start(const workload::ArrivalTrace& trace) override;
    void submit(workload::Job& job) override;

    /** Number of reserved instances provisioned. */
    int poolSize() const { return poolSize_; }

  private:
    int poolSize_ = 0;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_STATIC_RESERVED_HPP
