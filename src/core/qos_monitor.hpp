/**
 * @file
 * QoS monitor (Section 3.3): detect sustained QoS violations and escalate
 * from local actions (growing the allocation in place) to rescheduling.
 */

#ifndef HCLOUD_CORE_QOS_MONITOR_HPP
#define HCLOUD_CORE_QOS_MONITOR_HPP

#include <unordered_map>

#include "obs/tracer.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/** Action the monitor requests for a violating job. */
enum class QosAction
{
    None,       ///< keep watching
    Boost,      ///< grow the allocation on the current instance
    Reschedule, ///< move the job elsewhere (last resort)
};

/**
 * Tracks consecutive QoS violations per job and escalates.
 */
class QosMonitor
{
  public:
    /**
     * @param violationThreshold Consecutive violating checks before
     *        acting.
     * @param maxReschedules Rescheduling budget per job.
     */
    explicit QosMonitor(int violationThreshold = 12,
                        int maxReschedules = 1);

    /**
     * Feed one check result for a running job.
     *
     * @param job Job id.
     * @param violating True when the job currently misses its QoS.
     * @param canBoost True when the hosting instance has spare cores.
     * @param reschedulesSoFar How many times the job has been moved.
     * @param now Simulated time, stamped on emitted trace events.
     */
    QosAction check(sim::JobId job, bool violating, bool canBoost,
                    int reschedulesSoFar, sim::Time now = 0.0);

    /** Drop state for a finished job. */
    void forget(sim::JobId job);

    /** Emit QosViolation trace events through @p tracer (may be null). */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

    /** Number of jobs currently tracked as violating. */
    std::size_t tracked() const { return streak_.size(); }

  private:
    int threshold_;
    int maxReschedules_;
    /** Never iterated, so hash ordering cannot affect determinism. */
    std::unordered_map<sim::JobId, int> streak_;
    obs::Tracer* tracer_ = nullptr;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_QOS_MONITOR_HPP
