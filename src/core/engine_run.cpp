#include "core/engine_run.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <map>

#include "cloud/pricing.hpp"
#include "core/hybrid.hpp"
#include "sim/stats.hpp"
#include "workload/batch_model.hpp"
#include "workload/latency_model.hpp"

namespace hcloud::core {

namespace {

/** Figure 21 application groups, indexable for per-group accumulators. */
enum AppGroup : int
{
    kGroupHadoop = 0,
    kGroupSpark = 1,
    kGroupMemcached = 2,
    kGroupCount = 3,
};

constexpr const char* kGroupNames[kGroupCount] = {"hadoop", "spark",
                                                  "memcached"};

/** Figure 21 grouping of application kinds. */
constexpr AppGroup
groupOf(workload::AppKind kind)
{
    switch (kind) {
      case workload::AppKind::HadoopRecommender:
      case workload::AppKind::HadoopSvm:
      case workload::AppKind::HadoopMatFac:
        return kGroupHadoop;
      case workload::AppKind::SparkAnalytics:
      case workload::AppKind::SparkRealtime:
        return kGroupSpark;
      case workload::AppKind::Memcached:
        return kGroupMemcached;
    }
    return kGroupHadoop;
}

profiling::QuasarConfig
makeQuasarConfig(const EngineConfig& config, const sim::Rng& root)
{
    profiling::QuasarConfig quasar_config;
    quasar_config.observationNoise = config.observationNoise;
    quasar_config.seed = root.child("quasar").seed();
    return quasar_config;
}

} // namespace

EngineRun::EngineRun(const EngineConfig& config,
                     const cloud::ProviderProfile& profile,
                     const StrategyFactory& factory)
    : config_(config),
      profile_(profile),
      setupScope_(
          std::make_unique<obs::PhaseProfiler::Scope>(phases_, "setup")),
      root_(config_.seed),
      tracer_(config_.trace),
      timeline_(config_.timeline)
{
    wire(factory);
}

EngineRun::~EngineRun() = default;

void
EngineRun::wire(const StrategyFactory& factory)
{
    // Construction order is load-bearing twice over: the RNG child
    // streams ("provider" before "quasar") must derive in the same order
    // as always, and the context must only be built once everything it
    // references exists.
    provider_.emplace(simulator_, profile_, config_.externalLoad,
                      root_.child("provider"));
    // Reuse a live Quasar across resets: reset() re-seeds the RNG and
    // clears the signature cache but keeps the bootstrapped classifier
    // (bit-identical to a fresh bootstrap — see Quasar::reset).
    const profiling::QuasarConfig quasarConfig =
        makeQuasarConfig(config_, root_);
    if (quasar_)
        quasar_->reset(quasarConfig);
    else
        quasar_.emplace(quasarConfig);
    metrics_.emplace();
    ctx_.emplace(EngineContext{simulator_,
                               *provider_,
                               cloud::InstanceTypeCatalog::defaultCatalog(),
                               *quasar_,
                               *metrics_,
                               tracer_,
                               config_,
                               /*onJobStarted=*/nullptr});
    provider_->setTracer(&tracer_);
    provider_->spinUp().setScale(config_.spinUpScale);
    if (config_.spinUpFixed)
        provider_->spinUp().setFixedOverride(config_.spinUpFixed);

    strategy_ = factory(*ctx_);
    // Profiling on shared small instances is noisier (Section 3.3).
    if (strategy_->usesSmallOnDemand()) {
        quasar_->setObservationNoise(config_.observationNoise * 2.2);
    }
    ctx_->onJobStarted = [this](workload::Job& job) { onJobStarted(job); };

    // Bootstrap the classifier library eagerly so its training cost lands
    // in the "setup" phase instead of the first classification's sim-loop
    // slice. Bootstrap never touches the run RNG, so decisions are
    // byte-identical either way — and a reset engine that kept its warm
    // classifier skips the cost entirely, which is the reuse win the
    // sweep scheduler's setup-ratio gate measures.
    if (config_.useProfiling)
        quasar_->warmUp();
}

void
EngineRun::reset(const EngineConfig& config,
                 const cloud::ProviderProfile& profile,
                 const StrategyFactory& factory)
{
    // Tear down in reverse dependency order: the strategy holds the
    // context by reference, and the context references provider, Quasar
    // and metrics. Nothing below touches the torn-down pieces until
    // wire() rebuilds them.
    strategy_.reset();
    ctx_.reset();
    metrics_.reset();
    // quasar_ deliberately survives: wire() re-arms it in place so the
    // bootstrapped classifier library is reused (see Quasar::reset).
    provider_.reset();

    config_ = config;
    profile_ = profile;

    // Fresh phase accumulators, with the setup scope re-opened so the
    // reset-to-runBatch span lands in "setup" exactly like construction.
    setupScope_.reset();
    phases_ = obs::PhaseProfiler{};
    setupScope_ =
        std::make_unique<obs::PhaseProfiler::Scope>(phases_, "setup");

    simulator_.reset(); // keeps the event-queue slab + callback storage
    root_ = sim::Rng(config_.seed);
    tracer_.reset(config_.trace);
    timeline_.reset(config_.timeline);

    // clear() keeps every container's grown capacity — jobs vector,
    // id index buckets, active/LC scratch — which is the point of
    // reusing the engine at all.
    jobs_.clear();
    jobIndex_.clear();
    active_.clear();
    lcJobs_.clear();
    finished_ = 0;
    nextSample_ = 0.0;
    nextTimelineSample_ = 0.0;
    compactedAtFinished_ = 0;
    sessionMode_ = false;

    wire(factory);
}

void
EngineRun::finishJob(workload::Job& job, sim::Time when, bool failed)
{
    assert(job.state != workload::JobState::Completed);
    job.completedAt = when;
    job.state = failed ? workload::JobState::Failed
                       : workload::JobState::Completed;
    ++finished_;
    tracer_.job(failed ? obs::EventKind::JobFail : obs::EventKind::JobFinish,
                when, job.id(), job.perfNormalized(), {},
                failed ? obs::Severity::Warn : obs::Severity::Info);
    strategy_->jobCompleted(job);
}

void
EngineRun::onJobStarted(workload::Job& job)
{
    const sim::Time now = simulator_.now();
    job.lastProgressAt = now;
    if (!job.engineTracked) {
        job.engineTracked = true;
        active_.push_back(&job);
    }
    const workload::JobSpec& spec = job.spec();
    workload::Job* jp = &job;
    if (job.instance->faulty()) {
        // The platform terminates the VM partway through (EC2 micro
        // behaviour in Figure 1).
        const sim::Duration life = 0.5 *
            (spec.jobClass() == workload::JobClass::Batch
                 ? spec.idealDuration
                 : spec.lcLifetime);
        simulator_.after(life, [this, jp]() {
            if (jp->state == workload::JobState::Running)
                finishJob(*jp, simulator_.now(), /*failed=*/true);
        });
    } else if (spec.jobClass() == workload::JobClass::LatencyCritical) {
        simulator_.after(spec.lcLifetime, [this, jp]() {
            // A stale timer from before a reschedule fires early;
            // only complete once the current lifetime has elapsed.
            if (jp->state == workload::JobState::Running &&
                simulator_.now() + 1e-9 >=
                    jp->startedAt + jp->spec().lcLifetime) {
                finishJob(*jp, simulator_.now(), /*failed=*/false);
            }
        });
    }
}

void
EngineRun::scheduleArrival(std::size_t i)
{
    const sim::Time arrival = jobs_[i]->spec().arrival;
    simulator_.at(arrival, [this, i]() { arrivalFired(i); });
}

void
EngineRun::arrivalFired(std::size_t i)
{
    workload::Job& job = *jobs_[i];
    if (job.spec().jobClass() == workload::JobClass::LatencyCritical) {
        lcJobs_.push_back(&job);
    }
    // Profiling (when enabled and uncached) delays the submission by the
    // profiling run length.
    const sim::Duration delay =
        config_.useProfiling ? quasar_->profilingDelay(job.spec()) : 0.0;
    tracer_.job(obs::EventKind::JobSubmit, simulator_.now(), job.id(),
                delay, workload::toString(job.spec().kind));
    if (delay > 0.0) {
        workload::Job* jp = &job;
        simulator_.after(delay, [this, jp]() { strategy_->submit(*jp); });
    } else {
        strategy_->submit(job);
    }
}

void
EngineRun::advanceJob(workload::Job& job, sim::Time t)
{
    if (job.state != workload::JobState::Running)
        return;
    const sim::Duration dt = t - job.lastProgressAt;
    if (dt <= 0.0)
        return;
    const workload::JobSpec& spec = job.spec();
    cloud::Instance* inst = job.instance;
    const double sens = job.sensitivityScalar();
    const double q = inst->effectiveQuality(t, sens, job.id());
    // Without profiling, jobs run with user-default framework
    // parameters (Section 3.4: 64KB block size, 1GB heaps, default
    // thread counts), which roughly halves delivered efficiency.
    const double config_eff = config_.useProfiling ? 1.0 : 0.5;
    bool violating = false;
    if (spec.jobClass() == workload::JobClass::Batch) {
        const double eff = config_eff *
            workload::batch_model::parallelEfficiency(job.cores,
                                                      spec.coresIdeal);
        const double rate = job.cores * q * eff;
        const double done = job.workDone +
            workload::batch_model::workDone(job.cores * eff, q, dt);
        if (done >= spec.workTotal()) {
            const sim::Time tc = job.lastProgressAt +
                (spec.workTotal() - job.workDone) / rate;
            job.workDone = spec.workTotal();
            job.lastProgressAt = t;
            finishJob(job, std::min(tc, t), /*failed=*/false);
            return;
        }
        job.workDone = done;
        violating = rate / spec.coresIdeal < 0.33;
    } else {
        const double pressure = inst->interferencePressure(t, job.id());
        // Interference bites serving *capacity* less than batch
        // throughput (the tail term below carries the rest):
        // neighbours inflate latency well before they truly halve
        // throughput.
        const double q_cap = (0.65 * q + 0.35) * config_eff;
        const double p99 = workload::latency_model::p99Us(
            spec.lcLoadRps, job.cores, q_cap, sens * pressure);
        job.latencyUs.add(p99);
        violating = p99 > 2.0 * spec.lcQosUs;
    }
    job.lastProgressAt = t;
    strategy_->qosCheck(job, violating);
}

void
EngineRun::sample(sim::Time t)
{
    const ClusterState& cluster = strategy_->cluster();
    metrics_->recordAllocation(t, cluster.reservedCapacity(),
                              cluster.onDemandCapacity(),
                              cluster.onDemandUsed());
    metrics_->recordReservedUtilization(t, cluster.reservedUtilization());
    auto record_instance = [&](cloud::Instance* inst) {
        metrics_->recordInstanceUtilization(
            inst->id(), inst->type().name, inst->reserved(),
            inst->acquiredAt(), t, inst->coresUsed() / inst->coresTotal());
    };
    for (cloud::Instance* inst : cluster.reservedPool())
        record_instance(inst);
    for (cloud::Instance* inst : cluster.onDemand())
        record_instance(inst);
    // Figure 21 breakdown: allocated cores by app group and side.
    double cores[kGroupCount][2] = {{0, 0}, {0, 0}, {0, 0}};
    for (const workload::Job* job : active_) {
        if (job->state != workload::JobState::Running &&
            job->state != workload::JobState::Waiting) {
            continue;
        }
        cores[groupOf(job->spec().kind)][job->onReserved ? 0 : 1] +=
            job->cores;
    }
    for (int gi = 0; gi < kGroupCount; ++gi) {
        metrics_->recordBreakdown(t, kGroupNames[gi], true, cores[gi][0]);
        metrics_->recordBreakdown(t, kGroupNames[gi], false, cores[gi][1]);
    }
}

void
EngineRun::sampleTimeline(sim::Time t)
{
    const ClusterState& cluster = strategy_->cluster();
    obs::TimelineSample s;
    s.t = t;

    // One pass over the cluster: market counts, per-type counts, the
    // observed-quality distribution and the distinct backing hosts.
    // Every accessor here is read-only over memoized per-tick state —
    // nothing below may advance an OU process or draw from an RNG.
    sim::SampleSet quality;
    std::map<std::string, std::uint32_t> typeCounts;
    std::vector<const cloud::Machine*> hosts;
    auto scan = [&](const cloud::Instance* inst) {
        if (inst->reserved())
            ++s.reservedInstances;
        else if (inst->spot())
            ++s.spotInstances;
        else
            ++s.onDemandInstances;
        ++typeCounts[inst->type().name];
        quality.add(inst->observedQuality());
        const cloud::Machine* host = inst->host();
        if (std::find(hosts.begin(), hosts.end(), host) == hosts.end())
            hosts.push_back(host);
    };
    for (const cloud::Instance* inst : cluster.reservedPool())
        scan(inst);
    for (const cloud::Instance* inst : cluster.onDemand())
        scan(inst);
    s.typeCounts.assign(typeCounts.begin(), typeCounts.end());

    s.reservedCores = cluster.reservedCapacity();
    s.reservedUsed = cluster.reservedUsed();
    s.onDemandCores = cluster.onDemandCapacity();
    s.onDemandUsed = cluster.onDemandUsed();
    s.utilization = cluster.reservedUtilization();

    s.qualityMean = quality.mean();
    s.qualityP5 = quality.quantile(0.05);
    s.qualityP50 = quality.quantile(0.50);
    s.qualityP95 = quality.quantile(0.95);

    s.queueLength =
        static_cast<std::uint32_t>(strategy_->reservedQueueLength());
    s.activeJobs = static_cast<std::uint32_t>(active_.size());
    std::uint32_t running = 0;
    for (const workload::Job* job : active_) {
        if (job->state == workload::JobState::Running)
            ++running;
    }
    s.runningJobs = running;
    s.finishedJobs = finished_;

    double ext = 0.0;
    for (const cloud::Machine* host : hosts)
        ext += host->lastExternalUtilization();
    s.externalLoad =
        hosts.empty() ? 0.0 : ext / static_cast<double>(hosts.size());

    const cloud::InstanceType& fullServer = ctx_->catalog.types().back();
    if (const cloud::SpotMarket* market = provider_->spotMarketIfCreated())
        s.spotPrice = market->lastPriceFraction(fullServer);
    else
        s.spotPrice = cloud::SpotMarketConfig{}.meanDiscount;

    s.qosTracked =
        static_cast<std::uint32_t>(strategy_->qosMonitor().tracked());

    // amortized() is a pure function over closed usage records — the
    // paper's normalized-cost view, evaluated at the sample time.
    static const cloud::AwsStylePricing pricing;
    s.costTotal = provider_->billing().amortized(pricing, t).total();

    timeline_.record(std::move(s));
}

bool
EngineRun::onTick()
{
    const sim::Time t = simulator_.now();
    for (std::size_t i = 0; i < active_.size(); ++i)
        advanceJob(*active_[i], t);
    // Services without serving capacity record unserved latency once
    // the client-ramp grace period is exhausted. Completed/failed
    // services are compacted away in the same pass.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < lcJobs_.size(); ++i) {
        workload::Job* job = lcJobs_[i];
        if (job->state == workload::JobState::Completed ||
            job->state == workload::JobState::Failed) {
            continue;
        }
        if (job->state == workload::JobState::Pending ||
            job->state == workload::JobState::Queued ||
            job->state == workload::JobState::Waiting) {
            const sim::Time waiting_since =
                job->startedAt == sim::kTimeNever ? job->spec().arrival
                                                  : job->lastProgressAt;
            if (t - waiting_since >
                workload::latency_model::kUnservedGraceSec) {
                job->latencyUs.add(
                    workload::latency_model::kUnservedP99Us);
            }
        }
        lcJobs_[keep++] = job;
    }
    lcJobs_.resize(keep);
    // Jobs only leave `active` by finishing, so skip the compaction
    // scan on the (common) ticks where nothing finished.
    if (finished_ != compactedAtFinished_) {
        std::erase_if(active_, [](const workload::Job* j) {
            return j->state == workload::JobState::Completed ||
                   j->state == workload::JobState::Failed;
        });
        compactedAtFinished_ = finished_;
    }
    strategy_->tick();
    if (t >= nextSample_) {
        sample(t);
        nextSample_ += config_.utilizationSample;
    }
    // Same cadence scheme as sample(): fire on the first tick at or
    // after each boundary, so sample times depend only on the tick grid
    // and are identical in batch and session driving. Disabled runs pay
    // exactly this one predicted branch.
    if (timeline_.enabled() && t >= nextTimelineSample_) {
        sampleTimeline(t);
        nextTimelineSample_ += config_.timeline.cadence;
    }
    // A batch run ends its tick chain once the fixed job set completes; a
    // session never does — more jobs may arrive on the next request.
    if (!sessionMode_ && finished_ == jobs_.size())
        return false;
    if (t > config_.maxRuntime) {
        // Safety: fail whatever is still outstanding.
        for (auto& job : jobs_) {
            if (job->state != workload::JobState::Completed &&
                job->state != workload::JobState::Failed) {
                if (!job->instance) {
                    job->completedAt = t;
                    job->state = workload::JobState::Failed;
                    ++finished_;
                    tracer_.job(obs::EventKind::JobFail, t, job->id(), 0.0,
                                "max_runtime", obs::Severity::Warn);
                    metrics_->recordOutcome(*job);
                } else {
                    finishJob(*job, t, /*failed=*/true);
                }
            }
        }
        return false;
    }
    return true;
}

void
EngineRun::installTick()
{
    simulator_.every(config_.tick, [this]() -> bool { return onTick(); });
}

RunResult
EngineRun::runBatch(const workload::ArrivalTrace& trace,
                    const std::string& scenarioName)
{
    jobs_.reserve(trace.jobs().size());
    for (const auto& spec : trace.jobs())
        jobs_.push_back(std::make_unique<workload::Job>(spec));
    active_.reserve(jobs_.size());
    lcJobs_.reserve(jobs_.size());

    strategy_->start(trace);
    // Event scheduling order is load-bearing: arrivals in trace order
    // first, the tick chain last, exactly as the historical monolithic
    // Engine::run() — (time, seq) tie-breaks in the event queue must not
    // move under the refactor.
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        scheduleArrival(i);
    installTick();

    setupScope_.reset();
    {
        obs::PhaseProfiler::Scope sim_scope(phases_, "sim-loop");
        simulator_.run();
    }
    return finalize(scenarioName);
}

void
EngineRun::beginSession(const workload::ArrivalTrace& trace)
{
    sessionMode_ = true;
    strategy_->start(trace);
    installTick();
    setupScope_.reset();
}

EngineRun::SubmitStatus
EngineRun::submit(const workload::JobSpec& spec)
{
    if (spec.arrival < simulator_.now())
        return SubmitStatus::ArrivalInPast;
    if (jobIndex_.count(spec.id) != 0)
        return SubmitStatus::DuplicateId;
    jobs_.push_back(std::make_unique<workload::Job>(spec));
    jobIndex_.emplace(spec.id, jobs_.size() - 1);
    scheduleArrival(jobs_.size() - 1);
    return SubmitStatus::Accepted;
}

bool
EngineRun::advanceTo(sim::Time t)
{
    if (t < simulator_.now())
        return false;
    obs::PhaseProfiler::Scope sim_scope(phases_, "sim-loop");
    simulator_.runUntil(t);
    return true;
}

const workload::Job*
EngineRun::job(sim::JobId id) const
{
    const auto it = jobIndex_.find(id);
    return it == jobIndex_.end() ? nullptr : jobs_[it->second].get();
}

void
EngineRun::buildResult(RunResult& result, const std::string& scenarioName)
{
    result.strategy = strategy_->name();
    result.scenario = scenarioName;
    result.profiling = config_.useProfiling;
    sim::Time makespan = 0.0;
    for (const auto& job : jobs_)
        makespan = std::max(makespan, job->completedAt);
    result.makespan = makespan > 0.0 ? makespan : simulator_.now();

    result.outcomes = metrics_->outcomes();
    for (const JobOutcome& o : metrics_->outcomes()) {
        ++result.jobCount;
        if (o.failed)
            ++result.failedJobs;
        if (o.jobClass == workload::JobClass::Batch) {
            result.batchTurnaroundMin.add(o.turnaroundMin);
            result.batchPerfNorm.add(o.perfNorm);
        } else {
            result.lcLatencyUs.add(o.latencyP99Us);
            result.lcPerfNorm.add(o.perfNorm);
        }
        (o.onReserved ? result.perfReserved : result.perfOnDemand)
            .add(o.perfNorm);
    }

    if (!strategy_->cluster().reservedPool().empty()) {
        result.reservedUtilizationAvg =
            metrics_->reservedUtilization().average(0.0, result.makespan);
    }
    result.billing = provider_->billing();
    result.reservedAllocated = metrics_->reservedAllocated();
    result.onDemandAllocated = metrics_->onDemandAllocated();
    result.onDemandUsed = metrics_->onDemandUsed();
    result.reservedUtilization = metrics_->reservedUtilization();
    if (auto* hybrid = dynamic_cast<HybridStrategy*>(strategy_.get()))
        result.softLimitHistory = hybrid->softLimitHistory();
    result.instanceTimelines = metrics_->timelines();
    result.breakdown = metrics_->breakdown();
    result.acquisitions = metrics_->acquisitions();
    result.immediateReleases = metrics_->immediateReleases();
    result.reschedules = metrics_->reschedules();
    result.spotInterruptions = metrics_->spotInterruptions();
    result.queuedJobs = metrics_->queuedJobs();
    result.spinUpWaits = metrics_->spinUpWaits();
    result.queueWaits = metrics_->queueWaits();
}

RunResult
EngineRun::liveResult(const std::string& scenarioName)
{
    RunResult result;
    buildResult(result, scenarioName);
    result.timeline = timeline_.snapshot();
    result.metricsSnapshot = metrics_->registry().snapshot();
    result.telemetry.setupSec = phases_.seconds("setup");
    result.telemetry.simLoopSec = phases_.seconds("sim-loop");
    result.telemetry.eventsProcessed = simulator_.eventsRun();
    result.telemetry.callbackHeapAllocs = simulator_.callbackHeapAllocs();
    return result;
}

RunResult
EngineRun::finalize(const std::string& scenarioName)
{
    const auto finalize_start = obs::PhaseProfiler::Clock::now();
    RunResult result;
    buildResult(result, scenarioName);

    // ---- Observability artifacts ---------------------------------------
    result.trace = tracer_.take();
    result.timeline = timeline_.take();
    result.metricsSnapshot = metrics_->registry().snapshot();
    phases_.add("finalize",
                std::chrono::duration<double>(
                    obs::PhaseProfiler::Clock::now() - finalize_start)
                    .count());
    result.telemetry.setupSec = phases_.seconds("setup");
    result.telemetry.simLoopSec = phases_.seconds("sim-loop");
    result.telemetry.finalizeSec = phases_.seconds("finalize");
    result.telemetry.eventsProcessed = simulator_.eventsRun();
    result.telemetry.callbackHeapAllocs = simulator_.callbackHeapAllocs();
    result.telemetry.eventsPerSec = result.telemetry.simLoopSec > 0.0
        ? static_cast<double>(result.telemetry.eventsProcessed) /
            result.telemetry.simLoopSec
        : 0.0;
    return result;
}

} // namespace hcloud::core
