#include "core/soft_limit.hpp"

#include <algorithm>

namespace hcloud::core {

namespace {

sim::FeedbackConfig
makeConfig()
{
    sim::FeedbackConfig cfg;
    cfg.gain = 0.004;      // limit drop per queued job per update
    cfg.outputMin = SoftLimitController::kMin;
    cfg.outputMax = SoftLimitController::kMax;
    cfg.maxStep = 0.015;
    return cfg;
}

} // namespace

SoftLimitController::SoftLimitController()
    : controller_(makeConfig(), kInitial)
{
    history_.record(0.0, kInitial);
}

void
SoftLimitController::update(std::size_t queueLength, sim::Time now)
{
    const double before = controller_.output();
    if (queueLength == 0) {
        // Recovery: after a sustained calm period, admit more work.
        if (++calmStreak_ >= 2) {
            controller_.update(/*setpoint=*/3.0, /*measurement=*/0.0);
            calmStreak_ = 0;
        }
    } else {
        calmStreak_ = 0;
        // Queue pressure: setpoint 0 queued jobs; the error is negative,
        // pushing the limit down proportionally to the backlog.
        controller_.update(/*setpoint=*/0.0,
                           /*measurement=*/static_cast<double>(queueLength));
    }
    history_.record(now, controller_.output());
    // Trace only actual movement; steady-state updates would flood the
    // ring with no information.
    if (tracer_ && controller_.output() != before) {
        tracer_->controller(obs::EventKind::SoftLimitUpdate, now,
                            controller_.output());
    }
}

} // namespace hcloud::core
