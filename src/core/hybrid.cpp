#include "core/hybrid.hpp"

#include <cmath>

namespace hcloud::core {

HybridStrategy::HybridStrategy(EngineContext& ctx, bool mixed)
    : OnDemandStrategy(ctx, mixed)
{
    softLimit_.setTracer(&ctx.tracer);
}

void
HybridStrategy::start(const workload::ArrivalTrace& trace)
{
    // Reserved capacity covers the minimum steady-state load
    // (Section 4.1), avoiding SR's peak-sized overprovisioning.
    const workload::TraceStats stats = trace.stats();
    poolSize_ = std::max(
        1, static_cast<int>(std::ceil(stats.minCores /
                                      largeType().vcpus)));
    cluster_.setReservedPool(
        ctx_.provider.reserveDedicated(largeType(), poolSize_));
}

const cloud::InstanceType&
HybridStrategy::odTypeFor(const JobSizing& s)
{
    const cloud::InstanceType* best = nullptr;
    for (const auto& type : ctx_.catalog.types()) {
        if (type.vcpus + 1e-9 < s.cores ||
            type.memoryGb + 1e-9 < s.cores * s.memoryPerCore) {
            continue;
        }
        if (!best)
            best = &type; // smallest satisfying shape as the fallback
        if (qualityTracker_.qualityAtConfidence(type, 0.90) + 1e-9 >
            s.quality) {
            return type;
        }
    }
    return best ? *best : largeType();
}

MapTarget
HybridStrategy::mapJob(const workload::Job& job, const JobSizing& s,
                       obs::DecisionReason* reason)
{
    (void)job;
    const cloud::InstanceType& od_type =
        mixed_ ? odTypeFor(s) : largeType();

    MappingInputs in;
    in.reservedUtilization = cluster_.reservedUtilization();
    in.jobQuality = s.quality;
    in.onDemandQ90 = qualityTracker_.qualityAtConfidence(od_type, 0.90);
    in.softLimit = softLimit_.softLimit();
    in.hardLimit = ctx_.config.hardLimit;
    // Backlog-aware wait estimate: the Poisson single-slot wait scales
    // with the number of jobs already queued ahead of this one.
    in.estimatedQueueWait = queueEstimator_.waitQuantile(
                                largeType(), 0.90, ctx_.simulator.now()) *
        static_cast<double>(1 + reservedQueue_.size());
    in.largeSpinUpMedian = ctx_.provider.spinUp().median(largeType());
    in.rng = &rng_;
    return decideMapping(ctx_.config.mappingPolicy, in, reason);
}

void
HybridStrategy::submit(workload::Job& job)
{
    const JobSizing s = sizeJob(job);
    obs::DecisionReason why = obs::DecisionReason::PolicyStatic;
    const MapTarget target = mapJob(job, s, &why);
    ctx_.tracer.decision(ctx_.simulator.now(), why, job.id(),
                         /*instance=*/0, cluster_.reservedUtilization(),
                         toString(target));
    switch (target) {
      case MapTarget::Reserved:
        if (!tryPlaceReserved(job, s)) {
            // Fragmentation can leave the pool unable to host the job
            // even below the hard limit. Under the dynamic policy the
            // hard-limit escape applies: overflow tolerant jobs, queue
            // sensitive ones unless the wait beats a fresh large
            // instance. Static policies simply queue, as in Figure 6.
            if (ctx_.config.mappingPolicy == PolicyKind::P8Dynamic) {
                const cloud::InstanceType& od_type =
                    mixed_ ? pickSmallestType(s) : largeType();
                const double q90 =
                    qualityTracker_.qualityAtConfidence(od_type, 0.90);
                const sim::Duration wait =
                    queueEstimator_.waitQuantile(largeType(), 0.90,
                                                 ctx_.simulator.now()) *
                    static_cast<double>(1 + reservedQueue_.size());
                ctx_.tracer.decision(
                    ctx_.simulator.now(),
                    obs::DecisionReason::ReservedFragmented, job.id(),
                    /*instance=*/0, cluster_.reservedUtilization(),
                    od_type.name);
                if (q90 > s.quality) {
                    submitOnDemand(job, s, /*forceLarge=*/false);
                } else if (wait >
                           ctx_.provider.spinUp().median(largeType())) {
                    submitOnDemand(job, s, /*forceLarge=*/true);
                } else {
                    queueReserved(job);
                }
            } else {
                queueReserved(job);
            }
        }
        break;
      case MapTarget::OnDemand:
        submitOnDemand(job, s, /*forceLarge=*/false);
        break;
      case MapTarget::OnDemandLarge:
        submitOnDemand(job, s, /*forceLarge=*/true);
        break;
      case MapTarget::QueueReserved:
        queueReserved(job);
        break;
    }
}

void
HybridStrategy::tick()
{
    Strategy::tick();
    softLimit_.update(reservedQueue_.size(), ctx_.simulator.now());
    // Queue-timeout escape (dynamic policy): a job whose actual queueing
    // time has exceeded the instantiation overhead of a large on-demand
    // instance takes that instance instead (Section 4.2).
    if (ctx_.config.mappingPolicy != PolicyKind::P8Dynamic ||
        reservedQueue_.empty()) {
        return;
    }
    const sim::Time now = ctx_.simulator.now();
    const sim::Duration limit =
        1.5 * ctx_.provider.spinUp().median(largeType());
    std::deque<workload::Job*> keep;
    for (workload::Job* job : reservedQueue_) {
        if (now - job->queuedAt > limit) {
            const JobSizing s = sizeJob(*job);
            ctx_.tracer.decision(
                now, obs::DecisionReason::QueueTimeoutEscape, job->id(),
                /*instance=*/0, now - job->queuedAt);
            submitOnDemand(*job, s, /*forceLarge=*/true);
        } else {
            keep.push_back(job);
        }
    }
    reservedQueue_.swap(keep);
}

} // namespace hcloud::core
