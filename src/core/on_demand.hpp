/**
 * @file
 * OdF / OdM: fully on-demand provisioning (Section 3.2).
 *
 * OdF acquires only full-server (16 vCPU) instances, which are less prone
 * to external interference, and packs jobs onto them. OdM requests the
 * smallest instance size satisfying each job's demand — cheaper, but the
 * small slices share machines with external tenants and suffer the
 * unpredictability of Figures 1-2. Both retain idle instances for a
 * multiple of the spin-up overhead.
 */

#ifndef HCLOUD_CORE_ON_DEMAND_HPP
#define HCLOUD_CORE_ON_DEMAND_HPP

#include "core/strategy.hpp"

namespace hcloud::core {

/**
 * The fully on-demand strategies (OdF when !mixed, OdM when mixed).
 */
class OnDemandStrategy : public Strategy
{
  public:
    OnDemandStrategy(EngineContext& ctx, bool mixed);

    StrategyKind kind() const override
    {
        return mixed_ ? StrategyKind::OdM : StrategyKind::OdF;
    }

    void start(const workload::ArrivalTrace& trace) override;
    void submit(workload::Job& job) override;
    bool usesSmallOnDemand() const override { return mixed_; }

  protected:
    /** Place on (or acquire) on-demand capacity for the job. */
    void submitOnDemand(workload::Job& job, const JobSizing& s,
                        bool forceLarge);

    /**
     * On-demand shape for a job in mixed mode. OdM requests the smallest
     * satisfying shape; HybridStrategy overrides this with a quality-
     * aware upgrade.
     */
    virtual const cloud::InstanceType& odTypeFor(const JobSizing& s)
    {
        return pickSmallestType(s);
    }

    /**
     * Whether mixed-size on-demand placement may pack jobs onto live
     * instances with room. OdM keeps one job per instance (it sizes
     * each instance to its job); HM packs to amortize upgrades.
     */
    virtual bool packOnDemand() const { return false; }

    bool mixed_;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_ON_DEMAND_HPP
