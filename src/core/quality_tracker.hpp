/**
 * @file
 * Per-instance-type quality tracker.
 *
 * The dynamic policy compares the quality an on-demand instance type
 * delivers with 90% confidence ("Q90", monitored over time) against the
 * target quality QT a job needs (Section 4.2 / Figure 8). This tracker
 * accumulates observed base-quality samples per type, seeded with prior
 * draws from the provider profile so early decisions are sensible.
 */

#ifndef HCLOUD_CORE_QUALITY_TRACKER_HPP
#define HCLOUD_CORE_QUALITY_TRACKER_HPP

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/provider_profile.hpp"
#include "sim/rng.hpp"

namespace hcloud::core {

/**
 * Rolling per-type distribution of observed instance quality.
 */
class QualityTracker
{
  public:
    /** Number of prior pseudo-samples per type. */
    static constexpr std::size_t kPriorSamples = 40;
    /** Rolling-window capacity per type. */
    static constexpr std::size_t kMaxSamples = 512;

    /**
     * @param profile Provider profile used to draw priors.
     * @param rng Stream for prior draws.
     */
    QualityTracker(const cloud::ProviderProfile& profile, sim::Rng rng);

    /** Record an observed base-quality sample for @p type. */
    void record(const cloud::InstanceType& type, double quality);

    /**
     * Quality delivered by @p type with the given confidence, i.e. the
     * (1 - confidence) quantile of the observed distribution. The paper's
     * Q90 is qualityAtConfidence(type, 0.90); tightening the confidence
     * lowers the reported quality, steering more jobs to reserved.
     */
    double qualityAtConfidence(const cloud::InstanceType& type,
                               double confidence = 0.90) const;

    /** Number of recorded samples (including priors). */
    std::size_t samples(const cloud::InstanceType& type) const;

  private:
    struct TypeState
    {
        std::deque<double> window;
        /**
         * Sorted copy of @c window, rebuilt lazily. record() marks it
         * dirty; qualityAtConfidence() re-sorts only when the window
         * actually changed, so the many same-tick quantile queries share
         * one sort instead of copying and sorting per call.
         */
        std::vector<double> sorted;
        bool dirty = true;
    };

    TypeState& stateFor(const cloud::InstanceType& type) const;

    const cloud::ProviderProfile& profile_;
    mutable sim::Rng rng_;
    mutable std::map<std::string, TypeState> types_;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_QUALITY_TRACKER_HPP
