/**
 * @file
 * EngineRun: one wired-up simulation instance, steppable in virtual time.
 *
 * Historically the whole engine loop lived inside Engine::run() as one
 * closed-over function: setup, arrival scheduling, the progress tick and
 * finalization were all locals of a single call. The serving layer
 * (srv::EngineSession) needs the same machinery held open across HTTP
 * requests — create the session, submit jobs as they arrive, advance
 * virtual time on demand, snapshot reports — so the loop now lives here
 * as an object and Engine::run() drives it in one shot.
 *
 * Two driving modes share every line of job lifecycle code:
 *
 *  - batch (runBatch): jobs come from a sealed ArrivalTrace; arrivals are
 *    scheduled up front, the progress tick is installed last, and the
 *    simulator runs to completion. Event scheduling order is kept
 *    literally identical to the historical Engine::run() so golden traces
 *    and event counts stay bit-identical.
 *  - session (beginSession/submit/advanceTo): the tick chain is installed
 *    first and never self-terminates; jobs arrive incrementally with
 *    non-decreasing arrival times and the clock only moves when the owner
 *    asks. Because scenario arrival times are continuous (sums of
 *    exponential draws) they never collide with the tick grid (multiples
 *    of EngineConfig::tick), so the different installation order cannot
 *    flip any same-instant tie-break — the decision stream for a fixed
 *    seed is bit-identical to the batch path (asserted in
 *    tests/test_srv_session.cpp).
 */

#ifndef HCLOUD_CORE_ENGINE_RUN_HPP
#define HCLOUD_CORE_ENGINE_RUN_HPP

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/provider.hpp"
#include "cloud/provider_profile.hpp"
#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/tracer.hpp"
#include "profiling/quasar.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"
#include "workload/trace.hpp"

namespace hcloud::core {

/**
 * One live engine instance: simulator, provider, profiler, strategy and
 * the job-lifecycle loop, owned together and steppable in virtual time.
 */
class EngineRun
{
  public:
    /** Builds the strategy driving the run (same seam as Engine). */
    using StrategyFactory =
        std::function<std::unique_ptr<Strategy>(EngineContext&)>;

    /** Wires simulator, provider, Quasar and strategy (no jobs yet). */
    EngineRun(const EngineConfig& config,
              const cloud::ProviderProfile& profile,
              const StrategyFactory& factory);
    ~EngineRun();

    EngineRun(const EngineRun&) = delete;
    EngineRun& operator=(const EngineRun&) = delete;

    /**
     * Re-arm this engine for a fresh run without giving back its big
     * allocations: the simulator keeps its event-queue slab and callback
     * storage, the tracer/timeline rings keep their grown capacity, and
     * the job vectors and id index keep theirs. Everything stateful —
     * provider, Quasar, metrics, strategy, RNG streams — is rebuilt from
     * @p config exactly as the constructor would, so a reset run is
     * bit-identical to a fresh-engine run with the same arguments
     * (asserted in tests/test_exp_sweep.cpp). This is what lets
     * exp::SweepScheduler reuse one engine per worker across a
     * cells x seeds grid instead of paying construction per task.
     */
    void reset(const EngineConfig& config,
               const cloud::ProviderProfile& profile,
               const StrategyFactory& factory);

    const EngineConfig& config() const { return config_; }

    /** The run's tracer (srv::EngineSession hooks decisions off it). */
    obs::Tracer& tracer() { return tracer_; }

    /** The run's cluster-state timeline (srv::EngineSession serves the
     *  tenant timeline endpoint and live gauges off it). */
    const obs::Timeline& timeline() const { return timeline_; }

    /** Current virtual time. */
    sim::Time now() const { return simulator_.now(); }

    std::size_t jobCount() const { return jobs_.size(); }
    std::size_t finishedCount() const { return finished_; }

    // ---- Batch mode ----------------------------------------------------

    /**
     * Execute @p trace to completion, exactly as Engine::run() always
     * has: start the strategy, schedule every arrival in trace order,
     * install the tick chain last, run the simulator dry, finalize.
     * Call at most once per wiring (reset() re-arms), and not after
     * beginSession().
     */
    RunResult runBatch(const workload::ArrivalTrace& trace,
                       const std::string& scenarioName);

    // ---- Session mode --------------------------------------------------

    /**
     * Enter incremental mode: the strategy sizes its reserved pool from
     * @p trace (which session owners generate from their scenario config)
     * and the progress tick is installed immediately. Jobs then arrive
     * via submit(); the clock moves via advanceTo(). The tick chain never
     * stops on its own — a drained tenant must keep ticking so later
     * submissions still integrate progress.
     */
    void beginSession(const workload::ArrivalTrace& trace);

    enum class SubmitStatus
    {
        Accepted,
        ArrivalInPast, ///< spec.arrival < now(): virtual time is monotonic
        DuplicateId,   ///< a job with this id already exists
    };

    /**
     * Add one job to the running session and schedule its arrival event.
     * Does not advance the clock — callers advanceTo(spec.arrival) (or
     * later) to make the arrival (and the decision, when profiling is
     * off) actually happen.
     */
    SubmitStatus submit(const workload::JobSpec& spec);

    /** Run the simulation forward to virtual time @p t.
     *  @return false (and do nothing) when t < now(): virtual time is
     *  monotonic and callers must surface the rejection, not hide it. */
    bool advanceTo(sim::Time t);

    /** The job with @p id, or nullptr (session mode only). */
    const workload::Job* job(sim::JobId id) const;

    /**
     * Non-destructive result snapshot of the session so far: outcomes,
     * billing, series and the metrics-registry snapshot, but not the
     * trace buffer (which stays attached for future decisions).
     */
    RunResult liveResult(const std::string& scenarioName);

    /** Destructive final result (takes the trace; the run is spent). */
    RunResult finalize(const std::string& scenarioName);

  private:
    void onJobStarted(workload::Job& job);
    void finishJob(workload::Job& job, sim::Time when, bool failed);
    /** Progress integration for one job at tick time @p t. */
    void advanceJob(workload::Job& job, sim::Time t);
    /** Periodic sampling of allocation/utilization series. */
    void sample(sim::Time t);
    /** Build and record one cluster-state timeline sample. Reads only
     *  memoized/read-only state, so it never moves an RNG draw. */
    void sampleTimeline(sim::Time t);
    /** Main tick body; @return false to end the chain (batch only). */
    bool onTick();
    /** Schedule the arrival event of jobs_[i]. */
    void scheduleArrival(std::size_t i);
    /** The arrival event of jobs_[i] fired. */
    void arrivalFired(std::size_t i);
    void installTick();
    /** Everything finalize() and liveResult() share. */
    void buildResult(RunResult& result, const std::string& scenarioName);
    /** Construct provider, Quasar, metrics, context and strategy from the
     *  current config/profile/root RNG. Shared by the constructor and
     *  reset() so both wire in exactly the same order (the RNG child
     *  derivation order is part of the determinism contract). */
    void wire(const StrategyFactory& factory);

    EngineConfig config_;
    cloud::ProviderProfile profile_;
    obs::PhaseProfiler phases_;
    /** Open from construction until the first sim-loop phase begins. */
    std::unique_ptr<obs::PhaseProfiler::Scope> setupScope_;
    sim::Simulator simulator_;
    sim::Rng root_;
    obs::Tracer tracer_;
    // Rebuilt per wiring (reset() re-emplaces them in dependency order);
    // engaged for the whole life of the object otherwise.
    std::optional<cloud::CloudProvider> provider_;
    std::optional<profiling::Quasar> quasar_;
    std::optional<MetricsCollector> metrics_;
    std::optional<EngineContext> ctx_;
    std::unique_ptr<Strategy> strategy_;

    std::vector<std::unique_ptr<workload::Job>> jobs_;
    /** Session-mode id -> jobs_ index (batch mode leaves it empty). */
    std::unordered_map<sim::JobId, std::size_t> jobIndex_;
    std::size_t finished_ = 0;
    std::vector<workload::Job*> active_;
    /** Arrived latency-critical services (unserved-latency samples). */
    std::vector<workload::Job*> lcJobs_;
    sim::Time nextSample_ = 0.0;
    obs::Timeline timeline_;
    sim::Time nextTimelineSample_ = 0.0;
    std::size_t compactedAtFinished_ = 0;
    /** Session mode: the tick chain must outlive job droughts. */
    bool sessionMode_ = false;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_ENGINE_RUN_HPP
