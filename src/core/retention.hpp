/**
 * @file
 * Idle-instance retention policy.
 *
 * Section 3.2: acquired on-demand instances are retained for a while after
 * their jobs complete, to amortize spin-up overheads — by default 10x the
 * spin-up overhead of the instance's size (the Figure 15 sweep varies the
 * multiple). Only instances that provide predictably high performance are
 * retained; poorly-behaved ones are released immediately on idle.
 */

#ifndef HCLOUD_CORE_RETENTION_HPP
#define HCLOUD_CORE_RETENTION_HPP

#include "cloud/instance.hpp"
#include "cloud/spin_up.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/**
 * Decides how long idle on-demand instances are kept.
 */
class RetentionPolicy
{
  public:
    /**
     * @param multiple Retention time as a multiple of the spin-up median.
     * @param qualityThreshold Observed base quality below which an idle
     *        instance is released immediately.
     */
    RetentionPolicy(double multiple, double qualityThreshold);

    /** Retention period for the given shape. */
    sim::Duration retention(const cloud::InstanceType& type,
                            const cloud::SpinUpModel& spinUp) const;

    /** True when the instance is worth keeping around while idle. */
    bool retainWorthy(cloud::Instance& instance, sim::Time now) const;

    /** True when an idle instance has exceeded its retention and should
     *  be released now. */
    bool shouldRelease(cloud::Instance& instance,
                       const cloud::SpinUpModel& spinUp,
                       sim::Time now) const;

    double multiple() const { return multiple_; }

  private:
    double multiple_;
    double qualityThreshold_;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_RETENTION_HPP
