/**
 * @file
 * Adaptive soft utilization limit (Section 4.2, Figure 9a).
 *
 * The reserved pool's soft limit is adjusted by a simple feedback loop
 * with linear transfer functions: when queued jobs accumulate, the
 * reserved pool becomes more selective (the limit drops); after sustained
 * periods with an empty queue the limit creeps back up.
 */

#ifndef HCLOUD_CORE_SOFT_LIMIT_HPP
#define HCLOUD_CORE_SOFT_LIMIT_HPP

#include "obs/tracer.hpp"
#include "sim/feedback.hpp"
#include "sim/timeseries.hpp"
#include "sim/types.hpp"

namespace hcloud::core {

/**
 * Feedback controller for the reserved-pool soft utilization limit.
 */
class SoftLimitController
{
  public:
    /** Experimental operating point from the paper (60-65%). */
    static constexpr double kInitial = 0.65;
    /** Adaptation range (Figure 9a shows ~36-78%; the ceiling sits a
     *  little above so steady-state reserved utilization reaches the
     *  paper's ~80%). */
    static constexpr double kMin = 0.36;
    static constexpr double kMax = 0.86;

    SoftLimitController();

    /**
     * Feed one observation.
     *
     * @param queueLength Jobs currently queued for reserved capacity.
     * @param now Current time (recorded for the Figure 9a series).
     */
    void update(std::size_t queueLength, sim::Time now);

    double softLimit() const { return controller_.output(); }

    /** Soft-limit trajectory over the run. */
    const sim::StepSeries& history() const { return history_; }

    /** Emit SoftLimitUpdate trace events on change (may be null). */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  private:
    sim::LinearFeedbackController controller_;
    sim::StepSeries history_;
    obs::Tracer* tracer_ = nullptr;
    /** Consecutive empty-queue updates (drives the slow recovery). */
    std::size_t calmStreak_ = 0;
};

} // namespace hcloud::core

#endif // HCLOUD_CORE_SOFT_LIMIT_HPP
