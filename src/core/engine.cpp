#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "core/hybrid.hpp"
#include "core/strategy.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "workload/batch_model.hpp"
#include "workload/latency_model.hpp"

namespace hcloud::core {

namespace {

/** Figure 21 application groups, indexable for per-group accumulators. */
enum AppGroup : int
{
    kGroupHadoop = 0,
    kGroupSpark = 1,
    kGroupMemcached = 2,
    kGroupCount = 3,
};

constexpr const char* kGroupNames[kGroupCount] = {"hadoop", "spark",
                                                  "memcached"};

/** Figure 21 grouping of application kinds. */
constexpr AppGroup
groupOf(workload::AppKind kind)
{
    switch (kind) {
      case workload::AppKind::HadoopRecommender:
      case workload::AppKind::HadoopSvm:
      case workload::AppKind::HadoopMatFac:
        return kGroupHadoop;
      case workload::AppKind::SparkAnalytics:
      case workload::AppKind::SparkRealtime:
        return kGroupSpark;
      case workload::AppKind::Memcached:
        return kGroupMemcached;
    }
    return kGroupHadoop;
}

} // namespace

Engine::Engine(EngineConfig config, cloud::ProviderProfile profile)
    : config_(std::move(config)), profile_(std::move(profile))
{
}

RunResult
Engine::run(const workload::ArrivalTrace& trace, StrategyKind kind,
            const std::string& scenarioName)
{
    return run(trace,
               [kind](EngineContext& ctx) {
                   return makeStrategy(kind, ctx);
               },
               scenarioName);
}

RunResult
Engine::run(const workload::ArrivalTrace& trace,
            const StrategyFactory& factory,
            const std::string& scenarioName)
{
    obs::PhaseProfiler phases;
    auto setup_scope =
        std::make_unique<obs::PhaseProfiler::Scope>(phases, "setup");

    sim::Simulator simulator;
    sim::Rng root(config_.seed);
    obs::Tracer tracer(config_.trace);

    cloud::CloudProvider provider(simulator, profile_,
                                  config_.externalLoad,
                                  root.child("provider"));
    provider.setTracer(&tracer);
    provider.spinUp().setScale(config_.spinUpScale);
    if (config_.spinUpFixed)
        provider.spinUp().setFixedOverride(config_.spinUpFixed);

    profiling::QuasarConfig quasar_config;
    quasar_config.observationNoise = config_.observationNoise;
    quasar_config.seed = root.child("quasar").seed();
    profiling::Quasar quasar(quasar_config);

    MetricsCollector metrics;
    EngineContext ctx{simulator,
                      provider,
                      cloud::InstanceTypeCatalog::defaultCatalog(),
                      quasar,
                      metrics,
                      tracer,
                      config_,
                      /*onJobStarted=*/nullptr};
    std::unique_ptr<Strategy> strategy = factory(ctx);
    // Profiling on shared small instances is noisier (Section 3.3).
    if (strategy->usesSmallOnDemand()) {
        quasar.setObservationNoise(config_.observationNoise * 2.2);
    }

    std::vector<std::unique_ptr<workload::Job>> jobs;
    jobs.reserve(trace.jobs().size());
    for (const auto& spec : trace.jobs())
        jobs.push_back(std::make_unique<workload::Job>(spec));

    std::size_t finished = 0;
    std::vector<workload::Job*> active;
    active.reserve(jobs.size());
    /** Arrived latency-critical services (for unserved-latency samples). */
    std::vector<workload::Job*> lc_jobs;
    lc_jobs.reserve(jobs.size());

    auto finish_job = [&](workload::Job& job, sim::Time when,
                          bool failed) {
        assert(job.state != workload::JobState::Completed);
        job.completedAt = when;
        job.state = failed ? workload::JobState::Failed
                           : workload::JobState::Completed;
        ++finished;
        tracer.job(failed ? obs::EventKind::JobFail
                          : obs::EventKind::JobFinish,
                   when, job.id(), job.perfNormalized(), {},
                   failed ? obs::Severity::Warn : obs::Severity::Info);
        strategy->jobCompleted(job);
    };

    ctx.onJobStarted = [&](workload::Job& job) {
        const sim::Time now = simulator.now();
        job.lastProgressAt = now;
        if (!job.engineTracked) {
            job.engineTracked = true;
            active.push_back(&job);
        }
        const workload::JobSpec& spec = job.spec();
        if (job.instance->faulty()) {
            // The platform terminates the VM partway through (EC2 micro
            // behaviour in Figure 1).
            const sim::Duration life = 0.5 *
                (spec.jobClass() == workload::JobClass::Batch
                     ? spec.idealDuration
                     : spec.lcLifetime);
            simulator.after(life, [&job, &finish_job, &simulator]() {
                if (job.state == workload::JobState::Running)
                    finish_job(job, simulator.now(), /*failed=*/true);
            });
        } else if (spec.jobClass() == workload::JobClass::LatencyCritical) {
            simulator.after(spec.lcLifetime,
                            [&job, &finish_job, &simulator]() {
                // A stale timer from before a reschedule fires early;
                // only complete once the current lifetime has elapsed.
                if (job.state == workload::JobState::Running &&
                    simulator.now() + 1e-9 >=
                        job.startedAt + job.spec().lcLifetime) {
                    finish_job(job, simulator.now(), /*failed=*/false);
                }
            });
        }
    };

    strategy->start(trace);

    // Schedule arrivals; profiling (when enabled and uncached) delays the
    // submission by the profiling run length.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const sim::Time arrival = jobs[i]->spec().arrival;
        simulator.at(arrival, [&, i]() {
            workload::Job& job = *jobs[i];
            if (job.spec().jobClass() ==
                workload::JobClass::LatencyCritical) {
                lc_jobs.push_back(&job);
            }
            const sim::Duration delay = config_.useProfiling
                ? quasar.profilingDelay(job.spec())
                : 0.0;
            tracer.job(obs::EventKind::JobSubmit, simulator.now(),
                       job.id(), delay,
                       workload::toString(job.spec().kind));
            if (delay > 0.0) {
                simulator.after(delay,
                                [&job, &strategy]() {
                                    strategy->submit(job);
                                });
            } else {
                strategy->submit(job);
            }
        });
    }

    // Progress integration for one job at tick time t.
    auto advance = [&](workload::Job& job, sim::Time t) {
        if (job.state != workload::JobState::Running)
            return;
        const sim::Duration dt = t - job.lastProgressAt;
        if (dt <= 0.0)
            return;
        const workload::JobSpec& spec = job.spec();
        cloud::Instance* inst = job.instance;
        const double sens = job.sensitivityScalar();
        const double q = inst->effectiveQuality(t, sens, job.id());
        // Without profiling, jobs run with user-default framework
        // parameters (Section 3.4: 64KB block size, 1GB heaps, default
        // thread counts), which roughly halves delivered efficiency.
        const double config_eff = config_.useProfiling ? 1.0 : 0.5;
        bool violating = false;
        if (spec.jobClass() == workload::JobClass::Batch) {
            const double eff = config_eff *
                workload::batch_model::parallelEfficiency(
                    job.cores, spec.coresIdeal);
            const double rate = job.cores * q * eff;
            const double done =
                job.workDone + workload::batch_model::workDone(
                                   job.cores * eff, q, dt);
            if (done >= spec.workTotal()) {
                const sim::Time tc = job.lastProgressAt +
                    (spec.workTotal() - job.workDone) / rate;
                job.workDone = spec.workTotal();
                job.lastProgressAt = t;
                finish_job(job, std::min(tc, t), /*failed=*/false);
                return;
            }
            job.workDone = done;
            violating = rate / spec.coresIdeal < 0.33;
        } else {
            const double pressure =
                inst->interferencePressure(t, job.id());
            // Interference bites serving *capacity* less than batch
            // throughput (the tail term below carries the rest):
            // neighbours inflate latency well before they truly halve
            // throughput.
            const double q_cap = (0.65 * q + 0.35) * config_eff;
            const double p99 = workload::latency_model::p99Us(
                spec.lcLoadRps, job.cores, q_cap, sens * pressure);
            job.latencyUs.add(p99);
            violating = p99 > 2.0 * spec.lcQosUs;
        }
        job.lastProgressAt = t;
        strategy->qosCheck(job, violating);
    };

    // Periodic sampling of allocation/utilization series.
    sim::Time next_sample = 0.0;
    auto sample = [&](sim::Time t) {
        const ClusterState& cluster = strategy->cluster();
        metrics.recordAllocation(t, cluster.reservedCapacity(),
                                 cluster.onDemandCapacity(),
                                 cluster.onDemandUsed());
        metrics.recordReservedUtilization(t,
                                          cluster.reservedUtilization());
        auto record_instance = [&](cloud::Instance* inst) {
            metrics.recordInstanceUtilization(
                inst->id(), inst->type().name, inst->reserved(),
                inst->acquiredAt(), t,
                inst->coresUsed() / inst->coresTotal());
        };
        for (cloud::Instance* inst : cluster.reservedPool())
            record_instance(inst);
        for (cloud::Instance* inst : cluster.onDemand())
            record_instance(inst);
        // Figure 21 breakdown: allocated cores by app group and side.
        double cores[kGroupCount][2] = {{0, 0}, {0, 0}, {0, 0}};
        for (const workload::Job* job : active) {
            if (job->state != workload::JobState::Running &&
                job->state != workload::JobState::Waiting) {
                continue;
            }
            cores[groupOf(job->spec().kind)][job->onReserved ? 0 : 1] +=
                job->cores;
        }
        for (int gi = 0; gi < kGroupCount; ++gi) {
            metrics.recordBreakdown(t, kGroupNames[gi], true, cores[gi][0]);
            metrics.recordBreakdown(t, kGroupNames[gi], false,
                                    cores[gi][1]);
        }
    };

    // Main tick: progress, QoS, strategy housekeeping, sampling.
    std::size_t compacted_at_finished = 0;
    simulator.every(config_.tick, [&]() -> bool {
        const sim::Time t = simulator.now();
        for (std::size_t i = 0; i < active.size(); ++i)
            advance(*active[i], t);
        // Services without serving capacity record unserved latency once
        // the client-ramp grace period is exhausted. Completed/failed
        // services are compacted away in the same pass.
        std::size_t keep = 0;
        for (std::size_t i = 0; i < lc_jobs.size(); ++i) {
            workload::Job* job = lc_jobs[i];
            if (job->state == workload::JobState::Completed ||
                job->state == workload::JobState::Failed) {
                continue;
            }
            if (job->state == workload::JobState::Pending ||
                job->state == workload::JobState::Queued ||
                job->state == workload::JobState::Waiting) {
                const sim::Time waiting_since =
                    job->startedAt == sim::kTimeNever
                        ? job->spec().arrival
                        : job->lastProgressAt;
                if (t - waiting_since >
                    workload::latency_model::kUnservedGraceSec) {
                    job->latencyUs.add(
                        workload::latency_model::kUnservedP99Us);
                }
            }
            lc_jobs[keep++] = job;
        }
        lc_jobs.resize(keep);
        // Jobs only leave `active` by finishing, so skip the compaction
        // scan on the (common) ticks where nothing finished.
        if (finished != compacted_at_finished) {
            std::erase_if(active, [](const workload::Job* j) {
                return j->state == workload::JobState::Completed ||
                       j->state == workload::JobState::Failed;
            });
            compacted_at_finished = finished;
        }
        strategy->tick();
        if (t >= next_sample) {
            sample(t);
            next_sample += config_.utilizationSample;
        }
        if (finished == jobs.size())
            return false;
        if (t > config_.maxRuntime) {
            // Safety: fail whatever is still outstanding.
            for (auto& job : jobs) {
                if (job->state != workload::JobState::Completed &&
                    job->state != workload::JobState::Failed) {
                    if (!job->instance) {
                        job->completedAt = t;
                        job->state = workload::JobState::Failed;
                        ++finished;
                        tracer.job(obs::EventKind::JobFail, t, job->id(),
                                   0.0, "max_runtime",
                                   obs::Severity::Warn);
                        metrics.recordOutcome(*job);
                    } else {
                        finish_job(*job, t, /*failed=*/true);
                    }
                }
            }
            return false;
        }
        return true;
    });

    setup_scope.reset();
    {
        obs::PhaseProfiler::Scope sim_scope(phases, "sim-loop");
        simulator.run();
    }

    // ---- Finalize the result -------------------------------------------
    const auto finalize_start = obs::PhaseProfiler::Clock::now();
    RunResult result;
    result.strategy = strategy->name();
    result.scenario = scenarioName;
    result.profiling = config_.useProfiling;
    sim::Time makespan = 0.0;
    for (const auto& job : jobs)
        makespan = std::max(makespan, job->completedAt);
    result.makespan = makespan > 0.0 ? makespan : simulator.now();

    result.outcomes = metrics.outcomes();
    for (const JobOutcome& o : metrics.outcomes()) {
        ++result.jobCount;
        if (o.failed)
            ++result.failedJobs;
        if (o.jobClass == workload::JobClass::Batch) {
            result.batchTurnaroundMin.add(o.turnaroundMin);
            result.batchPerfNorm.add(o.perfNorm);
        } else {
            result.lcLatencyUs.add(o.latencyP99Us);
            result.lcPerfNorm.add(o.perfNorm);
        }
        (o.onReserved ? result.perfReserved : result.perfOnDemand)
            .add(o.perfNorm);
    }

    if (!strategy->cluster().reservedPool().empty()) {
        result.reservedUtilizationAvg =
            metrics.reservedUtilization().average(0.0, result.makespan);
    }
    result.billing = provider.billing();
    result.reservedAllocated = metrics.reservedAllocated();
    result.onDemandAllocated = metrics.onDemandAllocated();
    result.onDemandUsed = metrics.onDemandUsed();
    result.reservedUtilization = metrics.reservedUtilization();
    if (auto* hybrid = dynamic_cast<HybridStrategy*>(strategy.get()))
        result.softLimitHistory = hybrid->softLimitHistory();
    result.instanceTimelines = metrics.timelines();
    result.breakdown = metrics.breakdown();
    result.acquisitions = metrics.acquisitions();
    result.immediateReleases = metrics.immediateReleases();
    result.reschedules = metrics.reschedules();
    result.spotInterruptions = metrics.spotInterruptions();
    result.queuedJobs = metrics.queuedJobs();
    result.spinUpWaits = metrics.spinUpWaits();
    result.queueWaits = metrics.queueWaits();

    // ---- Observability artifacts ---------------------------------------
    result.trace = tracer.take();
    result.metricsSnapshot = metrics.registry().snapshot();
    phases.add("finalize",
               std::chrono::duration<double>(
                   obs::PhaseProfiler::Clock::now() - finalize_start)
                   .count());
    result.telemetry.setupSec = phases.seconds("setup");
    result.telemetry.simLoopSec = phases.seconds("sim-loop");
    result.telemetry.finalizeSec = phases.seconds("finalize");
    result.telemetry.eventsProcessed = simulator.eventsRun();
    result.telemetry.callbackHeapAllocs = simulator.callbackHeapAllocs();
    result.telemetry.eventsPerSec = result.telemetry.simLoopSec > 0.0
        ? static_cast<double>(result.telemetry.eventsProcessed) /
            result.telemetry.simLoopSec
        : 0.0;
    return result;
}

} // namespace hcloud::core
