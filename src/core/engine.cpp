#include "core/engine.hpp"

#include "core/engine_run.hpp"

namespace hcloud::core {

Engine::Engine(EngineConfig config, cloud::ProviderProfile profile)
    : config_(std::move(config)), profile_(std::move(profile))
{
}

RunResult
Engine::run(const workload::ArrivalTrace& trace, StrategyKind kind,
            const std::string& scenarioName)
{
    return run(trace,
               [kind](EngineContext& ctx) {
                   return makeStrategy(kind, ctx);
               },
               scenarioName);
}

RunResult
Engine::run(const workload::ArrivalTrace& trace,
            const StrategyFactory& factory,
            const std::string& scenarioName)
{
    EngineRun run(config_, profile_, factory);
    return run.runBatch(trace, scenarioName);
}

} // namespace hcloud::core
