#include "core/strategy.hpp"

#include <algorithm>
#include <cassert>

#include "core/hybrid.hpp"
#include "core/on_demand.hpp"
#include "core/static_reserved.hpp"
#include "workload/latency_model.hpp"

namespace hcloud::core {

const char*
toString(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::SR:
        return "SR";
      case StrategyKind::OdF:
        return "OdF";
      case StrategyKind::OdM:
        return "OdM";
      case StrategyKind::HF:
        return "HF";
      case StrategyKind::HM:
        return "HM";
    }
    return "?";
}

Strategy::Strategy(EngineContext& ctx)
    : ctx_(ctx),
      retention_(ctx.config.retentionMultiple,
                 ctx.config.qualityRetentionThreshold),
      qualityTracker_(ctx.provider.profile(),
                      sim::Rng(ctx.config.seed).child("quality-tracker")),
      rng_(sim::Rng(ctx.config.seed).child("strategy")),
      large_(&ctx.catalog.byName("st16"))
{
    qosMonitor_.setTracer(&ctx.tracer);
}

JobSizing
Strategy::sizeJob(const workload::Job& job)
{
    auto it = sizings_.find(job.id());
    if (it != sizings_.end())
        return it->second;

    JobSizing s;
    const workload::JobSpec& spec = job.spec();
    if (ctx_.config.useProfiling) {
        const profiling::Estimate& e = ctx_.quasar.estimate(spec);
        s.cores = e.cores;
        s.memoryPerCore = e.memoryPerCore;
        s.quality = e.quality;
        s.sensitivity = e.sensitivityScalar;
        s.pressure = e.pressure;
    } else {
        // User-specified reservations (Section 3.4): batch jobs run with
        // default framework parameters; latency-critical services are
        // provisioned for peak input load.
        s.cores = spec.jobClass() == workload::JobClass::Batch ? 4.0 : 16.0;
        s.memoryPerCore = spec.memoryPerCore;
        s.quality = 0.5;
        s.sensitivity = 0.5;
        s.pressure = 0.5;
    }
    sizings_.emplace(job.id(), s);
    return s;
}

const JobSizing&
Strategy::sizingOf(const workload::Job& job) const
{
    static const JobSizing kDefault;
    auto it = sizings_.find(job.id());
    return it == sizings_.end() ? kDefault : it->second;
}

bool
Strategy::tryPlaceReserved(workload::Job& job, const JobSizing& s)
{
    const sim::Time now = ctx_.simulator.now();
    cloud::Instance* inst = ctx_.config.useProfiling
        ? qualityAwareFit(cluster_.reservedPool(), s.cores, s.sensitivity,
                          requiredQuality(s.quality), now)
        : leastLoaded(cluster_.reservedPool(), s.cores);
    if (!inst)
        return false;
    assignToInstance(job, inst, s, /*reserved=*/true);
    return true;
}

void
Strategy::queueReserved(workload::Job& job)
{
    job.state = workload::JobState::Queued;
    if (job.queuedAt == sim::kTimeNever)
        job.queuedAt = ctx_.simulator.now();
    reservedQueue_.push_back(&job);
    ctx_.metrics.countQueued();
    ctx_.tracer.job(obs::EventKind::JobQueue, ctx_.simulator.now(),
                    job.id(),
                    static_cast<double>(reservedQueue_.size()));
}

void
Strategy::drainReservedQueue()
{
    if (reservedQueue_.empty())
        return;
    std::deque<workload::Job*> still_waiting;
    for (workload::Job* job : reservedQueue_) {
        const JobSizing s = sizeJob(*job);
        if (!tryPlaceReserved(*job, s))
            still_waiting.push_back(job);
    }
    reservedQueue_.swap(still_waiting);
}

cloud::Instance*
Strategy::findOnDemandRoom(const JobSizing& s,
                           const cloud::InstanceType* type,
                           bool requireIdle, bool anyShape)
{
    const sim::Time now = ctx_.simulator.now();
    cloud::Instance* best = nullptr;
    for (cloud::Instance* inst : cluster_.onDemand()) {
        if (inst->state() == cloud::InstanceState::Released ||
            inst->faulty()) {
            continue;
        }
        if (requireIdle) {
            // Retained-instance reuse: accept a moderately larger idle
            // shape rather than spinning up an exact match.
            if (!inst->idle())
                continue;
            if (type &&
                (inst->type().vcpus < type->vcpus ||
                 inst->type().vcpus > 2 * type->vcpus ||
                 inst->type().memoryGb + 1e-9 < type->memoryGb)) {
                continue;
            }
        } else {
            if (type && inst->type().name != type->name)
                continue;
            if (!type && !anyShape && !inst->type().fullServer())
                continue;
        }
        if (inst->coresFree() + 1e-9 < s.cores)
            continue;
        if (ctx_.config.useProfiling) {
            // Running instances expose their observed quality; for ones
            // still spinning up fall back to the type's track record.
            const double q =
                inst->state() == cloud::InstanceState::Running
                    ? inst->effectiveQuality(now, s.sensitivity,
                                             std::nullopt)
                    : qualityTracker_.qualityAtConfidence(inst->type());
            if (q + 1e-9 < requiredQuality(s.quality) - 0.1)
                continue;
        }
        if (!best || (requireIdle
                          ? inst->type().vcpus < best->type().vcpus
                          : inst->coresFree() < best->coresFree())) {
            best = inst;
        }
    }
    return best;
}

void
Strategy::assignToInstance(workload::Job& job, cloud::Instance* instance,
                           const JobSizing& s, bool reserved)
{
    const sim::Time now = ctx_.simulator.now();
    job.instance = instance;
    job.cores = s.cores;
    job.onReserved = reserved;
    jobIndex_[job.id()] = &job;
    const bool ok = instance->addResident(
        job.id(), cloud::Resident{s.cores, s.pressure}, now);
    assert(ok && "placement must fit");
    (void)ok;
    if (instance->state() == cloud::InstanceState::Running) {
        startJob(job);
    } else {
        job.state = workload::JobState::Waiting;
        pending_[instance->id()].push_back(&job);
    }
}

void
Strategy::acquireFor(workload::Job& job, const cloud::InstanceType& type,
                     const JobSizing& s)
{
    cloud::Instance* inst = ctx_.provider.acquire(
        type, [this](cloud::Instance* ready) { onInstanceReady(ready); });
    cluster_.addOnDemand(inst);
    ctx_.metrics.countAcquisition();
    assignToInstance(job, inst, s, /*reserved=*/false);
}

const cloud::InstanceType&
Strategy::pickSmallestType(const JobSizing& s) const
{
    const cloud::InstanceType* type = ctx_.catalog.smallestFitting(
        s.cores, s.cores * s.memoryPerCore);
    return type ? *type : largeType();
}

void
Strategy::releaseInstance(cloud::Instance* instance)
{
    assert(!instance->reserved());
    cluster_.removeOnDemand(instance);
    ctx_.provider.release(instance);
    ctx_.metrics.recordInstanceReleased(instance->id(),
                                        ctx_.simulator.now());
    pending_.erase(instance->id());
}

void
Strategy::startJob(workload::Job& job)
{
    const sim::Time now = ctx_.simulator.now();
    job.state = workload::JobState::Running;
    job.startedAt = now;
    job.waitTime = now - job.spec().arrival;
    if (job.queuedAt != sim::kTimeNever) {
        const sim::Duration wait = now - job.queuedAt;
        ctx_.metrics.recordQueueWait(wait);
        queueEstimator_.recordMeasuredWait(job.instance->type(), wait);
        job.queuedAt = sim::kTimeNever;
    }
    if (ctx_.tracer.enabled()) {
        ctx_.tracer.record({now, obs::EventKind::JobStart,
                            obs::Severity::Info,
                            obs::DecisionReason::None, job.id(),
                            job.instance->id(), job.cores,
                            job.instance->type().name});
    }
    if (ctx_.onJobStarted)
        ctx_.onJobStarted(job);
}

void
Strategy::onInstanceReady(cloud::Instance* instance)
{
    const sim::Time now = ctx_.simulator.now();
    qualityTracker_.record(instance->type(), instance->baseQuality(now));
    auto it = pending_.find(instance->id());
    if (it == pending_.end())
        return;
    std::vector<workload::Job*> jobs = std::move(it->second);
    pending_.erase(it);
    for (workload::Job* job : jobs) {
        if (job->state != workload::JobState::Waiting ||
            job->instance != instance) {
            continue; // rescheduled away while spinning up
        }
        ctx_.metrics.recordSpinUpWait(now - instance->acquiredAt());
        startJob(*job);
    }
}

void
Strategy::jobCompleted(workload::Job& job)
{
    const sim::Time now = ctx_.simulator.now();
    cloud::Instance* inst = job.instance;
    assert(inst);
    inst->removeResident(job.id(), now);
    job.instance = nullptr;
    qosMonitor_.forget(job.id());
    jobIndex_.erase(job.id());
    ctx_.metrics.recordOutcome(job);
    queueEstimator_.recordRelease(inst->type(), now);
    if (!inst->reserved())
        qualityTracker_.record(inst->type(), inst->baseQuality(now));
    if (!inst->reserved() && inst->idle() &&
        inst->state() == cloud::InstanceState::Running &&
        !retention_.retainWorthy(*inst, now)) {
        // Poorly-behaved instances are not worth retaining (Section 5.4).
        ctx_.metrics.countImmediateRelease();
        ctx_.tracer.decision(now, obs::DecisionReason::LowQualityRelease,
                             /*job=*/0, inst->id(),
                             inst->baseQuality(now), inst->type().name);
        releaseInstance(inst);
    }
    drainReservedQueue();
}

void
Strategy::handleRetention()
{
    const sim::Time now = ctx_.simulator.now();
    std::vector<cloud::Instance*> to_release;
    for (cloud::Instance* inst : cluster_.onDemand()) {
        if (retention_.shouldRelease(*inst, ctx_.provider.spinUp(), now))
            to_release.push_back(inst);
    }
    for (cloud::Instance* inst : to_release) {
        ctx_.tracer.decision(now, obs::DecisionReason::RetentionExpired,
                             /*job=*/0, inst->id(), /*value=*/0.0,
                             inst->type().name);
        releaseInstance(inst);
    }
}

void
Strategy::tick()
{
    ++tickCount_;
    handleRetention();
    drainReservedQueue();
    // Periodically refresh the per-type quality distribution from live
    // on-demand instances.
    if (tickCount_ % 8 == 0) {
        const sim::Time now = ctx_.simulator.now();
        for (cloud::Instance* inst : cluster_.onDemand()) {
            if (inst->state() == cloud::InstanceState::Running) {
                qualityTracker_.record(inst->type(),
                                       inst->baseQuality(now));
            }
        }
    }
}

void
Strategy::qosCheck(workload::Job& job, bool violating)
{
    if (!ctx_.config.qosMonitoring ||
        job.state != workload::JobState::Running) {
        return;
    }
    cloud::Instance* inst = job.instance;
    const JobSizing& s = sizingOf(job);
    const bool can_boost =
        inst->coresFree() >= 1.0 && job.cores < 2.0 * s.cores;
    const sim::Time now = ctx_.simulator.now();
    const QosAction action = qosMonitor_.check(
        job.id(), violating, can_boost, job.reschedules, now);
    switch (action) {
      case QosAction::None:
        break;
      case QosAction::Boost:
        inst->resizeResident(job.id(), job.cores + 1.0);
        job.cores += 1.0;
        ctx_.tracer.decision(now, obs::DecisionReason::QosViolationBoost,
                             job.id(), inst->id(), job.cores);
        break;
      case QosAction::Reschedule: {
        ++job.reschedules;
        ctx_.metrics.countReschedule();
        ctx_.tracer.decision(
            now, obs::DecisionReason::QosViolationReschedule, job.id(),
            inst->id(), static_cast<double>(job.reschedules), {},
            obs::Severity::Warn);
        inst->removeResident(job.id(), ctx_.simulator.now());
        job.instance = nullptr;
        job.state = workload::JobState::Pending;
        // Revisit the allocation decision (Section 3.3): the job missed
        // QoS at its current size, so grant it more resources.
        auto sit = sizings_.find(job.id());
        if (sit != sizings_.end()) {
            sit->second.cores = std::min(16.0, sit->second.cores + 2.0);
            sit->second.quality =
                std::min(1.0, sit->second.quality + 0.1);
        }
        submit(job);
        break;
      }
    }
}

std::unique_ptr<Strategy>
makeStrategy(StrategyKind kind, EngineContext& ctx)
{
    switch (kind) {
      case StrategyKind::SR:
        return std::make_unique<StaticReservedStrategy>(ctx);
      case StrategyKind::OdF:
        return std::make_unique<OnDemandStrategy>(ctx, /*mixed=*/false);
      case StrategyKind::OdM:
        return std::make_unique<OnDemandStrategy>(ctx, /*mixed=*/true);
      case StrategyKind::HF:
        return std::make_unique<HybridStrategy>(ctx, /*mixed=*/false);
      case StrategyKind::HM:
        return std::make_unique<HybridStrategy>(ctx, /*mixed=*/true);
    }
    return nullptr;
}

} // namespace hcloud::core
