#include "core/retention.hpp"

#include <cmath>

namespace hcloud::core {

RetentionPolicy::RetentionPolicy(double multiple, double qualityThreshold)
    : multiple_(multiple), qualityThreshold_(qualityThreshold)
{
}

sim::Duration
RetentionPolicy::retention(const cloud::InstanceType& type,
                           const cloud::SpinUpModel& spinUp) const
{
    return multiple_ * spinUp.median(type);
}

bool
RetentionPolicy::retainWorthy(cloud::Instance& instance, sim::Time now) const
{
    if (instance.faulty())
        return false;
    return instance.baseQuality(now) >= qualityThreshold_;
}

bool
RetentionPolicy::shouldRelease(cloud::Instance& instance,
                               const cloud::SpinUpModel& spinUp,
                               sim::Time now) const
{
    if (!instance.idle() ||
        instance.state() == cloud::InstanceState::Released) {
        return false;
    }
    if (instance.state() == cloud::InstanceState::SpinningUp)
        return false; // still materializing; let it arrive first
    if (!retainWorthy(instance, now))
        return true;
    const sim::Duration idle_for = now - instance.idleSince();
    return idle_for >= retention(instance.type(), spinUp);
}

} // namespace hcloud::core
