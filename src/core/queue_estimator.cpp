#include "core/queue_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace hcloud::core {

void
QueueEstimator::recordRelease(const cloud::InstanceType& type, sim::Time t)
{
    TypeState& s = types_[type.name];
    s.releases.push_back(t);
    if (s.releases.size() > kMaxEvents)
        s.releases.pop_front();
}

void
QueueEstimator::recordMeasuredWait(const cloud::InstanceType& type,
                                   sim::Duration wait)
{
    types_[type.name].measured.add(wait);
}

void
QueueEstimator::prune(TypeState& state, sim::Time now) const
{
    while (!state.releases.empty() &&
           state.releases.front() < now - kWindow) {
        state.releases.pop_front();
    }
}

double
QueueEstimator::releaseRate(const cloud::InstanceType& type,
                            sim::Time now) const
{
    auto it = types_.find(type.name);
    if (it == types_.end())
        return 0.0;
    prune(it->second, now);
    const auto& rel = it->second.releases;
    if (rel.size() < 2)
        return 0.0;
    const sim::Duration span =
        std::max(now - rel.front(), rel.back() - rel.front());
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(rel.size() - 1) / span;
}

sim::Duration
QueueEstimator::waitQuantile(const cloud::InstanceType& type, double p,
                             sim::Time now) const
{
    const double rate = releaseRate(type, now);
    if (rate <= 0.0)
        return sim::kTimeNever;
    return -std::log(1.0 - std::clamp(p, 0.0, 0.999999)) / rate;
}

double
QueueEstimator::probAvailableWithin(const cloud::InstanceType& type,
                                    sim::Duration x, sim::Time now) const
{
    const double rate = releaseRate(type, now);
    if (rate <= 0.0)
        return 0.0;
    return 1.0 - std::exp(-rate * std::max(x, 0.0));
}

const sim::SampleSet&
QueueEstimator::measuredWaits(const cloud::InstanceType& type) const
{
    static const sim::SampleSet kEmpty;
    auto it = types_.find(type.name);
    return it == types_.end() ? kEmpty : it->second.measured;
}

} // namespace hcloud::core
