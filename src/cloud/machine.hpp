/**
 * @file
 * Physical server model.
 *
 * A Machine is a 16-vCPU physical host. Dedicated machines back reserved
 * and full-server on-demand instances; shared machines are partitioned
 * into smaller slices (the paper's container-based methodology) and carry
 * an external-interference load process representing other tenants.
 */

#ifndef HCLOUD_CLOUD_MACHINE_HPP
#define HCLOUD_CLOUD_MACHINE_HPP

#include <memory>
#include <optional>

#include "cloud/external_load.hpp"
#include "sim/types.hpp"

namespace hcloud::cloud {

/** Physical host capacity in vCPUs; GCE's largest 2016 shape. */
inline constexpr int kMachineVcpus = 16;

/**
 * A physical server that hosts instance slices.
 */
class Machine
{
  public:
    /**
     * @param id Unique machine id.
     * @param shared True when other tenants share the box (external load
     *        applies); false for dedicated hosts.
     * @param loadConfig External-load parameters.
     * @param rng Random stream for the load process.
     */
    Machine(sim::MachineId id, bool shared, ExternalLoadConfig loadConfig,
            sim::Rng rng);

    sim::MachineId id() const { return id_; }
    bool shared() const { return shared_; }

    /** vCPUs not yet assigned to a slice. */
    int freeVcpus() const { return kMachineVcpus - usedVcpus_; }

    /** Claim @p vcpus for a new slice. @return false if they do not fit. */
    bool allocate(int vcpus);

    /** Return @p vcpus from a destroyed slice. */
    void free(int vcpus);

    /**
     * External utilization by other tenants at time @p t. Dedicated
     * machines report only residual network load (a fraction of the
     * configured process).
     *
     * Tick-coherent: the result is memoized per exact @p t, so the many
     * resident instances sharing this host sample the load process once
     * per tick instead of once per resident. The underlying OU process
     * is idempotent at fixed t, so the cache is purely a recompute skip.
     */
    double externalUtilization(sim::Time t);

    /** Last memoized external utilization without advancing the load
     *  process (0 before the first externalUtilization() query).
     *  Read-only — safe for perturbation-free samplers. */
    double lastExternalUtilization() const
    {
        return cachedLoadT_ >= 0.0 ? cachedLoad_ : 0.0;
    }

  private:
    sim::MachineId id_;
    bool shared_;
    int usedVcpus_ = 0;
    ExternalLoadModel load_;
    sim::Time cachedLoadT_ = -1.0;
    double cachedLoad_ = 0.0;
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_MACHINE_HPP
