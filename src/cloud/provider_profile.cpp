#include "cloud/provider_profile.hpp"

#include <algorithm>
#include <cassert>

namespace hcloud::cloud {

SizeCurve::SizeCurve(std::initializer_list<SizePoint> points)
{
    assert(points.size() >= 1 && points.size() <= points_.size());
    for (const auto& p : points)
        points_[size_++] = p;
    std::sort(points_.begin(), points_.begin() + size_,
              [](const SizePoint& a, const SizePoint& b) {
                  return a.vcpus < b.vcpus;
              });
}

double
SizeCurve::at(double vcpus) const
{
    if (size_ == 0)
        return 0.0;
    if (vcpus <= points_[0].vcpus)
        return points_[0].value;
    for (std::size_t i = 1; i < size_; ++i) {
        if (vcpus <= points_[i].vcpus) {
            const auto& lo = points_[i - 1];
            const auto& hi = points_[i];
            const double f = (vcpus - lo.vcpus) / (hi.vcpus - lo.vcpus);
            return lo.value + f * (hi.value - lo.value);
        }
    }
    return points_[size_ - 1].value;
}

ProviderProfile
ProviderProfile::gce()
{
    ProviderProfile p;
    p.name = "GCE";
    // GCE: moderate batch means, comparatively tight tails, notably good
    // latency behaviour on large shapes (Figure 2).
    // Calibrated against Figure 1's completion-time ratios (GCE):
    // micro/st1 ~2.3x the m16 mean, st2 ~1.8x, st8 ~1.2x.
    p.spatialMean = {{1, 0.60}, {2, 0.68}, {4, 0.80}, {8, 0.90},
                     {16, 0.92}};
    p.spatialConcentration = {{1, 10}, {2, 13}, {4, 18}, {8, 34},
                              {16, 50}};
    p.temporalStddev = {{1, 0.070}, {2, 0.060}, {4, 0.045}, {8, 0.028},
                        {16, 0.010}};
    p.temporalRelaxation = 120.0;
    p.externalExposure = {{1, 0.97}, {2, 0.90}, {4, 0.70}, {8, 0.40},
                          {16, 0.0}};
    p.networkExposure = 0.05;
    // Paper: typically 12-19 s on GCE, p95 around 2 minutes, smaller
    // instances slower to start.
    p.spinUpMedian = {{1, 19.0}, {2, 17.5}, {4, 16.0}, {8, 14.0},
                      {16, 12.5}};
    p.spinUpTailRatio = 7.5;
    p.microKillProbability = 0.0;
    return p;
}

ProviderProfile
ProviderProfile::ec2()
{
    ProviderProfile p;
    p.name = "EC2";
    // EC2: better average batch performance but heavier bad tails
    // (lower concentration) and micro-instance terminations.
    p.spatialMean = {{1, 0.64}, {2, 0.72}, {4, 0.83}, {8, 0.91},
                     {16, 0.95}};
    p.spatialConcentration = {{1, 5}, {2, 7}, {4, 11}, {8, 22}, {16, 55}};
    p.temporalStddev = {{1, 0.095}, {2, 0.080}, {4, 0.060}, {8, 0.038},
                        {16, 0.016}};
    p.temporalRelaxation = 150.0;
    p.externalExposure = {{1, 0.97}, {2, 0.90}, {4, 0.70}, {8, 0.40},
                          {16, 0.0}};
    p.networkExposure = 0.08;
    p.spinUpMedian = {{1, 28.0}, {2, 25.0}, {4, 22.0}, {8, 19.0},
                      {16, 16.0}};
    p.spinUpTailRatio = 8.0;
    p.microKillProbability = 0.10;
    return p;
}

} // namespace hcloud::cloud
