/**
 * @file
 * Cloud pricing models.
 *
 * Three concrete models cover Section 5.3 of the paper:
 *  - AwsStylePricing: long-term reservations (1-year term, paid upfront)
 *    plus on-demand instances; the default on-demand:reserved per-hour
 *    ratio is 2.74, the paper's measured average. The ratio is a knob for
 *    the Figure 12 sweep.
 *  - GceSustainedUsePricing: on-demand only, with monthly sustained-use
 *    discounts (100/80/60/40% price across usage quartiles of the month).
 *  - AzureOnDemandPricing: plain on-demand only.
 */

#ifndef HCLOUD_CLOUD_PRICING_HPP
#define HCLOUD_CLOUD_PRICING_HPP

#include <memory>
#include <string>

#include "cloud/instance_type.hpp"
#include "sim/types.hpp"

namespace hcloud::cloud {

/**
 * Abstract price schedule.
 */
class PricingModel
{
  public:
    virtual ~PricingModel() = default;

    /** Model name for reports. */
    virtual std::string name() const = 0;

    /** List price of one on-demand instance-hour. */
    virtual double onDemandHourly(const InstanceType& type) const;

    /** True when long-term reservations are offered. */
    virtual bool offersReserved() const { return false; }

    /** Amortized (effective) hourly price of a reserved instance. */
    virtual double reservedEffectiveHourly(const InstanceType& type) const;

    /** Upfront payment for one reservation term of one instance. */
    virtual double reservedUpfront(const InstanceType& type) const;

    /** Length of one reservation term (default 1 year). */
    virtual sim::Duration reservedTerm() const;

    /**
     * Charge for @p usageHours of on-demand usage by instances of
     * @p type within a window of @p windowHours (used by sustained-use
     * discounting; default is linear pricing).
     */
    virtual double onDemandCharge(const InstanceType& type,
                                  double usageHours,
                                  double windowHours) const;
};

/**
 * AWS-style reserved + on-demand pricing.
 */
class AwsStylePricing : public PricingModel
{
  public:
    /** Paper's measured average on-demand : reserved per-hour ratio. */
    static constexpr double kDefaultRatio = 2.74;

    explicit AwsStylePricing(double onDemandToReservedRatio = kDefaultRatio);

    std::string name() const override;
    bool offersReserved() const override { return true; }
    double reservedEffectiveHourly(const InstanceType& type) const override;
    double reservedUpfront(const InstanceType& type) const override;

    double ratio() const { return ratio_; }

  private:
    double ratio_;
};

/**
 * GCE-style on-demand pricing with monthly sustained-use discounts.
 *
 * Usage within a month is priced per quartile of the month: the first 25%
 * of the month at list price, the next quartile at 80%, then 60%, then
 * 40% — a full month of usage costs 70% of list (a 30% discount).
 */
class GceSustainedUsePricing : public PricingModel
{
  public:
    std::string name() const override { return "gce-sustained-use"; }

    double onDemandCharge(const InstanceType& type, double usageHours,
                          double windowHours) const override;

    /** Effective price multiplier for a usage fraction of the month. */
    static double discountMultiplier(double usageFraction);
};

/**
 * Azure-style plain on-demand pricing (no reservations, no discounts).
 */
class AzureOnDemandPricing : public PricingModel
{
  public:
    std::string name() const override { return "azure-on-demand"; }
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_PRICING_HPP
