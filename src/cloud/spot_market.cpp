#include "cloud/spot_market.hpp"

#include <algorithm>
#include <string>

namespace hcloud::cloud {

SpotMarket::SpotMarket(SpotMarketConfig config, sim::Rng rng)
    : config_(config), rng_(rng)
{
}

SpotMarket::ClassState&
SpotMarket::stateFor(const InstanceType& type)
{
    auto it = classes_.find(type.vcpus);
    if (it != classes_.end())
        return it->second;
    sim::Rng class_rng = rng_.child(static_cast<std::uint64_t>(type.vcpus));
    ClassState state{
        sim::OuProcess(config_.meanDiscount, config_.relaxation,
                       config_.stddev, class_rng.child("price")),
        class_rng.child("spike"),
        0.0,
    };
    state.nextSpikeStart = config_.spikeInterval > 0.0
        ? state.spikeRng.exponential(config_.spikeInterval)
        : sim::kTimeNever;
    return classes_.emplace(type.vcpus, std::move(state)).first->second;
}

double
SpotMarket::priceFraction(const InstanceType& type, sim::Time t)
{
    ClassState& s = stateFor(type);
    double fraction = s.process.advanceTo(t);
    while (t >= s.nextSpikeStart) {
        // Spikes are only materialized lazily on queries, so the onset
        // event carries the spike's own start time, which can predate t.
        if (tracer_ && tracer_->enabled()) {
            tracer_->controller(obs::EventKind::MarketSpike,
                                s.nextSpikeStart,
                                config_.spikeMagnitude,
                                std::to_string(type.vcpus) + "-vcpu");
        }
        s.spikeEnd = s.nextSpikeStart + config_.spikeDuration;
        s.nextSpikeStart = s.spikeEnd +
            s.spikeRng.exponential(config_.spikeInterval);
    }
    if (t <= s.spikeEnd)
        fraction += config_.spikeMagnitude;
    return std::clamp(fraction, config_.minFraction, config_.maxFraction);
}

double
SpotMarket::price(const InstanceType& type, sim::Time t)
{
    return priceFraction(type, t) * type.onDemandHourly;
}

double
SpotMarket::lastPriceFraction(const InstanceType& type) const
{
    const auto it = classes_.find(type.vcpus);
    const double fraction = it == classes_.end()
        ? config_.meanDiscount
        : it->second.process.value();
    return std::clamp(fraction, config_.minFraction, config_.maxFraction);
}

bool
SpotMarket::wouldInterrupt(const InstanceType& type, double bidHourly,
                           sim::Time t)
{
    return price(type, t) > bidHourly;
}

} // namespace hcloud::cloud
