#include "cloud/instance.hpp"

#include <algorithm>
#include <cassert>

namespace hcloud::cloud {

namespace {

/** Quality floor: even badly interfered instances make some progress. */
constexpr double kQualityFloor = 0.02;

/**
 * Impact of external-tenant pressure on delivered quality. Calibrated so
 * small shared instances reproduce the ~2x batch slowdown of Figure 1
 * under the paper's 25% external load.
 */
constexpr double kExternalImpact = 1.8;

/**
 * Impact of co-resident (our own) jobs' pressure: much milder, since the
 * scheduler controls and accounts for these placements.
 */
constexpr double kInternalImpact = 0.45;

} // namespace

Instance::Instance(sim::InstanceId id, const InstanceType& type,
                   const ProviderProfile& profile, Machine* host,
                   bool reserved, sim::Rng rng, sim::Time now)
    : id_(id),
      type_(&type),
      host_(host),
      reserved_(reserved),
      acquiredAt_(now),
      idleSince_(now),
      exposure_(profile.externalExposure.at(type.vcpus)),
      networkExposure_(profile.networkExposure),
      temporal_(0.0, profile.temporalRelaxation,
                profile.temporalStddev.at(type.vcpus), rng.child("temporal"))
{
    // Spatial quality: Beta(mean * kappa, (1-mean) * kappa).
    const double mean = profile.spatialMean.at(type.vcpus);
    const double kappa = profile.spatialConcentration.at(type.vcpus);
    sim::Rng spatial_rng = rng.child("spatial");
    spatialQuality_ = spatial_rng.beta(mean * kappa, (1.0 - mean) * kappa);
    if (type.family == Family::Micro &&
        spatial_rng.bernoulli(profile.microKillProbability)) {
        faulty_ = true;
    }
}

double
Instance::baseQuality(sim::Time t)
{
    if (t == baseQualityT_)
        return baseQualityCached_;
    const double q = spatialQuality_ + temporal_.advanceTo(t);
    baseQualityT_ = t;
    baseQualityCached_ = std::clamp(q, kQualityFloor, 1.0);
    return baseQualityCached_;
}

double
Instance::interferencePressure(sim::Time t, std::optional<sim::JobId> self)
{
    if (t == pressureT_ && residentsVersion_ == pressureVersion_ &&
        self == pressureSelf_) {
        return pressureCached_;
    }
    double external = 0.0;
    if (host_) {
        const double u = host_->externalUtilization(t);
        external = (exposure_ + networkExposure_) * u;
    }
    double internal = 0.0;
    for (const auto& [job, r] : residents_) {
        if (self && job == *self)
            continue;
        internal += r.pressure * (r.cores / coresTotal());
    }
    pressureT_ = t;
    pressureVersion_ = residentsVersion_;
    pressureSelf_ = self;
    pressureCached_ = std::clamp(kExternalImpact * external +
                                     kInternalImpact * internal,
                                 0.0, 1.0);
    return pressureCached_;
}

double
Instance::effectiveQuality(sim::Time t, double sensitivity,
                           std::optional<sim::JobId> self)
{
    if (t == effQualityT_ && residentsVersion_ == effQualityVersion_ &&
        sensitivity == effQualitySens_ && self == effQualitySelf_) {
        return effQualityCached_;
    }
    const double base = baseQuality(t);
    const double pressure = interferencePressure(t, self);
    // Even interference-tolerant jobs lose raw capacity to neighbours
    // (CPU stealing); sensitivity scales the part beyond that.
    const double factor = 0.25 + 0.75 * std::clamp(sensitivity, 0.0, 1.0);
    const double loss = std::min(1.0, factor * pressure);
    effQualityT_ = t;
    effQualityVersion_ = residentsVersion_;
    effQualitySens_ = sensitivity;
    effQualitySelf_ = self;
    effQualityCached_ = std::clamp(base * (1.0 - loss), kQualityFloor, 1.0);
    return effQualityCached_;
}

bool
Instance::addResident(sim::JobId job, const Resident& r, sim::Time now)
{
    assert(residents_.find(job) == residents_.end());
    if (r.cores > coresFree() + 1e-9)
        return false;
    residents_.emplace(job, r);
    ++residentsVersion_;
    coresUsed_ += r.cores;
    idleSince_ = sim::kTimeNever;
    (void)now;
    return true;
}

void
Instance::resizeResident(sim::JobId job, double cores)
{
    auto it = residents_.find(job);
    assert(it != residents_.end());
    coresUsed_ += cores - it->second.cores;
    it->second.cores = cores;
    ++residentsVersion_;
}

void
Instance::removeResident(sim::JobId job, sim::Time now)
{
    auto it = residents_.find(job);
    if (it == residents_.end())
        return;
    coresUsed_ -= it->second.cores;
    residents_.erase(it);
    ++residentsVersion_;
    if (residents_.empty()) {
        coresUsed_ = 0.0; // kill accumulated floating-point drift
        idleSince_ = now;
    }
}

} // namespace hcloud::cloud
