#include "cloud/machine.hpp"

#include <cassert>

namespace hcloud::cloud {

Machine::Machine(sim::MachineId id, bool shared,
                 ExternalLoadConfig loadConfig, sim::Rng rng)
    : id_(id), shared_(shared), load_(loadConfig, rng)
{
}

bool
Machine::allocate(int vcpus)
{
    if (vcpus > freeVcpus())
        return false;
    usedVcpus_ += vcpus;
    return true;
}

void
Machine::free(int vcpus)
{
    assert(vcpus <= usedVcpus_);
    usedVcpus_ -= vcpus;
}

double
Machine::externalUtilization(sim::Time t)
{
    if (t == cachedLoadT_)
        return cachedLoad_;
    const double u = load_.utilization(t);
    // Dedicated hosts see only the network component of neighbour load.
    cachedLoadT_ = t;
    cachedLoad_ = shared_ ? u : u * 0.5;
    return cachedLoad_;
}

} // namespace hcloud::cloud
