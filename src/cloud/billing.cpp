#include "cloud/billing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hcloud::cloud {

void
BillingMeter::setReservedPool(const InstanceType& type, int count)
{
    reservedType_ = &type;
    reservedCount_ = count;
}

void
BillingMeter::onDemandAcquired(sim::InstanceId id, const InstanceType& type,
                               sim::Time t0, double priceFactor)
{
    assert(open_.find(id) == open_.end());
    open_[id] = records_.size();
    records_.push_back(UsageRecord{&type, t0, sim::kTimeNever,
                                   priceFactor});
}

void
BillingMeter::onDemandReleased(sim::InstanceId id, sim::Time t1)
{
    auto it = open_.find(id);
    assert(it != open_.end() && "release without acquisition");
    records_[it->second].t1 = t1;
    open_.erase(it);
}

void
BillingMeter::discardOpen(sim::InstanceId id)
{
    auto it = open_.find(id);
    assert(it != open_.end() && "discard of unknown record");
    const std::size_t index = it->second;
    open_.erase(it);
    records_.erase(records_.begin() +
                   static_cast<std::ptrdiff_t>(index));
    for (auto& [other, idx] : open_) {
        if (idx > index)
            --idx;
    }
}

double
BillingMeter::billedHours(const UsageRecord& r, sim::Time end)
{
    const sim::Time t1 = std::min(std::isfinite(r.t1) ? r.t1 : end, end);
    const sim::Duration used = std::max(t1 - r.t0, 0.0);
    // Provider billing: 10-minute minimum, then per-minute rounding.
    const sim::Duration billed = std::max(
        kMinimumBilled, std::ceil(used / kBillingIncrement) *
                            kBillingIncrement);
    return billed / 3600.0;
}

double
BillingMeter::onDemandBilledHours(sim::Time end) const
{
    double hours = 0.0;
    for (const auto& r : records_)
        hours += billedHours(r, end);
    return hours;
}

CostBreakdown
BillingMeter::amortized(const PricingModel& pricing, sim::Time end) const
{
    CostBreakdown cost;
    if (reservedType_ && reservedCount_ > 0) {
        cost.reserved = pricing.reservedEffectiveHourly(*reservedType_) *
            reservedCount_ * (end / 3600.0);
    }
    // Aggregate list-priced on-demand usage per type so sustained-use
    // style discounts can apply across instances of the same shape; spot
    // records (non-unit price factor) are charged individually at their
    // locked market fraction.
    std::map<const InstanceType*, double> usage;
    for (const auto& r : records_) {
        if (r.priceFactor == 1.0) {
            usage[r.type] += billedHours(r, end);
        } else {
            cost.onDemand += pricing.onDemandHourly(*r.type) *
                r.priceFactor * billedHours(r, end);
        }
    }
    const double window_hours = end / 3600.0;
    for (const auto& [type, hours] : usage)
        cost.onDemand += pricing.onDemandCharge(*type, hours, window_hours);
    return cost;
}

CostBreakdown
BillingMeter::committed(const PricingModel& pricing, sim::Time end,
                        sim::Duration horizon) const
{
    CostBreakdown cost;
    if (reservedType_ && reservedCount_ > 0) {
        const double terms =
            std::ceil(std::max(horizon, 1.0) / pricing.reservedTerm());
        cost.reserved = pricing.reservedUpfront(*reservedType_) *
            reservedCount_ * terms;
    }
    const CostBreakdown per_run = amortized(pricing, end);
    const double scale = end > 0.0 ? horizon / end : 0.0;
    cost.onDemand = per_run.onDemand * scale;
    return cost;
}

} // namespace hcloud::cloud
