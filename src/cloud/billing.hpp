/**
 * @file
 * Usage metering and cost computation.
 *
 * The meter records the reserved pool (fixed for a run) and every
 * on-demand acquisition/release. Costs are then evaluated against a
 * PricingModel in two views:
 *
 *  - amortized(): per-run cost with reserved capacity charged at its
 *    effective hourly rate — the view used by the paper's normalized-cost
 *    figures (5, 11, 12, 17);
 *  - committed(): reserved capacity charged as full upfront terms — the
 *    view behind the absolute-cost-vs-duration study (Figure 13).
 */

#ifndef HCLOUD_CLOUD_BILLING_HPP
#define HCLOUD_CLOUD_BILLING_HPP

#include <map>
#include <string>
#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/pricing.hpp"
#include "sim/types.hpp"

namespace hcloud::cloud {

/** Cost split by resource class, in dollars. */
struct CostBreakdown
{
    double reserved = 0.0;
    double onDemand = 0.0;

    double total() const { return reserved + onDemand; }
};

/**
 * Records resource usage for one simulation run.
 */
class BillingMeter
{
  public:
    /** Minimum billed duration per on-demand acquisition. */
    static constexpr sim::Duration kMinimumBilled = 60.0;
    /** Billing granularity after the minimum (GCE-style per minute). */
    static constexpr sim::Duration kBillingIncrement = 60.0;

    /** Register the reserved pool: @p count instances of @p type. */
    void setReservedPool(const InstanceType& type, int count);

    const InstanceType* reservedType() const { return reservedType_; }
    int reservedCount() const { return reservedCount_; }

    /**
     * Record an on-demand instance acquisition at time @p t0.
     *
     * @param priceFactor Multiplier on the list rate; spot acquisitions
     *        pass the market price fraction locked at acquisition.
     */
    void onDemandAcquired(sim::InstanceId id, const InstanceType& type,
                          sim::Time t0, double priceFactor = 1.0);

    /** Record the matching release at time @p t1. */
    void onDemandReleased(sim::InstanceId id, sim::Time t1);

    /** Drop an open record entirely (no charge), e.g. when re-pricing a
     *  just-created acquisition as spot. */
    void discardOpen(sim::InstanceId id);

    /** Number of on-demand acquisitions recorded. */
    std::size_t onDemandAcquisitions() const { return records_.size(); }

    /** Total billed on-demand instance-hours over the run. */
    double onDemandBilledHours(sim::Time end) const;

    /**
     * Per-run cost with amortized reservations.
     *
     * @param pricing Price schedule.
     * @param end Run end time; open on-demand records are billed to it,
     *        and the reserved pool is charged for [0, end].
     */
    CostBreakdown amortized(const PricingModel& pricing,
                            sim::Time end) const;

    /**
     * Cost with reservations charged as whole upfront terms covering
     * @p horizon of operation (>= the run itself). On-demand usage is
     * linearly extrapolated from the run to the horizon.
     */
    CostBreakdown committed(const PricingModel& pricing, sim::Time end,
                            sim::Duration horizon) const;

  private:
    struct UsageRecord
    {
        const InstanceType* type;
        sim::Time t0;
        sim::Time t1 = sim::kTimeNever; // open until released
        double priceFactor = 1.0;
    };

    /** Billed duration of one record, applying minimum + increment. */
    static double billedHours(const UsageRecord& r, sim::Time end);

    const InstanceType* reservedType_ = nullptr;
    int reservedCount_ = 0;
    std::vector<UsageRecord> records_;
    std::map<sim::InstanceId, std::size_t> open_;
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_BILLING_HPP
