/**
 * @file
 * Per-provider performance-variability profiles.
 *
 * Figures 1-2 of the paper show that instance quality varies both across
 * instances of the same type (spatial variability) and within one instance
 * over time (temporal variability), with small instances far noisier than
 * full-server ones, and with EC2 and GCE exhibiting different shapes
 * (EC2: better batch mean, fatter bad tail; GCE: better memcached tail).
 *
 * A ProviderProfile packages every knob of that model:
 *  - spatial base quality: Beta-distributed, mean and concentration
 *    interpolated over the vCPU ladder;
 *  - temporal quality noise: OU stationary stddev + relaxation time;
 *  - external-interference exposure as a function of slice size;
 *  - spin-up time quantiles (median / p95) per size;
 *  - instance-kill probability (EC2 micro terminations in Fig. 1).
 */

#ifndef HCLOUD_CLOUD_PROVIDER_PROFILE_HPP
#define HCLOUD_CLOUD_PROVIDER_PROFILE_HPP

#include <array>
#include <string>

#include "cloud/instance_type.hpp"
#include "sim/types.hpp"

namespace hcloud::cloud {

/** Table row: parameters at one point of the vCPU ladder. */
struct SizePoint
{
    double vcpus;
    double value;
};

/** Piecewise-linear interpolation over the vCPU ladder. */
class SizeCurve
{
  public:
    /** Constant-zero curve. */
    SizeCurve() = default;

    SizeCurve(std::initializer_list<SizePoint> points);

    /** Value at the given vCPU count (clamped to the table range). */
    double at(double vcpus) const;

  private:
    std::array<SizePoint, 8> points_{};
    std::size_t size_ = 0;
};

/**
 * All variability knobs of one cloud provider.
 */
struct ProviderProfile
{
    std::string name;

    /** Mean of the spatial base-quality Beta distribution, per size. */
    SizeCurve spatialMean;
    /** Beta concentration (a+b): larger = tighter distribution. */
    SizeCurve spatialConcentration;

    /** Stationary stddev of temporal OU quality noise, per size. */
    SizeCurve temporalStddev;
    /** OU relaxation time of temporal quality noise. */
    sim::Duration temporalRelaxation = 120.0;

    /**
     * Fraction of a shared server's external pressure a slice of the
     * given size feels (full servers feel ~0 here).
     */
    SizeCurve externalExposure;
    /** Residual network-interference exposure felt even by full servers. */
    double networkExposure = 0.05;

    /** Median spin-up time (seconds), per size. */
    SizeCurve spinUpMedian;
    /** p95 / median spin-up ratio (lognormal tail heaviness). */
    double spinUpTailRatio = 7.0;

    /** Probability a micro instance kills its workload (EC2 scheduler). */
    double microKillProbability = 0.0;

    /** Google Compute Engine profile (the paper's main testbed). */
    static ProviderProfile gce();
    /** Amazon EC2 profile (Figures 1-2 comparison). */
    static ProviderProfile ec2();
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_PROVIDER_PROFILE_HPP
