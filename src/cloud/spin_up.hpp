/**
 * @file
 * VM instantiation (spin-up) latency model.
 *
 * Spin-up times are lognormal, calibrated by (median, p95) from the
 * provider profile. A global scale knob supports the Figure 14a sweep
 * (performance vs spin-up overhead), and a fixed override supports
 * zero-overhead ablations.
 */

#ifndef HCLOUD_CLOUD_SPIN_UP_HPP
#define HCLOUD_CLOUD_SPIN_UP_HPP

#include <array>
#include <optional>

#include "cloud/instance_type.hpp"
#include "cloud/provider_profile.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hcloud::cloud {

/**
 * Samples instantiation delays for new on-demand instances.
 */
class SpinUpModel
{
  public:
    /**
     * @param profile Provider profile supplying per-size quantiles.
     * @param rng Dedicated random stream.
     */
    SpinUpModel(const ProviderProfile& profile, sim::Rng rng);

    /** Draw a spin-up duration for the given shape. */
    sim::Duration sample(const InstanceType& type);

    /** Median spin-up (after scaling) for the given shape. */
    sim::Duration median(const InstanceType& type) const;

    /** Multiply all spin-up times by @p scale (Figure 14a sweep). */
    void setScale(double scale)
    {
        scale_ = scale;
        medianValid_.fill(false);
    }
    double scale() const { return scale_; }

    /**
     * Force every spin-up to exactly @p mean seconds (0 = instantaneous);
     * clears the scale-based model until reset with std::nullopt.
     */
    void setFixedOverride(std::optional<sim::Duration> mean)
    {
        fixed_ = mean;
        medianValid_.fill(false);
    }

  private:
    /** Largest vcpus count a SizeCurve is indexed by. */
    static constexpr int kMaxVcpus = 16;

    SizeCurve medianCurve_;
    double tailRatio_;
    double scale_ = 1.0;
    std::optional<sim::Duration> fixed_;
    sim::Rng rng_;
    // Per-size memo of the scaled median: the curve interpolation and
    // scale multiply are pure per (vcpus, scale, fixed), and median() is
    // queried on every sizing evaluation. Invalidated by the two setters.
    mutable std::array<double, kMaxVcpus + 1> medianCache_{};
    mutable std::array<bool, kMaxVcpus + 1> medianValid_{};
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_SPIN_UP_HPP
